//! # sierra — facade crate for the SIERRA reproduction workspace
//!
//! This crate re-exports every component of the reproduction of
//! *Static Detection of Event-based Races in Android Apps* (Hu & Neamtiu,
//! ASPLOS 2018) so that examples, integration tests, and downstream users
//! can depend on a single crate.
//!
//! - [`apir`] — the Android-app IR substrate.
//! - [`android_model`] — framework model: lifecycle, GUI, loopers, components.
//! - `pointer` — context-sensitive points-to analysis + call graph.
//! - [`harness_gen`] — automatic harness generation (§3.2).
//! - [`shbg`] — actions and the Static Happens-Before Graph (§4).
//! - [`symexec`] — backward symbolic-execution refutation (§5).
//! - [`sierra_core`] — the end-to-end detector pipeline.
//! - [`eventracer`] — the dynamic-detector baseline used in §6.4.
//! - [`corpus`] — the synthetic 20-app and 174-app datasets.

pub use android_model;
pub use apir;
pub use corpus;
pub use eventracer;
pub use harness_gen;
pub use pointer;
pub use shbg;
pub use sierra_core;
pub use symexec;
