//! Quickstart: build a tiny Android app in the IR, run SIERRA on it, and
//! print the ranked race reports.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use sierra::android_model::AndroidAppBuilder;
use sierra::apir::{ConstValue, InvokeKind, Operand, Type};
use sierra::sierra_core::Sierra;

fn main() {
    // An activity whose onClick starts a background thread writing a field
    // that another GUI handler reads — the simplest event-based race.
    let mut app = AndroidAppBuilder::new("Quickstart");
    let fw = app.framework().clone();

    let mut cb = app.activity("com.quickstart.Main");
    cb.add_interface(fw.on_click_listener);
    cb.add_interface(fw.on_long_click_listener);
    let cache = cb.field("cache", Type::Ref(fw.object));
    let activity = cb.build();

    // Worker runnable: outer.cache = new Object().
    let mut cb = app.subclass("com.quickstart.Worker", fw.object);
    cb.add_interface(fw.runnable);
    let outer = cb.field("outer", Type::Ref(activity));
    let worker = cb.build();
    let mut mb = app.method(worker, "<init>");
    mb.set_param_count(2);
    let (this, o) = (mb.param(0), mb.param(1));
    mb.store(this, outer, Operand::Local(o));
    mb.ret(None);
    let worker_init = mb.finish();
    let mut mb = app.method(worker, "run");
    mb.set_param_count(1);
    let this = mb.param(0);
    let (o, v) = (mb.fresh_local(), mb.fresh_local());
    mb.load(o, this, outer);
    mb.new_(v, fw.object);
    mb.store(o, cache, Operand::Local(v));
    mb.ret(None);
    mb.finish();

    // onCreate registers both listeners on two views.
    let mut mb = app.method(activity, "onCreate");
    mb.set_param_count(1);
    let this = mb.param(0);
    for (view_id, register) in [
        (1, fw.set_on_click_listener),
        (2, fw.set_on_long_click_listener),
    ] {
        let view = mb.fresh_local();
        mb.call(
            Some(view),
            InvokeKind::Virtual,
            fw.find_view_by_id,
            Some(this),
            vec![Operand::Const(ConstValue::Int(view_id))],
        );
        mb.call(
            None,
            InvokeKind::Virtual,
            register,
            Some(view),
            vec![Operand::Local(this)],
        );
    }
    mb.ret(None);
    mb.finish();

    // onClick: new Thread(new Worker(this)).start().
    let mut mb = app.method(activity, "onClick");
    mb.set_param_count(2);
    let this = mb.param(0);
    let (w, t) = (mb.fresh_local(), mb.fresh_local());
    mb.new_(w, worker);
    mb.call(
        None,
        InvokeKind::Special,
        worker_init,
        Some(w),
        vec![Operand::Local(this)],
    );
    mb.new_(t, fw.thread);
    mb.call(
        None,
        InvokeKind::Special,
        fw.thread_init,
        Some(t),
        vec![Operand::Local(w)],
    );
    mb.call(None, InvokeKind::Virtual, fw.thread_start, Some(t), vec![]);
    mb.ret(None);
    mb.finish();

    // onLongClick: read the cache.
    let mut mb = app.method(activity, "onLongClick");
    mb.set_param_count(2);
    let this = mb.param(0);
    let x = mb.fresh_local();
    mb.load(x, this, cache);
    mb.ret(None);
    mb.finish();

    let app = app.finish().expect("well-formed app");

    // Run the full SIERRA pipeline.
    let result = Sierra::new().analyze_app(app);
    println!(
        "{}: {} harnesses, {} actions, {} HB edges ({:.1}% of max)",
        result.app_name,
        result.harness_count,
        result.action_count,
        result.hb_edges,
        result.hb_percent()
    );
    println!(
        "racy pairs: {} without action-sensitivity, {} with; {} race(s) after refutation:",
        result.racy_pairs_without_as,
        result.racy_pairs_with_as,
        result.races.len()
    );
    for race in &result.races {
        println!(
            "  {}",
            race.describe(&result.harness.app.program, &result.analysis.actions)
        );
    }
    assert!(
        !result.races.is_empty(),
        "the thread-vs-GUI race must be detected"
    );
}
