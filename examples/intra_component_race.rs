//! Figure 1 of the paper: the intra-component `RecycleView`/`AsyncTask`
//! race (AOSP issue 77846). `onClick` launches a `LoaderTask` whose
//! `doInBackground` updates the adapter's data from a background thread;
//! scrolling before `onPostExecute` runs crashes the app.
//!
//! ```sh
//! cargo run --example intra_component_race
//! ```

use sierra::corpus::figures;
use sierra::sierra_core::Sierra;

fn main() {
    let (app, truth) = figures::intra_component();
    println!(
        "app {:?}: {} classes, {} IR statements",
        app.name,
        app.program.classes().len(),
        app.program.stmt_count()
    );

    let result = Sierra::new().analyze_app(app);
    println!(
        "actions: {}, HB edges: {} ({:.1}%), racy pairs: {}, after refutation: {}",
        result.action_count,
        result.hb_edges,
        result.hb_percent(),
        result.racy_pairs_with_as,
        result.races.len()
    );
    let program = &result.harness.app.program;
    for race in &result.races {
        println!("  {}", race.describe(program, &result.analysis.actions));
    }

    // Score against the planted ground truth.
    let groups: Vec<(String, String)> = result
        .races
        .iter()
        .map(|r| {
            let f = program.field(r.field);
            (
                program.class_name(f.class).to_owned(),
                program.name(f.name).to_owned(),
            )
        })
        .collect();
    let eval = truth.evaluate(groups.iter().map(|(c, f)| (c.as_str(), f.as_str())));
    println!(
        "ground truth: {} true race(s), {} false positive(s), {} missed",
        eval.true_races,
        eval.false_positives + eval.unplanted,
        eval.missed
    );
    assert_eq!(eval.missed, 0, "the Figure 1 race must be found");
}
