//! Regenerates the paper's evaluation tables (2, 3, 4, 5) in one run.
//!
//! ```sh
//! cargo run --release --example dataset_tables
//! ```

use sierra::eventracer::EventRacerConfig;
use sierra::sierra_core::SierraConfig;
use sierra_cli::experiments;

fn main() {
    println!("== Table 2: the 20-app dataset ==");
    print!("{}", experiments::table2());

    let rows = experiments::run_twenty(SierraConfig::default(), &EventRacerConfig::default(), 0);

    println!("\n== Table 3: effectiveness ==");
    print!("{}", experiments::table3(&rows));

    println!("\n== Table 4: efficiency ==");
    print!("{}", experiments::table4(&rows));

    println!("\n== §6.4 comparison with the dynamic detector ==");
    print!("{}", experiments::comparison_summary(&rows));

    println!("\n== Table 5: the 174-app F-Droid dataset (first 40 apps) ==");
    let rows5 = experiments::run_fdroid(40, SierraConfig::default(), 0);
    print!("{}", experiments::table5(&rows5));
}
