//! Figure 8 of the paper: symbolic-execution refutation of the OpenSudoku
//! guarded-timer pattern. The `mAccumTime` accesses are protected by the
//! `mIsRunning` flag (ad-hoc synchronization); backward symbolic execution
//! witnesses no feasible path in the "stop first" order and refutes the
//! candidate, while the guard flag itself remains a (benign) true race.
//!
//! ```sh
//! cargo run --example refutation
//! ```

use sierra::corpus::figures;
use sierra::sierra_core::{Sierra, SierraConfig};

fn main() {
    let (app, _) = figures::open_sudoku_guard();
    let with_refutation = Sierra::new().analyze_app(app);

    let (app, _) = figures::open_sudoku_guard();
    let without =
        Sierra::with_config(SierraConfig::builder().skip_refutation().build()).analyze_app(app);

    println!(
        "candidate racy pairs: {}  → after refutation: {}",
        without.races.len(),
        with_refutation.races.len()
    );
    let rf = &with_refutation.metrics.refuter;
    println!(
        "refuter: {} queries, {} refuted, {} witnessed, {} paths explored",
        rf.queries, rf.refuted, rf.witnessed, rf.paths
    );

    let program = &with_refutation.harness.app.program;
    let fields: Vec<&str> = with_refutation
        .races
        .iter()
        .map(|r| program.field_name(r.field))
        .collect();
    println!("surviving reports: {fields:?}");

    assert!(
        !fields.contains(&"mAccumTime"),
        "the guarded mAccumTime pair must be refuted"
    );
    assert!(
        fields.contains(&"mIsRunning"),
        "the guard flag itself is still a (benign) true race"
    );
    assert!(with_refutation.races.len() < without.races.len());
    println!("Figure 8 reproduced: guarded pair refuted, guard race reported.");
}
