//! Write an app as text (the repo's "APK" input format), assemble it, and
//! run the whole SIERRA pipeline — the workflow a downstream user has.
//!
//! ```sh
//! cargo run --example assemble_and_analyze
//! ```

use sierra::android_model::parse_app;
use sierra::sierra_core::Sierra;

const APP: &str = r#"
// A guarded timer (the Figure 8 pattern), in assembler syntax.
class com.asm.Timer extends android.app.Activity {
  field running: bool
  field elapsed: int

  method onResume(this) {
    bb0:
      this.running = true
      r = new com.asm.Ticker
      r.outer = this
      call virtual android.app.Activity.runOnUiThread(this, r)
      return
  }

  method onPause(this) {
    bb0:
      t = this.running
      if t then bb1 else bb2
    bb1:
      this.running = false
      this.elapsed = 0
      goto bb2
    bb2:
      return
  }
}

class com.asm.Ticker implements java.lang.Runnable {
  field outer: ref com.asm.Timer
  method run(this) {
    bb0:
      o = this.outer
      t = o.running
      if t then bb1 else bb2
    bb1:
      o.elapsed = 1
      goto bb2
    bb2:
      return
  }
}
"#;

fn main() {
    let app = parse_app("AssembledTimer", APP).expect("the source assembles");
    println!(
        "assembled {:?}: {} classes, {} IR statements, {} activities",
        app.name,
        app.program.classes().len(),
        app.program.stmt_count(),
        app.manifest.activities.len()
    );

    let result = Sierra::new().analyze_app(app);
    print!("{result}");

    let program = &result.harness.app.program;
    let fields: Vec<&str> = result
        .races
        .iter()
        .map(|r| program.field_name(r.field))
        .collect();
    assert!(
        !fields.contains(&"elapsed"),
        "the guarded elapsed pair must refute: {fields:?}"
    );
    assert!(
        fields.contains(&"running"),
        "the guard flag race is reported: {fields:?}"
    );
    println!("assembled app analyzed: guarded pair refuted, guard race reported.");
}
