//! Figure 2 of the paper: the inter-component "Activity vs Broadcast
//! Receiver" race. `onReceive` updates a database that `onStop` closes and
//! `onDestroy` frees; a broadcast delivered while the activity is in the
//! background throws.
//!
//! ```sh
//! cargo run --example inter_component_race
//! ```

use sierra::corpus::figures;
use sierra::sierra_core::{Priority, Sierra};

fn main() {
    let (app, truth) = figures::inter_component();
    let result = Sierra::new().analyze_app(app);
    let program = &result.harness.app.program;

    println!("{} race report(s), ranked:", result.races.len());
    for race in &result.races {
        println!("  {}", race.describe(program, &result.analysis.actions));
    }

    // The mDB pointer race ranks at app priority and is pointer-typed —
    // exactly the class SIERRA's prioritization puts first (§3.1).
    let mdb = result
        .races
        .iter()
        .find(|r| program.field_name(r.field) == "mDB")
        .expect("the Figure 2 mDB race is reported");
    assert_eq!(mdb.priority, Priority::App);
    assert!(
        mdb.pointer_field,
        "NullPointerException-prone races rank high"
    );

    let groups: Vec<(String, String)> = result
        .races
        .iter()
        .map(|r| {
            let f = program.field(r.field);
            (
                program.class_name(f.class).to_owned(),
                program.name(f.name).to_owned(),
            )
        })
        .collect();
    let eval = truth.evaluate(groups.iter().map(|(c, f)| (c.as_str(), f.as_str())));
    println!(
        "ground truth: {} true, {} FP, {} missed",
        eval.true_races,
        eval.false_positives + eval.unplanted,
        eval.missed
    );
    assert!(
        eval.true_races >= 2,
        "both Figure 2 races (mDB and isOpen) found"
    );
}
