//! §6.4 of the paper: SIERRA versus the dynamic detector (EventRacer).
//!
//! Runs both detectors over the Table 2 dataset and prints the comparison:
//! the static detector finds several times more true races (the dynamic
//! one misses races in unexplored schedules and filters guard-flag races),
//! while the dynamic detector reports pointer-guarded false positives that
//! SIERRA's path-sensitive refutation eliminates.
//!
//! ```sh
//! cargo run --release --example compare_dynamic
//! ```

use sierra::corpus::twenty;
use sierra::eventracer::{detect, EventRacerConfig};
use sierra::sierra_core::Sierra;

fn main() {
    let er_cfg = EventRacerConfig::default();
    println!(
        "{:<17} {:>12} {:>10} {:>12} {:>10} {:>10}",
        "App", "SIERRA-true", "SIERRA-FP", "EvRacer-true", "EvRacer-FP", "EvRacer-miss"
    );
    let mut totals = (0usize, 0usize, 0usize, 0usize, 0usize);
    for (spec, app, truth) in twenty::build_all() {
        let dynamic = detect(&app, &er_cfg);
        let result = Sierra::new().analyze_app(app);
        let program = &result.harness.app.program;

        let s_groups: Vec<(String, String)> = result
            .races
            .iter()
            .map(|r| {
                let f = program.field(r.field);
                (
                    program.class_name(f.class).to_owned(),
                    program.name(f.name).to_owned(),
                )
            })
            .collect();
        let s = truth.evaluate(s_groups.iter().map(|(c, f)| (c.as_str(), f.as_str())));
        let e_groups = dynamic.race_groups();
        let e = truth.evaluate(e_groups.iter().map(|(c, f)| (c.as_str(), f.as_str())));

        println!(
            "{:<17} {:>12} {:>10} {:>12} {:>10} {:>10}",
            spec.name,
            s.true_races,
            s.false_positives + s.unplanted,
            e.true_races,
            e.false_positives + e.unplanted,
            e.missed
        );
        totals.0 += s.true_races;
        totals.1 += s.false_positives + s.unplanted;
        totals.2 += e.true_races;
        totals.3 += e.false_positives + e.unplanted;
        totals.4 += e.missed;
    }
    let n = twenty::TWENTY.len() as f64;
    println!(
        "\nAverages: SIERRA {:.1} true / {:.1} FP; EventRacer {:.1} true / {:.1} FP, missing {:.1} true races per app",
        totals.0 as f64 / n,
        totals.1 as f64 / n,
        totals.2 as f64 / n,
        totals.3 as f64 / n,
        totals.4 as f64 / n
    );
    assert!(
        totals.0 > totals.2 * 2,
        "the static detector must find a multiple of the dynamic one's true races"
    );
}
