//! Shared-arena determinism: interning every app of a corpus run into
//! one process-wide [`apir::SymbolArena`] must never change analysis
//! results — not at any worker count, and not against the private
//! per-app interner baseline. The rendered tables carry every counter
//! the pipeline reports (and no wall-clock columns), so comparing them
//! byte for byte is the strongest cheap equality check available.

use apir::SymbolArena;
use sierra_cli::experiments::{run_fdroid_with, table3};
use sierra_core::SierraConfig;
use sierra_prng::SplitMix64;
use std::sync::Arc;

const CORPUS_APPS: usize = 6;

fn corpus_table(jobs: usize, shared_intern: bool) -> String {
    let rows = run_fdroid_with(CORPUS_APPS, SierraConfig::default(), jobs, shared_intern);
    assert!(
        rows.iter().all(|r| r.error.is_none()),
        "no app may fail: {:?}",
        rows.iter()
            .filter_map(|r| r.error.as_deref())
            .collect::<Vec<_>>()
    );
    table3(&rows)
}

#[test]
fn corpus_reports_are_byte_identical_across_arena_and_job_count() {
    let reference = corpus_table(1, true);
    for (jobs, shared) in [(8, true), (1, false), (8, false)] {
        let other = corpus_table(jobs, shared);
        assert_eq!(
            reference, other,
            "corpus results diverged at jobs={jobs}, shared_intern={shared}"
        );
    }
}

#[test]
fn concurrent_interning_never_duplicates_symbols() {
    // Eight threads intern overlapping seeded vocabularies into one
    // arena; every (text → symbol) binding must agree across threads
    // and every symbol must resolve back to its text.
    let arena = Arc::new(SymbolArena::new());
    let vocabulary = |seed: u64| -> Vec<String> {
        let mut rng = SplitMix64::new(seed);
        (0..512)
            .map(|_| format!("com.app{}.Class{}", rng.usize(16), rng.usize(64)))
            .collect()
    };
    let handles: Vec<_> = (0..8u64)
        .map(|t| {
            let arena = Arc::clone(&arena);
            std::thread::spawn(move || {
                // Seeds 0..8 share most of their name space, so threads
                // race to intern the same strings.
                vocabulary(t % 4)
                    .into_iter()
                    .map(|text| {
                        let sym = arena.intern(&text);
                        (text, sym)
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let mut bindings = std::collections::HashMap::new();
    for handle in handles {
        for (text, sym) in handle.join().expect("interner thread panicked") {
            assert_eq!(&*arena.resolve(sym), text.as_str(), "symbol round-trip");
            if let Some(prev) = bindings.insert(text.clone(), sym) {
                assert_eq!(prev, sym, "{text:?} interned to two symbols");
            }
        }
    }
    // The arena holds exactly the distinct texts: no duplicate slots.
    assert_eq!(arena.len(), bindings.len());
}
