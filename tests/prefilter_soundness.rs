//! Soundness regression for the pre-refutation prefilter.
//!
//! The pipeline is run with and without `--no-prefilter` over the
//! 20-app dataset, the figure apps, and the prefilter fixture. The
//! prefilter may only *partition* the candidate set: the surviving
//! reports must equal the unpruned run minus exactly the pruned pairs,
//! and no pair whose ground-truth label is a true race may be pruned.

use corpus::{prefilter_idioms, twenty, GroundTruth};
use pointer::{Access, SelectorKind};
use sierra_core::{Sierra, SierraConfig, SierraResult, Verdict};
use std::collections::HashSet;

fn pair_key(a: &Access, b: &Access) -> String {
    format!("{:?}@{:?} vs {:?}@{:?}", a.addr, a.action, b.addr, b.action)
}

fn field_group(result: &SierraResult, field: apir::FieldId) -> (String, String) {
    let p = &result.harness.app.program;
    let f = p.field(field);
    (p.class_name(f.class).to_owned(), p.name(f.name).to_owned())
}

fn reported_groups(result: &SierraResult) -> Vec<(String, String)> {
    result
        .races
        .iter()
        .map(|race| field_group(result, race.field))
        .collect()
}

fn check_app(name: &str, app: android_model::AndroidApp, truth: &GroundTruth) {
    let with = Sierra::new().analyze_app(app.clone());
    let without =
        Sierra::with_config(SierraConfig::builder().no_prefilter(true).build()).analyze_app(app);

    // The prefilter only partitions the candidate set.
    assert_eq!(
        with.racy_pairs_with_as, without.racy_pairs_with_as,
        "{name}"
    );
    assert!(without.pruned.is_empty(), "{name}");

    // No pruned pair may sit on a ground-truth true race.
    for p in &with.pruned {
        let (class, field) = field_group(&with, p.a.field);
        let label = truth.classify(&class, &field);
        assert!(
            !label.is_some_and(|l| l.is_true_race()),
            "{name}: prefilter pruned true race {class}.{field} ({:?})",
            p.verdict
        );
    }

    // Reports with the prefilter = reports without, minus the pruned pairs.
    let pruned_keys: HashSet<String> = with.pruned.iter().map(|p| pair_key(&p.a, &p.b)).collect();
    let with_keys: Vec<String> = with.races.iter().map(|r| pair_key(&r.a, &r.b)).collect();
    let expected: Vec<String> = without
        .races
        .iter()
        .map(|r| pair_key(&r.a, &r.b))
        .filter(|k| !pruned_keys.contains(k))
        .collect();
    assert_eq!(with_keys, expected, "{name}");

    // Ground-truth scores: pruning must not cost a single true race.
    let gw = reported_groups(&with);
    let go = reported_groups(&without);
    let ew = truth.evaluate(gw.iter().map(|(c, f)| (c.as_str(), f.as_str())));
    let eo = truth.evaluate(go.iter().map(|(c, f)| (c.as_str(), f.as_str())));
    assert_eq!(ew.missed, eo.missed, "{name}: pruning added misses");
    assert_eq!(
        ew.true_races, eo.true_races,
        "{name}: pruning lost true races"
    );
}

#[test]
fn prefilter_never_drops_a_true_race_across_the_corpus() {
    for (spec, app, truth) in twenty::build_all() {
        check_app(spec.name, app, &truth);
    }
    for (name, (app, truth)) in [
        ("fig1", corpus::figures::intra_component()),
        ("fig2", corpus::figures::inter_component()),
        ("fig8", corpus::figures::open_sudoku_guard()),
        ("message-guard", corpus::figures::message_guard()),
        ("implicit-dep", corpus::figures::open_manager_implicit()),
        ("prefilter-idioms", prefilter_idioms::prefilter_idioms_app()),
    ] {
        check_app(name, app, &truth);
    }
}

#[test]
fn fixture_prunes_guarded_and_constprop_pairs_under_default_contexts() {
    let (app, truth) = prefilter_idioms::prefilter_idioms_app();
    let result = Sierra::new().analyze_app(app);
    let s = result.metrics.prefilter;
    assert_eq!(s.pruned_guarded, 1, "the ready-guarded cache pair");
    assert_eq!(s.pruned_constprop, 1, "the constant-dead log pair");
    assert_eq!(
        s.pruned_escape, 0,
        "action-sensitive contexts never form the Scratch pair"
    );
    assert!(s.infeasible_edges >= 1);

    // Every pruned pair carries a machine-checkable reason.
    let p = &result.harness.app.program;
    for pruned in &result.pruned {
        let reason = pruned.verdict.describe(p);
        assert!(matches!(
            pruned.verdict.tag(),
            "escape" | "guarded" | "constprop"
        ));
        match &pruned.verdict {
            Verdict::Guarded { .. } => assert!(reason.contains("ready"), "{reason}"),
            Verdict::ConstProp { .. } => assert!(reason.contains("constant-dead"), "{reason}"),
            Verdict::NonEscaping { .. } => unreachable!("no escape prunes under AS contexts"),
            Verdict::History { .. } => {
                unreachable!("no protocol-window idioms in the prefilter corpus")
            }
        }
    }

    // The benign guard itself is still reported; the pruned pairs are not.
    let groups = reported_groups(&result);
    assert!(groups.iter().any(|(_, f)| f == "ready"), "{groups:?}");
    assert!(
        !groups.iter().any(|(_, f)| f == "cache" || f == "log"),
        "{groups:?}"
    );
    let eval = truth.evaluate(groups.iter().map(|(c, f)| (c.as_str(), f.as_str())));
    assert_eq!(eval.missed, 0);
    assert_eq!(eval.false_positives, 0);
}

#[test]
fn fixture_prunes_the_conflated_scratch_pair_under_insensitive_contexts() {
    let (app, _) = prefilter_idioms::prefilter_idioms_app();
    let cfg = SierraConfig::builder()
        .selector(SelectorKind::Insensitive)
        .build();
    let result = Sierra::with_config(cfg).analyze_app(app);
    let s = result.metrics.prefilter;
    assert!(
        s.pruned_escape >= 1,
        "the conflated Scratch allocation must prune: {s:?}"
    );
    let p = &result.harness.app.program;
    assert!(
        !result.races.iter().any(|r| p.field_name(r.field) == "val"),
        "the confined Scratch.val pair must not be reported"
    );
}
