//! End-to-end integration: the full pipeline over the corpus datasets.

use sierra::corpus::{self, twenty, RaceLabel};
use sierra::sierra_core::{Sierra, SierraConfig, SierraResult};

fn groups(result: &SierraResult) -> Vec<(String, String)> {
    let p = &result.harness.app.program;
    let mut v: Vec<(String, String)> = result
        .races
        .iter()
        .map(|r| {
            let f = p.field(r.field);
            (p.class_name(f.class).to_owned(), p.name(f.name).to_owned())
        })
        .collect();
    v.sort();
    v.dedup();
    v
}

#[test]
fn every_figure_app_matches_its_ground_truth() {
    for (label, (app, truth)) in [
        ("fig1", corpus::figures::intra_component()),
        ("fig2", corpus::figures::inter_component()),
        ("fig8", corpus::figures::open_sudoku_guard()),
        ("msg", corpus::figures::message_guard()),
    ] {
        let result = Sierra::new().analyze_app(app);
        let gs = groups(&result);
        let eval = truth.evaluate(gs.iter().map(|(c, f)| (c.as_str(), f.as_str())));
        assert_eq!(eval.missed, 0, "{label}: missed true races: {gs:?}");
        // Refutable/Ordered plants must never be reported.
        for p in &truth.planted {
            if matches!(p.label, RaceLabel::Refutable | RaceLabel::Ordered) {
                assert!(
                    !gs.iter().any(|(c, f)| *c == p.class && *f == p.field),
                    "{label}: {}.{} should have been eliminated",
                    p.class,
                    p.field
                );
            }
        }
    }
}

#[test]
fn twenty_app_dataset_invariants() {
    for (spec, app, truth) in twenty::build_all() {
        let result = Sierra::new().analyze_app(app);
        // Structural invariants of Table 3.
        assert_eq!(
            result.harness_count,
            twenty::activity_count(spec.bytecode_kb)
        );
        assert!(result.action_count > 0, "{}", spec.name);
        assert!(result.hb_edges <= result.hb_max, "{}", spec.name);
        assert!(
            result.racy_pairs_with_as <= result.racy_pairs_without_as,
            "{}: action sensitivity must only remove pairs",
            spec.name
        );
        assert!(
            result.races.len() <= result.racy_pairs_with_as,
            "{}: refutation must only remove pairs",
            spec.name
        );
        // Static analysis must not miss planted true races.
        let gs = groups(&result);
        let eval = truth.evaluate(gs.iter().map(|(c, f)| (c.as_str(), f.as_str())));
        assert_eq!(
            eval.missed, 0,
            "{}: missed true races (reported {gs:?})",
            spec.name
        );
    }
}

#[test]
fn ranked_reports_put_app_pointer_races_first() {
    let (_, app, _) = twenty::build_all().remove(1); // Astrid, the largest
    let result = Sierra::new().analyze_app(app);
    let keys: Vec<_> = result.races.iter().map(|r| r.rank_key()).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "reports are emitted in rank order");
}

#[test]
fn skipping_refutation_only_adds_reports() {
    let (app, _) = corpus::figures::open_sudoku_guard();
    let full = Sierra::new().analyze_app(app.clone());
    let skipped =
        Sierra::with_config(SierraConfig::builder().skip_refutation().build()).analyze_app(app);
    let full_groups = groups(&full);
    let skipped_groups = groups(&skipped);
    for g in &full_groups {
        assert!(skipped_groups.contains(g), "refutation never adds reports");
    }
    assert!(skipped_groups.len() >= full_groups.len());
}

#[test]
fn analysis_is_deterministic() {
    let (app, _) = corpus::figures::inter_component();
    let r1 = Sierra::new().analyze_app(app.clone());
    let r2 = Sierra::new().analyze_app(app);
    assert_eq!(groups(&r1), groups(&r2));
    assert_eq!(r1.action_count, r2.action_count);
    assert_eq!(r1.hb_edges, r2.hb_edges);
    assert_eq!(r1.racy_pairs_with_as, r2.racy_pairs_with_as);
}

#[test]
fn assembled_apps_flow_through_the_whole_pipeline() {
    // The text front end (android_model::asm) is the repo's "APK" input
    // format; Figure 2's shape written as source must reach the same
    // verdicts as the builder-constructed corpus app.
    let src = r#"
class com.t.DB {
  field isOpen: bool
}
class com.t.Recv extends android.content.BroadcastReceiver {
  field outer: ref com.t.Main
  method onReceive(this, intent) {
    bb0:
      o = this.outer
      d = o.db
      x = d.isOpen
      return
  }
}
class com.t.Main extends android.app.Activity {
  field db: ref com.t.DB
  field recv: ref com.t.Recv
  method onCreate(this) {
    bb0:
      d = new com.t.DB
      this.db = d
      r = new com.t.Recv
      r.outer = this
      this.recv = r
      call virtual android.content.Context.registerReceiver(this, r)
      return
  }
  method onStop(this) {
    bb0:
      d = this.db
      d.isOpen = false
      return
  }
}
"#;
    let app = sierra::android_model::parse_app("AsmFig2", src).expect("assembles");
    let result = sierra::sierra_core::Sierra::new().analyze_app(app);
    let p = &result.harness.app.program;
    let fields: Vec<&str> = result.races.iter().map(|r| p.field_name(r.field)).collect();
    assert!(
        fields.contains(&"isOpen"),
        "receiver-vs-stop race found: {fields:?}"
    );
    assert!(
        !fields.contains(&"recv"),
        "onCreate-ordered field not racy: {fields:?}"
    );
    assert!(
        !fields.contains(&"db"),
        "db pointer only written in onCreate: {fields:?}"
    );
}

#[test]
fn disassemble_reassemble_preserves_race_verdicts() {
    // Round-tripping a corpus figure app through the text format must not
    // change what the detector reports.
    for (label, (app, _)) in [
        ("fig1", corpus::figures::intra_component()),
        ("fig2", corpus::figures::inter_component()),
        ("fig8", corpus::figures::open_sudoku_guard()),
    ] {
        let text = sierra::android_model::render_app(&app);
        let reparsed = sierra::android_model::parse_app(&app.name, &text)
            .unwrap_or_else(|e| panic!("{label}: {e}\n{text}"));
        let r1 = Sierra::new().analyze_app(app);
        let r2 = Sierra::new().analyze_app(reparsed);
        let mut g1 = groups(&r1);
        let mut g2 = groups(&r2);
        g1.sort();
        g2.sort();
        assert_eq!(g1, g2, "{label}: verdicts must survive the round trip");
    }
}
