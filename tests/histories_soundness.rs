//! Soundness regression for the message-history refutation stage.
//!
//! The pipeline runs with and without `--no-histories` over the 20-app
//! dataset, the figure apps, the prefilter fixture, and the protocol
//! fixture family. The stage may only *partition* the surviving report
//! set: reports with histories = reports without, minus exactly the
//! history-pruned pairs, and no pair on a ground-truth true race may be
//! discharged. On the protocol fixtures the stage must discharge every
//! planted false positive — one per refutation pattern — and keep every
//! planted true race.

use corpus::{protocol_idioms, twenty, GroundTruth, RaceLabel};
use pointer::Access;
use sierra_core::{Sierra, SierraConfig, SierraResult, Verdict};
use std::collections::HashSet;

fn pair_key(a: &Access, b: &Access) -> String {
    format!("{:?}@{:?} vs {:?}@{:?}", a.addr, a.action, b.addr, b.action)
}

fn field_group(result: &SierraResult, field: apir::FieldId) -> (String, String) {
    let p = &result.harness.app.program;
    let f = p.field(field);
    (p.class_name(f.class).to_owned(), p.name(f.name).to_owned())
}

fn reported_groups(result: &SierraResult) -> Vec<(String, String)> {
    result
        .races
        .iter()
        .map(|race| field_group(result, race.field))
        .collect()
}

fn check_partition(name: &str, app: android_model::AndroidApp, truth: &GroundTruth) {
    let with = Sierra::new().analyze_app(app.clone());
    let without =
        Sierra::with_config(SierraConfig::builder().no_histories(true).build()).analyze_app(app);

    assert!(with.histories_ran, "{name}");
    assert!(!without.histories_ran, "{name}");

    // The ablated run must not carry any history verdicts.
    assert!(
        without
            .pruned
            .iter()
            .all(|p| !matches!(p.verdict, Verdict::History { .. })),
        "{name}: --no-histories still emitted history verdicts"
    );

    // The stage only partitions: reports with = reports without, minus
    // exactly the history-pruned pairs. Non-history prunes are identical.
    let history_keys: HashSet<String> = with
        .pruned
        .iter()
        .filter(|p| matches!(p.verdict, Verdict::History { .. }))
        .map(|p| pair_key(&p.a, &p.b))
        .collect();
    let other_prunes = |r: &SierraResult| -> Vec<String> {
        r.pruned
            .iter()
            .filter(|p| !matches!(p.verdict, Verdict::History { .. }))
            .map(|p| pair_key(&p.a, &p.b))
            .collect::<Vec<_>>()
    };
    assert_eq!(other_prunes(&with), other_prunes(&without), "{name}");
    let with_keys: Vec<String> = with.races.iter().map(|r| pair_key(&r.a, &r.b)).collect();
    let expected: Vec<String> = without
        .races
        .iter()
        .map(|r| pair_key(&r.a, &r.b))
        .filter(|k| !history_keys.contains(k))
        .collect();
    assert_eq!(with_keys, expected, "{name}");
    assert_eq!(
        with.metrics.histories.discharged_total(),
        history_keys.len(),
        "{name}: counters must match the emitted verdicts"
    );

    // No discharged pair may sit on a ground-truth true race.
    for p in &with.pruned {
        if !matches!(p.verdict, Verdict::History { .. }) {
            continue;
        }
        let (class, field) = field_group(&with, p.a.field);
        let label = truth.classify(&class, &field);
        assert!(
            !label.is_some_and(|l| l.is_true_race()),
            "{name}: histories discharged true race {class}.{field}"
        );
    }

    // Scores: the stage must not cost a single true race.
    let gw = reported_groups(&with);
    let go = reported_groups(&without);
    let ew = truth.evaluate(gw.iter().map(|(c, f)| (c.as_str(), f.as_str())));
    let eo = truth.evaluate(go.iter().map(|(c, f)| (c.as_str(), f.as_str())));
    assert_eq!(ew.missed, eo.missed, "{name}: discharge added misses");
    assert_eq!(
        ew.true_races, eo.true_races,
        "{name}: discharge lost true races"
    );
}

#[test]
fn histories_never_drop_a_true_race_across_the_corpus() {
    for (spec, app, truth) in twenty::build_all() {
        check_partition(spec.name, app, &truth);
    }
    for (name, (app, truth)) in [
        ("fig1", corpus::figures::intra_component()),
        ("fig2", corpus::figures::inter_component()),
        ("fig8", corpus::figures::open_sudoku_guard()),
        (
            "prefilter-idioms",
            corpus::prefilter_idioms::prefilter_idioms_app(),
        ),
    ] {
        check_partition(name, app, &truth);
    }
    for (name, app, truth) in protocol_idioms::build_all() {
        check_partition(name, app, &truth);
    }
}

#[test]
fn protocol_fixtures_discharge_every_planted_fp_and_no_true_race() {
    for (name, app, truth) in protocol_idioms::build_all() {
        let result = Sierra::new().analyze_app(app);
        let groups = reported_groups(&result);
        let eval = truth.evaluate(groups.iter().map(|(c, f)| (c.as_str(), f.as_str())));
        assert_eq!(eval.missed, 0, "{name}: lost a true race: {groups:?}");
        assert_eq!(
            eval.false_positives, 0,
            "{name}: a planted FP survived the histories stage: {groups:?}"
        );
        assert_eq!(eval.unplanted, 0, "{name}: noise reports: {groups:?}");

        // Every planted Refutable field is discharged by a History verdict.
        for planted in &truth.planted {
            if planted.label != RaceLabel::Refutable {
                continue;
            }
            let discharged = result.pruned.iter().any(|p| {
                let (class, field) = field_group(&result, p.a.field);
                matches!(p.verdict, Verdict::History { .. })
                    && class == planted.class
                    && field == planted.field
            });
            assert!(
                discharged,
                "{name}: {}.{} was not discharged by the histories stage",
                planted.class, planted.field
            );
        }
    }
}

#[test]
fn protocol_fixtures_hit_each_refutation_pattern() {
    let metrics = |app| Sierra::new().analyze_app(app).metrics.histories;

    let (app, _) = protocol_idioms::dialog_dismiss();
    let s = metrics(app);
    assert_eq!(s.discharged_destroy, 1, "dialog: destroy-dominates: {s:?}");
    assert_eq!(s.discharged_total(), 1, "{s:?}");

    // The fragment re-attaches after a restart, so the callback exists
    // once per Start instance — both instances discharge.
    let (app, _) = protocol_idioms::fragment_detach();
    let s = metrics(app);
    assert_eq!(s.discharged_pause, 2, "fragment: pause-quiesced: {s:?}");
    assert_eq!(s.discharged_total(), 2, "{s:?}");

    let (app, _) = protocol_idioms::task_cancel();
    let s = metrics(app);
    assert_eq!(
        s.discharged_unregistered, 1,
        "task: unregistered-before-posted: {s:?}"
    );
    assert_eq!(s.discharged_total(), 1, "{s:?}");
    assert!(s.dead_callbacks >= 1, "the cancelled post is dead: {s:?}");
    assert!(
        s.infeasible_exported >= 1,
        "the dead render helper must export edges: {s:?}"
    );

    let (app, _) = protocol_idioms::pause_unregister();
    let s = metrics(app);
    assert_eq!(s.discharged_pause, 1, "pause: pause-quiesced: {s:?}");
    assert_eq!(s.discharged_total(), 1, "{s:?}");
}

#[test]
fn ablated_run_renders_without_any_histories_trace() {
    let (app, _) = protocol_idioms::pause_unregister();
    let result = Sierra::with_config(SierraConfig::builder().no_histories(true).build())
        .analyze_app(app.clone());
    let text = format!("{result}");
    assert!(
        !text.lines().any(|l| l.starts_with("histories:")),
        "--no-histories must render the pre-stage pipeline: {text}"
    );

    // And the default run differs from the ablation only by the
    // discharged pairs and the stage's own report line.
    let with = Sierra::new().analyze_app(app);
    let with_text = format!("{with}");
    assert!(with_text.lines().any(|l| l.starts_with("histories:")));
}
