//! Integration: the §6.4 static-vs-dynamic comparison holds in aggregate.

use sierra::corpus::twenty;
use sierra::eventracer::{detect, EventRacerConfig};
use sierra::sierra_core::Sierra;

#[test]
fn static_detection_dominates_dynamic_on_the_dataset() {
    let er_cfg = EventRacerConfig::default();
    let mut sierra_true = 0usize;
    let mut sierra_fp = 0usize;
    let mut dynamic_true = 0usize;
    let mut dynamic_fp = 0usize;
    let mut dynamic_missed = 0usize;

    for (_, app, truth) in twenty::build_all() {
        let dynamic = detect(&app, &er_cfg);
        let result = Sierra::new().analyze_app(app);
        let p = &result.harness.app.program;
        let s_groups: Vec<(String, String)> = result
            .races
            .iter()
            .map(|r| {
                let f = p.field(r.field);
                (p.class_name(f.class).to_owned(), p.name(f.name).to_owned())
            })
            .collect();
        let s = truth.evaluate(s_groups.iter().map(|(c, f)| (c.as_str(), f.as_str())));
        let e_groups = dynamic.race_groups();
        let e = truth.evaluate(e_groups.iter().map(|(c, f)| (c.as_str(), f.as_str())));
        sierra_true += s.true_races;
        sierra_fp += s.false_positives + s.unplanted;
        dynamic_true += e.true_races;
        dynamic_fp += e.false_positives + e.unplanted;
        dynamic_missed += e.missed;
        assert_eq!(s.missed, 0, "static analysis misses nothing planted");
    }

    // The paper's headline (§6.4): the static detector finds a multiple of
    // the dynamic detector's true races...
    assert!(
        sierra_true >= dynamic_true * 2,
        "static {sierra_true} vs dynamic {dynamic_true}"
    );
    // ...the dynamic detector misses many true races...
    assert!(
        dynamic_missed > dynamic_true,
        "missed {dynamic_missed} vs found {dynamic_true}"
    );
    // ...and carries a worse false-positive profile (pointer-guarded pairs
    // its race-coverage filter cannot reason about).
    assert!(
        dynamic_fp > sierra_fp,
        "dynamic FP {dynamic_fp} vs static FP {sierra_fp}"
    );
}

#[test]
fn dynamic_coverage_controls_recall() {
    // More exploration → (weakly) more detected races.
    let (_, app, _) = twenty::build_all().remove(10); // NPR News
    let sparse = detect(
        &app,
        &EventRacerConfig {
            runs: 1,
            steps_per_episode: 3,
            activity_coverage: 0.2,
            ..Default::default()
        },
    );
    let thorough = detect(
        &app,
        &EventRacerConfig {
            runs: 6,
            steps_per_episode: 60,
            activity_coverage: 1.0,
            ..Default::default()
        },
    );
    assert!(thorough.races.len() >= sparse.races.len());
    assert!(thorough.events > sparse.events);
}
