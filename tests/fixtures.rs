//! The shipped `.sierra` fixtures parse and reproduce their figures.
//!
//! `fixtures/*.sierra` are the paper's motivating examples in the repo's
//! text input format (generated with `android_model::render_app`); parsing
//! them and running the pipeline must reproduce each figure's verdict.

use sierra::android_model::parse_app;
use sierra::sierra_core::Sierra;

fn fields_of(result: &sierra::sierra_core::SierraResult) -> Vec<String> {
    let p = &result.harness.app.program;
    let mut v: Vec<String> = result
        .races
        .iter()
        .map(|r| p.field_name(r.field).to_owned())
        .collect();
    v.sort();
    v.dedup();
    v
}

#[test]
fn figure_1_fixture_reproduces_the_adapter_race() {
    let src = include_str!("../fixtures/fig1_intra_component.sierra");
    let app = parse_app("Fig1Fixture", src).expect("fixture parses");
    let result = Sierra::new().analyze_app(app);
    let fields = fields_of(&result);
    assert!(fields.contains(&"data".to_owned()), "{fields:?}");
}

#[test]
fn figure_2_fixture_reproduces_both_races() {
    let src = include_str!("../fixtures/fig2_inter_component.sierra");
    let app = parse_app("Fig2Fixture", src).expect("fixture parses");
    let result = Sierra::new().analyze_app(app);
    let fields = fields_of(&result);
    assert!(fields.contains(&"mDB".to_owned()), "{fields:?}");
    assert!(fields.contains(&"isOpen".to_owned()), "{fields:?}");
}

#[test]
fn figure_8_fixture_reproduces_the_refutation() {
    let src = include_str!("../fixtures/fig8_guarded_timer.sierra");
    let app = parse_app("Fig8Fixture", src).expect("fixture parses");
    let result = Sierra::new().analyze_app(app);
    let fields = fields_of(&result);
    assert!(
        !fields.contains(&"mAccumTime".to_owned()),
        "refuted: {fields:?}"
    );
    assert!(
        fields.contains(&"mIsRunning".to_owned()),
        "guard race kept: {fields:?}"
    );
}
