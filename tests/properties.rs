//! Property-based integration tests: pipeline invariants over randomly
//! synthesized apps.

use proptest::prelude::*;
use sierra::corpus::twenty::synthesize;
use sierra::eventracer::{detect, EventRacerConfig};
use sierra::pointer::SelectorKind;
use sierra::sierra_core::{Sierra, SierraConfig};

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Any synthesized app passes IR validation and the full pipeline runs
    /// to completion with consistent counters.
    #[test]
    fn pipeline_invariants_hold_on_random_apps(seed in 0u64..1_000_000, n in 1usize..6) {
        let (app, truth) = synthesize("prop.app", n, seed);
        prop_assert!(app.program.validate().is_ok());
        let result = Sierra::new().analyze_app(app);
        prop_assert_eq!(result.harness_count, n);
        prop_assert!(result.hb_edges <= result.hb_max);
        prop_assert!(result.racy_pairs_with_as <= result.racy_pairs_without_as);
        prop_assert!(result.races.len() <= result.racy_pairs_with_as);
        // Static analysis never misses a planted true race.
        let p = &result.harness.app.program;
        let groups: Vec<(String, String)> = result.races.iter().map(|r| {
            let f = p.field(r.field);
            (p.class_name(f.class).to_owned(), p.name(f.name).to_owned())
        }).collect();
        let eval = truth.evaluate(groups.iter().map(|(c, f)| (c.as_str(), f.as_str())));
        prop_assert_eq!(eval.missed, 0);
    }

    /// The SHBG order is a strict partial order on every random app:
    /// irreflexive and antisymmetric (transitivity is rule 7 by
    /// construction).
    #[test]
    fn shbg_is_a_strict_partial_order(seed in 0u64..1_000_000, n in 1usize..4) {
        let (app, _) = synthesize("prop.hb", n, seed);
        let result = Sierra::with_config(SierraConfig {
            compare_without_as: false,
            skip_refutation: true,
            ..Default::default()
        }).analyze_app(app);
        let actions: Vec<_> = result.analysis.actions.ids().collect();
        for &a in &actions {
            prop_assert!(!result.shbg.ordered(a, a), "irreflexive");
            for &b in &actions {
                if result.shbg.ordered(a, b) {
                    prop_assert!(!result.shbg.ordered(b, a), "antisymmetric: {a} {b}");
                }
            }
        }
    }

    /// Every reported race is an unordered pair of distinct actions with at
    /// least one write and overlapping locations.
    #[test]
    fn reported_races_are_well_formed(seed in 0u64..1_000_000) {
        let (app, _) = synthesize("prop.races", 3, seed);
        let result = Sierra::new().analyze_app(app);
        for race in &result.races {
            prop_assert_ne!(race.a.action, race.b.action);
            prop_assert!(race.a.is_write || race.b.is_write);
            prop_assert!(race.a.overlaps(&race.b));
            prop_assert!(result.shbg.unordered(race.a.action, race.b.action));
            prop_assert_eq!(race.a.field, race.b.field);
        }
    }

    /// The dynamic detector is deterministic per seed and only ever finds
    /// a subset under a stricter budget with the same seed.
    #[test]
    fn dynamic_detection_is_seed_deterministic(seed in 0u64..100_000) {
        let (app, _) = synthesize("prop.dyn", 2, seed);
        let cfg = EventRacerConfig { seed, ..Default::default() };
        let a = detect(&app, &cfg);
        let b = detect(&app, &cfg);
        prop_assert_eq!(a.race_groups(), b.race_groups());
    }

    /// Coarser context abstractions only ever report *more* racy pairs
    /// than action-sensitivity (the §3.3 precision ordering), and every
    /// abstraction terminates.
    #[test]
    fn context_abstraction_precision_ordering(seed in 0u64..100_000) {
        let (app, _) = synthesize("prop.ctx", 2, seed);
        let count = |sel: SelectorKind| {
            let cfg = SierraConfig {
                selector: sel,
                compare_without_as: false,
                skip_refutation: true,
                ..Default::default()
            };
            Sierra::with_config(cfg).analyze_app(app.clone()).racy_pairs_with_as
        };
        let insensitive = count(SelectorKind::Insensitive);
        let action = count(SelectorKind::ActionSensitive(1));
        prop_assert!(action <= insensitive,
            "AS ({action}) must be at least as precise as insensitive ({insensitive})");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Disassembling and reassembling any synthesized corpus app preserves
    /// the detector's verdicts (the text format is a faithful codec).
    #[test]
    fn text_round_trip_preserves_verdicts(seed in 0u64..100_000, n in 1usize..4) {
        let (app, _) = synthesize("prop.codec", n, seed);
        let text = sierra::android_model::render_app(&app);
        let reparsed = sierra::android_model::parse_app(&app.name, &text)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{text}")))?;
        prop_assert!(reparsed.program.validate().is_ok());
        let cfg = SierraConfig { compare_without_as: false, ..Default::default() };
        let r1 = Sierra::with_config(cfg).analyze_app(app);
        let r2 = Sierra::with_config(cfg).analyze_app(reparsed);
        let key = |r: &sierra::sierra_core::SierraResult| {
            let p = &r.harness.app.program;
            let mut v: Vec<(String, String)> = r.races.iter().map(|x| {
                let f = p.field(x.field);
                (p.class_name(f.class).to_owned(), p.name(f.name).to_owned())
            }).collect();
            v.sort();
            v.dedup();
            v
        };
        prop_assert_eq!(key(&r1), key(&r2));
    }
}
