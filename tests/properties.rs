//! Randomized integration tests: pipeline invariants over randomly
//! synthesized apps, drawn from fixed-seed streams so every run checks
//! the identical set of apps.

use sierra::corpus::twenty::synthesize;
use sierra::eventracer::{detect, EventRacerConfig};
use sierra::pointer::SelectorKind;
use sierra::sierra_core::{Sierra, SierraConfig};
use sierra_prng::SplitMix64;

/// Any synthesized app passes IR validation and the full pipeline runs
/// to completion with consistent counters.
#[test]
fn pipeline_invariants_hold_on_random_apps() {
    let mut rng = SplitMix64::new(0x11A171);
    for _ in 0..16 {
        let seed = rng.next_u64() % 1_000_000;
        let n = 1 + rng.usize(5);
        let (app, truth) = synthesize("prop.app", n, seed);
        assert!(app.program.validate().is_ok());
        let result = Sierra::new().analyze_app(app);
        assert_eq!(result.harness_count, n);
        assert!(result.hb_edges <= result.hb_max);
        assert!(result.racy_pairs_with_as <= result.racy_pairs_without_as);
        assert!(result.races.len() <= result.racy_pairs_with_as);
        // Static analysis never misses a planted true race.
        let p = &result.harness.app.program;
        let groups: Vec<(String, String)> = result
            .races
            .iter()
            .map(|r| {
                let f = p.field(r.field);
                (p.class_name(f.class).to_owned(), p.name(f.name).to_owned())
            })
            .collect();
        let eval = truth.evaluate(groups.iter().map(|(c, f)| (c.as_str(), f.as_str())));
        assert_eq!(
            eval.missed, 0,
            "seed {seed}: missed planted races: {groups:?}"
        );
    }
}

/// The SHBG order is a strict partial order on every random app:
/// irreflexive and antisymmetric (transitivity is rule 7 by
/// construction).
#[test]
fn shbg_is_a_strict_partial_order() {
    let mut rng = SplitMix64::new(0x5B6C0);
    for _ in 0..16 {
        let seed = rng.next_u64() % 1_000_000;
        let n = 1 + rng.usize(3);
        let (app, _) = synthesize("prop.hb", n, seed);
        let result = Sierra::with_config(
            SierraConfig::builder()
                .compare_without_as(false)
                .skip_refutation()
                .build(),
        )
        .analyze_app(app);
        let actions: Vec<_> = result.analysis.actions.ids().collect();
        for &a in &actions {
            assert!(!result.shbg.ordered(a, a), "irreflexive (seed {seed})");
            for &b in &actions {
                if result.shbg.ordered(a, b) {
                    assert!(
                        !result.shbg.ordered(b, a),
                        "antisymmetric: {a} {b} (seed {seed})"
                    );
                }
            }
        }
    }
}

/// Every reported race is an unordered pair of distinct actions with at
/// least one write and overlapping locations.
#[test]
fn reported_races_are_well_formed() {
    let mut rng = SplitMix64::new(0x9ACE5);
    for _ in 0..16 {
        let seed = rng.next_u64() % 1_000_000;
        let (app, _) = synthesize("prop.races", 3, seed);
        let result = Sierra::new().analyze_app(app);
        for race in &result.races {
            assert_ne!(race.a.action, race.b.action);
            assert!(race.a.is_write || race.b.is_write);
            assert!(race.a.overlaps(&race.b));
            assert!(result.shbg.unordered(race.a.action, race.b.action));
            assert_eq!(race.a.field, race.b.field);
        }
    }
}

/// The dynamic detector is deterministic per seed.
#[test]
fn dynamic_detection_is_seed_deterministic() {
    let mut rng = SplitMix64::new(0xD15C0);
    for _ in 0..16 {
        let seed = rng.next_u64() % 100_000;
        let (app, _) = synthesize("prop.dyn", 2, seed);
        let cfg = EventRacerConfig {
            seed,
            ..Default::default()
        };
        let a = detect(&app, &cfg);
        let b = detect(&app, &cfg);
        assert_eq!(a.race_groups(), b.race_groups(), "seed {seed}");
    }
}

/// Coarser context abstractions only ever report *more* racy pairs
/// than action-sensitivity (the §3.3 precision ordering), and every
/// abstraction terminates.
#[test]
fn context_abstraction_precision_ordering() {
    let mut rng = SplitMix64::new(0xC03757);
    for _ in 0..8 {
        let seed = rng.next_u64() % 100_000;
        let (app, _) = synthesize("prop.ctx", 2, seed);
        let count = |sel: SelectorKind| {
            let cfg = SierraConfig::builder()
                .selector(sel)
                .compare_without_as(false)
                .skip_refutation()
                .build();
            Sierra::with_config(cfg)
                .analyze_app(app.clone())
                .racy_pairs_with_as
        };
        let insensitive = count(SelectorKind::Insensitive);
        let action = count(SelectorKind::ActionSensitive(1));
        assert!(
            action <= insensitive,
            "seed {seed}: AS ({action}) must be at least as precise as insensitive ({insensitive})"
        );
    }
}

/// Disassembling and reassembling any synthesized corpus app preserves
/// the detector's verdicts (the text format is a faithful codec).
#[test]
fn text_round_trip_preserves_verdicts() {
    let mut rng = SplitMix64::new(0xC0DEC);
    for _ in 0..8 {
        let seed = rng.next_u64() % 100_000;
        let n = 1 + rng.usize(3);
        let (app, _) = synthesize("prop.codec", n, seed);
        let text = sierra::android_model::render_app(&app);
        let reparsed = sierra::android_model::parse_app(&app.name, &text)
            .unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert!(reparsed.program.validate().is_ok());
        let cfg = SierraConfig::builder().compare_without_as(false).build();
        let r1 = Sierra::with_config(cfg).analyze_app(app);
        let r2 = Sierra::with_config(cfg).analyze_app(reparsed);
        let key = |r: &sierra::sierra_core::SierraResult| {
            let p = &r.harness.app.program;
            let mut v: Vec<(String, String)> = r
                .races
                .iter()
                .map(|x| {
                    let f = p.field(x.field);
                    (p.class_name(f.class).to_owned(), p.name(f.name).to_owned())
                })
                .collect();
            v.sort();
            v.dedup();
            v
        };
        assert_eq!(key(&r1), key(&r2), "seed {seed}");
    }
}
