//! Summary-store invariants on the edit-pair fixture.
//!
//! The hard invariant of the compositional-summary redesign: an
//! analysis over a warm store is **byte-identical** to a cold one —
//! reuse changes work done, never results. These tests drive the
//! edit-pair fixture (two app versions differing by one method body)
//! through shared stores and assert both the identity and the reuse
//! counters the bench gate relies on.

use corpus::edit_pairs;
use sierra_core::{
    DiskStore, MemoryStore, Report, SessionBuilder, SierraConfig, SierraResult, SummaryStore,
};
use std::sync::Arc;

fn run_with_store(
    app: android_model::AndroidApp,
    config: SierraConfig,
    store: Arc<dyn SummaryStore>,
) -> SierraResult {
    SessionBuilder::new(config)
        .app(app)
        .store(store)
        .build()
        .expect("valid app")
        .finish()
        .expect("pipeline runs")
}

fn stable(result: &SierraResult) -> String {
    Report::from_result(result).render_stable()
}

#[test]
fn warm_rerun_is_byte_identical_and_reuses_everything() {
    let store: Arc<dyn SummaryStore> = Arc::new(MemoryStore::new());
    let cfg = SierraConfig::default();

    let cold = run_with_store(edit_pairs::base_app(), cfg, Arc::clone(&store));
    let warm = run_with_store(edit_pairs::base_app(), cfg, Arc::clone(&store));

    assert_eq!(
        stable(&cold),
        stable(&warm),
        "cold vs. warm must be byte-identical"
    );

    let c = cold.metrics.link;
    let w = warm.metrics.link;
    assert_eq!(c.summaries_reused, 0, "cold run sees an empty store");
    assert!(c.summaries_recomputed > 0);
    assert!(!c.analysis_reused);
    assert!(c.pointer_iterations_run > 0);

    assert_eq!(w.summaries_recomputed, 0, "warm run recomputes nothing");
    assert_eq!(w.summaries_reused, c.summaries_recomputed);
    assert!(
        w.analysis_reused,
        "unchanged digests reuse the whole analysis"
    );
    assert_eq!(w.pointer_iterations_run, 0, "no solver work on a full hit");
    // The reported solver stats still describe the (reused) analysis.
    assert_eq!(
        warm.metrics.pointer.worklist_iterations,
        cold.metrics.pointer.worklist_iterations
    );
}

#[test]
fn one_method_edit_recomputes_only_the_changed_method() {
    let store: Arc<dyn SummaryStore> = Arc::new(MemoryStore::new());
    let cfg = SierraConfig::default();

    let base = run_with_store(edit_pairs::base_app(), cfg, Arc::clone(&store));
    let warm_edited = run_with_store(edit_pairs::edited_app(), cfg, Arc::clone(&store));
    let cold_edited = run_with_store(
        edit_pairs::edited_app(),
        cfg,
        Arc::new(MemoryStore::new()) as Arc<dyn SummaryStore>,
    );

    // Byte-identity: warm-over-base-store == cold, on the edited app.
    assert_eq!(stable(&cold_edited), stable(&warm_edited));

    // Exactly the edited helper method is recomputed.
    let w = warm_edited.metrics.link;
    assert_eq!(w.summaries_recomputed, 1, "one body changed");
    assert_eq!(
        w.summaries_reused,
        base.metrics.link.summaries_recomputed - 1,
        "every other method is served from the store"
    );
    // The edit is a points-to no-op, so the analysis artifact is shared
    // and the solver never runs.
    assert!(w.analysis_reused);
    assert_eq!(w.pointer_iterations_run, 0);

    // The edit still changes results: the new write races with the
    // onResume read of `extra`.
    assert!(
        warm_edited.races.len() > base.races.len(),
        "edited version must report the extra race ({} vs {})",
        warm_edited.races.len(),
        base.races.len()
    );
}

#[test]
fn config_change_invalidates_the_whole_store() {
    let store: Arc<dyn SummaryStore> = Arc::new(MemoryStore::new());
    let cfg = SierraConfig::default();
    let changed = SierraConfig::builder().no_cycle_collapse(true).build();

    let first = run_with_store(edit_pairs::base_app(), cfg, Arc::clone(&store));
    let second = run_with_store(edit_pairs::base_app(), changed, Arc::clone(&store));

    let s = second.metrics.link;
    assert_eq!(
        s.summaries_reused, 0,
        "config fingerprint keys every summary"
    );
    assert_eq!(
        s.summaries_recomputed,
        first.metrics.link.summaries_recomputed
    );
    assert!(!s.analysis_reused);
    assert!(s.pointer_iterations_run > 0);
}

#[test]
fn refute_before_prefilter_on_a_warm_session_reuses_summaries() {
    // Regression: stage getters must consume the linked summaries no
    // matter which getter is called first — `refute()` used to force a
    // from-scratch `PrefilterOutcome` when called before `prefilter()`.
    let store: Arc<dyn SummaryStore> = Arc::new(MemoryStore::new());
    let cfg = SierraConfig::default();
    let cold = run_with_store(edit_pairs::base_app(), cfg, Arc::clone(&store));

    let mut session = SessionBuilder::new(cfg)
        .app(edit_pairs::base_app())
        .store(Arc::clone(&store))
        .build()
        .expect("valid app");
    // Out-of-order drive: refutation first.
    let n_races = session.refute().expect("refute runs").len();
    assert_eq!(n_races, cold.races.len());
    let outcome = session.prefilter().expect("prefilter cached");
    assert_eq!(
        outcome.kept.len() + outcome.pruned.len(),
        cold.racy_pairs_with_as
    );
    let link = session.metrics().link;
    assert!(link.analysis_reused);
    assert_eq!(link.summaries_recomputed, 0);
    assert!(link.summaries_reused > 0);
    assert_eq!(
        session.metrics().prefilter.pruned_total(),
        cold.metrics.prefilter.pruned_total()
    );
}

#[test]
fn disk_store_round_trips_across_processes() {
    let dir = std::env::temp_dir().join(format!("sierra-summary-reuse-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = SierraConfig::default();

    // First "process": cold run over the disk store.
    let cold = {
        let store: Arc<dyn SummaryStore> = Arc::new(DiskStore::new(&dir).expect("cache dir"));
        run_with_store(edit_pairs::base_app(), cfg, store)
    };
    // Second "process": fresh DiskStore instance over the same directory
    // (empty in-memory artifact map). Summaries reload from their files
    // and the whole analysis rehydrates from its persisted blob, so the
    // solver never runs.
    let warm = {
        let store: Arc<dyn SummaryStore> = Arc::new(DiskStore::new(&dir).expect("cache dir"));
        run_with_store(edit_pairs::base_app(), cfg, store)
    };
    assert_eq!(stable(&cold), stable(&warm));
    let w = warm.metrics.link;
    assert_eq!(w.summaries_recomputed, 0, "summaries persisted to disk");
    assert_eq!(w.summaries_reused, cold.metrics.link.summaries_recomputed);
    assert!(w.analysis_reused, "analysis blob persisted to disk");
    assert_eq!(w.pointer_iterations_run, 0, "no solver work cross-process");
    assert_eq!(w.corrupt_misses, 0);

    // The ablation flag restores the old per-process behavior.
    let ablated = {
        let store: Arc<dyn SummaryStore> = Arc::new(DiskStore::new(&dir).expect("cache dir"));
        let cfg = SierraConfig::builder().no_artifact_cache(true).build();
        run_with_store(edit_pairs::base_app(), cfg, store)
    };
    assert!(
        !ablated.metrics.link.analysis_reused,
        "--no-artifact-cache must not read blobs"
    );
    assert!(ablated.metrics.link.pointer_iterations_run > 0);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Entry point for [`true_child_processes_reuse_the_artifact_cache`]:
/// runs one full session in *this* process when the spawn env vars are
/// set, and is an immediate no-op during a normal test-suite run.
#[test]
fn spawned_child_runs_one_session() {
    let Ok(role) = std::env::var("SIERRA_SPAWN_ROLE") else {
        return;
    };
    let dir = std::path::PathBuf::from(std::env::var("SIERRA_SPAWN_DIR").expect("spawn dir"));
    let store: Arc<dyn SummaryStore> =
        Arc::new(DiskStore::new(dir.join("cache")).expect("cache dir"));
    let app = match role.as_str() {
        "cold" => edit_pairs::base_app(),
        "warm" => edit_pairs::edited_app(),
        other => panic!("unknown spawn role {other:?}"),
    };
    let result = run_with_store(app, SierraConfig::default(), store);
    let l = result.metrics.link;
    std::fs::write(dir.join(format!("{role}.report")), stable(&result)).expect("write report");
    std::fs::write(
        dir.join(format!("{role}.metrics")),
        format!(
            "analysis_reused={}\npointer_iterations_run={}\nsummaries_reused={}\nsummaries_recomputed={}\n",
            l.analysis_reused, l.pointer_iterations_run, l.summaries_reused, l.summaries_recomputed,
        ),
    )
    .expect("write metrics");
}

#[test]
fn true_child_processes_reuse_the_artifact_cache() {
    let dir = std::env::temp_dir().join(format!("sierra-spawn-reuse-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("spawn dir");

    // Two genuinely separate OS processes against one cache dir: a cold
    // base-version run, then a warm edited-version run (the edit is a
    // points-to no-op, so the digest vector — and the artifact key — is
    // unchanged).
    let exe = std::env::current_exe().expect("test binary path");
    for role in ["cold", "warm"] {
        let status = std::process::Command::new(&exe)
            .args(["spawned_child_runs_one_session", "--exact"])
            .env("SIERRA_SPAWN_ROLE", role)
            .env("SIERRA_SPAWN_DIR", &dir)
            .status()
            .expect("spawn child test process");
        assert!(status.success(), "{role} child process failed");
    }

    let metrics = std::fs::read_to_string(dir.join("warm.metrics")).expect("warm metrics");
    let field = |name: &str| -> String {
        metrics
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{name}=")))
            .unwrap_or_else(|| panic!("missing {name} in {metrics:?}"))
            .to_string()
    };
    assert_eq!(
        field("analysis_reused"),
        "true",
        "warm process hit the blob"
    );
    assert_eq!(field("pointer_iterations_run"), "0");
    assert!(field("summaries_reused").parse::<usize>().expect("count") >= 1);
    assert_eq!(field("summaries_recomputed"), "1", "only the edited body");

    // The cross-process warm report is byte-identical to a plain
    // in-memory run of the same app version.
    let in_memory = run_with_store(
        edit_pairs::edited_app(),
        SierraConfig::default(),
        Arc::new(MemoryStore::new()) as Arc<dyn SummaryStore>,
    );
    let warm_report = std::fs::read_to_string(dir.join("warm.report")).expect("warm report");
    assert_eq!(warm_report, stable(&in_memory));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shared_store_computes_framework_summaries_once_corpus_wide() {
    let shared: Arc<dyn SummaryStore> = Arc::new(MemoryStore::new());
    let cfg = SierraConfig::default();
    let run_shared = |app: android_model::AndroidApp| {
        SessionBuilder::new(cfg)
            .app(app)
            .store(Arc::new(MemoryStore::new()) as Arc<dyn SummaryStore>)
            .shared_store(Arc::clone(&shared))
            .build()
            .expect("valid app")
            .finish()
            .expect("pipeline runs")
    };

    // First app: nothing shared yet; its framework summaries are
    // promoted into the shared layer as they are computed.
    let first = run_shared(edit_pairs::base_app());
    assert_eq!(first.metrics.link.summaries_shared, 0, "cold shared layer");

    // Second, *different* app with its own cold per-app store: every
    // framework-origin method with a body is served from the shared
    // layer — i.e. the framework slice is computed once corpus-wide.
    let (app2, _) = corpus::figures::intra_component();
    let framework_methods = app2
        .program
        .methods()
        .iter()
        .filter(|m| m.has_body() && app2.program.class(m.class).origin == apir::Origin::Framework)
        .count();
    assert!(framework_methods >= 1, "fixture must exercise the layer");
    let second = run_shared(app2);
    assert_eq!(
        second.metrics.link.summaries_shared, framework_methods,
        "all framework summaries must come from the shared layer"
    );
    assert!(
        second.metrics.link.summaries_recomputed
            < framework_methods + second.metrics.link.summaries_shared,
        "shared hits must not be recomputed"
    );

    // Sharing changes work done, never results.
    let (app2_again, _) = corpus::figures::intra_component();
    let unshared = run_with_store(
        app2_again,
        cfg,
        Arc::new(MemoryStore::new()) as Arc<dyn SummaryStore>,
    );
    assert_eq!(stable(&second), stable(&unshared));
}

#[test]
fn figure_apps_are_warm_stable_too() {
    // The invariant holds beyond the purpose-built fixture.
    for (app_fn, name) in [
        (corpus::figures::intra_component as fn() -> _, "fig1"),
        (corpus::figures::inter_component as fn() -> _, "fig2"),
        (corpus::figures::open_sudoku_guard as fn() -> _, "fig8"),
    ] {
        let store: Arc<dyn SummaryStore> = Arc::new(MemoryStore::new());
        let cfg = SierraConfig::default();
        let (app, _) = app_fn();
        let cold = run_with_store(app, cfg, Arc::clone(&store));
        let (app, _) = app_fn();
        let warm = run_with_store(app, cfg, Arc::clone(&store));
        assert_eq!(
            stable(&cold),
            stable(&warm),
            "{name}: warm run must not drift"
        );
        assert!(warm.metrics.link.analysis_reused, "{name}");
        assert_eq!(warm.metrics.link.pointer_iterations_run, 0, "{name}");
    }
}
