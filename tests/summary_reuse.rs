//! Summary-store invariants on the edit-pair fixture.
//!
//! The hard invariant of the compositional-summary redesign: an
//! analysis over a warm store is **byte-identical** to a cold one —
//! reuse changes work done, never results. These tests drive the
//! edit-pair fixture (two app versions differing by one method body)
//! through shared stores and assert both the identity and the reuse
//! counters the bench gate relies on.

use corpus::edit_pairs;
use sierra_core::{
    DiskStore, MemoryStore, Report, SessionBuilder, SierraConfig, SierraResult, SummaryStore,
};
use std::sync::Arc;

fn run_with_store(
    app: android_model::AndroidApp,
    config: SierraConfig,
    store: Arc<dyn SummaryStore>,
) -> SierraResult {
    SessionBuilder::new(config)
        .app(app)
        .store(store)
        .build()
        .expect("valid app")
        .finish()
        .expect("pipeline runs")
}

fn stable(result: &SierraResult) -> String {
    Report::from_result(result).render_stable()
}

#[test]
fn warm_rerun_is_byte_identical_and_reuses_everything() {
    let store: Arc<dyn SummaryStore> = Arc::new(MemoryStore::new());
    let cfg = SierraConfig::default();

    let cold = run_with_store(edit_pairs::base_app(), cfg, Arc::clone(&store));
    let warm = run_with_store(edit_pairs::base_app(), cfg, Arc::clone(&store));

    assert_eq!(
        stable(&cold),
        stable(&warm),
        "cold vs. warm must be byte-identical"
    );

    let c = cold.metrics.link;
    let w = warm.metrics.link;
    assert_eq!(c.summaries_reused, 0, "cold run sees an empty store");
    assert!(c.summaries_recomputed > 0);
    assert!(!c.analysis_reused);
    assert!(c.pointer_iterations_run > 0);

    assert_eq!(w.summaries_recomputed, 0, "warm run recomputes nothing");
    assert_eq!(w.summaries_reused, c.summaries_recomputed);
    assert!(
        w.analysis_reused,
        "unchanged digests reuse the whole analysis"
    );
    assert_eq!(w.pointer_iterations_run, 0, "no solver work on a full hit");
    // The reported solver stats still describe the (reused) analysis.
    assert_eq!(
        warm.metrics.pointer.worklist_iterations,
        cold.metrics.pointer.worklist_iterations
    );
}

#[test]
fn one_method_edit_recomputes_only_the_changed_method() {
    let store: Arc<dyn SummaryStore> = Arc::new(MemoryStore::new());
    let cfg = SierraConfig::default();

    let base = run_with_store(edit_pairs::base_app(), cfg, Arc::clone(&store));
    let warm_edited = run_with_store(edit_pairs::edited_app(), cfg, Arc::clone(&store));
    let cold_edited = run_with_store(
        edit_pairs::edited_app(),
        cfg,
        Arc::new(MemoryStore::new()) as Arc<dyn SummaryStore>,
    );

    // Byte-identity: warm-over-base-store == cold, on the edited app.
    assert_eq!(stable(&cold_edited), stable(&warm_edited));

    // Exactly the edited helper method is recomputed.
    let w = warm_edited.metrics.link;
    assert_eq!(w.summaries_recomputed, 1, "one body changed");
    assert_eq!(
        w.summaries_reused,
        base.metrics.link.summaries_recomputed - 1,
        "every other method is served from the store"
    );
    // The edit is a points-to no-op, so the analysis artifact is shared
    // and the solver never runs.
    assert!(w.analysis_reused);
    assert_eq!(w.pointer_iterations_run, 0);

    // The edit still changes results: the new write races with the
    // onResume read of `extra`.
    assert!(
        warm_edited.races.len() > base.races.len(),
        "edited version must report the extra race ({} vs {})",
        warm_edited.races.len(),
        base.races.len()
    );
}

#[test]
fn config_change_invalidates_the_whole_store() {
    let store: Arc<dyn SummaryStore> = Arc::new(MemoryStore::new());
    let cfg = SierraConfig::default();
    let changed = SierraConfig::builder().no_cycle_collapse(true).build();

    let first = run_with_store(edit_pairs::base_app(), cfg, Arc::clone(&store));
    let second = run_with_store(edit_pairs::base_app(), changed, Arc::clone(&store));

    let s = second.metrics.link;
    assert_eq!(
        s.summaries_reused, 0,
        "config fingerprint keys every summary"
    );
    assert_eq!(
        s.summaries_recomputed,
        first.metrics.link.summaries_recomputed
    );
    assert!(!s.analysis_reused);
    assert!(s.pointer_iterations_run > 0);
}

#[test]
fn refute_before_prefilter_on_a_warm_session_reuses_summaries() {
    // Regression: stage getters must consume the linked summaries no
    // matter which getter is called first — `refute()` used to force a
    // from-scratch `PrefilterOutcome` when called before `prefilter()`.
    let store: Arc<dyn SummaryStore> = Arc::new(MemoryStore::new());
    let cfg = SierraConfig::default();
    let cold = run_with_store(edit_pairs::base_app(), cfg, Arc::clone(&store));

    let mut session = SessionBuilder::new(cfg)
        .app(edit_pairs::base_app())
        .store(Arc::clone(&store))
        .build()
        .expect("valid app");
    // Out-of-order drive: refutation first.
    let n_races = session.refute().expect("refute runs").len();
    assert_eq!(n_races, cold.races.len());
    let outcome = session.prefilter().expect("prefilter cached");
    assert_eq!(
        outcome.kept.len() + outcome.pruned.len(),
        cold.racy_pairs_with_as
    );
    let link = session.metrics().link;
    assert!(link.analysis_reused);
    assert_eq!(link.summaries_recomputed, 0);
    assert!(link.summaries_reused > 0);
    assert_eq!(
        session.metrics().prefilter.pruned_total(),
        cold.metrics.prefilter.pruned_total()
    );
}

#[test]
fn disk_store_round_trips_across_processes() {
    let dir = std::env::temp_dir().join(format!("sierra-summary-reuse-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = SierraConfig::default();

    // First "process": cold run over the disk store.
    let cold = {
        let store: Arc<dyn SummaryStore> = Arc::new(DiskStore::new(&dir).expect("cache dir"));
        run_with_store(edit_pairs::base_app(), cfg, store)
    };
    // Second "process": fresh DiskStore instance over the same directory.
    // The analysis artifact is memory-only, so summaries reload from disk
    // but the solver re-runs.
    let warm = {
        let store: Arc<dyn SummaryStore> = Arc::new(DiskStore::new(&dir).expect("cache dir"));
        run_with_store(edit_pairs::base_app(), cfg, store)
    };
    assert_eq!(stable(&cold), stable(&warm));
    let w = warm.metrics.link;
    assert_eq!(w.summaries_recomputed, 0, "summaries persisted to disk");
    assert_eq!(w.summaries_reused, cold.metrics.link.summaries_recomputed);
    assert!(!w.analysis_reused, "analysis artifacts are per-process");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn figure_apps_are_warm_stable_too() {
    // The invariant holds beyond the purpose-built fixture.
    for (app_fn, name) in [
        (corpus::figures::intra_component as fn() -> _, "fig1"),
        (corpus::figures::inter_component as fn() -> _, "fig2"),
        (corpus::figures::open_sudoku_guard as fn() -> _, "fig8"),
    ] {
        let store: Arc<dyn SummaryStore> = Arc::new(MemoryStore::new());
        let cfg = SierraConfig::default();
        let (app, _) = app_fn();
        let cold = run_with_store(app, cfg, Arc::clone(&store));
        let (app, _) = app_fn();
        let warm = run_with_store(app, cfg, Arc::clone(&store));
        assert_eq!(
            stable(&cold),
            stable(&warm),
            "{name}: warm run must not drift"
        );
        assert!(warm.metrics.link.analysis_reused, "{name}");
        assert_eq!(warm.metrics.link.pointer_iterations_run, 0, "{name}");
    }
}
