//! Equivalence regression for the pointer-solver performance overhaul.
//!
//! Online cycle collapse and the topology-aware worklist are pure
//! optimizations: they may change how much work the solver does, never
//! what it computes. The pipeline is run across the 20-app dataset, the
//! figure apps, and a cycle-bearing fixture under every ablation —
//! collapse on/off, topo-lrf vs fifo worklist — and the racy-pair
//! counts, candidate pairs, pruned pairs, and final reports must match.
//! The overlapped comparison pass must likewise leave the rendered race
//! reports byte-identical at any refutation parallelism.

use corpus::twenty;
use pointer::{Access, WorklistPolicy};
use sierra_core::{Sierra, SierraConfig, SierraResult};

fn pair_key(a: &Access, b: &Access) -> String {
    format!("{:?}@{:?} vs {:?}@{:?}", a.addr, a.action, b.addr, b.action)
}

fn race_keys(r: &SierraResult) -> Vec<String> {
    r.races.iter().map(|x| pair_key(&x.a, &x.b)).collect()
}

fn pruned_keys(r: &SierraResult) -> Vec<String> {
    r.pruned.iter().map(|x| pair_key(&x.a, &x.b)).collect()
}

/// The ranked race-report lines of the rendered result (the lines a user
/// reads), excluding the timing/counter preamble, which legitimately
/// varies run to run.
fn report_lines(r: &SierraResult) -> Vec<String> {
    format!("{r}")
        .lines()
        .filter(|l| l.contains("race on"))
        .map(str::to_owned)
        .collect()
}

/// Strips `A<digits>:` action-id prefixes from a report line. Action ids
/// are assigned in op-resolution order, which a different worklist
/// policy may permute; the action's *identity* (kind, callback, view) is
/// what must be preserved.
fn scrub_action_ids(line: &str) -> String {
    let mut out = String::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'A' && i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit() {
            let mut j = i + 1;
            while j < bytes.len() && bytes[j].is_ascii_digit() {
                j += 1;
            }
            if j < bytes.len() && bytes[j] == b':' {
                i = j + 1; // drop "A<digits>:"
                continue;
            }
        }
        out.push(bytes[i] as char);
        i += 1;
    }
    out
}

/// A one-activity app whose `onCreate` routes a shared allocation
/// through a copy cycle `a → b → c → a` before publishing it to a field
/// read by a background thread: guarantees the corpus sweep exercises
/// online cycle collapse.
fn cycle_app() -> android_model::AndroidApp {
    use android_model::AndroidAppBuilder;
    use apir::{Operand, Type};
    let mut app = AndroidAppBuilder::new("CycleFixture");
    let fw = app.framework().clone();
    let mut cb = app.subclass("Worker", fw.thread);
    let shared = cb.field("shared", Type::Ref(fw.object));
    let worker = cb.build();
    let mut mb = app.method(worker, "run");
    mb.set_param_count(1);
    let this = mb.param(0);
    let v = mb.fresh_local();
    mb.load(v, this, shared);
    mb.ret(None);
    mb.finish();
    let activity = app.activity("Main").build();
    let mut mb = app.method(activity, "onCreate");
    mb.set_param_count(1);
    let x = mb.fresh_local();
    let a = mb.fresh_local();
    let b = mb.fresh_local();
    let c = mb.fresh_local();
    let w = mb.fresh_local();
    mb.new_(x, fw.object);
    mb.move_(a, x);
    mb.move_(b, a);
    mb.move_(c, b);
    mb.move_(a, c); // closes the a → b → c → a inclusion cycle
    mb.new_(w, worker);
    mb.store(w, shared, Operand::Local(a));
    mb.call(
        None,
        apir::InvokeKind::Virtual,
        fw.thread_start,
        Some(w),
        vec![],
    );
    mb.ret(None);
    mb.finish();
    app.finish().unwrap()
}

fn corpus() -> Vec<(String, android_model::AndroidApp)> {
    let mut apps: Vec<(String, android_model::AndroidApp)> = twenty::build_all()
        .into_iter()
        .map(|(spec, app, _)| (spec.name.to_owned(), app))
        .collect();
    for (name, (app, _)) in [
        ("fig1", corpus::figures::intra_component()),
        ("fig2", corpus::figures::inter_component()),
        ("fig8", corpus::figures::open_sudoku_guard()),
    ] {
        apps.push((name.to_owned(), app));
    }
    apps.push(("cycle-fixture".to_owned(), cycle_app()));
    apps
}

fn assert_same_counts(name: &str, a: &SierraResult, b: &SierraResult) {
    assert_eq!(a.racy_pairs_with_as, b.racy_pairs_with_as, "{name}");
    assert_eq!(a.racy_pairs_without_as, b.racy_pairs_without_as, "{name}");
    assert_eq!(a.action_count, b.action_count, "{name}");
    assert_eq!(a.hb_edges, b.hb_edges, "{name}");
    assert_eq!(
        a.metrics.pointer.cg_edges, b.metrics.pointer.cg_edges,
        "{name}"
    );
    assert_eq!(
        a.metrics.pointer.abstract_objects, b.metrics.pointer.abstract_objects,
        "{name}"
    );
}

#[test]
fn cycle_collapse_is_a_pure_optimization_across_the_corpus() {
    let mut collapsed_anywhere = false;
    for (name, app) in corpus() {
        let on = Sierra::new().analyze_app(app.clone());
        let off = Sierra::with_config(SierraConfig::builder().no_cycle_collapse(true).build())
            .analyze_app(app);
        assert_same_counts(&name, &on, &off);
        // Collapse preserves results exactly — down to action numbering.
        assert_eq!(race_keys(&on), race_keys(&off), "{name}");
        assert_eq!(pruned_keys(&on), pruned_keys(&off), "{name}");
        assert_eq!(report_lines(&on), report_lines(&off), "{name}");
        assert_eq!(off.metrics.pointer.collapsed_sccs, 0, "{name}");
        assert!(
            on.metrics.pointer.worklist_iterations <= off.metrics.pointer.worklist_iterations,
            "{name}: collapse must not add worklist iterations ({} > {})",
            on.metrics.pointer.worklist_iterations,
            off.metrics.pointer.worklist_iterations,
        );
        collapsed_anywhere |= on.metrics.pointer.collapsed_sccs > 0;
    }
    assert!(
        collapsed_anywhere,
        "at least one corpus app must exercise cycle collapse"
    );
}

#[test]
fn worklist_policy_does_not_change_results() {
    for (name, app) in corpus() {
        let lrf = Sierra::new().analyze_app(app.clone());
        let fifo = Sierra::with_config(
            SierraConfig::builder()
                .worklist_policy(WorklistPolicy::Fifo)
                .build(),
        )
        .analyze_app(app);
        assert_same_counts(&name, &lrf, &fifo);
        // Policies may mint action ids in a different order; the reports
        // must be identical once ids are scrubbed down to identities.
        let scrub = |r: &SierraResult| {
            let mut v: Vec<String> = report_lines(r)
                .iter()
                .map(|l| scrub_action_ids(l))
                .collect();
            v.sort();
            v
        };
        assert_eq!(scrub(&lrf), scrub(&fifo), "{name}");
        assert_eq!(lrf.pruned.len(), fifo.pruned.len(), "{name}");
    }
}

#[test]
fn overlapped_comparison_yields_byte_identical_reports_at_any_parallelism() {
    for (name, app) in corpus() {
        let mut renderings: Vec<Vec<String>> = Vec::new();
        for (overlap, refute_jobs) in [(true, 1), (true, 4), (false, 1), (false, 4)] {
            let cfg = SierraConfig::builder()
                .overlap_compare(overlap)
                .refute_jobs(refute_jobs)
                .build();
            let result = Sierra::with_config(cfg).analyze_app(app.clone());
            let mut lines = report_lines(&result);
            lines.insert(
                0,
                format!(
                    "{} {} {}",
                    result.racy_pairs_with_as,
                    result.racy_pairs_without_as,
                    result.races.len()
                ),
            );
            renderings.push(lines);
        }
        let first = &renderings[0];
        for (i, r) in renderings.iter().enumerate() {
            assert_eq!(
                r, first,
                "{name}: rendering {i} differs from the serial baseline"
            );
        }
    }
}

#[test]
fn scrubber_strips_only_action_id_prefixes() {
    assert_eq!(
        scrub_action_ids("race on C.f between A80:onClick@view1 (write) and A7:thread (read)"),
        "race on C.f between onClick@view1 (write) and thread (read)"
    );
    assert_eq!(scrub_action_ids("A1 alone stays"), "A1 alone stays");
}
