//! Layout resources: the DroidEL substitute.
//!
//! Real apps declare view hierarchies in XML; the framework inflates them
//! reflectively and `findViewById(int)` retrieves them. Static analysis
//! cannot see through the reflection, so DroidEL resolves layouts into
//! explicit bindings. [`Layout`] is that resolved form: for each activity,
//! the set of views with their ids, classes, XML-registered listeners, and
//! (optionally) GUI ordering constraints.

use crate::callbacks::GuiEventKind;
use apir::{ClassId, MethodId};

/// One view declared in a layout.
#[derive(Debug, Clone)]
pub struct ViewDecl {
    /// The resource id (the constant passed to `findViewById`).
    pub view_id: i32,
    /// The view's class (a subtype of `android.view.View`).
    pub class: ClassId,
    /// Listeners registered in XML (`android:onClick="..."`): the event
    /// kind and the activity method it names.
    pub xml_listeners: Vec<(GuiEventKind, MethodId)>,
    /// If set, this view's events only become available after the named
    /// view's event fires (models dialogs/sub-screens; induces the
    /// `onClick2 ≺ onClick3` edges of Figure 6).
    pub after: Option<i32>,
}

impl ViewDecl {
    /// A plain view with no XML listeners or ordering.
    pub fn new(view_id: i32, class: ClassId) -> Self {
        Self {
            view_id,
            class,
            xml_listeners: Vec::new(),
            after: None,
        }
    }

    /// Adds an XML-registered listener.
    pub fn with_xml_listener(mut self, kind: GuiEventKind, method: MethodId) -> Self {
        self.xml_listeners.push((kind, method));
        self
    }

    /// Constrains this view to be available only after `view_id` fires.
    pub fn with_after(mut self, view_id: i32) -> Self {
        self.after = Some(view_id);
        self
    }
}

/// The resolved layout of one activity.
#[derive(Debug, Clone)]
pub struct Layout {
    /// The activity this layout belongs to.
    pub activity: ClassId,
    /// The declared views.
    pub views: Vec<ViewDecl>,
}

impl Layout {
    /// Creates an empty layout for `activity`.
    pub fn new(activity: ClassId) -> Self {
        Self {
            activity,
            views: Vec::new(),
        }
    }

    /// Adds a view declaration.
    pub fn add_view(&mut self, view: ViewDecl) -> &mut Self {
        self.views.push(view);
        self
    }

    /// Finds a view by resource id.
    pub fn view(&self, view_id: i32) -> Option<&ViewDecl> {
        self.views.iter().find(|v| v.view_id == view_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_lookup_by_id() {
        let act = ClassId(1);
        let viewc = ClassId(2);
        let mut layout = Layout::new(act);
        layout.add_view(ViewDecl::new(100, viewc));
        layout.add_view(
            ViewDecl::new(101, viewc)
                .with_xml_listener(GuiEventKind::Click, MethodId(7))
                .with_after(100),
        );
        assert_eq!(layout.view(100).unwrap().view_id, 100);
        let v = layout.view(101).unwrap();
        assert_eq!(v.after, Some(100));
        assert_eq!(v.xml_listeners, vec![(GuiEventKind::Click, MethodId(7))]);
        assert!(layout.view(999).is_none());
    }
}
