//! The Activity lifecycle state machine (paper Figure 5).

use crate::framework::FrameworkClasses;
use apir::MethodId;

/// An Activity lifecycle callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LifecycleEvent {
    /// `onCreate` — first callback after creation.
    Create,
    /// `onStart` — becoming visible (appears twice in the machine:
    /// pre-dominated by `onCreate` or by `onRestart`).
    Start,
    /// `onRestart` — returning from the stopped state.
    Restart,
    /// `onResume` — becoming interactive (appears twice: pre-dominated by
    /// `onStart` or by `onPause`).
    Resume,
    /// `onPause` — losing focus.
    Pause,
    /// `onStop` — no longer visible.
    Stop,
    /// `onDestroy` — final callback.
    Destroy,
}

impl LifecycleEvent {
    /// All lifecycle events in declaration order.
    pub const ALL: [LifecycleEvent; 7] = [
        LifecycleEvent::Create,
        LifecycleEvent::Start,
        LifecycleEvent::Restart,
        LifecycleEvent::Resume,
        LifecycleEvent::Pause,
        LifecycleEvent::Stop,
        LifecycleEvent::Destroy,
    ];

    /// The callback method name.
    pub fn callback_name(self) -> &'static str {
        match self {
            LifecycleEvent::Create => "onCreate",
            LifecycleEvent::Start => "onStart",
            LifecycleEvent::Restart => "onRestart",
            LifecycleEvent::Resume => "onResume",
            LifecycleEvent::Pause => "onPause",
            LifecycleEvent::Stop => "onStop",
            LifecycleEvent::Destroy => "onDestroy",
        }
    }

    /// The framework's declared (abstract) callback for this event, used as
    /// the statically-named target of harness call sites; virtual dispatch
    /// finds the app's override.
    pub fn declared_callback(self, fw: &FrameworkClasses) -> MethodId {
        match self {
            LifecycleEvent::Create => fw.activity_on_create,
            LifecycleEvent::Start => fw.activity_on_start,
            LifecycleEvent::Restart => fw.activity_on_restart,
            LifecycleEvent::Resume => fw.activity_on_resume,
            LifecycleEvent::Pause => fw.activity_on_pause,
            LifecycleEvent::Stop => fw.activity_on_stop,
            LifecycleEvent::Destroy => fw.activity_on_destroy,
        }
    }

    /// Whether this callback occurs twice in the lifecycle CFG (the cycles
    /// of Figure 5), requiring instance disambiguation by dominators.
    pub fn has_two_instances(self) -> bool {
        matches!(self, LifecycleEvent::Start | LifecycleEvent::Resume)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apir::ProgramBuilder;

    #[test]
    fn callback_names_match_android() {
        assert_eq!(LifecycleEvent::Create.callback_name(), "onCreate");
        assert_eq!(LifecycleEvent::Destroy.callback_name(), "onDestroy");
        assert_eq!(LifecycleEvent::ALL.len(), 7);
    }

    #[test]
    fn only_start_and_resume_cycle() {
        let twice: Vec<_> = LifecycleEvent::ALL
            .iter()
            .filter(|e| e.has_two_instances())
            .collect();
        assert_eq!(twice, [&LifecycleEvent::Start, &LifecycleEvent::Resume]);
    }

    #[test]
    fn declared_callbacks_resolve() {
        let mut pb = ProgramBuilder::new();
        let fw = FrameworkClasses::install(&mut pb);
        let p = pb.finish();
        for e in LifecycleEvent::ALL {
            let m = e.declared_callback(&fw);
            assert_eq!(p.name(p.method(m).name), e.callback_name());
        }
    }
}
