//! The callback registry: which methods the framework calls into.
//!
//! This is the role FlowDroid's predefined callback list plays in the
//! paper's harness generator (§3.2): given a method, decide whether the
//! framework can invoke it, and as what kind of event.

use crate::framework::FrameworkClasses;
use crate::lifecycle::LifecycleEvent;
use apir::{MethodId, Program};

/// A GUI event family (one per `setOn*Listener` API / XML attribute).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GuiEventKind {
    /// `OnClickListener.onClick`.
    Click,
    /// `OnLongClickListener.onLongClick`.
    LongClick,
    /// `OnScrollListener.onScroll`.
    Scroll,
    /// `OnItemClickListener.onItemClick`.
    ItemClick,
    /// `TextWatcher.afterTextChanged`.
    TextChanged,
}

impl GuiEventKind {
    /// All GUI event kinds.
    pub const ALL: [GuiEventKind; 5] = [
        GuiEventKind::Click,
        GuiEventKind::LongClick,
        GuiEventKind::Scroll,
        GuiEventKind::ItemClick,
        GuiEventKind::TextChanged,
    ];

    /// The callback method name for this event.
    pub fn callback_name(self) -> &'static str {
        match self {
            GuiEventKind::Click => "onClick",
            GuiEventKind::LongClick => "onLongClick",
            GuiEventKind::Scroll => "onScroll",
            GuiEventKind::ItemClick => "onItemClick",
            GuiEventKind::TextChanged => "afterTextChanged",
        }
    }

    /// The declared (interface) callback for this event.
    pub fn interface_method(self, fw: &FrameworkClasses) -> MethodId {
        match self {
            GuiEventKind::Click => fw.on_click,
            GuiEventKind::LongClick => fw.on_long_click,
            GuiEventKind::Scroll => fw.on_scroll,
            GuiEventKind::ItemClick => fw.on_item_click,
            GuiEventKind::TextChanged => fw.after_text_changed,
        }
    }
}

/// A system event family (components other than activities).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemEventKind {
    /// `BroadcastReceiver.onReceive`.
    Receive,
    /// `ServiceConnection.onServiceConnected`.
    ServiceConnected,
    /// `ServiceConnection.onServiceDisconnected`.
    ServiceDisconnected,
    /// `Service.onStartCommand`.
    ServiceStartCommand,
    /// `LocationListener.onLocationChanged`.
    LocationChanged,
    /// `MediaPlayer$OnCompletionListener.onCompletion`.
    MediaCompletion,
}

/// A task event family (threads, messages, async tasks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskEventKind {
    /// `Runnable.run` / `Thread.run`.
    Run,
    /// `AsyncTask.onPreExecute`.
    PreExecute,
    /// `AsyncTask.doInBackground`.
    DoInBackground,
    /// `AsyncTask.onPostExecute`.
    PostExecute,
    /// `Handler.handleMessage`.
    HandleMessage,
}

/// The classification of a framework-invoked callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CallbackKind {
    /// An Activity lifecycle callback.
    Lifecycle(LifecycleEvent),
    /// A GUI listener callback.
    Gui(GuiEventKind),
    /// A system/component callback.
    System(SystemEventKind),
    /// A task body callback.
    Task(TaskEventKind),
}

/// Classifies `method` as a framework-invocable callback, if it is one.
///
/// A method is a callback when its *name* matches a registry entry and its
/// declaring class is a subtype of the entry's base class — the same
/// (name, hierarchy) matching FlowDroid's list uses.
pub fn classify_callback(
    program: &Program,
    fw: &FrameworkClasses,
    method: MethodId,
) -> Option<CallbackKind> {
    let m = program.method(method);
    let name = program.name(m.name);
    let class = m.class;
    let sub = |base| program.is_subtype(class, base);
    let kind = match name {
        "onCreate" if sub(fw.activity) => CallbackKind::Lifecycle(LifecycleEvent::Create),
        "onStart" if sub(fw.activity) => CallbackKind::Lifecycle(LifecycleEvent::Start),
        "onRestart" if sub(fw.activity) => CallbackKind::Lifecycle(LifecycleEvent::Restart),
        "onResume" if sub(fw.activity) => CallbackKind::Lifecycle(LifecycleEvent::Resume),
        "onPause" if sub(fw.activity) => CallbackKind::Lifecycle(LifecycleEvent::Pause),
        "onStop" if sub(fw.activity) => CallbackKind::Lifecycle(LifecycleEvent::Stop),
        "onDestroy" if sub(fw.activity) => CallbackKind::Lifecycle(LifecycleEvent::Destroy),
        "onClick" if sub(fw.on_click_listener) => CallbackKind::Gui(GuiEventKind::Click),
        "onLongClick" if sub(fw.on_long_click_listener) => {
            CallbackKind::Gui(GuiEventKind::LongClick)
        }
        "onScroll" if sub(fw.on_scroll_listener) => CallbackKind::Gui(GuiEventKind::Scroll),
        "onItemClick" if sub(fw.on_item_click_listener) => {
            CallbackKind::Gui(GuiEventKind::ItemClick)
        }
        "onReceive" if sub(fw.broadcast_receiver) => CallbackKind::System(SystemEventKind::Receive),
        "onServiceConnected" if sub(fw.service_connection) => {
            CallbackKind::System(SystemEventKind::ServiceConnected)
        }
        "onServiceDisconnected" if sub(fw.service_connection) => {
            CallbackKind::System(SystemEventKind::ServiceDisconnected)
        }
        "onStartCommand" if sub(fw.service) => {
            CallbackKind::System(SystemEventKind::ServiceStartCommand)
        }
        "onLocationChanged" if sub(fw.location_listener) => {
            CallbackKind::System(SystemEventKind::LocationChanged)
        }
        "onCompletion" if sub(fw.on_completion_listener) => {
            CallbackKind::System(SystemEventKind::MediaCompletion)
        }
        "afterTextChanged" if sub(fw.text_watcher) => CallbackKind::Gui(GuiEventKind::TextChanged),
        "run" if sub(fw.runnable) || sub(fw.thread) || sub(fw.timer_task) => {
            CallbackKind::Task(TaskEventKind::Run)
        }
        "onPreExecute" if sub(fw.async_task) => CallbackKind::Task(TaskEventKind::PreExecute),
        "doInBackground" if sub(fw.async_task) => CallbackKind::Task(TaskEventKind::DoInBackground),
        "onPostExecute" if sub(fw.async_task) => CallbackKind::Task(TaskEventKind::PostExecute),
        "handleMessage" if sub(fw.handler) => CallbackKind::Task(TaskEventKind::HandleMessage),
        _ => return None,
    };
    Some(kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apir::{Origin, ProgramBuilder};

    fn app_with_overrides() -> (Program, FrameworkClasses, Vec<MethodId>) {
        let mut pb = ProgramBuilder::new();
        let fw = FrameworkClasses::install(&mut pb);
        let mut cb = pb.class("Main", Origin::App);
        cb.set_super(fw.activity);
        cb.add_interface(fw.on_click_listener);
        let main = cb.build();
        let mut methods = Vec::new();
        for name in ["onCreate", "onClick", "helper"] {
            let mut mb = pb.method(main, name);
            mb.set_param_count(1);
            mb.ret(None);
            methods.push(mb.finish());
        }
        let mut cb = pb.class("Task", Origin::App);
        cb.set_super(fw.async_task);
        let task = cb.build();
        let mut mb = pb.method(task, "doInBackground");
        mb.set_param_count(1);
        mb.ret(None);
        methods.push(mb.finish());
        (pb.finish(), fw, methods)
    }

    #[test]
    fn classifies_overridden_callbacks() {
        let (p, fw, ms) = app_with_overrides();
        assert_eq!(
            classify_callback(&p, &fw, ms[0]),
            Some(CallbackKind::Lifecycle(LifecycleEvent::Create))
        );
        assert_eq!(
            classify_callback(&p, &fw, ms[1]),
            Some(CallbackKind::Gui(GuiEventKind::Click))
        );
        assert_eq!(
            classify_callback(&p, &fw, ms[2]),
            None,
            "helper is not a callback"
        );
        assert_eq!(
            classify_callback(&p, &fw, ms[3]),
            Some(CallbackKind::Task(TaskEventKind::DoInBackground))
        );
    }

    #[test]
    fn name_alone_is_not_enough() {
        // `onCreate` on a non-Activity class is not a lifecycle callback.
        let mut pb = ProgramBuilder::new();
        let fw = FrameworkClasses::install(&mut pb);
        let c = pb.class("Plain", Origin::App).build();
        let mut mb = pb.method(c, "onCreate");
        mb.set_param_count(1);
        mb.ret(None);
        let m = mb.finish();
        let p = pb.finish();
        assert_eq!(classify_callback(&p, &fw, m), None);
    }

    #[test]
    fn gui_event_kinds_have_names_and_interfaces() {
        let mut pb = ProgramBuilder::new();
        let fw = FrameworkClasses::install(&mut pb);
        let _ = pb.finish();
        for k in GuiEventKind::ALL {
            assert!(
                k.callback_name().starts_with("on") || k.callback_name().starts_with("after"),
                "{k:?}"
            );
            let _ = k.interface_method(&fw);
        }
        assert_eq!(GuiEventKind::Click.callback_name(), "onClick");
    }
}
