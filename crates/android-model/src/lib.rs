//! # android-model — a model of the Android Framework for static analysis
//!
//! This crate is the substitute for the Android Framework (AF) plus the
//! DroidEL/FlowDroid models the paper's toolchain consumes. It provides:
//!
//! - [`framework`]: an IR-level class library (`Activity`, `Handler`,
//!   `AsyncTask`, `Thread`, views, listeners, …) installed into an
//!   [`apir::ProgramBuilder`]. Concurrency APIs are *opaque* methods
//!   recognized by name; plumbing methods (e.g. `Thread.<init>`,
//!   `ArrayList.add`) have real IR bodies so data flow through them is
//!   visible to the pointer analysis.
//! - [`ops`]: recognition of framework API calls ([`FrameworkOp`]), the
//!   equivalent of hard-coded API lists in WALA-based tools.
//! - [`callbacks`]: the callback registry (FlowDroid's callback list).
//! - [`lifecycle`]: the Activity lifecycle state machine of Figure 5.
//! - [`gui`]: layout resources and XML-registered listeners (DroidEL's
//!   view-inflation model).
//! - [`app`]: [`AndroidApp`] — program + manifest + layouts, the unit every
//!   downstream analysis consumes.
//! - [`actions`]: the reified concurrency [`Action`]s of §4.2 (Table 1) and
//!   the [`ActionRegistry`] that mints them during call-graph construction.

pub mod actions;
pub mod app;
pub mod asm;
pub mod callbacks;
pub mod framework;
pub mod gui;
pub mod lifecycle;
pub mod ops;

pub use actions::{Action, ActionId, ActionKind, ActionRegistry, ThreadKind};
pub use app::{AndroidApp, AndroidAppBuilder, Manifest};
pub use asm::{parse_app, parse_app_with, render_app, AsmError};
pub use callbacks::{CallbackKind, GuiEventKind, SystemEventKind, TaskEventKind};
pub use framework::FrameworkClasses;
pub use gui::{Layout, ViewDecl};
pub use lifecycle::LifecycleEvent;
pub use ops::FrameworkOp;
