//! Recognition of framework API calls.
//!
//! Static analyses never look *inside* opaque framework methods; instead
//! each call to one is classified as a [`FrameworkOp`] and modelled
//! semantically (action creation, listener registration, view inflation).
//! This mirrors how WALA-based tools special-case `android.*` signatures.

use crate::callbacks::GuiEventKind;
use crate::framework::FrameworkClasses;
use apir::MethodId;

/// A semantically-modelled framework API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameworkOp {
    /// `Thread.start()` — forks a background thread action.
    ThreadStart,
    /// `AsyncTask.execute()` — schedules `onPreExecute` (main),
    /// `doInBackground` (background), `onPostExecute` (main).
    AsyncTaskExecute,
    /// `AsyncTask.cancel(mayInterrupt)` — quiesces the task's
    /// `onPostExecute` delivery window.
    AsyncTaskCancel,
    /// `Executor.execute(Runnable)` — runs the runnable on a pool thread.
    ExecutorExecute,
    /// `Handler.post(Runnable)` — posts to the handler's looper.
    HandlerPost,
    /// `Handler.postDelayed(Runnable, delay)` — posts to the handler's looper.
    HandlerPostDelayed,
    /// `Handler.sendMessage(Message)` — posts `handleMessage` to the looper.
    HandlerSendMessage,
    /// `Handler.sendEmptyMessage(what)` — posts `handleMessage`.
    HandlerSendEmptyMessage,
    /// `View.post(Runnable)` — posts to the main looper.
    ViewPost,
    /// `View.postDelayed(Runnable, delay)` — posts to the main looper.
    ViewPostDelayed,
    /// `Activity.runOnUiThread(Runnable)` — posts to the main looper.
    RunOnUiThread,
    /// `Context.registerReceiver(receiver)` — enables `onReceive` actions.
    RegisterReceiver,
    /// `Context.unregisterReceiver(receiver)`.
    UnregisterReceiver,
    /// `Context.startService(intent)` — triggers service lifecycle actions.
    StartService,
    /// `Context.bindService(intent, connection)` — triggers
    /// `onServiceConnected` on the main looper.
    BindService,
    /// A `View.setOn*Listener` registration.
    SetListener(GuiEventKind),
    /// `Activity.findViewById(id)` — resolved through the inflated-view map.
    FindViewById,
    /// `Handler.<init>(...)` — binds the handler to the creating thread.
    HandlerInit,
    /// `Looper.getMainLooper()`.
    GetMainLooper,
    /// `Looper.myLooper()`.
    MyLooper,
    /// `Timer.schedule(TimerTask, delay)` — runs the task on the timer's
    /// background thread.
    TimerSchedule,
    /// `LocationManager.requestLocationUpdates(listener)` — enables
    /// `onLocationChanged` actions on the main looper.
    RequestLocationUpdates,
    /// `LocationManager.removeUpdates(listener)`.
    RemoveUpdates,
    /// `MediaPlayer.setOnCompletionListener(listener)` — enables
    /// `onCompletion` actions on the main looper.
    SetOnCompletionListener,
    /// `ArrayList.setAt(int, Object)` — index-sensitive container store.
    ArrayListSetAt,
    /// `ArrayList.getAt(int)` — index-sensitive container load.
    ArrayListGetAt,
    /// `Class.forName(String)` — reflective class lookup; resolvable when
    /// the name operand is a constant naming an app class.
    ClassForName,
    /// `Class.newInstance()` — reflective instantiation of the class the
    /// receiver token denotes.
    ClassNewInstance,
    /// `Class.invoke(String, Object)` — reflective invocation (the model's
    /// collapsed `Method.invoke`): dispatches the named method on the
    /// receiver argument when the name is constant.
    MethodInvoke,
    /// `Intent.setClass(String)` — binds an intent to its target component
    /// by class name.
    IntentSetClass,
    /// `Context.startActivity(Intent)` — inter-component dispatch: launches
    /// the intent's target activity.
    StartActivity,
    /// `Context.sendBroadcast(Intent)` — inter-component dispatch: delivers
    /// `onReceive` to the intent's target receiver.
    SendBroadcast,
}

impl FrameworkOp {
    /// Classifies a statically-named callee as a framework op.
    ///
    /// `callee` is the declared target of a call statement; apps never
    /// override these APIs, so id equality suffices.
    pub fn classify(fw: &FrameworkClasses, callee: MethodId) -> Option<FrameworkOp> {
        use FrameworkOp::*;
        let op = match callee {
            m if m == fw.thread_start => ThreadStart,
            m if m == fw.async_task_execute => AsyncTaskExecute,
            m if m == fw.async_task_cancel => AsyncTaskCancel,
            m if m == fw.executor_execute => ExecutorExecute,
            m if m == fw.handler_post => HandlerPost,
            m if m == fw.handler_post_delayed => HandlerPostDelayed,
            m if m == fw.handler_send_message => HandlerSendMessage,
            m if m == fw.handler_send_empty_message => HandlerSendEmptyMessage,
            m if m == fw.view_post => ViewPost,
            m if m == fw.view_post_delayed => ViewPostDelayed,
            m if m == fw.run_on_ui_thread => RunOnUiThread,
            m if m == fw.register_receiver => RegisterReceiver,
            m if m == fw.unregister_receiver => UnregisterReceiver,
            m if m == fw.start_service => StartService,
            m if m == fw.bind_service => BindService,
            m if m == fw.set_on_click_listener => SetListener(GuiEventKind::Click),
            m if m == fw.set_on_long_click_listener => SetListener(GuiEventKind::LongClick),
            m if m == fw.set_on_scroll_listener => SetListener(GuiEventKind::Scroll),
            m if m == fw.set_on_item_click_listener => SetListener(GuiEventKind::ItemClick),
            m if m == fw.add_text_changed_listener => SetListener(GuiEventKind::TextChanged),
            m if m == fw.timer_schedule => TimerSchedule,
            m if m == fw.request_location_updates => RequestLocationUpdates,
            m if m == fw.remove_updates => RemoveUpdates,
            m if m == fw.set_on_completion_listener => SetOnCompletionListener,
            m if m == fw.array_list_set_at => ArrayListSetAt,
            m if m == fw.array_list_get_at => ArrayListGetAt,
            m if m == fw.find_view_by_id => FindViewById,
            m if m == fw.handler_init => HandlerInit,
            m if m == fw.get_main_looper => GetMainLooper,
            m if m == fw.my_looper => MyLooper,
            m if m == fw.class_for_name => ClassForName,
            m if m == fw.class_new_instance => ClassNewInstance,
            m if m == fw.method_invoke => MethodInvoke,
            m if m == fw.intent_set_class => IntentSetClass,
            m if m == fw.start_activity => StartActivity,
            m if m == fw.send_broadcast => SendBroadcast,
            _ => return None,
        };
        Some(op)
    }

    /// Whether this op posts a *task action* to some looper/thread (rather
    /// than registering a listener or resolving a view).
    pub fn creates_action(self) -> bool {
        use FrameworkOp::*;
        matches!(
            self,
            ThreadStart
                | AsyncTaskExecute
                | ExecutorExecute
                | HandlerPost
                | HandlerPostDelayed
                | HandlerSendMessage
                | HandlerSendEmptyMessage
                | ViewPost
                | ViewPostDelayed
                | RunOnUiThread
                | RegisterReceiver
                | StartService
                | BindService
                | TimerSchedule
                | RequestLocationUpdates
                | SetOnCompletionListener
                | StartActivity
                | SendBroadcast
        )
    }

    /// Whether this op registers a GUI listener.
    pub fn as_listener_registration(self) -> Option<GuiEventKind> {
        match self {
            FrameworkOp::SetListener(k) => Some(k),
            _ => None,
        }
    }

    /// Whether this op is an *opaque-by-default* edge whose resolution
    /// depends on the active soundness policy: reflection lookups and
    /// inter-component intent dispatch. Under the `ignore` policy these
    /// sites stay silent; `resolve` consults the constant/manifest table
    /// and `havoc` additionally falls back to type-compatible targets.
    pub fn is_policy_gated(self) -> bool {
        use FrameworkOp::*;
        matches!(
            self,
            ClassForName
                | ClassNewInstance
                | MethodInvoke
                | IntentSetClass
                | StartActivity
                | SendBroadcast
        )
    }

    /// Whether this op is a reflective lookup/invocation.
    pub fn is_reflective(self) -> bool {
        use FrameworkOp::*;
        matches!(self, ClassForName | ClassNewInstance | MethodInvoke)
    }

    /// Whether this op is an inter-component intent dispatch.
    pub fn is_intent_dispatch(self) -> bool {
        use FrameworkOp::*;
        matches!(self, IntentSetClass | StartActivity | SendBroadcast)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apir::ProgramBuilder;

    #[test]
    fn classifies_every_op_family() {
        let mut pb = ProgramBuilder::new();
        let fw = FrameworkClasses::install(&mut pb);
        let _p = pb.finish();
        assert_eq!(
            FrameworkOp::classify(&fw, fw.thread_start),
            Some(FrameworkOp::ThreadStart)
        );
        assert_eq!(
            FrameworkOp::classify(&fw, fw.set_on_click_listener),
            Some(FrameworkOp::SetListener(GuiEventKind::Click))
        );
        assert_eq!(
            FrameworkOp::classify(&fw, fw.find_view_by_id),
            Some(FrameworkOp::FindViewById)
        );
        assert_eq!(
            FrameworkOp::classify(&fw, fw.class_for_name),
            Some(FrameworkOp::ClassForName)
        );
        assert_eq!(
            FrameworkOp::classify(&fw, fw.start_activity),
            Some(FrameworkOp::StartActivity)
        );
        // Transparent methods are not ops.
        assert_eq!(FrameworkOp::classify(&fw, fw.thread_init), None);
        assert_eq!(FrameworkOp::classify(&fw, fw.array_list_add), None);
    }

    #[test]
    fn action_creating_ops() {
        assert!(FrameworkOp::ThreadStart.creates_action());
        assert!(FrameworkOp::HandlerSendMessage.creates_action());
        assert!(FrameworkOp::RegisterReceiver.creates_action());
        assert!(!FrameworkOp::FindViewById.creates_action());
        assert!(!FrameworkOp::SetListener(GuiEventKind::Click).creates_action());
        assert!(!FrameworkOp::UnregisterReceiver.creates_action());
        assert!(!FrameworkOp::AsyncTaskCancel.creates_action());
    }

    #[test]
    fn policy_gated_ops() {
        use FrameworkOp::*;
        for op in [
            ClassForName,
            ClassNewInstance,
            MethodInvoke,
            IntentSetClass,
            StartActivity,
            SendBroadcast,
        ] {
            assert!(op.is_policy_gated());
        }
        assert!(!ThreadStart.is_policy_gated());
        assert!(!FindViewById.is_policy_gated());
        assert!(ClassForName.is_reflective());
        assert!(!ClassForName.is_intent_dispatch());
        assert!(StartActivity.is_intent_dispatch());
        assert!(!StartActivity.is_reflective());
        // Intent dispatch creates actions; reflection alone does not.
        assert!(StartActivity.creates_action());
        assert!(SendBroadcast.creates_action());
        assert!(!ClassForName.creates_action());
        assert!(!IntentSetClass.creates_action());
    }

    #[test]
    fn listener_registration_extraction() {
        assert_eq!(
            FrameworkOp::SetListener(GuiEventKind::Scroll).as_listener_registration(),
            Some(GuiEventKind::Scroll)
        );
        assert_eq!(FrameworkOp::ThreadStart.as_listener_registration(), None);
    }
}
