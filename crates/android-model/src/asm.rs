//! A textual assembler for Android apps.
//!
//! The original SIERRA consumes APKs; this reproduction's equivalent input
//! format is a small assembly language over the `apir` IR with the
//! framework pre-installed, so apps are writable as plain text (diffable,
//! generatable, shippable as fixtures) without touching the builder API:
//!
//! ```text
//! class com.ex.Main extends android.app.Activity
//!       implements android.view.View$OnClickListener {
//!   field adapter: ref java.lang.Object
//!   method onCreate(this) {
//!     bb0:
//!       v1 = new java.lang.Object
//!       this.adapter = v1
//!       v2 = call virtual android.app.Activity.findViewById(this, 1)
//!       call virtual android.view.View.setOnClickListener(v2, this)
//!       return
//!   }
//!   method onClick(this, v) {
//!     bb0:
//!       x = this.adapter
//!       return
//!   }
//! }
//! layout com.ex.Main {
//!   view 1: android.widget.TextView
//! }
//! ```
//!
//! Grammar summary (one statement per line, `//` comments):
//!
//! - `field [static] name: int|bool|str|ref <Class>`
//! - `method name(this, p2, …) [static] { … }` — `this` is parameter 0 of
//!   instance methods and is typed as the enclosing class
//! - `bbN:` labels blocks; `bb0` (or the implicit first block) is the entry
//! - `x = const`, `x = y`, `x = new Class`, `x = y.field`, `y.field = op`,
//!   `x = Class::field`, `Class::field = op`; when the receiver's class is
//!   not inferable, the qualified form `y.Class#field` names the declaring
//!   class explicitly (the disassembler always emits it for non-`this`
//!   receivers)
//! - `[x =] call virtual|static|special Class.method(args…)` — the first
//!   argument of instance calls is the receiver
//! - `x = a <op> b` with `+ - * == != < <= && ||`; `x = !y`, `x = -y`
//! - terminators: `return [op]`, `goto bbN`, `if x then bbA else bbB`,
//!   `nondet bbA bbB …`
//!
//! Locals are typed by inference (assignments from `new`, loads, calls and
//! constants), which is what lets unqualified `y.field` resolve. Classes
//! extending `Activity`/`BroadcastReceiver`/`Service` register in the
//! manifest automatically.

use crate::app::{AndroidApp, AndroidAppBuilder};
use crate::callbacks::GuiEventKind;
use crate::gui::{Layout, ViewDecl};
use apir::{
    BinOp, BlockId, ClassId, CmpOp, ConstValue, FieldId, InvokeKind, Local, MethodBuilder,
    MethodId, Operand, Type, UnOp,
};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A parse/resolution error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number (0 for whole-program errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        message: message.into(),
    })
}

// ---- source structure (pass 1) ----

#[derive(Debug)]
struct ClassSrc {
    line: usize,
    name: String,
    super_name: Option<String>,
    interfaces: Vec<String>,
    is_interface: bool,
    fields: Vec<(usize, bool, String, String)>, // (line, is_static, name, type text)
    methods: Vec<MethodSrc>,
}

#[derive(Debug)]
struct MethodSrc {
    line: usize,
    name: String,
    params: Vec<(String, Option<String>)>, // (name, type annotation)
    is_static: bool,
    body: Vec<(usize, String)>,
}

#[derive(Debug)]
struct LayoutSrc {
    line: usize,
    class: String,
    views: Vec<(usize, String)>,
}

/// Assembles an app from source text.
///
/// # Errors
///
/// Returns an [`AsmError`] naming the offending line for syntax errors,
/// unknown names, type-inference failures, or IR validation failures.
pub fn parse_app(app_name: &str, source: &str) -> Result<AndroidApp, AsmError> {
    parse_app_with(app_name, source, None)
}

/// [`parse_app`], optionally interning strings in a shared
/// [`apir::SymbolArena`] so repeated parses (corpus runs, the serve
/// loop) store each distinct name once per process.
///
/// # Errors
///
/// Same as [`parse_app`].
pub fn parse_app_with(
    app_name: &str,
    source: &str,
    arena: Option<std::sync::Arc<apir::SymbolArena>>,
) -> Result<AndroidApp, AsmError> {
    let (classes, layouts) = parse_structure(source)?;
    let mut builder = match arena {
        Some(arena) => AndroidAppBuilder::with_arena(app_name, arena),
        None => AndroidAppBuilder::new(app_name),
    };

    // Declare every class first (supers wired after) so order is free.
    let mut class_ids: HashMap<String, ClassId> = HashMap::new();
    for c in &classes {
        if builder.program_builder().find_class(&c.name).is_some() {
            return err(c.line, format!("duplicate class {}", c.name));
        }
        let id = builder.bare_class(&c.name);
        if c.is_interface {
            builder.program_builder().set_interface_of(id);
        }
        class_ids.insert(c.name.clone(), id);
    }
    let resolve_class = |builder: &mut AndroidAppBuilder, name: &str, line: usize| {
        builder.program_builder().find_class(name).ok_or(AsmError {
            line,
            message: format!("unknown class {name}"),
        })
    };

    // Wire hierarchies, then manifest components, then fields, then
    // reserve all method ids.
    for c in &classes {
        let id = class_ids[&c.name];
        if let Some(sup) = &c.super_name {
            let s = resolve_class(&mut builder, sup, c.line)?;
            builder.program_builder().set_super_of(id, s);
        }
        for iface in &c.interfaces {
            let i = resolve_class(&mut builder, iface, c.line)?;
            builder.program_builder().add_interface_to(id, i);
        }
    }
    for c in &classes {
        builder.register_component(class_ids[&c.name]);
    }
    for c in &classes {
        let id = class_ids[&c.name];
        for (line, is_static, fname, ty_text) in &c.fields {
            let ty = parse_type(&mut builder, ty_text, *line)?;
            builder
                .program_builder()
                .add_field(id, fname, ty, *is_static);
        }
    }
    let mut method_ids: Vec<(ClassId, MethodId, &MethodSrc)> = Vec::new();
    for c in &classes {
        let id = class_ids[&c.name];
        for m in &c.methods {
            let mid = builder
                .program_builder()
                .abstract_method(id, &m.name, m.params.len() as u32);
            method_ids.push((id, mid, m));
        }
    }

    // Assemble bodies.
    for (class, mid, src) in &method_ids {
        assemble_body(&mut builder, *class, *mid, src)?;
    }

    // Layouts last (method references now resolvable).
    for l in &layouts {
        let class = resolve_class(&mut builder, &l.class, l.line)?;
        let mut layout = Layout::new(class);
        for (line, text) in &l.views {
            layout.add_view(parse_view(&mut builder, text, *line)?);
        }
        builder.add_layout(layout);
    }

    builder.finish().map_err(|e| AsmError {
        line: 0,
        message: format!("IR validation failed: {e}"),
    })
}

fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(idx) => &line[..idx],
        None => line,
    }
}

fn parse_structure(source: &str) -> Result<(Vec<ClassSrc>, Vec<LayoutSrc>), AsmError> {
    let lines: Vec<(usize, String)> = source
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, strip_comment(l).trim().to_owned()))
        .filter(|(_, l)| !l.is_empty())
        .collect();
    let mut classes = Vec::new();
    let mut layouts = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        let (ln, line) = (&lines[i].0, lines[i].1.as_str());
        if let Some(rest) = line
            .strip_prefix("class ")
            .or_else(|| line.strip_prefix("interface "))
        {
            let is_interface = line.starts_with("interface ");
            // Headers may continue onto following lines until the `{`.
            let mut header = rest.trim().to_owned();
            while !header.ends_with('{') {
                i += 1;
                let Some((_, cont)) = lines.get(i) else {
                    return err(*ln, "class header missing `{`");
                };
                header.push(' ');
                header.push_str(cont);
            }
            let header = header.trim_end_matches('{').trim();
            let (name, super_name, interfaces) = parse_class_header(header);
            let mut fields = Vec::new();
            let mut methods = Vec::new();
            i += 1;
            while i < lines.len() && lines[i].1 != "}" {
                let (mln, ml) = (lines[i].0, lines[i].1.as_str());
                if let Some(rest) = ml.strip_prefix("field ") {
                    let (fname, ty) = rest.split_once(':').ok_or(AsmError {
                        line: mln,
                        message: "field needs `name: type`".into(),
                    })?;
                    let fname = fname.trim();
                    let (is_static, fname) = match fname.strip_prefix("static ") {
                        Some(f) => (true, f.trim()),
                        None => (false, fname),
                    };
                    fields.push((mln, is_static, fname.to_owned(), ty.trim().to_owned()));
                    i += 1;
                } else if let Some(rest) = ml.strip_prefix("method ") {
                    let sig = rest.trim_end_matches('{').trim();
                    let (is_static, sig) = match sig.strip_suffix("static") {
                        Some(s) => (true, s.trim()),
                        None => (false, sig),
                    };
                    let (mname, params_text) = sig.split_once('(').ok_or(AsmError {
                        line: mln,
                        message: "method needs `name(params)`".into(),
                    })?;
                    let params: Vec<(String, Option<String>)> = params_text
                        .trim_end_matches(')')
                        .split(',')
                        .map(str::trim)
                        .filter(|p| !p.is_empty())
                        .map(|p| match p.split_once(':') {
                            Some((n, t)) => (n.trim().to_owned(), Some(t.trim().to_owned())),
                            None => (p.to_owned(), None),
                        })
                        .collect();
                    let mut body = Vec::new();
                    i += 1;
                    while i < lines.len() && lines[i].1 != "}" {
                        body.push((lines[i].0, lines[i].1.clone()));
                        i += 1;
                    }
                    if i >= lines.len() {
                        return err(mln, "unterminated method body");
                    }
                    i += 1; // consume method "}"
                    methods.push(MethodSrc {
                        line: mln,
                        name: mname.trim().to_owned(),
                        params,
                        is_static,
                        body,
                    });
                } else {
                    return err(mln, format!("unexpected line in class body: {ml:?}"));
                }
            }
            if i >= lines.len() {
                return err(*ln, "unterminated class body");
            }
            i += 1; // consume class "}"
            classes.push(ClassSrc {
                line: *ln,
                name,
                super_name,
                interfaces,
                is_interface,
                fields,
                methods,
            });
        } else if let Some(rest) = line.strip_prefix("layout ") {
            let class = rest.trim_end_matches('{').trim().to_owned();
            let mut views = Vec::new();
            i += 1;
            while i < lines.len() && lines[i].1 != "}" {
                views.push((lines[i].0, lines[i].1.clone()));
                i += 1;
            }
            if i >= lines.len() {
                return err(*ln, "unterminated layout body");
            }
            i += 1;
            layouts.push(LayoutSrc {
                line: *ln,
                class,
                views,
            });
        } else {
            return err(
                *ln,
                format!("expected `class`, `interface`, or `layout`, got {line:?}"),
            );
        }
    }
    Ok((classes, layouts))
}

/// `Name [extends Super] [implements A, B]`.
fn parse_class_header(header: &str) -> (String, Option<String>, Vec<String>) {
    let mut toks = header.split_whitespace();
    let name = toks.next().unwrap_or_default().to_owned();
    let mut sup = None;
    let mut ifaces = Vec::new();
    let mut mode = "";
    for tok in toks {
        match tok {
            "extends" | "implements" => mode = tok,
            t => match mode {
                "extends" => sup = Some(t.trim_end_matches(',').to_owned()),
                "implements" => {
                    for part in t.split(',') {
                        let part = part.trim();
                        if !part.is_empty() {
                            ifaces.push(part.to_owned());
                        }
                    }
                }
                _ => {}
            },
        }
    }
    (name, sup, ifaces)
}

fn parse_type(builder: &mut AndroidAppBuilder, text: &str, line: usize) -> Result<Type, AsmError> {
    match text {
        "int" => Ok(Type::Int),
        "bool" => Ok(Type::Bool),
        "str" => Ok(Type::Str),
        _ => {
            let cname = text.strip_prefix("ref ").unwrap_or(text).trim();
            let c = builder
                .program_builder()
                .find_class(cname)
                .ok_or(AsmError {
                    line,
                    message: format!("unknown type {cname}"),
                })?;
            Ok(Type::Ref(c))
        }
    }
}

/// `view <id>: <Class> [after <id>] [onClick <Class.method>]`.
fn parse_view(
    builder: &mut AndroidAppBuilder,
    text: &str,
    line: usize,
) -> Result<ViewDecl, AsmError> {
    let rest = text.strip_prefix("view ").ok_or(AsmError {
        line,
        message: "expected `view <id>: <class> …`".into(),
    })?;
    let (id, rest) = rest.split_once(':').ok_or(AsmError {
        line,
        message: "view needs `id: class`".into(),
    })?;
    let id: i32 = id.trim().parse().map_err(|_| AsmError {
        line,
        message: "bad view id".into(),
    })?;
    let mut toks = rest.split_whitespace();
    let cname = toks.next().ok_or(AsmError {
        line,
        message: "view needs a class".into(),
    })?;
    let vclass = builder
        .program_builder()
        .find_class(cname)
        .ok_or(AsmError {
            line,
            message: format!("unknown view class {cname}"),
        })?;
    let mut decl = ViewDecl::new(id, vclass);
    while let Some(tok) = toks.next() {
        match tok {
            "after" => {
                let a = toks.next().and_then(|t| t.parse().ok()).ok_or(AsmError {
                    line,
                    message: "`after` needs a view id".into(),
                })?;
                decl = decl.with_after(a);
            }
            "onClick" => {
                let target = toks.next().ok_or(AsmError {
                    line,
                    message: "`onClick` needs Class.method".into(),
                })?;
                let m = resolve_method_name(builder, target, line)?;
                decl = decl.with_xml_listener(GuiEventKind::Click, m);
            }
            other => return err(line, format!("unknown view attribute {other:?}")),
        }
    }
    Ok(decl)
}

/// Resolves `Class.method`, walking up the hierarchy for inherited methods.
fn resolve_method_name(
    builder: &mut AndroidAppBuilder,
    text: &str,
    line: usize,
) -> Result<MethodId, AsmError> {
    let (cname, mname) = text.rsplit_once('.').ok_or(AsmError {
        line,
        message: format!("expected Class.method, got {text:?}"),
    })?;
    let class = builder
        .program_builder()
        .find_class(cname)
        .ok_or(AsmError {
            line,
            message: format!("unknown class {cname}"),
        })?;
    let mut cur = Some(class);
    while let Some(c) = cur {
        if let Some(m) = builder.program_builder().find_method(c, mname) {
            return Ok(m);
        }
        cur = builder.program_builder().super_class_of(c);
    }
    err(line, format!("unknown method {text}"))
}

// ---- body assembly ----

struct Env {
    locals: HashMap<String, Local>,
    /// Inferred reference class per local (for unqualified field access).
    types: HashMap<Local, ClassId>,
    blocks: HashMap<String, BlockId>,
}

impl Env {
    fn local(&mut self, mb: &mut MethodBuilder<'_>, name: &str) -> Local {
        if let Some(&l) = self.locals.get(name) {
            return l;
        }
        let l = mb.fresh_local();
        self.locals.insert(name.to_owned(), l);
        l
    }

    fn existing(&self, name: &str, line: usize) -> Result<Local, AsmError> {
        self.locals.get(name).copied().ok_or(AsmError {
            line,
            message: format!("use of unassigned local {name}"),
        })
    }
}

fn assemble_body(
    builder: &mut AndroidAppBuilder,
    class: ClassId,
    mid: MethodId,
    src: &MethodSrc,
) -> Result<(), AsmError> {
    // Pre-resolve parameter types (annotations + implicit `this`).
    let mut param_types: Vec<Option<ClassId>> = Vec::new();
    for (idx, (pname, ann)) in src.params.iter().enumerate() {
        let t = if let Some(ann) = ann {
            match parse_type(builder, ann, src.line)? {
                Type::Ref(c) => Some(c),
                _ => None,
            }
        } else if idx == 0 && pname == "this" && !src.is_static {
            Some(class)
        } else {
            None
        };
        param_types.push(t);
    }

    let mut mb = builder.program_builder().fill_method(mid);
    mb.set_param_count(src.params.len() as u32);
    if src.is_static {
        mb.set_static();
    }
    let mut env = Env {
        locals: HashMap::new(),
        types: HashMap::new(),
        blocks: HashMap::new(),
    };
    for (idx, (pname, _)) in src.params.iter().enumerate() {
        let l = Local(idx as u32);
        env.locals.insert(pname.clone(), l);
        if let Some(c) = param_types[idx] {
            env.types.insert(l, c);
        }
    }

    // Collect labels so forward branches resolve.
    let mut first_label = true;
    for (_, line) in &src.body {
        if let Some(label) = line.strip_suffix(':') {
            let label = label.trim();
            if env.blocks.contains_key(label) {
                continue;
            }
            let id = if first_label {
                BlockId(0)
            } else {
                mb.new_block()
            };
            first_label = false;
            env.blocks.insert(label.to_owned(), id);
        }
    }

    let mut terminated = false;
    for (ln, line) in &src.body {
        if let Some(label) = line.strip_suffix(':') {
            let id = env.blocks[label.trim()];
            mb.switch_to(id);
            terminated = false;
            continue;
        }
        if terminated {
            return err(*ln, "statement after terminator; start a new block");
        }
        terminated = assemble_stmt(&mut mb, &mut env, class, *ln, line)?;
    }
    mb.finish();
    Ok(())
}

fn parse_operand(env: &Env, text: &str, line: usize) -> Result<Operand, AsmError> {
    let t = text.trim();
    if t == "null" {
        return Ok(Operand::Const(ConstValue::Null));
    }
    if t == "true" {
        return Ok(Operand::Const(ConstValue::Bool(true)));
    }
    if t == "false" {
        return Ok(Operand::Const(ConstValue::Bool(false)));
    }
    if let Ok(v) = t.parse::<i64>() {
        return Ok(Operand::Const(ConstValue::Int(v)));
    }
    if t.starts_with('"') {
        // Strings intern lazily at use; the assembler maps them to Int 0 of
        // kind Str via the interner — but Symbol interning needs the
        // program builder, so string constants are limited to `""` here.
        return err(line, "string constants are not supported in the assembler");
    }
    env.existing(t, line).map(Operand::Local)
}

/// Assembles one statement; returns whether it terminated the block.
fn assemble_stmt(
    mb: &mut MethodBuilder<'_>,
    env: &mut Env,
    _class: ClassId,
    line: usize,
    text: &str,
) -> Result<bool, AsmError> {
    // ---- terminators ----
    if text == "return" {
        mb.ret(None);
        return Ok(true);
    }
    if let Some(rest) = text.strip_prefix("return ") {
        let op = parse_operand(env, rest, line)?;
        mb.ret(Some(op));
        return Ok(true);
    }
    if let Some(rest) = text.strip_prefix("goto ") {
        let b = block_of(env, rest.trim(), line)?;
        mb.goto(b);
        return Ok(true);
    }
    if let Some(rest) = text.strip_prefix("if ") {
        // if x then bbA else bbB
        let (cond, rest) = rest.split_once(" then ").ok_or(AsmError {
            line,
            message: "if needs `then`".into(),
        })?;
        let (then_l, else_l) = rest.split_once(" else ").ok_or(AsmError {
            line,
            message: "if needs `else`".into(),
        })?;
        let cond = parse_operand(env, cond, line)?;
        let t = block_of(env, then_l.trim(), line)?;
        let e = block_of(env, else_l.trim(), line)?;
        mb.if_(cond, t, e);
        return Ok(true);
    }
    if let Some(rest) = text.strip_prefix("nondet ") {
        let targets: Result<Vec<BlockId>, AsmError> = rest
            .split_whitespace()
            .map(|l| block_of(env, l, line))
            .collect();
        mb.nondet(targets?);
        return Ok(true);
    }

    // ---- call without destination ----
    if text.starts_with("call ") {
        assemble_call(mb, env, None, text, line)?;
        return Ok(false);
    }

    // ---- assignments & stores: split on the top-level `=` ----
    let (lhs, rhs) = match split_assign(text) {
        Some(pair) => pair,
        None => return err(line, format!("unrecognized statement {text:?}")),
    };
    let (lhs, rhs) = (lhs.trim(), rhs.trim());

    // Store forms: `y.field = op` / `Class::field = op`.
    if let Some((cname, fname)) = lhs.split_once("::") {
        let field = resolve_static_field(mb, cname.trim(), fname.trim(), line)?;
        let op = parse_operand(env, rhs, line)?;
        mb.static_store(field, op);
        return Ok(false);
    }
    if lhs.contains('.')
        && env
            .locals
            .contains_key(lhs.split('.').next().unwrap_or_default())
    {
        let (base, fspec) = lhs.split_once('.').expect("checked");
        let base_l = env.existing(base, line)?;
        let field = resolve_field_spec(mb, env, base_l, fspec.trim(), line)?;
        let op = parse_operand(env, rhs, line)?;
        mb.store(base_l, field, op);
        return Ok(false);
    }
    if lhs.contains('.') {
        return err(line, format!("unknown store target {lhs:?}"));
    }

    // Destination local assignments.
    if let Some(rest) = rhs.strip_prefix("new ") {
        let cname = rest.trim();
        let c = mb.program().find_class(cname).ok_or(AsmError {
            line,
            message: format!("unknown class {cname}"),
        })?;
        let dst = env.local(mb, lhs);
        mb.new_(dst, c);
        env.types.insert(dst, c);
        return Ok(false);
    }
    if rhs.starts_with("call ") {
        let dst = env.local(mb, lhs);
        let ret_class = assemble_call(mb, env, Some(dst), rhs, line)?;
        if let Some(c) = ret_class {
            env.types.insert(dst, c);
        }
        return Ok(false);
    }
    if let Some(rest) = rhs.strip_prefix('!') {
        let src = parse_operand(env, rest, line)?;
        let dst = env.local(mb, lhs);
        mb.un_op(dst, UnOp::Not, src);
        return Ok(false);
    }
    if let Some(rest) = rhs.strip_prefix("- ") {
        let src = parse_operand(env, rest, line)?;
        let dst = env.local(mb, lhs);
        mb.un_op(dst, UnOp::Neg, src);
        return Ok(false);
    }
    // Binary operators (space-separated: `a == b`).
    for (sym, op) in [
        ("==", BinOp::Cmp(CmpOp::Eq)),
        ("!=", BinOp::Cmp(CmpOp::Ne)),
        ("<=", BinOp::Cmp(CmpOp::Le)),
        ("<", BinOp::Cmp(CmpOp::Lt)),
        ("&&", BinOp::And),
        ("||", BinOp::Or),
        ("+", BinOp::Add),
        ("-", BinOp::Sub),
        ("*", BinOp::Mul),
    ] {
        let pat = format!(" {sym} ");
        if let Some(idx) = rhs.find(&pat) {
            let a = parse_operand(env, &rhs[..idx], line)?;
            let b = parse_operand(env, &rhs[idx + pat.len()..], line)?;
            let dst = env.local(mb, lhs);
            mb.bin_op(dst, op, a, b);
            return Ok(false);
        }
    }
    // Loads: `x = y.field` / `x = Class::field`.
    if let Some((cname, fname)) = rhs.split_once("::") {
        let field = resolve_static_field(mb, cname.trim(), fname.trim(), line)?;
        let dst = env.local(mb, lhs);
        mb.static_load(dst, field);
        note_field_type(mb, env, dst, field);
        return Ok(false);
    }
    if let Some((base, fspec)) = rhs.split_once('.') {
        if env.locals.contains_key(base) {
            let base_l = env.existing(base, line)?;
            let field = resolve_field_spec(mb, env, base_l, fspec.trim(), line)?;
            let dst = env.local(mb, lhs);
            mb.load(dst, base_l, field);
            note_field_type(mb, env, dst, field);
            return Ok(false);
        }
    }
    // Plain copy or constant.
    match parse_operand(env, rhs, line)? {
        Operand::Local(src) => {
            let dst = env.local(mb, lhs);
            mb.move_(dst, src);
            if let Some(&c) = env.types.get(&src) {
                env.types.insert(dst, c);
            }
        }
        Operand::Const(c) => {
            let dst = env.local(mb, lhs);
            mb.const_(dst, c);
        }
    }
    Ok(false)
}

/// Splits `lhs = rhs` at the first `=` that is an assignment (not part of
/// `==`, `!=`, or `<=`).
fn split_assign(text: &str) -> Option<(&str, &str)> {
    let bytes = text.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'=' {
            continue;
        }
        let prev = if i > 0 { bytes[i - 1] } else { b' ' };
        let next = bytes.get(i + 1).copied().unwrap_or(b' ');
        if prev != b'=' && prev != b'!' && prev != b'<' && next != b'=' {
            return Some((&text[..i], &text[i + 1..]));
        }
    }
    None
}

fn block_of(env: &Env, label: &str, line: usize) -> Result<BlockId, AsmError> {
    env.blocks.get(label).copied().ok_or(AsmError {
        line,
        message: format!("unknown block label {label}"),
    })
}

fn resolve_static_field(
    mb: &mut MethodBuilder<'_>,
    cname: &str,
    fname: &str,
    line: usize,
) -> Result<FieldId, AsmError> {
    let class = mb.program().find_class(cname).ok_or(AsmError {
        line,
        message: format!("unknown class {cname}"),
    })?;
    let mut cur = Some(class);
    while let Some(c) = cur {
        if let Some(f) = mb.program().find_field(c, fname) {
            return Ok(f);
        }
        cur = mb.program().super_class_of(c);
    }
    err(line, format!("unknown static field {cname}::{fname}"))
}

/// Resolves a field spec after the `.`: either a bare name (type-inferred
/// receiver) or the qualified `Class#field` form.
fn resolve_field_spec(
    mb: &mut MethodBuilder<'_>,
    env: &Env,
    base: Local,
    spec: &str,
    line: usize,
) -> Result<FieldId, AsmError> {
    if let Some((cname, fname)) = spec.rsplit_once('#') {
        let class = mb.program().find_class(cname.trim()).ok_or(AsmError {
            line,
            message: format!("unknown class {cname}"),
        })?;
        let mut cur = Some(class);
        while let Some(c) = cur {
            if let Some(f) = mb.program().find_field(c, fname.trim()) {
                return Ok(f);
            }
            cur = mb.program().super_class_of(c);
        }
        return err(line, format!("unknown field {cname}#{fname}"));
    }
    field_of_local(mb, env, base, spec, line)
}

fn field_of_local(
    mb: &mut MethodBuilder<'_>,
    env: &Env,
    base: Local,
    fname: &str,
    line: usize,
) -> Result<FieldId, AsmError> {
    let class = *env.types.get(&base).ok_or(AsmError {
        line,
        message: format!("cannot infer class of receiver for .{fname}; annotate the source"),
    })?;
    let mut cur = Some(class);
    while let Some(c) = cur {
        if let Some(f) = mb.program().find_field(c, fname) {
            return Ok(f);
        }
        cur = mb.program().super_class_of(c);
    }
    err(line, format!("unknown field .{fname}"))
}

fn note_field_type(mb: &mut MethodBuilder<'_>, env: &mut Env, dst: Local, field: FieldId) {
    if let Type::Ref(c) = mb.program().field_type_of(field) {
        env.types.insert(dst, c);
    }
}

/// `call virtual|static|special Class.method(args…)`; returns the callee's
/// declared return class for type inference.
fn assemble_call(
    mb: &mut MethodBuilder<'_>,
    env: &mut Env,
    dst: Option<Local>,
    text: &str,
    line: usize,
) -> Result<Option<ClassId>, AsmError> {
    let rest = text.strip_prefix("call ").expect("caller checked");
    let mut toks = rest.splitn(2, ' ');
    let kind = match toks.next() {
        Some("virtual") => InvokeKind::Virtual,
        Some("static") => InvokeKind::Static,
        Some("special") => InvokeKind::Special,
        other => {
            return err(
                line,
                format!("expected virtual|static|special, got {other:?}"),
            )
        }
    };
    let rest = toks
        .next()
        .ok_or(AsmError {
            line,
            message: "call needs a target".into(),
        })?
        .trim();
    let (target, args_text) = rest.split_once('(').ok_or(AsmError {
        line,
        message: "call needs `(args)`".into(),
    })?;
    let args_text = args_text.trim_end_matches(')');
    let callee = {
        let (cname, mname) = target.rsplit_once('.').ok_or(AsmError {
            line,
            message: format!("expected Class.method, got {target:?}"),
        })?;
        let class = mb.program().find_class(cname.trim()).ok_or(AsmError {
            line,
            message: format!("unknown class {cname}"),
        })?;
        let mut found = None;
        let mut cur = Some(class);
        while let Some(c) = cur {
            if let Some(m) = mb.program().find_method(c, mname.trim()) {
                found = Some(m);
                break;
            }
            cur = mb.program().super_class_of(c);
        }
        found.ok_or(AsmError {
            line,
            message: format!("unknown method {target}"),
        })?
    };
    let mut args: Vec<Operand> = Vec::new();
    for a in args_text
        .split(',')
        .map(str::trim)
        .filter(|a| !a.is_empty())
    {
        args.push(parse_operand(env, a, line)?);
    }
    let expected = mb.program().param_count(callee) as usize;
    let (receiver, args) = match kind {
        InvokeKind::Static => (None, args),
        _ => {
            if args.is_empty() {
                return err(line, "instance call needs a receiver as first argument");
            }
            let recv = match args.remove(0) {
                Operand::Local(l) => l,
                Operand::Const(_) => return err(line, "receiver must be a local"),
            };
            (Some(recv), args)
        }
    };
    let given = args.len() + usize::from(receiver.is_some());
    if given != expected {
        return err(
            line,
            format!("{target:?} takes {expected} argument(s), got {given}"),
        );
    }
    mb.call(dst, kind, callee, receiver, args);
    Ok(mb.program().ret_type_of(callee).and_then(|t| t.as_class()))
}

#[cfg(test)]
mod tests {
    use super::*;

    const NEWS_APP: &str = r#"
// Figure 1, as assembler text.
class com.ex.Adapter extends android.widget.Adapter {
  field data: ref java.lang.Object
}
class com.ex.Loader extends android.os.AsyncTask {
  field adapter: ref com.ex.Adapter
  method doInBackground(this) {
    bb0:
      a = this.adapter
      n = new java.lang.Object
      a.data = n
      return
  }
}
class com.ex.Main extends android.app.Activity
      implements android.view.View$OnClickListener, android.widget.OnScrollListener {
  field adapter: ref com.ex.Adapter
  method onCreate(this) {
    bb0:
      a = new com.ex.Adapter
      this.adapter = a
      v = call virtual android.app.Activity.findViewById(this, 1)
      call virtual android.view.View.setOnClickListener(v, this)
      call virtual android.view.View.setOnScrollListener(v, this)
      return
  }
  method onClick(this, view) {
    bb0:
      a = this.adapter
      t = new com.ex.Loader
      t.adapter = a
      call virtual android.os.AsyncTask.execute(t)
      return
  }
  method onScroll(this, view) {
    bb0:
      a = this.adapter
      x = a.data
      return
  }
}
layout com.ex.Main {
  view 1: android.widget.TextView
}
"#;

    #[test]
    fn assembles_the_figure_1_app() {
        let app = parse_app("AsmNews", NEWS_APP).expect("assembles");
        assert!(app.program.validate().is_ok());
        assert_eq!(app.manifest.activities.len(), 1);
        let main = app.program.class_by_name("com.ex.Main").unwrap();
        assert_eq!(app.manifest.activities[0], main);
        assert!(app.layout_for(main).is_some());
        // And the whole pipeline runs over the assembled app.
        let result_fields = harness_gen_generate(app);
        assert!(
            result_fields.contains(&"data".to_owned()),
            "{result_fields:?}"
        );
    }

    /// Helper: run the detector over an assembled app, returning reported
    /// field names. (Inline to avoid a dev-dependency cycle with
    /// sierra-core; the pointer+shbg layers are enough to see the race
    /// pair, so we count unordered conflicting accesses directly.)
    fn harness_gen_generate(app: AndroidApp) -> Vec<String> {
        // The android-model crate cannot depend on the analysis crates;
        // approximate "the race is visible" structurally: the Loader's
        // doInBackground writes com.ex.Adapter.data and Main.onScroll reads
        // it — both bodies must exist and reference the same field.
        let adapter = app.program.class_by_name("com.ex.Adapter").unwrap();
        let data = app.program.declared_field(adapter, "data").unwrap();
        let mut touched = Vec::new();
        for m in app.program.methods() {
            if !m.has_body() {
                continue;
            }
            for (_, s) in m.iter_stmts() {
                if let apir::Stmt::Load { field, .. } | apir::Stmt::Store { field, .. } = s {
                    if *field == data {
                        touched.push(app.program.field_name(*field).to_owned());
                    }
                }
            }
        }
        touched
    }

    #[test]
    fn control_flow_and_operators_assemble() {
        let src = r#"
class com.ex.Act extends android.app.Activity {
  field flag: bool
  field count: int
  method onCreate(this) {
    bb0:
      t = this.flag
      if t then bb1 else bb2
    bb1:
      c = this.count
      c2 = c + 1
      this.count = c2
      goto bb3
    bb2:
      eq = c3 == 4
      goto bb3
    bb3:
      nondet bb4 bb5
    bb4:
      return
    bb5:
      return
  }
}
"#;
        // `c3` is used unassigned in bb2 — must be rejected.
        let e = parse_app("Bad", src).unwrap_err();
        assert!(e.message.contains("unassigned local"), "{e}");

        let fixed = src.replace("eq = c3 == 4", "c3 = 4\n      eq = c3 == 4");
        let app = parse_app("Good", &fixed).expect("assembles");
        assert!(app.program.validate().is_ok());
    }

    #[test]
    fn static_fields_and_static_calls_assemble() {
        let src = r#"
class com.ex.Util {
  field static G: int
  method bump() static {
    bb0:
      g = com.ex.Util::G
      g2 = g + 1
      com.ex.Util::G = g2
      return
  }
}
class com.ex.Act extends android.app.Activity {
  method onCreate(this) {
    bb0:
      call static com.ex.Util.bump()
      m = call static android.os.Message.obtain()
      return
  }
}
"#;
        let app = parse_app("Statics", src).expect("assembles");
        assert!(app.program.validate().is_ok());
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let src = "class A extends NoSuchClass {\n}\n";
        let e = parse_app("E", src).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("unknown class NoSuchClass"));

        let src = "class A {\n  method m(this) {\n    bb0:\n      x = y.field\n  }\n}\n";
        let e = parse_app("E", src).unwrap_err();
        assert_eq!(e.line, 4);

        let src = "bogus\n";
        let e = parse_app("E", src).unwrap_err();
        assert!(e.message.contains("expected `class`"));
    }

    #[test]
    fn arity_mismatches_are_rejected() {
        let src = r#"
class com.ex.Act extends android.app.Activity {
  method onCreate(this) {
    bb0:
      v = call virtual android.app.Activity.findViewById(this)
      return
  }
}
"#;
        let e = parse_app("E", src).unwrap_err();
        assert!(e.message.contains("argument"), "{e}");
    }

    #[test]
    fn view_attributes_parse() {
        let src = r#"
class com.ex.Act extends android.app.Activity {
  method clicked(this, v) {
    bb0:
      return
  }
}
layout com.ex.Act {
  view 1: android.view.View onClick com.ex.Act.clicked
  view 2: android.widget.TextView after 1
}
"#;
        let app = parse_app("Views", src).expect("assembles");
        let act = app.program.class_by_name("com.ex.Act").unwrap();
        let layout = app.layout_for(act).unwrap();
        assert_eq!(layout.view(2).unwrap().after, Some(1));
        assert_eq!(layout.view(1).unwrap().xml_listeners.len(), 1);
    }
}

// ---- rendering (the disassembler) ----

/// Renders an app back to assembler text that [`parse_app`] accepts.
///
/// Only app-origin classes are rendered (the framework is implicit).
/// Locals are written as `p0…`/`v0…`; blocks as `bb0…`. String constants
/// are not representable (the assembler rejects them) and render as `null`.
pub fn render_app(app: &AndroidApp) -> String {
    use std::fmt::Write as _;
    let p = &app.program;
    let mut out = String::new();
    for class in p.classes() {
        if class.origin != apir::Origin::App {
            continue;
        }
        let kw = if class.is_interface {
            "interface"
        } else {
            "class"
        };
        let _ = write!(out, "{kw} {}", p.name(class.name));
        if let Some(s) = class.super_class {
            if p.class_name(s) != "java.lang.Object" {
                let _ = write!(out, " extends {}", p.class_name(s));
            }
        }
        if !class.interfaces.is_empty() {
            let names: Vec<&str> = class.interfaces.iter().map(|&i| p.class_name(i)).collect();
            let _ = write!(out, " implements {}", names.join(", "));
        }
        let _ = writeln!(out, " {{");
        for &f in &class.fields {
            let fd = p.field(f);
            let st = if fd.is_static { "static " } else { "" };
            let ty = match fd.ty {
                Type::Int => "int".to_owned(),
                Type::Bool => "bool".to_owned(),
                Type::Str => "str".to_owned(),
                Type::Ref(c) => format!("ref {}", p.class_name(c)),
            };
            let _ = writeln!(out, "  field {st}{}: {ty}", p.name(fd.name));
        }
        for &mid in &class.methods {
            let m = p.method(mid);
            if !m.has_body() {
                continue;
            }
            let params: Vec<String> = (0..m.param_count)
                .map(|i| {
                    if i == 0 && !m.is_static {
                        "this".to_owned()
                    } else {
                        format!("p{i}")
                    }
                })
                .collect();
            let st = if m.is_static { " static" } else { "" };
            let _ = writeln!(
                out,
                "  method {}({}){st} {{",
                p.name(m.name),
                params.join(", ")
            );
            for (bid, block) in m.iter_blocks() {
                let _ = writeln!(out, "    bb{}:", bid.index());
                for stmt in &block.stmts {
                    let _ = writeln!(out, "      {}", render_stmt(p, m, stmt));
                }
                let _ = writeln!(out, "      {}", render_terminator(m, &block.terminator));
            }
            let _ = writeln!(out, "  }}");
        }
        let _ = writeln!(out, "}}");
    }
    for layout in &app.layouts {
        let _ = writeln!(out, "layout {} {{", p.class_name(layout.activity));
        for v in &layout.views {
            let mut line = format!("  view {}: {}", v.view_id, p.class_name(v.class));
            if let Some(a) = v.after {
                line.push_str(&format!(" after {a}"));
            }
            for (kind, m) in &v.xml_listeners {
                if *kind == GuiEventKind::Click {
                    line.push_str(&format!(" onClick {}", p.method_name(*m)));
                }
            }
            let _ = writeln!(out, "{line}");
        }
        let _ = writeln!(out, "}}");
    }
    out
}

/// Unqualified for `this` (always inferable); qualified `Class#field`
/// otherwise, so re-parsing never depends on type inference succeeding.
fn render_field_spec(p: &apir::Program, m: &apir::Method, base: Local, field: FieldId) -> String {
    let fd = p.field(field);
    if base.0 == 0 && !m.is_static {
        p.name(fd.name).to_owned()
    } else {
        format!("{}#{}", p.class_name(fd.class), p.name(fd.name))
    }
}

fn render_local(m: &apir::Method, l: Local) -> String {
    if l.0 == 0 && !m.is_static {
        "this".to_owned()
    } else if l.0 < m.param_count {
        format!("p{}", l.0)
    } else {
        format!("v{}", l.0)
    }
}

fn render_operand(m: &apir::Method, op: Operand) -> String {
    match op {
        Operand::Local(l) => render_local(m, l),
        Operand::Const(ConstValue::Int(v)) => v.to_string(),
        Operand::Const(ConstValue::Bool(b)) => b.to_string(),
        Operand::Const(ConstValue::Null) => "null".to_owned(),
        Operand::Const(ConstValue::Str(_)) => "null".to_owned(), // not representable
    }
}

fn render_stmt(p: &apir::Program, m: &apir::Method, stmt: &apir::Stmt) -> String {
    use apir::Stmt as S;
    match stmt {
        S::Const { dst, value } => {
            format!(
                "{} = {}",
                render_local(m, *dst),
                render_operand(m, Operand::Const(*value))
            )
        }
        S::Move { dst, src } => {
            format!("{} = {}", render_local(m, *dst), render_local(m, *src))
        }
        S::UnOp { dst, op, src } => {
            let sym = match op {
                UnOp::Not => "!",
                UnOp::Neg => "- ",
            };
            format!(
                "{} = {sym}{}",
                render_local(m, *dst),
                render_operand(m, *src)
            )
        }
        S::BinOp { dst, op, lhs, rhs } => {
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Cmp(CmpOp::Eq) => "==",
                BinOp::Cmp(CmpOp::Ne) => "!=",
                BinOp::Cmp(CmpOp::Lt) => "<",
                BinOp::Cmp(CmpOp::Le) => "<=",
                BinOp::And => "&&",
                BinOp::Or => "||",
            };
            format!(
                "{} = {} {sym} {}",
                render_local(m, *dst),
                render_operand(m, *lhs),
                render_operand(m, *rhs)
            )
        }
        S::New { dst, class, .. } => {
            format!("{} = new {}", render_local(m, *dst), p.class_name(*class))
        }
        S::Load { dst, obj, field } => format!(
            "{} = {}.{}",
            render_local(m, *dst),
            render_local(m, *obj),
            render_field_spec(p, m, *obj, *field)
        ),
        S::Store { obj, field, value } => format!(
            "{}.{} = {}",
            render_local(m, *obj),
            render_field_spec(p, m, *obj, *field),
            render_operand(m, *value)
        ),
        S::StaticLoad { dst, field } => {
            let f = p.field(*field);
            format!(
                "{} = {}::{}",
                render_local(m, *dst),
                p.class_name(f.class),
                p.name(f.name)
            )
        }
        S::StaticStore { field, value } => {
            let f = p.field(*field);
            format!(
                "{}::{} = {}",
                p.class_name(f.class),
                p.name(f.name),
                render_operand(m, *value)
            )
        }
        S::Call {
            dst,
            kind,
            callee,
            receiver,
            args,
            ..
        } => {
            let mut s = String::new();
            if let Some(d) = dst {
                s.push_str(&format!("{} = ", render_local(m, *d)));
            }
            let kw = match kind {
                InvokeKind::Virtual => "virtual",
                InvokeKind::Static => "static",
                InvokeKind::Special => "special",
            };
            let mut all: Vec<String> = Vec::new();
            if let Some(r) = receiver {
                all.push(render_local(m, *r));
            }
            all.extend(args.iter().map(|a| render_operand(m, *a)));
            s.push_str(&format!(
                "call {kw} {}({})",
                p.method_name(*callee),
                all.join(", ")
            ));
            s
        }
    }
}

fn render_terminator(m: &apir::Method, t: &apir::Terminator) -> String {
    use apir::Terminator as T;
    match t {
        T::Goto(b) => format!("goto bb{}", b.index()),
        T::If {
            cond,
            then_bb,
            else_bb,
        } => {
            format!(
                "if {} then bb{} else bb{}",
                render_operand(m, *cond),
                then_bb.index(),
                else_bb.index()
            )
        }
        T::NonDet(targets) => {
            let list: Vec<String> = targets.iter().map(|b| format!("bb{}", b.index())).collect();
            format!("nondet {}", list.join(" "))
        }
        T::Return(None) => "return".to_owned(),
        T::Return(Some(op)) => format!("return {}", render_operand(m, *op)),
    }
}

#[cfg(test)]
mod render_tests {
    use super::*;

    const ROUND_TRIP_SRC: &str = r#"
class com.rt.Helper {
  field static G: int
  field val: int
}
class com.rt.Main extends android.app.Activity
      implements android.view.View$OnClickListener {
  field h: ref com.rt.Helper
  method onCreate(this) {
    bb0:
      h = new com.rt.Helper
      this.h = h
      h.val = 3
      com.rt.Helper::G = 4
      v = call virtual android.app.Activity.findViewById(this, 2)
      call virtual android.view.View.setOnClickListener(v, this)
      t = h.val
      c = t == 3
      if c then bb1 else bb2
    bb1:
      goto bb3
    bb2:
      goto bb3
    bb3:
      nondet bb4 bb5
    bb4:
      return
    bb5:
      return
  }
  method onClick(this, view) {
    bb0:
      h = this.h
      x = h.val
      return x
  }
}
layout com.rt.Main {
  view 2: android.widget.TextView
}
"#;

    #[test]
    fn render_parse_round_trip_is_structurally_stable() {
        let app1 = parse_app("RT", ROUND_TRIP_SRC).expect("first parse");
        let text1 = render_app(&app1);
        let app2 = parse_app("RT", &text1).expect("re-parse of rendered text:\n{text1}");
        let text2 = render_app(&app2);
        assert_eq!(text1, text2, "render∘parse is a fixpoint");
        assert_eq!(app1.program.stmt_count(), app2.program.stmt_count());
        assert_eq!(
            app1.manifest.activities.len(),
            app2.manifest.activities.len()
        );
        assert_eq!(app1.layouts.len(), app2.layouts.len());
    }

    #[test]
    fn rendered_corpus_figures_reassemble_and_validate() {
        for (label, (app, _)) in [
            ("fig1", crate_figures_intra()),
            ("fig8", crate_figures_guard()),
        ] {
            let text = render_app(&app);
            let app2 =
                parse_app("RoundTrip", &text).unwrap_or_else(|e| panic!("{label}: {e}\n{text}"));
            assert!(app2.program.validate().is_ok(), "{label}");
            assert_eq!(
                app.manifest.activities.len(),
                app2.manifest.activities.len(),
                "{label}"
            );
        }
    }

    // Local copies of two corpus figure shapes (corpus depends on this
    // crate, so the fixtures are re-declared via the builder here).
    fn crate_figures_intra() -> (AndroidApp, ()) {
        let mut b = AndroidAppBuilder::new("F1");
        let fw = b.framework().clone();
        let mut cb = b.subclass("A$Adapter", fw.adapter);
        let data = cb.field("data", Type::Ref(fw.object));
        let adapter = cb.build();
        let mut cb = b.activity("A");
        cb.add_interface(fw.on_scroll_listener);
        let af = cb.field("adapter", Type::Ref(adapter));
        let act = cb.build();
        let mut mb = b.method(act, "onCreate");
        mb.set_param_count(1);
        let this = mb.param(0);
        let a = mb.fresh_local();
        mb.new_(a, adapter);
        mb.store(this, af, Operand::Local(a));
        mb.ret(None);
        mb.finish();
        let mut mb = b.method(act, "onScroll");
        mb.set_param_count(2);
        let this = mb.param(0);
        let (a, x) = (mb.fresh_local(), mb.fresh_local());
        mb.load(a, this, af);
        mb.load(x, a, data);
        mb.ret(None);
        mb.finish();
        (b.finish().unwrap(), ())
    }

    fn crate_figures_guard() -> (AndroidApp, ()) {
        let mut b = AndroidAppBuilder::new("F8");
        let mut cb = b.activity("G");
        let flag = cb.field("flag", Type::Bool);
        let act = cb.build();
        let mut mb = b.method(act, "onPause");
        mb.set_param_count(1);
        let this = mb.param(0);
        let t = mb.fresh_local();
        mb.load(t, this, flag);
        let b1 = mb.new_block();
        let b2 = mb.new_block();
        mb.if_(t, b1, b2);
        mb.switch_to(b1);
        mb.store(this, flag, Operand::Const(ConstValue::Bool(false)));
        mb.goto(b2);
        mb.switch_to(b2);
        mb.ret(None);
        mb.finish();
        (b.finish().unwrap(), ())
    }
}
