//! The framework class library.
//!
//! [`FrameworkClasses::install`] populates a [`ProgramBuilder`] with the
//! slice of the Android Framework and `java.*` runtime that the paper's
//! benchmarks exercise, and returns the ids of every installed entity so
//! app builders and analyses can refer to them directly.
//!
//! Two kinds of framework methods exist:
//!
//! - **opaque** methods (declared with [`ProgramBuilder::abstract_method`]):
//!   concurrency and registration APIs whose behaviour the analyses model
//!   semantically (see [`crate::ops::FrameworkOp`]);
//! - **transparent** methods with real IR bodies (e.g. `Thread.<init>`
//!   stores its `Runnable` into the `target` field) so that ordinary data
//!   flow through the framework is visible to the pointer analysis.

use apir::{ClassId, ConstValue, FieldId, MethodId, Operand, Origin, ProgramBuilder, Type};

/// Ids of every class, field, and method installed by the framework model.
#[derive(Debug, Clone)]
pub struct FrameworkClasses {
    // --- java.lang ---
    /// `java.lang.Object`, the root class.
    pub object: ClassId,
    /// `java.lang.Runnable` interface.
    pub runnable: ClassId,
    /// `Runnable.run`.
    pub runnable_run: MethodId,
    /// `java.lang.Thread`.
    pub thread: ClassId,
    /// `Thread.target` field (the wrapped `Runnable`).
    pub thread_target: FieldId,
    /// `Thread.<init>(Runnable)` — transparent.
    pub thread_init: MethodId,
    /// `Thread.start()` — opaque concurrency op.
    pub thread_start: MethodId,
    /// `Thread.run()` — transparent: dispatches to `target.run()`.
    pub thread_run: MethodId,

    // --- java.util ---
    /// `java.util.ArrayList` (index-insensitive container model).
    pub array_list: ClassId,
    /// `ArrayList.contents` — the single summarized element field.
    pub array_list_contents: FieldId,
    /// `ArrayList.add(Object)` — transparent.
    pub array_list_add: MethodId,
    /// `ArrayList.get()` — transparent.
    pub array_list_get: MethodId,
    /// `ArrayList.clear()` — transparent (nulls the summary field).
    pub array_list_clear: MethodId,
    /// `ArrayList.setAt(int, Object)` — opaque; the analysis models it
    /// index-sensitively when the index is constant (§6.5 future work,
    /// after Dillig et al.).
    pub array_list_set_at: MethodId,
    /// `ArrayList.getAt(int)` — opaque; index-sensitive counterpart.
    pub array_list_get_at: MethodId,
    /// Synthetic per-index slot fields `idx0..idx7` used by the
    /// index-sensitive container model; constant indices ≥ 8 fall back to
    /// the summarized `contents` field.
    pub index_slots: [FieldId; 8],

    /// `java.util.concurrent.Executor` interface.
    pub executor: ClassId,
    /// `Executor.execute(Runnable)` — opaque concurrency op.
    pub executor_execute: MethodId,
    /// `java.util.concurrent.ThreadPoolExecutor` concrete executor.
    pub thread_pool_executor: ClassId,

    // --- android.os ---
    /// `android.os.Looper`.
    pub looper: ClassId,
    /// `Looper.getMainLooper()` — opaque.
    pub get_main_looper: MethodId,
    /// `Looper.myLooper()` — opaque.
    pub my_looper: MethodId,
    /// `android.os.Message`.
    pub message: ClassId,
    /// `Message.what` field.
    pub message_what: FieldId,
    /// `Message.arg1` field.
    pub message_arg1: FieldId,
    /// `Message.obj` field.
    pub message_obj: FieldId,
    /// `Message.obtain()` — transparent (allocates).
    pub message_obtain: MethodId,
    /// `android.os.Handler`.
    pub handler: ClassId,
    /// `Handler.<init>()` — opaque (binds to the creating thread's looper).
    pub handler_init: MethodId,
    /// `Handler.post(Runnable)` — opaque concurrency op.
    pub handler_post: MethodId,
    /// `Handler.postDelayed(Runnable, int)` — opaque concurrency op.
    pub handler_post_delayed: MethodId,
    /// `Handler.sendMessage(Message)` — opaque concurrency op.
    pub handler_send_message: MethodId,
    /// `Handler.sendEmptyMessage(int)` — opaque concurrency op.
    pub handler_send_empty_message: MethodId,
    /// `Handler.handleMessage(Message)` — overridable callback.
    pub handler_handle_message: MethodId,
    /// `android.os.AsyncTask`.
    pub async_task: ClassId,
    /// `AsyncTask.execute()` — opaque concurrency op.
    pub async_task_execute: MethodId,
    /// `AsyncTask.cancel(mayInterrupt)` — opaque window-closing op.
    pub async_task_cancel: MethodId,
    /// `AsyncTask.onPreExecute()` — overridable callback (main thread).
    pub async_task_on_pre_execute: MethodId,
    /// `AsyncTask.doInBackground()` — overridable callback (bg thread).
    pub async_task_do_in_background: MethodId,
    /// `AsyncTask.onPostExecute()` — overridable callback (main thread).
    pub async_task_on_post_execute: MethodId,
    /// `android.os.Bundle`.
    pub bundle: ClassId,

    // --- android.content ---
    /// `android.content.Context`.
    pub context: ClassId,
    /// `Context.registerReceiver(BroadcastReceiver)` — opaque op.
    pub register_receiver: MethodId,
    /// `Context.unregisterReceiver(BroadcastReceiver)` — opaque op.
    pub unregister_receiver: MethodId,
    /// `Context.startService(Intent)` — opaque op.
    pub start_service: MethodId,
    /// `Context.bindService(Intent, ServiceConnection)` — opaque op.
    pub bind_service: MethodId,
    /// `android.content.BroadcastReceiver`.
    pub broadcast_receiver: ClassId,
    /// `BroadcastReceiver.onReceive(Intent)` — overridable callback.
    pub on_receive: MethodId,
    /// `android.content.Intent`.
    pub intent: ClassId,
    /// `Intent.extras` field.
    pub intent_extras: FieldId,
    /// `Intent.getExtras()` — transparent.
    pub intent_get_extras: MethodId,
    /// `android.content.ServiceConnection` interface.
    pub service_connection: ClassId,
    /// `ServiceConnection.onServiceConnected()` callback.
    pub on_service_connected: MethodId,
    /// `ServiceConnection.onServiceDisconnected()` callback.
    pub on_service_disconnected: MethodId,

    // --- android.app ---
    /// `android.app.Activity`.
    pub activity: ClassId,
    /// Lifecycle callbacks: `onCreate` … `onDestroy` (overridable).
    pub activity_on_create: MethodId,
    /// `Activity.onStart()`.
    pub activity_on_start: MethodId,
    /// `Activity.onRestart()`.
    pub activity_on_restart: MethodId,
    /// `Activity.onResume()`.
    pub activity_on_resume: MethodId,
    /// `Activity.onPause()`.
    pub activity_on_pause: MethodId,
    /// `Activity.onStop()`.
    pub activity_on_stop: MethodId,
    /// `Activity.onDestroy()`.
    pub activity_on_destroy: MethodId,
    /// `Activity.findViewById(int)` — opaque op (inflated-view context).
    pub find_view_by_id: MethodId,
    /// `Activity.runOnUiThread(Runnable)` — opaque op (post to main).
    pub run_on_ui_thread: MethodId,
    /// `android.app.Service`.
    pub service: ClassId,
    /// `Service.onCreate()`.
    pub service_on_create: MethodId,
    /// `Service.onStartCommand(Intent)`.
    pub service_on_start_command: MethodId,
    /// `Service.onDestroy()`.
    pub service_on_destroy: MethodId,

    // --- android.view / android.widget ---
    /// `android.view.View`.
    pub view: ClassId,
    /// `View.setOnClickListener(OnClickListener)` — opaque registration.
    pub set_on_click_listener: MethodId,
    /// `View.setOnLongClickListener(OnLongClickListener)` — opaque.
    pub set_on_long_click_listener: MethodId,
    /// `View.setOnScrollListener(OnScrollListener)` — opaque.
    pub set_on_scroll_listener: MethodId,
    /// `View.setOnItemClickListener(OnItemClickListener)` — opaque.
    pub set_on_item_click_listener: MethodId,
    /// `View.post(Runnable)` — opaque op (post to main looper).
    pub view_post: MethodId,
    /// `View.postDelayed(Runnable, int)` — opaque op.
    pub view_post_delayed: MethodId,
    /// `android.view.View$OnClickListener` interface + `onClick(View)`.
    pub on_click_listener: ClassId,
    /// `OnClickListener.onClick(View)`.
    pub on_click: MethodId,
    /// `android.view.View$OnLongClickListener` interface.
    pub on_long_click_listener: ClassId,
    /// `OnLongClickListener.onLongClick(View)`.
    pub on_long_click: MethodId,
    /// `android.widget.OnScrollListener` interface.
    pub on_scroll_listener: ClassId,
    /// `OnScrollListener.onScroll(View)`.
    pub on_scroll: MethodId,
    /// `android.widget.OnItemClickListener` interface.
    pub on_item_click_listener: ClassId,
    /// `OnItemClickListener.onItemClick(View, int)`.
    pub on_item_click: MethodId,
    /// `android.widget.TextView`.
    pub text_view: ClassId,
    /// `TextView.text` field.
    pub text_view_text: FieldId,
    /// `TextView.setText(String)` — transparent.
    pub set_text: MethodId,
    /// `android.widget.ListView`.
    pub list_view: ClassId,
    /// `android.widget.RecyclerView`.
    pub recycler_view: ClassId,
    /// `RecyclerView.adapter` field.
    pub recycler_adapter: FieldId,
    /// `RecyclerView.setAdapter(Adapter)` — transparent.
    pub set_adapter: MethodId,
    /// `android.widget.Adapter` base class.
    pub adapter: ClassId,
    /// `Adapter.notifyDataSetChanged()` — overridable; default body touches
    /// the adapter's version counter so races on it are observable.
    pub notify_data_set_changed: MethodId,
    /// `Adapter.version` field (bumped by `notifyDataSetChanged`).
    pub adapter_version: FieldId,

    // --- java.util.Timer ---
    /// `java.util.Timer`.
    pub timer: ClassId,
    /// `Timer.schedule(TimerTask, delay)` — opaque concurrency op: the
    /// task runs on the timer's background thread.
    pub timer_schedule: MethodId,
    /// `java.util.TimerTask`.
    pub timer_task: ClassId,
    /// `TimerTask.run()` — overridable task body.
    pub timer_task_run: MethodId,

    // --- android.location ---
    /// `android.location.LocationManager`.
    pub location_manager: ClassId,
    /// `LocationManager.requestLocationUpdates(listener)` — opaque op:
    /// enables `onLocationChanged` actions on the main looper.
    pub request_location_updates: MethodId,
    /// `LocationManager.removeUpdates(listener)` — opaque op.
    pub remove_updates: MethodId,
    /// `android.location.LocationListener` interface.
    pub location_listener: ClassId,
    /// `LocationListener.onLocationChanged(Location)`.
    pub on_location_changed: MethodId,

    // --- android.text ---
    /// `android.text.TextWatcher` interface.
    pub text_watcher: ClassId,
    /// `TextWatcher.afterTextChanged(Editable)`.
    pub after_text_changed: MethodId,
    /// `TextView.addTextChangedListener(TextWatcher)` — GUI registration.
    pub add_text_changed_listener: MethodId,

    // --- android.media ---
    /// `android.media.MediaPlayer`.
    pub media_player: ClassId,
    /// `MediaPlayer.setOnCompletionListener(listener)` — opaque op:
    /// enables `onCompletion` actions on the main looper.
    pub set_on_completion_listener: MethodId,
    /// `android.media.MediaPlayer$OnCompletionListener` interface.
    pub on_completion_listener: ClassId,
    /// `OnCompletionListener.onCompletion(MediaPlayer)`.
    pub on_completion: MethodId,

    // --- java.lang reflection + intent dispatch (soundness-policy gated) ---
    /// `java.lang.Class` — the reflective class token.
    pub java_class: ClassId,
    /// `Class.forName(String)` — opaque reflective lookup.
    pub class_for_name: MethodId,
    /// `Class.newInstance()` — opaque reflective instantiation.
    pub class_new_instance: MethodId,
    /// `Class.invoke(String, Object)` — opaque reflective invocation (the
    /// model's collapsed `Method.invoke`).
    pub method_invoke: MethodId,
    /// `Intent.setClass(String)` — opaque component binding.
    pub intent_set_class: MethodId,
    /// `Context.startActivity(Intent)` — opaque inter-component dispatch.
    pub start_activity: MethodId,
    /// `Context.sendBroadcast(Intent)` — opaque inter-component dispatch.
    pub send_broadcast: MethodId,
}

impl FrameworkClasses {
    /// Installs the framework model into `pb`.
    pub fn install(pb: &mut ProgramBuilder) -> Self {
        let fw = Origin::Framework;

        // java.lang.Object
        let object = pb.class("java.lang.Object", fw).build();

        // java.lang.Runnable
        let mut cb = pb.class("java.lang.Runnable", fw);
        cb.set_interface();
        let runnable = cb.build();
        let runnable_run = pb.abstract_method(runnable, "run", 1);

        // java.lang.Thread
        let mut cb = pb.class("java.lang.Thread", fw);
        cb.set_super(object);
        let thread_target = cb.field("target", Type::Ref(runnable));
        let thread = cb.build();
        // Thread.<init>(Runnable): this.target = r
        let mut mb = pb.method(thread, "<init>");
        mb.set_param_count(2);
        let this = mb.param(0);
        let r = mb.param(1);
        mb.store(this, thread_target, Operand::Local(r));
        mb.ret(None);
        let thread_init = mb.finish();
        let thread_start = pb.abstract_method(thread, "start", 1);
        // Thread.run(): this.target.run() — the default body a subclass
        // overrides; lets `new Thread(runnable)` dispatch to the runnable.
        let mut mb = pb.method(thread, "run");
        mb.set_param_count(1);
        let this = mb.param(0);
        let tgt = mb.fresh_local();
        mb.load(tgt, this, thread_target);
        mb.vcall(runnable_run, tgt, vec![]);
        mb.ret(None);
        let thread_run = mb.finish();

        // java.util.ArrayList — index-insensitive container (§6.5).
        let mut cb = pb.class("java.util.ArrayList", fw);
        cb.set_super(object);
        let array_list_contents = cb.field("contents", Type::Ref(object));
        let index_slots: [FieldId; 8] =
            std::array::from_fn(|i| cb.field(&format!("idx{i}"), Type::Ref(object)));
        let array_list = cb.build();
        let mut mb = pb.method(array_list, "add");
        mb.set_param_count(2);
        let (this, e) = (mb.param(0), mb.param(1));
        mb.store(this, array_list_contents, Operand::Local(e));
        mb.ret(None);
        let array_list_add = mb.finish();
        let mut mb = pb.method(array_list, "get");
        mb.set_param_count(1);
        let this = mb.param(0);
        let v = mb.fresh_local();
        mb.load(v, this, array_list_contents);
        mb.set_ret(Type::Ref(object));
        mb.ret(Some(Operand::Local(v)));
        let array_list_get = mb.finish();
        let mut mb = pb.method(array_list, "clear");
        mb.set_param_count(1);
        let this = mb.param(0);
        mb.store(this, array_list_contents, Operand::Const(ConstValue::Null));
        mb.ret(None);
        let array_list_clear = mb.finish();
        let array_list_set_at = pb.abstract_method(array_list, "setAt", 3);
        let array_list_get_at = pb.abstract_method(array_list, "getAt", 2);

        // java.util.concurrent.Executor
        let mut cb = pb.class("java.util.concurrent.Executor", fw);
        cb.set_interface();
        let executor = cb.build();
        let executor_execute = pb.abstract_method(executor, "execute", 2);
        let mut cb = pb.class("java.util.concurrent.ThreadPoolExecutor", fw);
        cb.set_super(object);
        cb.add_interface(executor);
        let thread_pool_executor = cb.build();

        // android.os.Looper
        let mut cb = pb.class("android.os.Looper", fw);
        cb.set_super(object);
        let looper = cb.build();
        let get_main_looper = pb.abstract_method(looper, "getMainLooper", 0);
        let my_looper = pb.abstract_method(looper, "myLooper", 0);

        // android.os.Message
        let mut cb = pb.class("android.os.Message", fw);
        cb.set_super(object);
        let message_what = cb.field("what", Type::Int);
        let message_arg1 = cb.field("arg1", Type::Int);
        let message_obj = cb.field("obj", Type::Ref(object));
        let message = cb.build();
        // Message.obtain(): return new Message
        let mut mb = pb.method(message, "obtain");
        mb.set_static();
        mb.set_param_count(0);
        mb.set_ret(Type::Ref(message));
        let m = mb.fresh_local();
        mb.new_(m, message);
        mb.ret(Some(Operand::Local(m)));
        let message_obtain = mb.finish();

        // android.os.Handler
        let mut cb = pb.class("android.os.Handler", fw);
        cb.set_super(object);
        let handler = cb.build();
        let handler_init = pb.abstract_method(handler, "<init>", 2);
        let handler_post = pb.abstract_method(handler, "post", 2);
        let handler_post_delayed = pb.abstract_method(handler, "postDelayed", 3);
        let handler_send_message = pb.abstract_method(handler, "sendMessage", 2);
        let handler_send_empty_message = pb.abstract_method(handler, "sendEmptyMessage", 2);
        let handler_handle_message = pb.abstract_method(handler, "handleMessage", 2);

        // android.os.AsyncTask
        let mut cb = pb.class("android.os.AsyncTask", fw);
        cb.set_super(object);
        let async_task = cb.build();
        let async_task_execute = pb.abstract_method(async_task, "execute", 1);
        let async_task_cancel = pb.abstract_method(async_task, "cancel", 1);
        let async_task_on_pre_execute = pb.abstract_method(async_task, "onPreExecute", 1);
        let async_task_do_in_background = pb.abstract_method(async_task, "doInBackground", 1);
        let async_task_on_post_execute = pb.abstract_method(async_task, "onPostExecute", 1);

        // android.os.Bundle
        let mut cb = pb.class("android.os.Bundle", fw);
        cb.set_super(object);
        let bundle = cb.build();

        // android.content.Context
        let mut cb = pb.class("android.content.Context", fw);
        cb.set_super(object);
        let context = cb.build();
        let register_receiver = pb.abstract_method(context, "registerReceiver", 2);
        let unregister_receiver = pb.abstract_method(context, "unregisterReceiver", 2);
        let start_service = pb.abstract_method(context, "startService", 2);
        let bind_service = pb.abstract_method(context, "bindService", 3);

        // android.content.BroadcastReceiver
        let mut cb = pb.class("android.content.BroadcastReceiver", fw);
        cb.set_super(object);
        let broadcast_receiver = cb.build();
        let on_receive = pb.abstract_method(broadcast_receiver, "onReceive", 2);

        // android.content.Intent
        let mut cb = pb.class("android.content.Intent", fw);
        cb.set_super(object);
        let intent_extras = cb.field("extras", Type::Ref(bundle));
        let intent = cb.build();
        let mut mb = pb.method(intent, "getExtras");
        mb.set_param_count(1);
        mb.set_ret(Type::Ref(bundle));
        let this = mb.param(0);
        let b = mb.fresh_local();
        mb.load(b, this, intent_extras);
        mb.ret(Some(Operand::Local(b)));
        let intent_get_extras = mb.finish();

        // android.content.ServiceConnection
        let mut cb = pb.class("android.content.ServiceConnection", fw);
        cb.set_interface();
        let service_connection = cb.build();
        let on_service_connected = pb.abstract_method(service_connection, "onServiceConnected", 1);
        let on_service_disconnected =
            pb.abstract_method(service_connection, "onServiceDisconnected", 1);

        // android.app.Activity
        let mut cb = pb.class("android.app.Activity", fw);
        cb.set_super(context);
        let activity = cb.build();
        let activity_on_create = pb.abstract_method(activity, "onCreate", 1);
        let activity_on_start = pb.abstract_method(activity, "onStart", 1);
        let activity_on_restart = pb.abstract_method(activity, "onRestart", 1);
        let activity_on_resume = pb.abstract_method(activity, "onResume", 1);
        let activity_on_pause = pb.abstract_method(activity, "onPause", 1);
        let activity_on_stop = pb.abstract_method(activity, "onStop", 1);
        let activity_on_destroy = pb.abstract_method(activity, "onDestroy", 1);
        let find_view_by_id = pb.abstract_method(activity, "findViewById", 2);
        let run_on_ui_thread = pb.abstract_method(activity, "runOnUiThread", 2);

        // android.app.Service
        let mut cb = pb.class("android.app.Service", fw);
        cb.set_super(context);
        let service = cb.build();
        let service_on_create = pb.abstract_method(service, "onCreate", 1);
        let service_on_start_command = pb.abstract_method(service, "onStartCommand", 2);
        let service_on_destroy = pb.abstract_method(service, "onDestroy", 1);

        // android.view.View and listener interfaces
        let mut cb = pb.class("android.view.View", fw);
        cb.set_super(object);
        let view = cb.build();
        let set_on_click_listener = pb.abstract_method(view, "setOnClickListener", 2);
        let set_on_long_click_listener = pb.abstract_method(view, "setOnLongClickListener", 2);
        let set_on_scroll_listener = pb.abstract_method(view, "setOnScrollListener", 2);
        let set_on_item_click_listener = pb.abstract_method(view, "setOnItemClickListener", 2);
        let view_post = pb.abstract_method(view, "post", 2);
        let view_post_delayed = pb.abstract_method(view, "postDelayed", 3);

        let mut cb = pb.class("android.view.View$OnClickListener", fw);
        cb.set_interface();
        let on_click_listener = cb.build();
        let on_click = pb.abstract_method(on_click_listener, "onClick", 2);
        let mut cb = pb.class("android.view.View$OnLongClickListener", fw);
        cb.set_interface();
        let on_long_click_listener = cb.build();
        let on_long_click = pb.abstract_method(on_long_click_listener, "onLongClick", 2);
        let mut cb = pb.class("android.widget.OnScrollListener", fw);
        cb.set_interface();
        let on_scroll_listener = cb.build();
        let on_scroll = pb.abstract_method(on_scroll_listener, "onScroll", 2);
        let mut cb = pb.class("android.widget.OnItemClickListener", fw);
        cb.set_interface();
        let on_item_click_listener = cb.build();
        let on_item_click = pb.abstract_method(on_item_click_listener, "onItemClick", 3);

        // Widgets
        let mut cb = pb.class("android.widget.TextView", fw);
        cb.set_super(view);
        let text_view_text = cb.field("text", Type::Str);
        let text_view = cb.build();
        let mut mb = pb.method(text_view, "setText");
        mb.set_param_count(2);
        let (this, s) = (mb.param(0), mb.param(1));
        mb.store(this, text_view_text, Operand::Local(s));
        mb.ret(None);
        let set_text = mb.finish();

        let mut cb = pb.class("android.widget.ListView", fw);
        cb.set_super(view);
        let list_view = cb.build();

        let mut cb = pb.class("android.widget.Adapter", fw);
        cb.set_super(object);
        let adapter_version = cb.field("version", Type::Int);
        let adapter = cb.build();
        let mut mb = pb.method(adapter, "notifyDataSetChanged");
        mb.set_param_count(1);
        let this = mb.param(0);
        let v = mb.fresh_local();
        mb.load(v, this, adapter_version);
        mb.store(this, adapter_version, Operand::Local(v));
        mb.ret(None);
        let notify_data_set_changed = mb.finish();

        let mut cb = pb.class("android.widget.RecyclerView", fw);
        cb.set_super(view);
        let recycler_adapter = cb.field("adapter", Type::Ref(adapter));
        let recycler_view = cb.build();
        let mut mb = pb.method(recycler_view, "setAdapter");
        mb.set_param_count(2);
        let (this, a) = (mb.param(0), mb.param(1));
        mb.store(this, recycler_adapter, Operand::Local(a));
        mb.ret(None);
        let set_adapter = mb.finish();

        // java.util.Timer / TimerTask
        let mut cb = pb.class("java.util.Timer", fw);
        cb.set_super(object);
        let timer = cb.build();
        let timer_schedule = pb.abstract_method(timer, "schedule", 3);
        let mut cb = pb.class("java.util.TimerTask", fw);
        cb.set_super(object);
        let timer_task = cb.build();
        let timer_task_run = pb.abstract_method(timer_task, "run", 1);

        // android.location
        let mut cb = pb.class("android.location.LocationManager", fw);
        cb.set_super(object);
        let location_manager = cb.build();
        let request_location_updates =
            pb.abstract_method(location_manager, "requestLocationUpdates", 2);
        let remove_updates = pb.abstract_method(location_manager, "removeUpdates", 2);
        let mut cb = pb.class("android.location.LocationListener", fw);
        cb.set_interface();
        let location_listener = cb.build();
        let on_location_changed = pb.abstract_method(location_listener, "onLocationChanged", 2);

        // android.text.TextWatcher
        let mut cb = pb.class("android.text.TextWatcher", fw);
        cb.set_interface();
        let text_watcher = cb.build();
        let after_text_changed = pb.abstract_method(text_watcher, "afterTextChanged", 2);
        let add_text_changed_listener = pb.abstract_method(text_view, "addTextChangedListener", 2);

        // android.media.MediaPlayer
        let mut cb = pb.class("android.media.MediaPlayer", fw);
        cb.set_super(object);
        let media_player = cb.build();
        let set_on_completion_listener =
            pb.abstract_method(media_player, "setOnCompletionListener", 2);
        let mut cb = pb.class("android.media.MediaPlayer$OnCompletionListener", fw);
        cb.set_interface();
        let on_completion_listener = cb.build();
        let on_completion = pb.abstract_method(on_completion_listener, "onCompletion", 2);

        // java.lang.Class — reflection surface. Installed last so every
        // pre-existing framework id stays stable across versions.
        let mut cb = pb.class("java.lang.Class", fw);
        cb.set_super(object);
        let java_class = cb.build();
        let class_for_name = pb.abstract_method(java_class, "forName", 1);
        let class_new_instance = pb.abstract_method(java_class, "newInstance", 1);
        let method_invoke = pb.abstract_method(java_class, "invoke", 3);
        let intent_set_class = pb.abstract_method(intent, "setClass", 2);
        let start_activity = pb.abstract_method(context, "startActivity", 2);
        let send_broadcast = pb.abstract_method(context, "sendBroadcast", 2);

        Self {
            object,
            runnable,
            runnable_run,
            thread,
            thread_target,
            thread_init,
            thread_start,
            thread_run,
            array_list,
            array_list_contents,
            array_list_add,
            array_list_get,
            array_list_clear,
            array_list_set_at,
            array_list_get_at,
            index_slots,
            executor,
            executor_execute,
            thread_pool_executor,
            looper,
            get_main_looper,
            my_looper,
            message,
            message_what,
            message_arg1,
            message_obj,
            message_obtain,
            handler,
            handler_init,
            handler_post,
            handler_post_delayed,
            handler_send_message,
            handler_send_empty_message,
            handler_handle_message,
            async_task,
            async_task_execute,
            async_task_cancel,
            async_task_on_pre_execute,
            async_task_do_in_background,
            async_task_on_post_execute,
            bundle,
            context,
            register_receiver,
            unregister_receiver,
            start_service,
            bind_service,
            broadcast_receiver,
            on_receive,
            intent,
            intent_extras,
            intent_get_extras,
            service_connection,
            on_service_connected,
            on_service_disconnected,
            activity,
            activity_on_create,
            activity_on_start,
            activity_on_restart,
            activity_on_resume,
            activity_on_pause,
            activity_on_stop,
            activity_on_destroy,
            find_view_by_id,
            run_on_ui_thread,
            service,
            service_on_create,
            service_on_start_command,
            service_on_destroy,
            view,
            set_on_click_listener,
            set_on_long_click_listener,
            set_on_scroll_listener,
            set_on_item_click_listener,
            view_post,
            view_post_delayed,
            on_click_listener,
            on_click,
            on_long_click_listener,
            on_long_click,
            on_scroll_listener,
            on_scroll,
            on_item_click_listener,
            on_item_click,
            text_view,
            text_view_text,
            set_text,
            list_view,
            recycler_view,
            recycler_adapter,
            set_adapter,
            adapter,
            notify_data_set_changed,
            adapter_version,
            timer,
            timer_schedule,
            timer_task,
            timer_task_run,
            location_manager,
            request_location_updates,
            remove_updates,
            location_listener,
            on_location_changed,
            text_watcher,
            after_text_changed,
            add_text_changed_listener,
            media_player,
            set_on_completion_listener,
            on_completion_listener,
            on_completion,
            java_class,
            class_for_name,
            class_new_instance,
            method_invoke,
            intent_set_class,
            start_activity,
            send_broadcast,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framework_installs_and_validates() {
        let mut pb = ProgramBuilder::new();
        let fw = FrameworkClasses::install(&mut pb);
        let p = pb.finish();
        assert!(p.validate().is_ok());
        assert_eq!(p.class_name(fw.activity), "android.app.Activity");
        assert!(p.is_subtype(fw.activity, fw.context));
        assert!(p.is_subtype(fw.recycler_view, fw.view));
        assert!(p.is_subtype(fw.text_view, fw.object));
    }

    #[test]
    fn thread_run_dispatches_through_target() {
        let mut pb = ProgramBuilder::new();
        let fw = FrameworkClasses::install(&mut pb);
        let p = pb.finish();
        let run = p.method(fw.thread_run);
        assert!(run.has_body());
        // Body: load target; vcall run.
        let stmts: Vec<_> = run.iter_stmts().collect();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn opaque_ops_have_no_body() {
        let mut pb = ProgramBuilder::new();
        let fw = FrameworkClasses::install(&mut pb);
        let p = pb.finish();
        for m in [
            fw.thread_start,
            fw.handler_post,
            fw.async_task_execute,
            fw.find_view_by_id,
            fw.class_for_name,
            fw.class_new_instance,
            fw.method_invoke,
            fw.intent_set_class,
            fw.start_activity,
            fw.send_broadcast,
        ] {
            assert!(
                p.method(m).is_abstract,
                "{} should be opaque",
                p.method_name(m)
            );
        }
        for m in [
            fw.thread_init,
            fw.message_obtain,
            fw.set_text,
            fw.array_list_add,
        ] {
            assert!(
                p.method(m).has_body(),
                "{} should be transparent",
                p.method_name(m)
            );
        }
    }

    #[test]
    fn dispatch_finds_lifecycle_overrides() {
        let mut pb = ProgramBuilder::new();
        let fw = FrameworkClasses::install(&mut pb);
        let mut cb = pb.class("com.example.Main", Origin::App);
        cb.set_super(fw.activity);
        let main = cb.build();
        let mut mb = pb.method(main, "onCreate");
        mb.set_param_count(1);
        mb.ret(None);
        let on_create = mb.finish();
        let p = pb.finish();
        assert_eq!(p.dispatch(main, fw.activity_on_create), Some(on_create));
        // Un-overridden callbacks fall back to the abstract declaration.
        assert_eq!(
            p.dispatch(main, fw.activity_on_stop),
            Some(fw.activity_on_stop)
        );
    }
}
