//! The analyzed unit: an Android app (program + manifest + layouts).

use crate::framework::FrameworkClasses;
use crate::gui::Layout;
use apir::{
    ClassBuilder, ClassId, MethodBuilder, Program, ProgramBuilder, SymbolArena, ValidateError,
};
use std::sync::Arc;

/// The app manifest: declared components.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    /// Declared activities (each becomes a harness).
    pub activities: Vec<ClassId>,
    /// Statically-declared broadcast receivers.
    pub receivers: Vec<ClassId>,
    /// Declared services.
    pub services: Vec<ClassId>,
}

/// A complete Android app ready for analysis.
#[derive(Debug, Clone)]
pub struct AndroidApp {
    /// Human-readable app name (e.g. `OpenSudoku`).
    pub name: String,
    /// The program (app + framework classes).
    pub program: Program,
    /// Ids of the installed framework entities.
    pub framework: FrameworkClasses,
    /// The manifest.
    pub manifest: Manifest,
    /// Resolved layout resources.
    pub layouts: Vec<Layout>,
}

impl AndroidApp {
    /// The layout declared for `activity`, if any.
    pub fn layout_for(&self, activity: ClassId) -> Option<&Layout> {
        self.layouts.iter().find(|l| l.activity == activity)
    }

    /// Resolves `findViewById(view_id)` within `activity` to the view's
    /// class, through the inflated-view map.
    pub fn view_class(&self, activity: ClassId, view_id: i32) -> Option<ClassId> {
        self.layout_for(activity)?.view(view_id).map(|v| v.class)
    }

    /// App "bytecode size": total IR statements (used in Tables 2 and 5).
    pub fn size_stmts(&self) -> usize {
        self.program.stmt_count()
    }
}

/// Builds an [`AndroidApp`]: installs the framework, tracks the manifest
/// and layouts, and exposes the underlying [`ProgramBuilder`].
///
/// # Example
///
/// ```
/// use android_model::AndroidAppBuilder;
///
/// let mut app = AndroidAppBuilder::new("Demo");
/// let main = {
///     let mut cb = app.activity("com.demo.MainActivity");
///     cb.build()
/// };
/// let fw = app.framework().clone();
/// let mut mb = app.method(main, "onCreate");
/// mb.set_param_count(1);
/// mb.ret(None);
/// mb.finish();
/// let _ = fw;
/// let app = app.finish().expect("valid app");
/// assert_eq!(app.manifest.activities, vec![main]);
/// ```
#[derive(Debug)]
pub struct AndroidAppBuilder {
    name: String,
    pb: ProgramBuilder,
    fw: FrameworkClasses,
    manifest: Manifest,
    layouts: Vec<Layout>,
}

impl AndroidAppBuilder {
    /// Creates a builder with the framework pre-installed.
    pub fn new(name: &str) -> Self {
        Self::from_program_builder(name, ProgramBuilder::new())
    }

    /// Creates a builder whose strings are interned in a shared
    /// [`SymbolArena`], so framework names are stored once per process
    /// across every app built over the same arena (corpus runs, the
    /// serve loop).
    pub fn with_arena(name: &str, arena: Arc<SymbolArena>) -> Self {
        Self::from_program_builder(name, ProgramBuilder::with_arena(arena))
    }

    fn from_program_builder(name: &str, mut pb: ProgramBuilder) -> Self {
        let fw = FrameworkClasses::install(&mut pb);
        Self {
            name: name.to_owned(),
            pb,
            fw,
            manifest: Manifest::default(),
            layouts: Vec::new(),
        }
    }

    /// The installed framework ids.
    pub fn framework(&self) -> &FrameworkClasses {
        &self.fw
    }

    /// Mutable access to the underlying program builder.
    pub fn program_builder(&mut self) -> &mut ProgramBuilder {
        &mut self.pb
    }

    /// Begins an activity class (super = `android.app.Activity`) and
    /// registers it in the manifest.
    pub fn activity(&mut self, name: &str) -> ClassBuilder<'_> {
        let sup = self.fw.activity;
        let mut cb = self.pb.class(name, apir::Origin::App);
        cb.set_super(sup);
        self.manifest.activities.push(cb.id());
        cb
    }

    /// Begins a broadcast-receiver class and registers it in the manifest.
    pub fn receiver(&mut self, name: &str) -> ClassBuilder<'_> {
        let sup = self.fw.broadcast_receiver;
        let mut cb = self.pb.class(name, apir::Origin::App);
        cb.set_super(sup);
        self.manifest.receivers.push(cb.id());
        cb
    }

    /// Begins a service class and registers it in the manifest.
    pub fn service(&mut self, name: &str) -> ClassBuilder<'_> {
        let sup = self.fw.service;
        let mut cb = self.pb.class(name, apir::Origin::App);
        cb.set_super(sup);
        self.manifest.services.push(cb.id());
        cb
    }

    /// Begins an app class extending `super_class` (not a component).
    pub fn subclass(&mut self, name: &str, super_class: ClassId) -> ClassBuilder<'_> {
        let mut cb = self.pb.class(name, apir::Origin::App);
        cb.set_super(super_class);
        cb
    }

    /// Begins a library class extending `super_class` (for prioritization
    /// experiments).
    pub fn library_class(&mut self, name: &str, super_class: ClassId) -> ClassBuilder<'_> {
        let mut cb = self.pb.class(name, apir::Origin::Library);
        cb.set_super(super_class);
        cb
    }

    /// Begins a method body on `class`.
    pub fn method(&mut self, class: ClassId, name: &str) -> MethodBuilder<'_> {
        self.pb.method(class, name)
    }

    /// Registers a layout.
    pub fn add_layout(&mut self, layout: Layout) -> &mut Self {
        self.layouts.push(layout);
        self
    }

    /// Registers an already-declared class in the manifest according to its
    /// (current) superclass chain — used by frontends that wire hierarchies
    /// after declaring classes. Non-component classes are ignored.
    pub fn register_component(&mut self, class: ClassId) {
        if self.pb.is_subtype_now(class, self.fw.activity) {
            self.manifest.activities.push(class);
        } else if self.pb.is_subtype_now(class, self.fw.broadcast_receiver) {
            self.manifest.receivers.push(class);
        } else if self.pb.is_subtype_now(class, self.fw.service) {
            self.manifest.services.push(class);
        }
    }

    /// Declares a plain class with no superclass wiring (the frontend sets
    /// it later via [`apir::ProgramBuilder::set_super_of`]).
    pub fn bare_class(&mut self, name: &str) -> ClassId {
        let object = self.fw.object;
        let mut cb = self.pb.class(name, apir::Origin::App);
        cb.set_super(object);
        cb.build()
    }

    /// Finalizes and validates the app.
    ///
    /// # Errors
    ///
    /// Returns the first IR well-formedness violation, if any.
    pub fn finish(self) -> Result<AndroidApp, ValidateError> {
        let program = self.pb.finish();
        program.validate()?;
        Ok(AndroidApp {
            name: self.name,
            program,
            framework: self.fw,
            manifest: self.manifest,
            layouts: self.layouts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gui::ViewDecl;

    #[test]
    fn builds_an_app_with_components_and_layouts() {
        let mut app = AndroidAppBuilder::new("T");
        let main = app.activity("Main").build();
        let recv = app.receiver("Recv").build();
        let svc = app.service("Svc").build();
        let view_class = app.framework().text_view;
        let mut layout = Layout::new(main);
        layout.add_view(ViewDecl::new(1, view_class));
        app.add_layout(layout);
        let mut mb = app.method(main, "onCreate");
        mb.set_param_count(1);
        mb.ret(None);
        mb.finish();
        let app = app.finish().unwrap();
        assert_eq!(app.manifest.activities, vec![main]);
        assert_eq!(app.manifest.receivers, vec![recv]);
        assert_eq!(app.manifest.services, vec![svc]);
        assert_eq!(app.view_class(main, 1), Some(view_class));
        assert_eq!(app.view_class(main, 2), None);
        assert!(app.size_stmts() > 0);
        assert_eq!(app.name, "T");
    }

    #[test]
    fn component_superclasses_are_wired() {
        let mut app = AndroidAppBuilder::new("T");
        let main = app.activity("Main").build();
        let recv = app.receiver("Recv").build();
        let fw = app.framework().clone();
        let app = app.finish().unwrap();
        assert!(app.program.is_subtype(main, fw.activity));
        assert!(app.program.is_subtype(recv, fw.broadcast_receiver));
    }
}
