//! Concurrency actions (§4.2, Table 1).
//!
//! An *action* reifies one unit of event processing: a lifecycle callback
//! invocation, a GUI callback, a posted message/runnable, a thread body, or
//! a system callback. Actions are the nodes of the Static Happens-Before
//! Graph and the context elements of action-sensitive pointer analysis.
//!
//! Actions are minted on the fly during call-graph construction: when the
//! analysis reaches an action-creating framework op (Table 1, column 2) it
//! asks the [`ActionRegistry`] for the action identified by the creation
//! site, the receiver's allocation site, and the resolved entry method.
//! That identity is what makes actions *context-sensitive event processors*
//! while keeping their number finite (recursive self-posting, like
//! `postDelayed(this)`, folds onto the existing action).

use crate::callbacks::GuiEventKind;
use crate::lifecycle::LifecycleEvent;
use apir::{AllocSiteId, CallSiteId, ClassId, MethodId};
use std::collections::HashMap;
use std::fmt;

/// Identifies an [`Action`] within one [`ActionRegistry`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActionId(pub u32);

impl ActionId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ActionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

impl fmt::Display for ActionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// What kind of event an action processes (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActionKind {
    /// The synthetic harness root (the `main` of Figure 4).
    HarnessRoot,
    /// An Activity lifecycle callback; `instance` disambiguates the two
    /// occurrences of `onStart`/`onResume` in the lifecycle CFG ("1"/"2").
    Lifecycle {
        /// The lifecycle event.
        event: LifecycleEvent,
        /// Occurrence number within the lifecycle CFG (1 or 2).
        instance: u8,
    },
    /// A GUI listener callback.
    Gui {
        /// The GUI event kind.
        event: GuiEventKind,
        /// The view resource id, when known from the layout.
        view: Option<i32>,
    },
    /// A background thread body (`Thread.start`).
    ThreadRun,
    /// `AsyncTask.onPreExecute` (main thread).
    AsyncTaskPre,
    /// `AsyncTask.doInBackground` (background thread).
    AsyncTaskBg,
    /// `AsyncTask.onPostExecute` (main thread).
    AsyncTaskPost,
    /// A runnable submitted to an `Executor` pool.
    ExecutorRun,
    /// A runnable posted to a looper (`Handler.post`, `View.post`,
    /// `runOnUiThread`).
    RunnablePost,
    /// A message delivered to `Handler.handleMessage`; `what` is the
    /// constant message code when on-demand constant propagation found one.
    MessageHandle {
        /// Constant `Message.what`, if known.
        what: Option<i64>,
    },
    /// `BroadcastReceiver.onReceive`, enabled by `registerReceiver`.
    Receive,
    /// `ServiceConnection.onServiceConnected`, enabled by `bindService`.
    ServiceConnected,
    /// `ServiceConnection.onServiceDisconnected`.
    ServiceDisconnected,
    /// `Service.onStartCommand`, enabled by `startService`.
    ServiceStart,
    /// A `TimerTask` body scheduled on a `Timer`'s background thread.
    TimerTask,
    /// `LocationListener.onLocationChanged`, enabled by
    /// `requestLocationUpdates`.
    LocationUpdate,
    /// `OnCompletionListener.onCompletion`, enabled by
    /// `setOnCompletionListener`.
    MediaCompletion,
}

impl ActionKind {
    /// Whether the action's code runs on the main (UI) looper.
    ///
    /// `ThreadRun`/`AsyncTaskBg`/`ExecutorRun` run on background threads;
    /// posted runnables/messages run on their handler's looper (decided by
    /// the registry, not the kind). Everything else is main-looper.
    pub fn default_thread(self) -> ThreadKind {
        match self {
            ActionKind::ThreadRun
            | ActionKind::AsyncTaskBg
            | ActionKind::ExecutorRun
            | ActionKind::TimerTask => ThreadKind::Background(None),
            _ => ThreadKind::Main,
        }
    }
}

/// The thread/looper an action executes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreadKind {
    /// The main (UI) looper thread.
    Main,
    /// A background thread; when the payload is set, it identifies the
    /// thread by its root action (a `ThreadRun`/`AsyncTaskBg` action).
    Background(Option<ActionId>),
}

impl ThreadKind {
    /// Whether two actions can interleave *as events on the same looper*.
    ///
    /// Same-looper actions are atomic with respect to each other (looper
    /// atomicity, §4.3 rule 6) but their order is nondeterministic;
    /// cross-thread actions interleave at instruction granularity.
    pub fn same_looper(self, other: ThreadKind) -> bool {
        match (self, other) {
            (ThreadKind::Main, ThreadKind::Main) => true,
            (ThreadKind::Background(Some(a)), ThreadKind::Background(Some(b))) => a == b,
            _ => false,
        }
    }
}

/// One concurrency action.
#[derive(Debug, Clone)]
pub struct Action {
    /// This action's id.
    pub id: ActionId,
    /// What kind of event it processes.
    pub kind: ActionKind,
    /// The unique posting/creating action, when exactly one is known.
    /// `None` for roots or when several actions post here.
    pub parent: Option<ActionId>,
    /// Every action observed to post/create this one (excluding itself).
    pub posters: Vec<ActionId>,
    /// The thread/looper the action runs on.
    pub thread: ThreadKind,
    /// The callback body the action executes.
    pub entry: MethodId,
    /// Allocation site of the receiver object, when known.
    pub recv_site: Option<AllocSiteId>,
    /// The harness (activity class) this action belongs to.
    pub harness: ClassId,
    /// The call site that created/posted the action (harness invocation
    /// site for lifecycle/GUI actions, `post`/`execute`/`start` site for
    /// task actions).
    pub origin_site: Option<CallSiteId>,
}

impl Action {
    /// Whether the action runs on the main looper.
    pub fn on_main(&self) -> bool {
        self.thread == ThreadKind::Main
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ActionKey {
    harness: ClassId,
    kind: ActionKind,
    origin_site: Option<CallSiteId>,
    recv_site: Option<AllocSiteId>,
    entry: MethodId,
    /// The posting action — actions are *context-sensitive* event
    /// processors (§4.2), so the same posted event from two different
    /// actions is two actions. `None` when folded (cycles / deep chains).
    parent: Option<ActionId>,
}

/// Parent chains longer than this fold onto a parentless identity, keeping
/// pathological posting trees bounded.
const MAX_CHAIN_DEPTH: usize = 8;

/// Mints and stores actions, deduplicating by identity.
///
/// Identity is `(harness, kind, origin site, receiver allocation site,
/// entry method, posting action)` — the "context-sensitive event
/// processors" of §4.2. Recursive postings (an action re-posting its own
/// event, like Figure 8's `postDelayed(runner)`, or mutual post cycles)
/// fold onto the existing ancestor processing the same event, keeping the
/// SHBG finite.
#[derive(Debug, Default)]
pub struct ActionRegistry {
    actions: Vec<Action>,
    dedup: HashMap<ActionKey, ActionId>,
}

impl ActionRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the action for the given identity, minting it if new.
    ///
    /// The boolean is `true` when the action was newly created.
    #[allow(clippy::too_many_arguments)]
    pub fn obtain(
        &mut self,
        harness: ClassId,
        kind: ActionKind,
        origin_site: Option<CallSiteId>,
        recv_site: Option<AllocSiteId>,
        entry: MethodId,
        thread: ThreadKind,
        poster: Option<ActionId>,
    ) -> (ActionId, bool) {
        // Cycle folding: if the poster (or one of its ancestors) already
        // processes this very event, reuse it — a re-post, not a new node.
        let mut depth = 0usize;
        let mut cursor = poster;
        while let Some(p) = cursor {
            let a = &self.actions[p.index()];
            if a.harness == harness
                && a.kind == kind
                && a.origin_site == origin_site
                && a.recv_site == recv_site
                && a.entry == entry
            {
                return (p, false);
            }
            depth += 1;
            cursor = a.parent;
        }
        let parent = if depth >= MAX_CHAIN_DEPTH {
            None
        } else {
            poster
        };
        let key = ActionKey {
            harness,
            kind,
            origin_site,
            recv_site,
            entry,
            parent,
        };
        if let Some(&id) = self.dedup.get(&key) {
            if let Some(p) = poster {
                let a = &mut self.actions[id.index()];
                if p != id && !a.posters.contains(&p) {
                    a.posters.push(p);
                }
            }
            return (id, false);
        }
        let id = ActionId(u32::try_from(self.actions.len()).expect("action overflow"));
        self.actions.push(Action {
            id,
            kind,
            parent,
            posters: poster.into_iter().collect(),
            thread,
            entry,
            recv_site,
            harness,
            origin_site,
        });
        self.dedup.insert(key, id);
        (id, true)
    }

    /// Rebuilds a registry from an id-ordered action list (the inverse
    /// of [`Self::actions`], for artifact deserialization). The dedup
    /// index is reconstructed from each action's stored identity —
    /// including its *folded* `parent`, which is what `obtain` keys on —
    /// so later `obtain` calls resolve exactly as in the original
    /// registry. Action ids must equal list positions.
    pub fn from_actions(actions: Vec<Action>) -> Self {
        debug_assert!(actions.iter().enumerate().all(|(i, a)| a.id.index() == i));
        let dedup = actions
            .iter()
            .map(|a| {
                (
                    ActionKey {
                        harness: a.harness,
                        kind: a.kind,
                        origin_site: a.origin_site,
                        recv_site: a.recv_site,
                        entry: a.entry,
                        parent: a.parent,
                    },
                    a.id,
                )
            })
            .collect();
        Self { actions, dedup }
    }

    /// The action with the given id.
    pub fn action(&self, id: ActionId) -> &Action {
        &self.actions[id.index()]
    }

    /// All actions.
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    /// Number of actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Iterates over action ids.
    pub fn ids(&self) -> impl Iterator<Item = ActionId> + '_ {
        (0..self.actions.len() as u32).map(ActionId)
    }

    /// Pins a background action's thread identity to itself (used for
    /// `ThreadRun`/`AsyncTaskBg`/`ExecutorRun` actions after minting).
    pub fn bind_own_thread(&mut self, id: ActionId) {
        let a = &mut self.actions[id.index()];
        if matches!(a.thread, ThreadKind::Background(None)) {
            a.thread = ThreadKind::Background(Some(id));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(reg: &mut ActionRegistry, site: u32, poster: Option<ActionId>) -> (ActionId, bool) {
        reg.obtain(
            ClassId(0),
            ActionKind::RunnablePost,
            Some(CallSiteId(site)),
            Some(AllocSiteId(0)),
            MethodId(1),
            ThreadKind::Main,
            poster,
        )
    }

    #[test]
    fn obtain_deduplicates_by_identity() {
        let mut reg = ActionRegistry::new();
        let (a, new_a) = mk(&mut reg, 0, None);
        let (b, new_b) = mk(&mut reg, 0, None);
        let (c, new_c) = mk(&mut reg, 1, None);
        assert!(new_a && !new_b && new_c);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn distinct_posters_mint_distinct_actions() {
        // Actions are context-sensitive event processors: the same posted
        // event from two different actions is two actions (§4.2).
        let mut reg = ActionRegistry::new();
        let (p1, _) = mk(&mut reg, 10, None);
        let (p2, _) = mk(&mut reg, 11, None);
        let (a, _) = mk(&mut reg, 0, Some(p1));
        let (b, _) = mk(&mut reg, 0, Some(p2));
        assert_ne!(a, b);
        assert_eq!(reg.action(a).parent, Some(p1));
        assert_eq!(reg.action(b).parent, Some(p2));
    }

    #[test]
    fn self_posting_folds_onto_same_action() {
        let mut reg = ActionRegistry::new();
        let (a, _) = mk(&mut reg, 0, None);
        // The action re-posts itself (postDelayed(this) in Figure 8).
        let (b, is_new) = mk(&mut reg, 0, Some(a));
        assert_eq!(a, b);
        assert!(!is_new);
        assert!(reg.action(a).posters.is_empty(), "self-post adds no poster");
    }

    #[test]
    fn mutual_post_cycles_fold() {
        // A posts B (site 1), B posts A' (site 0) — A' folds onto A.
        let mut reg = ActionRegistry::new();
        let (a, _) = mk(&mut reg, 0, None);
        let (b, _) = mk(&mut reg, 1, Some(a));
        let (a2, is_new) = mk(&mut reg, 0, Some(b));
        assert_eq!(a, a2);
        assert!(!is_new);
        let (b2, is_new) = mk(&mut reg, 1, Some(a2));
        assert_eq!(b, b2);
        assert!(!is_new);
        assert_eq!(reg.len(), 2, "the cycle stays two actions");
    }

    #[test]
    fn deep_chains_fold_to_parentless_identity() {
        let mut reg = ActionRegistry::new();
        let (mut cur, _) = mk(&mut reg, 100, None);
        // A chain of distinct sites longer than the depth cap.
        for site in 0..20u32 {
            let (next, _) = mk(&mut reg, site, Some(cur));
            cur = next;
        }
        // Deep nodes folded: total stays bounded by the number of sites
        // plus the cap, not the chain length.
        assert!(reg.len() <= 22, "len = {}", reg.len());
    }

    #[test]
    fn looper_identity() {
        assert!(ThreadKind::Main.same_looper(ThreadKind::Main));
        let t1 = ThreadKind::Background(Some(ActionId(1)));
        let t2 = ThreadKind::Background(Some(ActionId(2)));
        assert!(t1.same_looper(t1));
        assert!(!t1.same_looper(t2));
        assert!(!t1.same_looper(ThreadKind::Main));
        assert!(!ThreadKind::Background(None).same_looper(ThreadKind::Background(None)));
    }

    #[test]
    fn bind_own_thread_pins_background_actions() {
        let mut reg = ActionRegistry::new();
        let (a, _) = reg.obtain(
            ClassId(0),
            ActionKind::ThreadRun,
            Some(CallSiteId(0)),
            None,
            MethodId(0),
            ActionKind::ThreadRun.default_thread(),
            None,
        );
        reg.bind_own_thread(a);
        assert_eq!(reg.action(a).thread, ThreadKind::Background(Some(a)));
        assert!(!reg.action(a).on_main());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use sierra_prng::SplitMix64;

    /// Arbitrary posting sequences keep the registry finite, acyclic in
    /// `parent` chains, and idempotent per identity.
    #[test]
    fn registry_stays_finite_and_acyclic() {
        let mut rng = SplitMix64::new(0xAC7105);
        for _ in 0..256 {
            let posts: Vec<(u32, usize)> = (0..1 + rng.usize(63))
                .map(|_| (rng.usize(6) as u32, rng.usize(8)))
                .collect();
            let mut reg = ActionRegistry::new();
            let mut ids: Vec<ActionId> = Vec::new();
            for (site, poster_idx) in posts {
                let poster = if ids.is_empty() {
                    None
                } else {
                    Some(ids[poster_idx % ids.len()])
                };
                let (id, _) = reg.obtain(
                    ClassId(0),
                    ActionKind::RunnablePost,
                    Some(CallSiteId(site)),
                    None,
                    MethodId(0),
                    ThreadKind::Main,
                    poster,
                );
                ids.push(id);
            }
            // Finiteness: bounded by sites × chain cap, far below the
            // number of obtain calls in adversarial sequences.
            assert!(reg.len() <= 6 * (8 + 1));
            // Parent chains terminate and never revisit an action.
            for a in reg.actions() {
                let mut seen = std::collections::HashSet::new();
                let mut cur = a.parent;
                while let Some(p) = cur {
                    assert!(seen.insert(p), "parent cycle at {p}");
                    cur = reg.action(p).parent;
                }
            }
            // Idempotence: re-obtaining any existing identity is a hit.
            let existing: Vec<Action> = reg.actions().to_vec();
            for a in existing {
                let (id, is_new) = reg.obtain(
                    a.harness,
                    a.kind,
                    a.origin_site,
                    a.recv_site,
                    a.entry,
                    a.thread,
                    a.parent,
                );
                assert_eq!(id, a.id);
                assert!(!is_new);
            }
        }
    }

    /// `same_looper` is symmetric and reflexive-on-identified-loopers.
    #[test]
    fn same_looper_is_symmetric() {
        for a in 0u32..4 {
            for b in 0u32..4 {
                for main_a in [false, true] {
                    for main_b in [false, true] {
                        let ta = if main_a {
                            ThreadKind::Main
                        } else {
                            ThreadKind::Background(Some(ActionId(a)))
                        };
                        let tb = if main_b {
                            ThreadKind::Main
                        } else {
                            ThreadKind::Background(Some(ActionId(b)))
                        };
                        assert_eq!(ta.same_looper(tb), tb.same_looper(ta));
                        assert!(ta.same_looper(ta));
                    }
                }
            }
        }
    }
}
