//! # triage — static race-harm classification
//!
//! SIERRA's refutation stage (§5) decides *whether* a candidate pair can
//! race; it says nothing about whether the race matters. This crate adds
//! the severity-triage layer: every surviving race is classified into a
//! [`Harm`] verdict by a set of cheap static analyses built on the
//! [`apir::dataflow`] framework.
//!
//! ## The harm taxonomy
//!
//! Ordered least- to most-severe:
//!
//! 1. [`Harm::LikelyBenign`] — e.g. both sides store the same constant
//!    (idempotent flag writes), or the racy value provably flows nowhere.
//! 2. [`Harm::ValueInconsistency`] — the racy value steers a branch, is
//!    stored onward, or conflicting values are written; behavior differs
//!    across interleavings but no crash is implied.
//! 3. [`Harm::UseBeforeInit`] — the read may observe the field's type
//!    default (no initializing write happens-before it) and the default
//!    escapes to a sink (framework call, field store, return).
//! 4. [`Harm::NullDeref`] — as above, but the possibly-`null` default is
//!    *dereferenced* (field access or virtual call receiver): the classic
//!    event-race NPE crash the paper's §6.5 case studies describe.
//!
//! ## How a verdict is reached
//!
//! For a read/write pair the read side is the victim: a forward
//! interprocedural [`nullness::NullnessAnalysis`] taints the racy load and
//! tracks nullness, [`apir::dataflow::solve_interprocedural`] pushes the
//! taint into app-local callees, and the evidence collector walks the
//! fixpoint looking for dereferences, sinks, and tainted branches. The
//! crash-capable verdicts additionally require `may_default`: no write to
//! the field is ordered happens-before (or within the same action as) the
//! reader, so the type default is actually observable. Write/write pairs
//! are compared by stored constant value. Results are cached per
//! `(reader method, field, may_default)` so multi-pair fields classify
//! once.

pub mod nullness;

use apir::dataflow::{self, CallOracle, InterResults, ProgramPoint};
use apir::{
    local_defs, CallSiteId, ClassId, MethodId, Operand, Origin, Program, Stmt, StmtAddr, Terminator,
};
use nullness::NullnessAnalysis;
use pointer::{Access, Analysis};
use shbg::Shbg;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::str::FromStr;

use android_model::ActionId;
use apir::FieldId;

/// Severity verdict for one race, least- to most-severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Harm {
    /// No observable consequence found (e.g. idempotent stores).
    LikelyBenign,
    /// The racy value influences behavior (branch, onward store) but no
    /// crash is implied.
    ValueInconsistency,
    /// An uninitialized (type-default) value can escape to a sink.
    UseBeforeInit,
    /// A possibly-null default can be dereferenced: crash-capable.
    NullDeref,
}

impl Harm {
    /// Whether this verdict predicts a crash-capable outcome.
    pub fn is_crash(self) -> bool {
        matches!(self, Harm::UseBeforeInit | Harm::NullDeref)
    }

    /// Stable kebab-case name (used by reports and `--min-harm`).
    pub fn name(self) -> &'static str {
        match self {
            Harm::LikelyBenign => "likely-benign",
            Harm::ValueInconsistency => "value-inconsistency",
            Harm::UseBeforeInit => "use-before-init",
            Harm::NullDeref => "null-deref",
        }
    }
}

impl fmt::Display for Harm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown harm name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseHarmError(pub String);

impl fmt::Display for ParseHarmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown harm level `{}` (expected benign, value, use-before-init, or null-deref)",
            self.0
        )
    }
}

impl std::error::Error for ParseHarmError {}

impl FromStr for Harm {
    type Err = ParseHarmError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "benign" | "likely-benign" => Ok(Harm::LikelyBenign),
            "value" | "value-inconsistency" => Ok(Harm::ValueInconsistency),
            "use-before-init" => Ok(Harm::UseBeforeInit),
            "null-deref" | "crash" => Ok(Harm::NullDeref),
            other => Err(ParseHarmError(other.to_string())),
        }
    }
}

/// Why the classifier reached its verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// The contested field.
    pub field: FieldId,
    /// The action performing the racy read (`None` for write/write pairs).
    pub reading_action: Option<ActionId>,
    /// Human-readable flow summary (e.g. the dereference site).
    pub summary: String,
}

/// The classifier's output for one race.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriageVerdict {
    /// Severity class.
    pub harm: Harm,
    /// Supporting evidence.
    pub witness: Witness,
}

/// Counters for the triage stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TriageStats {
    /// Races classified (one verdict each).
    pub classified: usize,
    /// Verdict histogram.
    pub null_deref: usize,
    /// See [`Harm::UseBeforeInit`].
    pub use_before_init: usize,
    /// See [`Harm::ValueInconsistency`].
    pub value_inconsistency: usize,
    /// See [`Harm::LikelyBenign`].
    pub likely_benign: usize,
    /// Total dataflow worklist iterations across all solves.
    pub dataflow_iterations: usize,
    /// Methods reached by the interprocedural nullness solves (summed,
    /// after caching).
    pub methods_analyzed: usize,
    /// Wall-clock nanoseconds (filled by the session).
    pub triage_ns: u64,
}

impl TriageStats {
    /// Records one verdict in the histogram.
    fn record(&mut self, harm: Harm) {
        self.classified += 1;
        match harm {
            Harm::NullDeref => self.null_deref += 1,
            Harm::UseBeforeInit => self.use_before_init += 1,
            Harm::ValueInconsistency => self.value_inconsistency += 1,
            Harm::LikelyBenign => self.likely_benign += 1,
        }
    }

    /// Merges another app's counters into this one (corpus totals).
    pub fn merge(&mut self, other: &TriageStats) {
        self.classified += other.classified;
        self.null_deref += other.null_deref;
        self.use_before_init += other.use_before_init;
        self.value_inconsistency += other.value_inconsistency;
        self.likely_benign += other.likely_benign;
        self.dataflow_iterations += other.dataflow_iterations;
        self.methods_analyzed += other.methods_analyzed;
        self.triage_ns += other.triage_ns;
    }
}

/// Deterministic call oracle over the pointer analysis' call graph:
/// context projected away, callees restricted to app-origin methods with
/// bodies (framework and library calls are sinks, not flows), sorted and
/// deduplicated so triage output is independent of `HashMap` iteration.
struct CgOracle {
    targets: BTreeMap<(MethodId, CallSiteId), Vec<MethodId>>,
}

impl CgOracle {
    fn build(program: &Program, analysis: &Analysis) -> CgOracle {
        let mut targets: BTreeMap<(MethodId, CallSiteId), Vec<MethodId>> = BTreeMap::new();
        for (&(caller, _ctx, site), callees) in &analysis.cg_edges {
            for &(callee, _cctx) in callees {
                if program.method_origin(callee) == Origin::App && program.method(callee).has_body()
                {
                    targets.entry((caller, site)).or_default().push(callee);
                }
            }
        }
        for v in targets.values_mut() {
            v.sort_unstable();
            v.dedup();
        }
        CgOracle { targets }
    }
}

impl CallOracle for CgOracle {
    fn callees(&self, addr: StmtAddr, stmt: &Stmt) -> Vec<MethodId> {
        let Stmt::Call { site, .. } = stmt else {
            return Vec::new();
        };
        self.targets
            .get(&(addr.method, *site))
            .cloned()
            .unwrap_or_default()
    }
}

/// Flow evidence harvested from one nullness fixpoint, keyed by what the
/// harm resolution needs. Each summary is the first (block-order,
/// method-id-order) site of its kind.
#[derive(Debug, Clone, Default)]
struct Flows {
    /// A tainted, possibly-null value is dereferenced here.
    deref: Option<String>,
    /// A tainted value escapes (framework/library call, onward store,
    /// return to the dispatcher).
    sink: Option<String>,
    /// A tainted value decides a branch here.
    branch: Option<String>,
    /// Worklist iterations spent.
    iterations: usize,
    /// Methods reached.
    methods: usize,
}

/// Classifies every surviving race. `pairs` are the (a, b) access pairs of
/// the surviving reports, in report order; the returned verdicts are
/// index-aligned with them. `exclude_class` is the synthetic harness class
/// (its accesses never participate).
pub fn classify_races(
    program: &Program,
    analysis: &Analysis,
    graph: &Shbg,
    exclude_class: Option<ClassId>,
    pairs: &[(Access, Access)],
) -> (Vec<TriageVerdict>, TriageStats) {
    let mut stats = TriageStats::default();
    if pairs.is_empty() {
        return (Vec::new(), stats);
    }

    let oracle = CgOracle::build(program, analysis);

    // Every write in the program, per field: the happens-before evidence
    // for `may_default` (can the reader observe the type default?).
    let all_accesses = pointer::collect_accesses(analysis, program, exclude_class);
    let mut writes_by_field: HashMap<FieldId, Vec<&Access>> = HashMap::new();
    for a in &all_accesses {
        if a.is_write {
            writes_by_field.entry(a.field).or_default().push(a);
        }
    }

    // (reader method, field, may_default) → flow evidence. Distinct pairs
    // on the same field frequently share a reader.
    let mut cache: HashMap<(MethodId, FieldId, bool), Flows> = HashMap::new();

    let verdicts = pairs
        .iter()
        .map(|(a, b)| {
            let verdict = classify_pair(
                program,
                graph,
                &oracle,
                &writes_by_field,
                &mut cache,
                &mut stats,
                a,
                b,
            );
            stats.record(verdict.harm);
            verdict
        })
        .collect();
    (verdicts, stats)
}

/// Whether a read at `reader` can observe `field`'s type default: true iff
/// no write to the field is in the reader's own action or ordered
/// happens-before it.
fn may_observe_default(
    graph: &Shbg,
    writes_by_field: &HashMap<FieldId, Vec<&Access>>,
    reader: &Access,
) -> bool {
    let Some(writes) = writes_by_field.get(&reader.field) else {
        return true;
    };
    !writes.iter().any(|w| {
        w.overlaps(reader) && (w.action == reader.action || graph.ordered(w.action, reader.action))
    })
}

#[allow(clippy::too_many_arguments)]
fn classify_pair(
    program: &Program,
    graph: &Shbg,
    oracle: &CgOracle,
    writes_by_field: &HashMap<FieldId, Vec<&Access>>,
    cache: &mut HashMap<(MethodId, FieldId, bool), Flows>,
    stats: &mut TriageStats,
    a: &Access,
    b: &Access,
) -> TriageVerdict {
    let field = a.field;
    if a.is_write && b.is_write {
        return classify_write_write(program, a, b);
    }

    // Read/write: the read side is the victim. (A pair always has at least
    // one write; candidate generation never emits read/read.)
    let (read, _write) = if a.is_write { (b, a) } else { (a, b) };
    let may_default = may_observe_default(graph, writes_by_field, read);
    let ref_field = program.field(field).ty.is_reference();

    let key = (read.method, field, may_default);
    cache
        .entry(key)
        .or_insert_with(|| analyze_read_side(program, oracle, read.method, field, stats));
    let flows = &cache[&key];

    let (harm, summary) = if ref_field && may_default {
        if let Some(s) = &flows.deref {
            (Harm::NullDeref, s.clone())
        } else if let Some(s) = &flows.sink {
            (Harm::UseBeforeInit, s.clone())
        } else if let Some(s) = &flows.branch {
            (Harm::ValueInconsistency, s.clone())
        } else {
            (
                Harm::LikelyBenign,
                "racy read value does not flow to a deref, sink, or branch".to_string(),
            )
        }
    } else if let Some(s) = flows.branch.as_ref().or(flows.sink.as_ref()) {
        // Initialized-before or primitive: stale-value trouble at worst.
        (Harm::ValueInconsistency, s.clone())
    } else {
        (
            Harm::LikelyBenign,
            "racy read value does not flow to a deref, sink, or branch".to_string(),
        )
    };

    TriageVerdict {
        harm,
        witness: Witness {
            field,
            reading_action: Some(read.action),
            summary,
        },
    }
}

/// Write/write pair: idempotent if both sides store the same resolvable
/// constant, value-inconsistent otherwise.
fn classify_write_write(program: &Program, a: &Access, b: &Access) -> TriageVerdict {
    let stored = |acc: &Access| -> Option<apir::ConstValue> {
        let m = program.method(acc.method);
        let value = match m.stmt_at(acc.addr)? {
            Stmt::Store { value, .. } | Stmt::StaticStore { value, .. } => *value,
            _ => return None,
        };
        local_defs::resolve_const_operand(m, acc.addr, value)
    };
    let (harm, summary) = match (stored(a), stored(b)) {
        (Some(va), Some(vb)) if va == vb => (
            Harm::LikelyBenign,
            format!("both writes store the same constant {va:?}"),
        ),
        _ => (
            Harm::ValueInconsistency,
            "conflicting writes: final value depends on interleaving".to_string(),
        ),
    };
    TriageVerdict {
        harm,
        witness: Witness {
            field: a.field,
            reading_action: None,
            summary,
        },
    }
}

/// Runs the interprocedural nullness/taint analysis rooted at the reading
/// method and harvests flow evidence from the fixpoint.
fn analyze_read_side(
    program: &Program,
    oracle: &CgOracle,
    reader: MethodId,
    field: FieldId,
    stats: &mut TriageStats,
) -> Flows {
    let analysis = NullnessAnalysis { racy_field: field };
    let results = dataflow::solve_interprocedural(program, oracle, &[reader], &analysis);

    let mut flows = Flows {
        methods: results.per_method.len(),
        ..Flows::default()
    };
    for res in results.per_method.values() {
        flows.iterations += res.iterations;
    }
    stats.dataflow_iterations += flows.iterations;
    stats.methods_analyzed += flows.methods;

    collect_evidence(program, oracle, &analysis, &results, &mut flows);
    flows
}

/// Walks every reached method's fixpoint in deterministic order, recording
/// the first dereference, sink, and branch the tainted value reaches.
fn collect_evidence(
    program: &Program,
    oracle: &CgOracle,
    analysis: &NullnessAnalysis,
    results: &InterResults<nullness::NullState>,
    flows: &mut Flows,
) {
    for (&mid, res) in &results.per_method {
        let method = program.method(mid);
        let site = |addr: StmtAddr| {
            format!(
                "{}.{} at {addr:?}",
                program.class_name(method.class),
                program.name(method.name)
            )
        };
        dataflow::visit_forward(method, analysis, res, |point, state| match point {
            ProgramPoint::Stmt(addr, stmt) => {
                // A Store is both a potential dereference (of its base)
                // and a potential sink (of its stored value).
                if let Stmt::Load { obj, .. } | Stmt::Store { obj, .. } = stmt {
                    let v = state.get(*obj);
                    if v.racy && v.nullness.may_be_null() && flows.deref.is_none() {
                        flows.deref = Some(format!("possibly-null field access in {}", site(addr)));
                    }
                }
                match stmt {
                    Stmt::Call { receiver, args, .. } => {
                        if let Some(r) = receiver {
                            let v = state.get(*r);
                            if v.racy && v.nullness.may_be_null() && flows.deref.is_none() {
                                flows.deref =
                                    Some(format!("possibly-null call receiver in {}", site(addr)));
                            }
                        }
                        // Args flowing into calls we do not follow escape.
                        if oracle.callees(addr, stmt).is_empty()
                            && args.iter().any(|a| state.eval(*a).racy)
                            && flows.sink.is_none()
                        {
                            flows.sink = Some(format!(
                                "racy value passed to opaque call in {}",
                                site(addr)
                            ));
                        }
                    }
                    Stmt::Store { value, .. } | Stmt::StaticStore { value, .. }
                        if state.eval(*value).racy && flows.sink.is_none() =>
                    {
                        flows.sink = Some(format!("racy value stored onward in {}", site(addr)));
                    }
                    _ => {}
                }
            }
            ProgramPoint::Terminator(block, term) => match term {
                Terminator::If {
                    cond: Operand::Local(c),
                    ..
                } if state.get(*c).racy && flows.branch.is_none() => {
                    flows.branch = Some(format!(
                        "racy value decides branch in {}.{} at {:?}",
                        program.class_name(method.class),
                        program.name(method.name),
                        block
                    ));
                }
                Terminator::Return(Some(Operand::Local(l)))
                    if state.get(*l).racy && flows.sink.is_none() =>
                {
                    flows.sink = Some(format!(
                        "racy value returned from {}.{}",
                        program.class_name(method.class),
                        program.name(method.name)
                    ));
                }
                _ => {}
            },
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harm_severity_and_parse_round_trip() {
        assert!(Harm::LikelyBenign < Harm::ValueInconsistency);
        assert!(Harm::ValueInconsistency < Harm::UseBeforeInit);
        assert!(Harm::UseBeforeInit < Harm::NullDeref);
        assert!(Harm::NullDeref.is_crash() && Harm::UseBeforeInit.is_crash());
        assert!(!Harm::ValueInconsistency.is_crash() && !Harm::LikelyBenign.is_crash());
        for h in [
            Harm::LikelyBenign,
            Harm::ValueInconsistency,
            Harm::UseBeforeInit,
            Harm::NullDeref,
        ] {
            assert_eq!(h.name().parse::<Harm>().unwrap(), h);
            assert_eq!(h.to_string(), h.name());
        }
        assert_eq!("benign".parse::<Harm>().unwrap(), Harm::LikelyBenign);
        assert_eq!("value".parse::<Harm>().unwrap(), Harm::ValueInconsistency);
        assert_eq!("crash".parse::<Harm>().unwrap(), Harm::NullDeref);
        assert!("bogus".parse::<Harm>().is_err());
    }

    #[test]
    fn stats_histogram_and_merge() {
        let mut s = TriageStats::default();
        s.record(Harm::NullDeref);
        s.record(Harm::LikelyBenign);
        s.record(Harm::LikelyBenign);
        assert_eq!(s.classified, 3);
        assert_eq!(s.null_deref, 1);
        assert_eq!(s.likely_benign, 2);
        let mut t = TriageStats::default();
        t.record(Harm::ValueInconsistency);
        s.merge(&t);
        assert_eq!(s.classified, 4);
        assert_eq!(s.value_inconsistency, 1);
    }
}
