//! The nullness × racy-provenance lattice driving crash-capable triage.
//!
//! Each local is tracked as a product of a four-point nullness lattice
//! (⊥ < {Null, NonNull} < ⊤) and a may-taint bit recording whether the
//! value derives from the racy field read. Absent map entries mean
//! "⊤ and untainted" — the common case for untracked locals — which
//! keeps states tiny and, unlike an absent-means-⊥ encoding, makes every
//! transfer monotone (looking up an absent local yields the same
//! [`ValState::UNTRACKED`] the join treats it as).
//!
//! The analysis is a forward instance of [`apir::dataflow`]: statements
//! transfer values, `== null` / `!= null` comparisons refine the branch
//! edges, and [`apir::dataflow::solve_interprocedural`] carries taint
//! into app-local callees through argument binding.

use apir::dataflow::{DataflowAnalysis, InterproceduralAnalysis, JoinSemiLattice};
use apir::{
    BinOp, BlockId, CmpOp, ConstValue, FieldId, Local, Method, Operand, Stmt, StmtAddr, Terminator,
};
use std::collections::BTreeMap;

/// The four-point nullness lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Nullness {
    /// Unreachable / no value yet.
    Bottom,
    /// Definitely the null reference.
    Null,
    /// Definitely not null (fresh allocation, non-null constant,
    /// primitive).
    NonNull,
    /// Unknown: may or may not be null.
    Top,
}

impl Nullness {
    /// Least upper bound.
    pub fn join(self, other: Nullness) -> Nullness {
        use Nullness::*;
        match (self, other) {
            (Bottom, x) | (x, Bottom) => x,
            (Top, _) | (_, Top) => Top,
            (a, b) if a == b => a,
            _ => Top, // Null ∨ NonNull
        }
    }

    /// The partial order induced by [`join`](Self::join).
    pub fn le(self, other: Nullness) -> bool {
        self.join(other) == other
    }

    /// Whether a value of this abstract state can be the null reference.
    pub fn may_be_null(self) -> bool {
        matches!(self, Nullness::Null | Nullness::Top)
    }
}

/// One local's abstract value: nullness × racy provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValState {
    /// Nullness component.
    pub nullness: Nullness,
    /// Whether the value (may) derive from the racy field read.
    pub racy: bool,
}

impl ValState {
    /// The implicit state of every untracked local: unknown, untainted.
    pub const UNTRACKED: ValState = ValState {
        nullness: Nullness::Top,
        racy: false,
    };

    /// Pointwise least upper bound.
    pub fn join(self, other: ValState) -> ValState {
        ValState {
            nullness: self.nullness.join(other.nullness),
            racy: self.racy || other.racy,
        }
    }

    /// Pointwise partial order.
    pub fn le(self, other: ValState) -> bool {
        self.nullness.le(other.nullness) && (!self.racy || other.racy)
    }

    fn of(nullness: Nullness, racy: bool) -> ValState {
        ValState { nullness, racy }
    }
}

/// Block-entry state: locals with a tracked value. Absent locals read as
/// [`ValState::UNTRACKED`], and entries that join up to exactly that are
/// dropped so structurally different maps never encode the same state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NullState(BTreeMap<Local, ValState>);

impl NullState {
    /// The abstract value of `local`.
    pub fn get(&self, local: Local) -> ValState {
        self.0.get(&local).copied().unwrap_or(ValState::UNTRACKED)
    }

    /// The abstract value of an operand (constants fold immediately).
    pub fn eval(&self, op: Operand) -> ValState {
        match op {
            Operand::Local(l) => self.get(l),
            Operand::Const(ConstValue::Null) => ValState::of(Nullness::Null, false),
            Operand::Const(_) => ValState::of(Nullness::NonNull, false),
        }
    }

    /// Sets `local` (normalizing UNTRACKED to absence).
    pub fn set(&mut self, local: Local, v: ValState) {
        if v == ValState::UNTRACKED {
            self.0.remove(&local);
        } else {
            self.0.insert(local, v);
        }
    }
}

impl JoinSemiLattice for NullState {
    fn join(&mut self, other: &Self) -> bool {
        let mut changed = false;
        // Keys tracked on either side; everything else joins trivially
        // (UNTRACKED ∨ UNTRACKED).
        let keys: Vec<Local> = self.0.keys().chain(other.0.keys()).copied().collect();
        for k in keys {
            let cur = self.get(k);
            let joined = cur.join(other.get(k));
            if joined != cur {
                changed = true;
            }
            self.set(k, joined);
        }
        changed
    }
}

/// The forward taint/nullness analysis for one racy field.
pub struct NullnessAnalysis {
    /// The field whose reads are the taint source.
    pub racy_field: FieldId,
}

impl NullnessAnalysis {
    /// Refinement from a `x == null` / `x != null` branch: finds the
    /// comparison defining `cond` in `from` (scanning backwards, giving
    /// up at any later redefinition of the compared local) and returns
    /// the local plus its nullness on the `taken_then` edge.
    fn null_test(&self, method: &Method, from: BlockId, cond: Local) -> Option<(Local, CmpOp)> {
        let mut clobbered: Vec<Local> = Vec::new();
        for stmt in method.block(from).stmts.iter().rev() {
            if let Stmt::BinOp {
                dst,
                op: BinOp::Cmp(op @ (CmpOp::Eq | CmpOp::Ne)),
                lhs,
                rhs,
            } = stmt
            {
                if *dst == cond {
                    let tested = match (lhs, rhs) {
                        (Operand::Local(x), Operand::Const(ConstValue::Null))
                        | (Operand::Const(ConstValue::Null), Operand::Local(x)) => *x,
                        _ => return None,
                    };
                    if clobbered.contains(&tested) {
                        return None; // redefined after the test
                    }
                    return Some((tested, *op));
                }
            }
            if let Some(d) = stmt.def() {
                if d == cond {
                    return None; // cond defined by something else
                }
                clobbered.push(d);
            }
        }
        None
    }
}

impl DataflowAnalysis for NullnessAnalysis {
    type State = NullState;

    fn boundary_state(&self, _method: &Method) -> NullState {
        NullState::default()
    }

    fn transfer_stmt(&self, _addr: StmtAddr, stmt: &Stmt, state: &mut NullState) {
        match stmt {
            Stmt::Const { dst, value } => {
                let n = if *value == ConstValue::Null {
                    Nullness::Null
                } else {
                    Nullness::NonNull
                };
                state.set(*dst, ValState::of(n, false));
            }
            Stmt::Move { dst, src } => {
                let v = state.get(*src);
                state.set(*dst, v);
            }
            Stmt::New { dst, .. } => {
                state.set(*dst, ValState::of(Nullness::NonNull, false));
            }
            // Arithmetic and comparisons yield primitives (never null);
            // taint flows through so branch conditions computed from the
            // racy value stay attributed.
            Stmt::UnOp { dst, src, .. } => {
                let racy = state.eval(*src).racy;
                state.set(*dst, ValState::of(Nullness::NonNull, racy));
            }
            Stmt::BinOp { dst, lhs, rhs, .. } => {
                let racy = state.eval(*lhs).racy || state.eval(*rhs).racy;
                state.set(*dst, ValState::of(Nullness::NonNull, racy));
            }
            Stmt::Load { dst, field, .. } | Stmt::StaticLoad { dst, field } => {
                if *field == self.racy_field {
                    // The taint source: the value racing with the write.
                    // ⊤ nullness — the read may observe the type default.
                    state.set(*dst, ValState::of(Nullness::Top, true));
                } else {
                    state.set(*dst, ValState::UNTRACKED);
                }
            }
            Stmt::Call { dst, .. } => {
                if let Some(d) = dst {
                    state.set(*d, ValState::UNTRACKED);
                }
            }
            Stmt::Store { .. } | Stmt::StaticStore { .. } => {}
        }
    }

    fn transfer_edge(
        &self,
        method: &Method,
        from: BlockId,
        term: &Terminator,
        to: BlockId,
        state: &NullState,
    ) -> Option<NullState> {
        let mut out = state.clone();
        if let Terminator::If {
            cond: Operand::Local(c),
            then_bb,
            else_bb,
        } = term
        {
            if then_bb != else_bb {
                if let Some((tested, op)) = self.null_test(method, from, *c) {
                    let on_then = to == *then_bb;
                    // `x == null`: then ⇒ Null, else ⇒ NonNull. `!=` flips.
                    let refined = match (op, on_then) {
                        (CmpOp::Eq, true) | (CmpOp::Ne, false) => Nullness::Null,
                        _ => Nullness::NonNull,
                    };
                    let cur = out.get(tested);
                    out.set(tested, ValState::of(refined, cur.racy));
                }
            }
        }
        Some(out)
    }
}

impl InterproceduralAnalysis for NullnessAnalysis {
    fn enter_call(&self, call: &Stmt, caller: &NullState, callee: &Method) -> NullState {
        let mut entry = NullState::default();
        if let Stmt::Call { receiver, args, .. } = call {
            let mut params = Vec::new();
            if let Some(r) = receiver {
                params.push(caller.get(*r));
            }
            params.extend(args.iter().map(|a| caller.eval(*a)));
            for (i, v) in params.into_iter().enumerate() {
                if i >= callee.param_count as usize {
                    break;
                }
                entry.set(Local(i as u32), v);
            }
        }
        entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sierra_prng::SplitMix64;

    const POINTS: [Nullness; 4] = [
        Nullness::Bottom,
        Nullness::Null,
        Nullness::NonNull,
        Nullness::Top,
    ];

    #[test]
    fn nullness_join_laws_hold() {
        for &a in &POINTS {
            assert_eq!(a.join(a), a, "idempotent");
            assert!(Nullness::Bottom.le(a), "⊥ is bottom");
            assert!(a.le(Nullness::Top), "⊤ is top");
            for &b in &POINTS {
                assert_eq!(a.join(b), b.join(a), "commutative");
                assert!(a.le(a.join(b)), "upper bound");
                for &c in &POINTS {
                    assert_eq!(a.join(b).join(c), a.join(b.join(c)), "associative");
                }
            }
        }
        assert_eq!(Nullness::Null.join(Nullness::NonNull), Nullness::Top);
        assert!(!Nullness::Null.le(Nullness::NonNull));
        assert!(!Nullness::NonNull.le(Nullness::Null));
        assert!(!Nullness::NonNull.may_be_null());
        assert!(Nullness::Top.may_be_null() && Nullness::Null.may_be_null());
    }

    fn random_val(rng: &mut SplitMix64) -> ValState {
        ValState {
            nullness: *rng.pick(&POINTS),
            racy: rng.bool(),
        }
    }

    fn random_state(rng: &mut SplitMix64, locals: u32) -> NullState {
        let mut s = NullState::default();
        for _ in 0..rng.usize(locals as usize + 1) {
            s.set(Local(rng.usize(locals as usize) as u32), random_val(rng));
        }
        s
    }

    #[test]
    fn state_join_laws_hold_on_random_states() {
        let mut rng = SplitMix64::new(0x7124_6E55);
        for _ in 0..512 {
            let a = random_state(&mut rng, 6);
            let b = random_state(&mut rng, 6);
            let c = random_state(&mut rng, 6);

            let mut ab = a.clone();
            ab.join(&b);
            let mut ba = b.clone();
            ba.join(&a);
            assert_eq!(ab, ba, "commutative");

            let mut ab_c = ab.clone();
            ab_c.join(&c);
            let mut bc = b.clone();
            bc.join(&c);
            let mut a_bc = a.clone();
            a_bc.join(&bc);
            assert_eq!(ab_c, a_bc, "associative");

            let mut aa = a.clone();
            assert!(!aa.join(&a), "idempotent join reports no change");
            assert!(a.le(&ab) && b.le(&ab), "join is an upper bound");
            assert!(a.le(&a), "reflexive");
        }
    }

    /// Transfers must be monotone: s1 ≤ s2 ⇒ f(s1) ≤ f(s2), over random
    /// statement shapes and random comparable state pairs.
    #[test]
    fn transfer_is_monotone_on_random_programs() {
        let mut rng = SplitMix64::new(0x7124_3357);
        let racy_field = FieldId(0);
        let analysis = NullnessAnalysis { racy_field };
        let locals = 6u32;
        for _ in 0..512 {
            let s1 = random_state(&mut rng, locals);
            let mut s2 = s1.clone();
            s2.join(&random_state(&mut rng, locals));
            let l = |rng: &mut SplitMix64| Local(rng.usize(locals as usize) as u32);
            let stmt = match rng.usize(7) {
                0 => Stmt::Const {
                    dst: l(&mut rng),
                    value: if rng.bool() {
                        ConstValue::Null
                    } else {
                        ConstValue::Int(3)
                    },
                },
                1 => Stmt::Move {
                    dst: l(&mut rng),
                    src: l(&mut rng),
                },
                2 => Stmt::BinOp {
                    dst: l(&mut rng),
                    op: BinOp::Add,
                    lhs: Operand::Local(l(&mut rng)),
                    rhs: Operand::Local(l(&mut rng)),
                },
                3 => Stmt::Load {
                    dst: l(&mut rng),
                    obj: l(&mut rng),
                    field: FieldId(rng.usize(2) as u32), // racy or not
                },
                4 => Stmt::New {
                    dst: l(&mut rng),
                    class: apir::ClassId(0),
                    site: apir::AllocSiteId(0),
                },
                5 => Stmt::UnOp {
                    dst: l(&mut rng),
                    op: apir::UnOp::Not,
                    src: Operand::Local(l(&mut rng)),
                },
                _ => Stmt::Call {
                    site: apir::CallSiteId(0),
                    dst: Some(l(&mut rng)),
                    kind: apir::InvokeKind::Static,
                    callee: apir::MethodId(0),
                    receiver: None,
                    args: vec![],
                },
            };
            let addr = StmtAddr::new(apir::MethodId(0), BlockId(0), 0);
            let (mut t1, mut t2) = (s1.clone(), s2.clone());
            analysis.transfer_stmt(addr, &stmt, &mut t1);
            analysis.transfer_stmt(addr, &stmt, &mut t2);
            assert!(s1.le(&s2), "precondition");
            assert!(t1.le(&t2), "monotone transfer of {stmt:?}");
        }
    }

    #[test]
    fn lookup_of_untracked_locals_is_top_untainted() {
        let s = NullState::default();
        assert_eq!(s.get(Local(3)), ValState::UNTRACKED);
        assert_eq!(
            s.eval(Operand::Const(ConstValue::Null)).nullness,
            Nullness::Null
        );
        assert_eq!(
            s.eval(Operand::Const(ConstValue::Int(1))).nullness,
            Nullness::NonNull
        );
        let mut s2 = s.clone();
        s2.set(Local(3), ValState::UNTRACKED);
        assert_eq!(s, s2, "UNTRACKED normalizes to absence");
    }
}
