//! The per-component event-order automaton (the paper's Figure 5
//! lifecycle machine, reified as an explicit labelled graph).
//!
//! The harness generator encodes the activity lifecycle as a CFG
//! (`harness_gen::generate`); this module re-derives the same machine
//! as a small automaton over [`LifecycleEvent`] labels so that
//! realizable-history questions ("can callback B still be delivered
//! once callback A has run?") become reachability queries over at most
//! eight states. One automaton instance describes *every* component:
//! the per-component part of a history check is the occurrence-state
//! sets attached to that component's actions, not the machine itself.

use android_model::LifecycleEvent;

/// A lifecycle-machine state: "where in Figure 5 the component is"
/// after the most recent lifecycle callback returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LifeState {
    /// Before `onCreate`.
    Init,
    /// After `onCreate` (instance 1 of the machine's entry column).
    Created,
    /// After `onStart` (either occurrence).
    Started,
    /// After `onResume` (either occurrence) — the interactive state.
    Resumed,
    /// After `onPause`.
    Paused,
    /// After `onStop`.
    Stopped,
    /// After `onRestart` (returning from stopped).
    Restarted,
    /// After `onDestroy` — terminal.
    Destroyed,
}

impl LifeState {
    /// All states, in declaration order (also their bit positions).
    pub const ALL: [LifeState; 8] = [
        LifeState::Init,
        LifeState::Created,
        LifeState::Started,
        LifeState::Resumed,
        LifeState::Paused,
        LifeState::Stopped,
        LifeState::Restarted,
        LifeState::Destroyed,
    ];

    /// The state's bit position in a [`StateSet`].
    pub fn index(self) -> usize {
        self as usize
    }
}

/// A set of [`LifeState`]s as an 8-bit mask.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StateSet(u8);

impl StateSet {
    /// The empty set.
    pub const EMPTY: StateSet = StateSet(0);
    /// All eight states.
    pub const FULL: StateSet = StateSet(0xFF);

    /// The singleton set `{s}`.
    pub fn singleton(s: LifeState) -> StateSet {
        StateSet(1 << s.index())
    }

    /// Whether `s` is a member.
    pub fn contains(self, s: LifeState) -> bool {
        self.0 & (1 << s.index()) != 0
    }

    /// Inserts `s`, returning the grown set.
    #[must_use]
    pub fn with(self, s: LifeState) -> StateSet {
        StateSet(self.0 | (1 << s.index()))
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: StateSet) -> StateSet {
        StateSet(self.0 | other.0)
    }

    /// Set difference.
    #[must_use]
    pub fn minus(self, other: StateSet) -> StateSet {
        StateSet(self.0 & !other.0)
    }

    /// Whether the two sets share a state.
    pub fn intersects(self, other: StateSet) -> bool {
        self.0 & other.0 != 0
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of member states.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterates the member states in declaration order.
    pub fn iter(self) -> impl Iterator<Item = LifeState> {
        LifeState::ALL
            .into_iter()
            .filter(move |s| self.contains(*s))
    }
}

/// An edge label of the event-order automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventLabel {
    /// A lifecycle callback; the `u8` is the occurrence instance
    /// (`onStart`/`onResume` appear twice in Figure 5).
    Lifecycle(LifecycleEvent, u8),
    /// The interactive loop body (GUI / receiver / service dispatch
    /// while resumed) — a self-loop on [`LifeState::Resumed`].
    Loop,
    /// The terminal idle self-loop on [`LifeState::Destroyed`].
    Idle,
}

/// The Figure-5 event-order automaton: eight states, eleven edges, and
/// a precomputed reflexive-transitive reachability matrix.
#[derive(Debug, Clone)]
pub struct LifecycleAutomaton {
    edges: Vec<(LifeState, EventLabel, LifeState)>,
    /// `reach[s]` = states reachable from `s` (reflexively).
    reach: [StateSet; 8],
}

impl Default for LifecycleAutomaton {
    fn default() -> Self {
        Self::new()
    }
}

impl LifecycleAutomaton {
    /// Builds the automaton and its reachability closure.
    pub fn new() -> LifecycleAutomaton {
        use EventLabel::{Idle, Lifecycle, Loop};
        use LifeState::*;
        let edges = vec![
            (Init, Lifecycle(LifecycleEvent::Create, 1), Created),
            (Created, Lifecycle(LifecycleEvent::Start, 1), Started),
            (Started, Lifecycle(LifecycleEvent::Resume, 1), Resumed),
            (Resumed, Loop, Resumed),
            (Resumed, Lifecycle(LifecycleEvent::Pause, 1), Paused),
            (Paused, Lifecycle(LifecycleEvent::Resume, 2), Resumed),
            (Paused, Lifecycle(LifecycleEvent::Stop, 1), Stopped),
            (Stopped, Lifecycle(LifecycleEvent::Restart, 1), Restarted),
            (Restarted, Lifecycle(LifecycleEvent::Start, 2), Started),
            (Stopped, Lifecycle(LifecycleEvent::Destroy, 1), Destroyed),
            (Destroyed, Idle, Destroyed),
        ];
        let mut reach = [StateSet::EMPTY; 8];
        for s in LifeState::ALL {
            reach[s.index()] = StateSet::singleton(s);
        }
        // Reflexive-transitive closure over 8 states: iterate to fixpoint.
        loop {
            let mut changed = false;
            for &(from, _, to) in &edges {
                let grown = reach[from.index()].union(reach[to.index()]);
                if grown != reach[from.index()] {
                    reach[from.index()] = grown;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        LifecycleAutomaton { edges, reach }
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        LifeState::ALL.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The state the machine is in right after `event` (instance
    /// `instance`) returns. Both occurrences of `Start`/`Resume` land in
    /// the same state, so the instance only selects an existing edge.
    pub fn target_of(&self, event: LifecycleEvent, instance: u8) -> LifeState {
        self.edges
            .iter()
            .find_map(|&(_, label, to)| match label {
                EventLabel::Lifecycle(e, i) if e == event && i == instance => Some(to),
                _ => None,
            })
            .unwrap_or_else(|| {
                // Occurrence folding: an out-of-range instance (the
                // registry only mints 1 and 2) maps to the first edge
                // carrying the event.
                self.edges
                    .iter()
                    .find_map(|&(_, label, to)| match label {
                        EventLabel::Lifecycle(e, _) if e == event => Some(to),
                        _ => None,
                    })
                    .expect("every lifecycle event labels an edge")
            })
    }

    /// States reachable from `s`, reflexively.
    pub fn reachable_from(&self, s: LifeState) -> StateSet {
        self.reach[s.index()]
    }

    /// States reachable from any member of `set`, reflexively.
    pub fn closure(&self, set: StateSet) -> StateSet {
        set.iter()
            .fold(StateSet::EMPTY, |acc, s| acc.union(self.reach[s.index()]))
    }

    /// Forward reachability from `seed` that never *enters* a state in
    /// `kill` (seed states in `kill` are dropped too). This is the
    /// registration-window computation: a callback registered while the
    /// machine sits in a `seed` state and unregistered by the callbacks
    /// whose target states form `kill` can only be delivered inside the
    /// returned window.
    pub fn window(&self, seed: StateSet, kill: StateSet) -> StateSet {
        let mut window = seed.minus(kill);
        loop {
            let mut grown = window;
            for &(from, _, to) in &self.edges {
                if grown.contains(from) && !kill.contains(to) {
                    grown = grown.with(to);
                }
            }
            if grown == window {
                return window;
            }
            window = grown;
        }
    }

    /// Whether the event trace is a realizable prefix of the machine:
    /// starting at [`LifeState::Init`], every event must label an edge
    /// out of the current state (the automaton is event-deterministic,
    /// so the walk needs no backtracking).
    pub fn accepts(&self, trace: &[LifecycleEvent]) -> bool {
        let mut state = LifeState::Init;
        for &event in trace {
            let next = self
                .edges
                .iter()
                .find_map(|&(from, label, to)| match label {
                    EventLabel::Lifecycle(e, _) if from == state && e == event => Some(to),
                    _ => None,
                });
            match next {
                Some(to) => state = to,
                None => return false,
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LifecycleEvent::*;

    #[test]
    fn shape_matches_figure_5() {
        let a = LifecycleAutomaton::new();
        assert_eq!(a.state_count(), 8);
        assert_eq!(a.edge_count(), 11);
        assert_eq!(a.target_of(Create, 1), LifeState::Created);
        assert_eq!(a.target_of(Start, 1), LifeState::Started);
        assert_eq!(a.target_of(Start, 2), LifeState::Started);
        assert_eq!(a.target_of(Resume, 2), LifeState::Resumed);
        assert_eq!(a.target_of(Destroy, 1), LifeState::Destroyed);
    }

    #[test]
    fn reachability_is_reflexive_and_respects_terminality() {
        let a = LifecycleAutomaton::new();
        for s in LifeState::ALL {
            assert!(a.reachable_from(s).contains(s), "{s:?} reflexive");
            // Destroyed is reachable from everything (every state can
            // eventually tear down).
            assert!(a.reachable_from(s).contains(LifeState::Destroyed));
        }
        assert_eq!(
            a.reachable_from(LifeState::Destroyed),
            StateSet::singleton(LifeState::Destroyed),
            "Destroyed is terminal"
        );
        // Init is reachable only from itself.
        for s in LifeState::ALL {
            assert_eq!(
                a.reachable_from(s).contains(LifeState::Init),
                s == LifeState::Init
            );
        }
    }

    #[test]
    fn window_drops_kill_states_and_everything_behind_them() {
        let a = LifecycleAutomaton::new();
        let created = StateSet::singleton(LifeState::Created);
        // Registered in onCreate, unregistered in onPause: the window is
        // exactly the pre-pause interactive prefix.
        let w = a.window(created, StateSet::singleton(LifeState::Paused));
        assert_eq!(
            w,
            StateSet::singleton(LifeState::Created)
                .with(LifeState::Started)
                .with(LifeState::Resumed)
        );
        // Cancelled in the registering callback itself: empty window.
        assert!(a.window(created, created).is_empty());
        // No kill: the window is the plain closure.
        assert_eq!(a.window(created, StateSet::EMPTY), a.closure(created));
    }

    #[test]
    fn accepts_the_canonical_traces_and_rejects_protocol_violations() {
        let a = LifecycleAutomaton::new();
        assert!(a.accepts(&[]));
        assert!(a.accepts(&[Create, Start, Resume]));
        assert!(a.accepts(&[Create, Start, Resume, Pause, Resume, Pause, Stop, Destroy]));
        assert!(a.accepts(&[Create, Start, Resume, Pause, Stop, Restart, Start, Resume]));
        // Protocol violations from the issue text.
        assert!(!a.accepts(&[Resume]), "Resume before Create");
        assert!(
            !a.accepts(&[Create, Start, Resume, Pause, Restart]),
            "Restart without Stop"
        );
        assert!(!a.accepts(&[Create, Create]));
        assert!(
            !a.accepts(&[Create, Start, Resume, Stop]),
            "Stop without Pause"
        );
        assert!(!a.accepts(&[Create, Start, Resume, Pause, Stop, Destroy, Create]));
    }
}
