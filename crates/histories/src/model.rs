//! The per-app history model: occurrence sets, dead callbacks, and the
//! pair-level product check.

use crate::automaton::{LifeState, LifecycleAutomaton, StateSet};
use crate::discover::{discover, Discovered};
use crate::{HistoryPattern, HistoryStats};
use android_model::{ActionId, ActionKind, FrameworkClasses};
use apir::{ClassId, InfeasibleEdges, MethodId, Program};
use pointer::Analysis;
use std::collections::HashSet;

/// Per-action facts derived from the automaton.
#[derive(Debug, Clone, Copy)]
struct ActionFacts {
    /// States in which the action can be dispatched (empty = dead).
    occ: StateSet,
    /// Whether a discovered closing call narrowed the occurrence set
    /// below the plain closure of its sources.
    narrowed: bool,
    /// Whether the action participates in history checks at all
    /// (main-looper, not the harness root).
    relevant: bool,
    /// Whether the action is itself a lifecycle callback.
    lifecycle: bool,
    /// The harness (component) the action belongs to.
    harness: ClassId,
}

/// Result of checking one pair against the history model.
#[derive(Debug, Clone, Copy, Default)]
pub struct PairCheck {
    /// Whether the pair was actually subjected to the product check
    /// (both sides relevant, same component, not lifecycle-vs-lifecycle).
    pub checked: bool,
    /// Size of the occurrence-set product explored (`|occ(a)|·|occ(b)|`).
    pub product_edges: usize,
    /// A refutation, when one order (or both) is unrealizable:
    /// the discharging pattern and the action it blames.
    pub refuted: Option<(HistoryPattern, ActionId)>,
}

/// The history model of one app: the shared event-order automaton plus
/// an occurrence set per action.
#[derive(Debug)]
pub struct HistoryModel {
    automaton: LifecycleAutomaton,
    facts: Vec<ActionFacts>,
    dead_edges: InfeasibleEdges,
    dead_methods: HashSet<MethodId>,
    stats: HistoryStats,
}

impl HistoryModel {
    /// Builds the model: discovers closing calls, solves the occurrence
    /// recursion over the action graph, and collects dead-callback CFG
    /// edges.
    pub fn build(program: &Program, fw: &FrameworkClasses, analysis: &Analysis) -> HistoryModel {
        let automaton = LifecycleAutomaton::new();
        let discovered = discover(program, fw, analysis);
        let n = analysis.actions.len();
        let mut occ: Vec<Option<StateSet>> = vec![None; n];
        let mut narrowed = vec![false; n];
        let mut visiting = vec![false; n];
        for id in analysis.actions.ids() {
            solve_occ(
                &automaton,
                analysis,
                &discovered,
                id,
                &mut occ,
                &mut narrowed,
                &mut visiting,
            );
        }

        let mut facts = Vec::with_capacity(n);
        let mut components: HashSet<ClassId> = HashSet::new();
        for id in analysis.actions.ids() {
            let act = analysis.actions.action(id);
            components.insert(act.harness);
            let relevant = act.on_main() && !matches!(act.kind, ActionKind::HarnessRoot);
            facts.push(ActionFacts {
                occ: occ[id.index()].unwrap_or(StateSet::FULL),
                narrowed: narrowed[id.index()],
                relevant,
                // Instance 0 marks a policy-spawned component launch
                // (intent resolution): its ordering is *not* fixed by
                // this harness's lifecycle chain, so it must not hide
                // behind the lifecycle-vs-lifecycle exclusion below.
                lifecycle: matches!(
                    act.kind,
                    ActionKind::Lifecycle { instance, .. } if instance > 0
                ),
                harness: act.harness,
            });
        }

        // Dead callbacks: relevant actions whose occurrence set is
        // empty. Their bodies can never execute under any realizable
        // history, so every CFG edge of a method reachable *only* from
        // dead actions is infeasible for the symbolic refuter too.
        let dead: HashSet<ActionId> = analysis
            .actions
            .ids()
            .filter(|id| facts[id.index()].relevant && facts[id.index()].occ.is_empty())
            .collect();
        let mut dead_edges = InfeasibleEdges::new();
        let mut dead_methods = HashSet::new();
        let mut methods: HashSet<MethodId> = HashSet::new();
        for &(m, _) in &analysis.reachable {
            methods.insert(m);
        }
        for m in methods {
            let ctxs = analysis.contexts_of(m);
            if ctxs.is_empty() || !program.method(m).has_body() {
                continue;
            }
            if !ctxs.iter().all(|&c| dead.contains(&analysis.action_of(c))) {
                continue;
            }
            dead_methods.insert(m);
            let method = program.method(m);
            for (bid, block) in method.iter_blocks() {
                for succ in block.terminator.successors() {
                    dead_edges.insert(m, bid, succ);
                }
            }
        }

        let stats = HistoryStats {
            automaton_states: automaton.state_count() * components.len(),
            automaton_edges: automaton.edge_count() * components.len(),
            components: components.len(),
            dead_callbacks: dead.len(),
            ..HistoryStats::default()
        };
        HistoryModel {
            automaton,
            facts,
            dead_edges,
            dead_methods,
            stats,
        }
    }

    /// Build-time counters (automaton size, components, dead callbacks).
    pub fn stats(&self) -> HistoryStats {
        self.stats
    }

    /// The shared event-order automaton.
    pub fn automaton(&self) -> &LifecycleAutomaton {
        &self.automaton
    }

    /// The occurrence set computed for `action`.
    pub fn occurrence(&self, action: ActionId) -> StateSet {
        self.facts[action.index()].occ
    }

    /// CFG edges of provably-dead callbacks, in the same shape the
    /// prefilter shares with `symexec`.
    pub fn dead_edges(&self) -> &InfeasibleEdges {
        &self.dead_edges
    }

    /// Methods whose every reachable context belongs to a dead action.
    pub fn dead_methods(&self) -> &HashSet<MethodId> {
        &self.dead_methods
    }

    /// Checks one surviving pair for joint reachability under a
    /// realizable history.
    ///
    /// The product construction degenerates pleasantly under the
    /// bounded history abstraction: order `a → b` is realizable iff
    /// some state where `b` can be dispatched is automaton-reachable
    /// from some state where `a` can be — i.e. `closure(occ(a))`
    /// intersects `occ(b)`. A pair is refuted when at least one of the
    /// two orders is unrealizable (the pair is then protocol-ordered or
    /// dead, not racy).
    pub fn check_pair(&self, a: ActionId, b: ActionId) -> PairCheck {
        let fa = self.facts[a.index()];
        let fb = self.facts[b.index()];
        // Lifecycle-vs-lifecycle pairs are the harness CFG's own
        // ordering problem (the happens-before graph already models
        // it exactly); re-judging them here would double-count.
        if a == b
            || !fa.relevant
            || !fb.relevant
            || fa.harness != fb.harness
            || (fa.lifecycle && fb.lifecycle)
        {
            return PairCheck::default();
        }
        if fa.occ.is_empty() {
            return PairCheck {
                checked: true,
                product_edges: 0,
                refuted: Some((HistoryPattern::UnregisteredBeforePosted, a)),
            };
        }
        if fb.occ.is_empty() {
            return PairCheck {
                checked: true,
                product_edges: 0,
                refuted: Some((HistoryPattern::UnregisteredBeforePosted, b)),
            };
        }
        let product_edges = fa.occ.len() * fb.occ.len();
        let ab = self.automaton.closure(fa.occ).intersects(fb.occ);
        let ba = self.automaton.closure(fb.occ).intersects(fa.occ);
        if ab && ba {
            return PairCheck {
                checked: true,
                product_edges,
                refuted: None,
            };
        }
        // One order is unrealizable. Blame the action that cannot come
        // first, and classify: a window narrowed by a discovered
        // closing call is the pause-quiesced shape; otherwise the
        // separation comes from the terminal destroy region.
        let blamed = if !ab { a } else { b };
        let pattern = if fa.narrowed || fb.narrowed {
            HistoryPattern::PauseQuiesced
        } else {
            HistoryPattern::DestroyDominates
        };
        let action = if pattern == HistoryPattern::PauseQuiesced {
            if fa.narrowed {
                a
            } else {
                b
            }
        } else {
            blamed
        };
        PairCheck {
            checked: true,
            product_edges,
            refuted: Some((pattern, action)),
        }
    }
}

/// Memoized occurrence recursion over the action graph.
///
/// - Lifecycle callbacks of the harness's own chain (instance ≥ 1)
///   occur exactly in their automaton target state; GUI callbacks occur
///   in the interactive `Resumed` loop. Policy-spawned component
///   launches (lifecycle instance 0) are posted actions, not chain
///   members, and take the posted-action rule below.
/// - Background actions and the harness root occur "anywhere" (FULL) —
///   they are also marked irrelevant, so FULL only matters when they
///   appear as posters of main-looper actions, where it is the sound
///   choice.
/// - A posted/registered main-looper action occurs in the forward
///   closure of its sources' occurrence states; when *all* sources are
///   lifecycle/GUI callbacks (so the seed states are exact, not already
///   closed) and a closing call was discovered, the closure is replaced
///   by the registration window, which may be empty (dead).
/// - Post cycles (mutually-posting runnables) are cut conservatively:
///   an in-progress action contributes FULL.
fn solve_occ(
    automaton: &LifecycleAutomaton,
    analysis: &Analysis,
    discovered: &Discovered,
    id: ActionId,
    occ: &mut [Option<StateSet>],
    narrowed: &mut [bool],
    visiting: &mut [bool],
) -> StateSet {
    if let Some(v) = occ[id.index()] {
        return v;
    }
    if visiting[id.index()] {
        return StateSet::FULL;
    }
    visiting[id.index()] = true;
    let act = analysis.actions.action(id);
    let v = match act.kind {
        // Instance 0 is a spawned *other* component's lifecycle entry
        // (intent resolution under the resolve/havoc policies): the
        // sender's automaton says nothing about when the launched
        // component runs, so it is treated like any posted action —
        // deliverable in the forward closure of its posters' states
        // (the default arm below).
        ActionKind::Lifecycle { event, instance } if instance > 0 => {
            StateSet::singleton(automaton.target_of(event, instance))
        }
        ActionKind::Gui { .. } => StateSet::singleton(LifeState::Resumed),
        ActionKind::HarnessRoot
        | ActionKind::ThreadRun
        | ActionKind::AsyncTaskBg
        | ActionKind::ExecutorRun
        | ActionKind::TimerTask => StateSet::FULL,
        _ => {
            let mut sources: Vec<ActionId> = act.posters.clone();
            if let Some(p) = act.parent {
                sources.push(p);
            }
            sources.sort();
            sources.dedup();
            sources.retain(|&s| s != id);
            if sources.is_empty() {
                StateSet::FULL
            } else {
                let exact_sources = sources.iter().all(|&s| {
                    matches!(
                        analysis.actions.action(s).kind,
                        ActionKind::Lifecycle { .. } | ActionKind::Gui { .. }
                    )
                });
                let seed = sources.iter().fold(StateSet::EMPTY, |acc, &s| {
                    acc.union(solve_occ(
                        automaton, analysis, discovered, s, occ, narrowed, visiting,
                    ))
                });
                match discovered.kills.get(&id) {
                    Some(events) if exact_sources && !events.is_empty() => {
                        narrowed[id.index()] = true;
                        let kill = events.iter().fold(StateSet::EMPTY, |acc, &e| {
                            acc.with(automaton.target_of(e, 1))
                        });
                        automaton.window(seed, kill)
                    }
                    _ => automaton.closure(seed),
                }
            }
        }
    };
    visiting[id.index()] = false;
    occ[id.index()] = Some(v);
    v
}
