//! # histories — message-history refutation of surviving race pairs
//!
//! The backward symbolic refuter judges each racy callback pair in
//! isolation; this crate asks the complementary question: **is there
//! any realizable message history of the Android framework under which
//! the two callbacks can execute in both orders at all?** Following the
//! Historia insight ("Refuting Callback Reachability with
//! Message-History Logics"), many surviving false positives die to
//! nothing more than the lifecycle protocol:
//!
//! - a GUI click can never be delivered once `onDestroy` has run
//!   (**destroy-dominates**),
//! - a receiver unregistered in `onPause` is quiesced before the
//!   teardown callbacks its accesses were paired against
//!   (**pause-quiesced**),
//! - a task cancelled in the very callback that started it never
//!   delivers its completion at all (**unregistered-before-posted**).
//!
//! The machinery is a product construction kept deliberately small: a
//! single eight-state event-order automaton ([`LifecycleAutomaton`],
//! the paper's Figure 5) shared by every component, plus a per-action
//! *occurrence set* ([`StateSet`]) — the automaton states in which that
//! action can be dispatched, derived from the harness's
//! registration/post edges and the window-closing calls
//! ([`discover`]). A pair is refutable when the product of the two
//! occurrence sets admits no path realizing one of the two orders: the
//! pair is then protocol-*ordered*, not racy. The check is a bounded
//! history abstraction — occurrence sets only ever over-approximate
//! deliverability, so a refutation is a proof under the automaton
//! model, never a heuristic.
//!
//! The stage also exports the CFG edges of *dead* callbacks (empty
//! occurrence set: provably never dispatched) in the same
//! [`apir::InfeasibleEdges`] form the prefilter shares with `symexec`,
//! so the symbolic refuter's remaining path searches shrink too.

pub mod automaton;
pub mod discover;
mod model;

pub use automaton::{EventLabel, LifeState, LifecycleAutomaton, StateSet};
pub use discover::{discover, Discovered};
pub use model::{HistoryModel, PairCheck};

/// Which refutation pattern discharged a pair (the machine-checkable
/// payload of `Verdict::History`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistoryPattern {
    /// The callback's occurrence set is empty: it was unregistered or
    /// cancelled before any history could post it.
    UnregisteredBeforePosted,
    /// One side runs only in a terminal region of the automaton (at or
    /// after `onDestroy`) that admits no later delivery of its partner.
    DestroyDominates,
    /// One side's registration window was quiesced (unregistered on
    /// pause) before the states its partner occupies.
    PauseQuiesced,
}

impl HistoryPattern {
    /// Short machine tag.
    pub fn tag(&self) -> &'static str {
        match self {
            HistoryPattern::UnregisteredBeforePosted => "unregistered-before-posted",
            HistoryPattern::DestroyDominates => "destroy-dominates",
            HistoryPattern::PauseQuiesced => "pause-quiesced",
        }
    }

    /// Human-readable pattern description.
    pub fn describe(&self) -> &'static str {
        match self {
            HistoryPattern::UnregisteredBeforePosted => {
                "callback is unregistered/cancelled before any history posts it"
            }
            HistoryPattern::DestroyDominates => {
                "callback runs only at/after onDestroy, which admits no later partner"
            }
            HistoryPattern::PauseQuiesced => {
                "callback's registration window is quiesced before its partner's states"
            }
        }
    }
}

/// Counters for the histories stage (flows into Table 4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistoryStats {
    /// Event-order automaton states across all components
    /// (8 × components).
    pub automaton_states: usize,
    /// Automaton edges across all components (11 × components).
    pub automaton_edges: usize,
    /// Distinct components (harness classes) with actions.
    pub components: usize,
    /// Surviving pairs subjected to the product check.
    pub pairs_checked: usize,
    /// Product edges explored (`|occ(a)|·|occ(b)|` summed over checks).
    pub product_edges: usize,
    /// Pairs discharged as unregistered-before-posted.
    pub discharged_unregistered: usize,
    /// Pairs discharged as destroy-dominates.
    pub discharged_destroy: usize,
    /// Pairs discharged as pause-quiesced.
    pub discharged_pause: usize,
    /// Callbacks with a provably-empty occurrence set.
    pub dead_callbacks: usize,
    /// Dead-callback CFG edges actually exported to the refuter.
    pub infeasible_exported: usize,
    /// Wall-clock time of the stage, in nanoseconds.
    pub histories_ns: u64,
}

impl HistoryStats {
    /// Total pairs discharged across the three patterns.
    pub fn discharged_total(&self) -> usize {
        self.discharged_unregistered + self.discharged_destroy + self.discharged_pause
    }
}
