//! Discovery of window-closing calls: `unregisterReceiver`,
//! `removeUpdates`, and `AsyncTask.cancel`.
//!
//! A windowed callback (a broadcast receiver, a location listener, a
//! task-completion callback) is only deliverable between the lifecycle
//! callback that registered it and the one that unregisters or cancels
//! it. Registration is already explicit in the action graph (the
//! registering action is the windowed action's poster); this module
//! finds the *closing* side by scanning lifecycle-callback bodies for
//! the closing framework ops and matching their receiver/argument
//! points-to sets against the windowed actions' receiver allocation
//! sites.
//!
//! Two deliberate conservatisms keep the windows over- rather than
//! under-approximate:
//!
//! - **Direct calls only.** Only closing calls written directly in a
//!   lifecycle callback's own body are honoured; a call hidden behind a
//!   helper method leaves the window untouched (sound — the window just
//!   stays wider).
//! - **`onDestroy` closes nothing.** A closing call inside the
//!   destroying callback cannot be ordered against accesses in that
//!   same callback at our event granularity, and deliveries already
//!   enqueued on the looper when teardown begins may still dispatch
//!   around it — so a destroy-time unregister never narrows a window.

use android_model::{ActionId, ActionKind, FrameworkClasses, FrameworkOp, LifecycleEvent};
use apir::{AllocSiteId, Operand, Program, Stmt};
use pointer::Analysis;
use std::collections::{HashMap, HashSet};

/// Window-closing facts discovered from the app.
#[derive(Debug, Default)]
pub struct Discovered {
    /// Windowed action → lifecycle events whose callbacks close its
    /// window (deduped; `Destroy` never appears).
    pub kills: HashMap<ActionId, Vec<LifecycleEvent>>,
    /// Number of closing call sites honoured (for stage counters).
    pub closing_calls: usize,
}

/// The windowed action kind a closing op quiesces.
fn closed_kind(op: FrameworkOp) -> Option<ActionKind> {
    match op {
        FrameworkOp::UnregisterReceiver => Some(ActionKind::Receive),
        FrameworkOp::RemoveUpdates => Some(ActionKind::LocationUpdate),
        FrameworkOp::AsyncTaskCancel => Some(ActionKind::AsyncTaskPost),
        _ => None,
    }
}

/// Scans lifecycle-callback bodies for window-closing calls.
pub fn discover(program: &Program, fw: &FrameworkClasses, analysis: &Analysis) -> Discovered {
    let mut out = Discovered::default();
    for &(m, ctx) in &analysis.reachable {
        let act = analysis.actions.action(analysis.action_of(ctx));
        let ActionKind::Lifecycle { event, .. } = act.kind else {
            continue;
        };
        // A destroy-time unregister never narrows a window (see module
        // docs); direct calls only.
        if event == LifecycleEvent::Destroy || act.entry != m {
            continue;
        }
        let method = program.method(m);
        if !method.has_body() {
            continue;
        }
        for (_, stmt) in method.iter_stmts() {
            let Stmt::Call {
                callee,
                receiver,
                args,
                ..
            } = stmt
            else {
                continue;
            };
            let Some(op) = FrameworkOp::classify(fw, *callee) else {
                continue;
            };
            let Some(kind) = closed_kind(op) else {
                continue;
            };
            // The quiesced object: the first argument for the
            // unregister ops, the receiver for `cancel`.
            let target = match op {
                FrameworkOp::AsyncTaskCancel => *receiver,
                _ => args.first().and_then(|a| match a {
                    Operand::Local(l) => Some(*l),
                    _ => None,
                }),
            };
            let sites: HashSet<AllocSiteId> = target
                .map(|l| {
                    analysis
                        .pts_var(m, ctx, l)
                        .iter()
                        .filter_map(|o| analysis.objs.get(o).site())
                        .collect()
                })
                .unwrap_or_default();
            let mut matched = false;
            for w in analysis.actions.actions() {
                if w.kind != kind || w.harness != act.harness {
                    continue;
                }
                // Site-matched only: a closing call whose target the
                // pointer analysis could not resolve closes nothing
                // (narrowing a window without evidence would be unsound
                // in the direction that matters).
                let hit = w.recv_site.is_some_and(|site| sites.contains(&site));
                if hit {
                    let kills = out.kills.entry(w.id).or_default();
                    if !kills.contains(&event) {
                        kills.push(event);
                    }
                    matched = true;
                }
            }
            if matched {
                out.closing_calls += 1;
            }
        }
    }
    for kills in out.kills.values_mut() {
        kills.sort();
    }
    out
}
