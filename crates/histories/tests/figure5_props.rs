//! Seeded property test pinning the event-order automaton to the
//! paper's Figure 5.
//!
//! The oracle below is an *independent* re-encoding of the lifecycle
//! machine as a bare transition function — written straight from the
//! figure, sharing no code with `histories::LifecycleAutomaton`. The
//! test then drives both with the same seeded SplitMix64 stream:
//! `accepts` must agree with the oracle on every random trace, accept
//! every random walk the oracle generates, and reject the two
//! protocol violations the issue calls out by name
//! (`Resume`-before-`Create`, `Restart`-without-`Stop`).

use android_model::LifecycleEvent;
use histories::LifecycleAutomaton;
use sierra_prng::SplitMix64;

use LifecycleEvent::*;

const EVENTS: [LifecycleEvent; 7] = [Create, Start, Restart, Resume, Pause, Stop, Destroy];

/// Oracle states, written out longhand from Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum S {
    Init,
    Created,
    Started,
    Resumed,
    Paused,
    Stopped,
    Restarted,
    Destroyed,
}

/// The Figure-5 transition function: `None` means the event is not
/// deliverable in that state.
fn step(s: S, e: LifecycleEvent) -> Option<S> {
    match (s, e) {
        (S::Init, Create) => Some(S::Created),
        (S::Created, Start) => Some(S::Started),
        (S::Started, Resume) => Some(S::Resumed),
        (S::Resumed, Pause) => Some(S::Paused),
        (S::Paused, Resume) => Some(S::Resumed),
        (S::Paused, Stop) => Some(S::Stopped),
        (S::Stopped, Restart) => Some(S::Restarted),
        (S::Restarted, Start) => Some(S::Started),
        (S::Stopped, Destroy) => Some(S::Destroyed),
        _ => None,
    }
}

fn oracle_accepts(trace: &[LifecycleEvent]) -> bool {
    let mut s = S::Init;
    for &e in trace {
        match step(s, e) {
            Some(next) => s = next,
            None => return false,
        }
    }
    true
}

#[test]
fn automaton_agrees_with_figure_5_oracle_on_random_traces() {
    let a = LifecycleAutomaton::new();
    let mut rng = SplitMix64::new(0x5157_7261);
    let mut accepted = 0usize;
    for _ in 0..4000 {
        let len = rng.usize(13);
        let trace: Vec<LifecycleEvent> = (0..len).map(|_| *rng.pick(&EVENTS)).collect();
        let want = oracle_accepts(&trace);
        accepted += usize::from(want);
        assert_eq!(a.accepts(&trace), want, "trace {trace:?}");
    }
    // Uniform traces still hit realizable prefixes often enough to
    // exercise the accepting side (empty and Create-first prefixes).
    assert!(accepted > 100, "positive cases exercised ({accepted})");
}

#[test]
fn automaton_accepts_every_random_figure_5_walk() {
    let a = LifecycleAutomaton::new();
    let mut rng = SplitMix64::new(0xF1_6005);
    for _ in 0..500 {
        let mut s = S::Init;
        let mut trace = Vec::new();
        for _ in 0..rng.usize(17) {
            let options: Vec<LifecycleEvent> = EVENTS
                .iter()
                .copied()
                .filter(|&e| step(s, e).is_some())
                .collect();
            if options.is_empty() {
                break; // Destroyed: terminal.
            }
            let e = *rng.pick(&options);
            s = step(s, e).unwrap();
            trace.push(e);
        }
        assert!(a.accepts(&trace), "valid walk rejected: {trace:?}");
    }
}

#[test]
fn automaton_rejects_the_named_protocol_violations() {
    let a = LifecycleAutomaton::new();
    assert!(!a.accepts(&[Resume]), "Resume before Create");
    assert!(!a.accepts(&[Resume, Create]), "Resume before Create");
    assert!(
        !a.accepts(&[Create, Start, Resume, Pause, Restart]),
        "Restart without Stop"
    );
    assert!(!a.accepts(&[Create, Restart]), "Restart without Stop");
}
