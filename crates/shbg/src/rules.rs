//! The seven happens-before rules of §4.3 and SHBG construction.

use crate::bitmat::BitMatrix;
use android_model::{ActionId, ActionKind};
use apir::{BlockId, CallSiteId, Dominators, Method, MethodId, Stmt, StmtAddr};
use harness_gen::HarnessResult;
use pointer::{Analysis, CtxId};
use std::collections::{BTreeMap, HashMap, HashSet};

/// The per-method dominance fact the HB rules consume: which call
/// statements of one method dominate which others. Rules 2–4 only ever
/// query dominance between pairs of `Call` statements (harness callback
/// invocation sites and posting sites), so the full dominator tree
/// compresses to this pair list — a pure function of the method body,
/// cacheable by content hash in the summary store.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CallDominance {
    /// Sorted `(dominator block, dominator stmt, dominated block,
    /// dominated stmt)` tuples over distinct call-statement pairs.
    pub pairs: Vec<(u32, u32, u32, u32)>,
}

impl CallDominance {
    /// Computes the call-pair dominance fact of one method body.
    pub fn compute(method: &Method) -> Self {
        if !method.has_body() {
            return Self::default();
        }
        let calls: Vec<StmtAddr> = method
            .iter_stmts()
            .filter(|(_, s)| matches!(s, Stmt::Call { .. }))
            .map(|(a, _)| a)
            .collect();
        let dom = Dominators::compute(method);
        let mut pairs = Vec::new();
        for &a in &calls {
            for &b in &calls {
                if a != b && dom.dominates_stmt(a, b) {
                    pairs.push(Self::key(a, b));
                }
            }
        }
        pairs.sort_unstable();
        Self { pairs }
    }

    fn key(a: StmtAddr, b: StmtAddr) -> (u32, u32, u32, u32) {
        (
            a.block.index() as u32,
            a.stmt,
            b.block.index() as u32,
            b.stmt,
        )
    }

    /// Whether call statement `a` dominates call statement `b` (both must
    /// be `Call` statements of the method this fact was computed for).
    pub fn dominates(&self, a: StmtAddr, b: StmtAddr) -> bool {
        self.pairs.binary_search(&Self::key(a, b)).is_ok()
    }
}

/// Which rule introduced an HB edge (for reports and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HbRule {
    /// Rule 1: action invocation (poster ≺ posted).
    ActionInvocation,
    /// AsyncTask internal order (onPreExecute ≺ doInBackground ≺
    /// onPostExecute for the same `execute()` site).
    AsyncTaskOrder,
    /// Rule 2: lifecycle dominance in the harness CFG.
    Lifecycle,
    /// Rule 3: GUI-model dominance in the harness CFG.
    Gui,
    /// Rule 4: intra-procedural domination of posting sites.
    IntraProcDom,
    /// Rule 5: inter-procedural, intra-action domination of posting sites.
    InterProcDom,
    /// Rule 6: inter-action transitivity (Figure 7).
    InterActionTransitivity,
}

impl HbRule {
    /// Every rule, in presentation order.
    pub const ALL: [HbRule; 7] = [
        HbRule::ActionInvocation,
        HbRule::AsyncTaskOrder,
        HbRule::Lifecycle,
        HbRule::Gui,
        HbRule::IntraProcDom,
        HbRule::InterProcDom,
        HbRule::InterActionTransitivity,
    ];

    /// Dense index of the rule (position in [`HbRule::ALL`]).
    pub fn index(self) -> usize {
        match self {
            HbRule::ActionInvocation => 0,
            HbRule::AsyncTaskOrder => 1,
            HbRule::Lifecycle => 2,
            HbRule::Gui => 3,
            HbRule::IntraProcDom => 4,
            HbRule::InterProcDom => 5,
            HbRule::InterActionTransitivity => 6,
        }
    }

    /// Short column label for tables.
    pub fn short_name(self) -> &'static str {
        match self {
            HbRule::ActionInvocation => "invoke",
            HbRule::AsyncTaskOrder => "atask",
            HbRule::Lifecycle => "life",
            HbRule::Gui => "gui",
            HbRule::IntraProcDom => "dom4",
            HbRule::InterProcDom => "dom5",
            HbRule::InterActionTransitivity => "trans6",
        }
    }
}

/// Counters recorded while building the SHBG: how often each HB rule
/// fired and how many distinct edges it contributed, plus how many
/// rounds the rule-6/7 fixpoint needed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShbgStats {
    /// Rule applications attempted (an `add` call), indexed by
    /// [`HbRule::index`]. Re-derivations of an existing edge count.
    pub applications: [usize; 7],
    /// Distinct edges accepted per rule, indexed by [`HbRule::index`].
    pub accepted: [usize; 7],
    /// Rounds of the inter-action-transitivity fixpoint (rules 6 & 7).
    pub fixpoint_rounds: usize,
    /// Strongly-connected components of the HB edge relation at the
    /// final closure (reported by the SCC-condensed closure; equals the
    /// action count when the graph is acyclic).
    pub closure_sccs: usize,
}

impl ShbgStats {
    /// Total rule applications across all rules.
    pub fn total_applications(&self) -> usize {
        self.applications.iter().sum()
    }

    /// Total accepted edges across all rules.
    pub fn total_accepted(&self) -> usize {
        self.accepted.iter().sum()
    }
}

/// One direct HB edge with provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HbEdge {
    /// Earlier action.
    pub src: ActionId,
    /// Later action.
    pub dst: ActionId,
    /// The rule that introduced the edge.
    pub rule: HbRule,
}

/// The Static Happens-Before Graph: direct edges plus reachability closure.
#[derive(Debug)]
pub struct Shbg {
    /// Direct edges with provenance.
    pub edges: Vec<HbEdge>,
    /// Rule-application counters recorded during construction.
    pub stats: ShbgStats,
    closure: BitMatrix,
    n: usize,
}

impl Shbg {
    /// Whether `a ≺ b` (transitively).
    pub fn ordered(&self, a: ActionId, b: ActionId) -> bool {
        self.closure.get(a.index(), b.index())
    }

    /// Whether neither `a ≺ b` nor `b ≺ a`.
    pub fn unordered(&self, a: ActionId, b: ActionId) -> bool {
        a != b && !self.ordered(a, b) && !self.ordered(b, a)
    }

    /// Number of ordered pairs in the closure (Table 3's "HB edges").
    pub fn ordered_pair_count(&self) -> usize {
        self.closure.count_ones()
    }

    /// Number of actions.
    pub fn action_count(&self) -> usize {
        self.n
    }

    /// Direct edges introduced by `rule`.
    pub fn edges_by_rule(&self, rule: HbRule) -> Vec<HbEdge> {
        self.edges
            .iter()
            .copied()
            .filter(|e| e.rule == rule)
            .collect()
    }

    /// Renders the direct-edge graph in Graphviz DOT format, labeling each
    /// edge with the rule that introduced it. `label` names each action.
    pub fn to_dot(&self, mut label: impl FnMut(ActionId) -> String) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph shbg {\n  rankdir=TB;\n");
        let mut named: HashSet<ActionId> = HashSet::new();
        for e in &self.edges {
            for a in [e.src, e.dst] {
                if named.insert(a) {
                    let _ = writeln!(out, "  n{} [label=\"{}\"];", a.0, label(a));
                }
            }
        }
        for e in &self.edges {
            let _ = writeln!(
                out,
                "  n{} -> n{} [label=\"{:?}\"];",
                e.src.0, e.dst.0, e.rule
            );
        }
        out.push_str("}\n");
        out
    }
}

/// Builds the SHBG from a points-to analysis over a harnessed app.
pub fn build(analysis: &Analysis, harness: &HarnessResult) -> Shbg {
    build_with_dominance(analysis, harness, &HashMap::new())
}

/// Looks up a method's [`CallDominance`] in the summary-provided map,
/// falling back to a locally-computed (and cached) fact for methods the
/// caller did not supply — e.g. the generated harness method when the
/// summary layer only covers app methods.
fn dom_of<'a>(
    provided: &'a HashMap<MethodId, CallDominance>,
    cache: &'a mut HashMap<MethodId, CallDominance>,
    program: &apir::Program,
    m: MethodId,
) -> &'a CallDominance {
    if let Some(d) = provided.get(&m) {
        return d;
    }
    cache
        .entry(m)
        .or_insert_with(|| CallDominance::compute(program.method(m)))
}

/// [`build`] with per-method dominance facts supplied by the summary
/// layer. Methods absent from `dominance` get their fact computed
/// locally, so any partial map is sound; results are identical to
/// [`build`] by construction.
pub fn build_with_dominance(
    analysis: &Analysis,
    harness: &HarnessResult,
    dominance: &HashMap<MethodId, CallDominance>,
) -> Shbg {
    let n = analysis.actions.len();
    let mut closure = BitMatrix::new(n);
    let mut edges: Vec<HbEdge> = Vec::new();
    let mut stats = ShbgStats::default();
    let mut edge_set: HashSet<(ActionId, ActionId)> = HashSet::new();
    let mut add = |edges: &mut Vec<HbEdge>,
                   stats: &mut ShbgStats,
                   closure: &mut BitMatrix,
                   src: ActionId,
                   dst: ActionId,
                   rule: HbRule| {
        if src == dst {
            return;
        }
        stats.applications[rule.index()] += 1;
        if edge_set.insert((src, dst)) {
            stats.accepted[rule.index()] += 1;
            edges.push(HbEdge { src, dst, rule });
            closure.set(src.index(), dst.index());
        }
    };

    let program = &harness.app.program;

    // --- Rule 1: action invocation (unique poster ≺ posted). ---
    for a in analysis.actions.actions() {
        if let Some(p) = a.parent {
            add(
                &mut edges,
                &mut stats,
                &mut closure,
                p,
                a.id,
                HbRule::ActionInvocation,
            );
        }
    }

    // --- AsyncTask order: pre ≺ bg ≺ post for the same execute() site. ---
    type TaskKey = (Option<CallSiteId>, Option<apir::AllocSiteId>);
    let mut tasks: BTreeMap<TaskKey, [Option<ActionId>; 3]> = BTreeMap::new();
    for a in analysis.actions.actions() {
        let slot = match a.kind {
            ActionKind::AsyncTaskPre => 0,
            ActionKind::AsyncTaskBg => 1,
            ActionKind::AsyncTaskPost => 2,
            _ => continue,
        };
        tasks.entry((a.origin_site, a.recv_site)).or_default()[slot] = Some(a.id);
    }
    for trio in tasks.values() {
        let present: Vec<ActionId> = trio.iter().flatten().copied().collect();
        for w in present.windows(2) {
            add(
                &mut edges,
                &mut stats,
                &mut closure,
                w[0],
                w[1],
                HbRule::AsyncTaskOrder,
            );
        }
        if present.len() == 3 {
            add(
                &mut edges,
                &mut stats,
                &mut closure,
                present[0],
                present[2],
                HbRule::AsyncTaskOrder,
            );
        }
    }

    // --- Rules 2 & 3: harness-CFG dominance orders lifecycle/GUI actions. ---
    let mut dom_cache: HashMap<MethodId, CallDominance> = HashMap::new();
    for h in &harness.activities {
        let dom = dom_of(dominance, &mut dom_cache, program, h.method);
        let site_actions: Vec<(CallSiteId, ActionId, bool)> = h
            .sites
            .iter()
            .filter_map(|(site, kind)| {
                let action = analysis.harness_actions.get(site)?;
                let is_lifecycle = matches!(kind, harness_gen::HarnessSiteKind::Lifecycle { .. });
                Some((*site, *action, is_lifecycle))
            })
            .collect();
        for &(s1, a1, l1) in &site_actions {
            for &(s2, a2, l2) in &site_actions {
                if s1 == s2 {
                    continue;
                }
                let addr1 = program.call_site_addr(s1);
                let addr2 = program.call_site_addr(s2);
                if dom.dominates(addr1, addr2) {
                    let rule = if l1 && l2 {
                        HbRule::Lifecycle
                    } else {
                        HbRule::Gui
                    };
                    add(&mut edges, &mut stats, &mut closure, a1, a2, rule);
                }
            }
        }
    }

    // --- Rules 4 & 5: domination among posting sites of one action. ---
    // Keyed by a BTreeMap so the rule-6 fixpoint below visits posters in
    // action order — edge order (and so the recorded stats) must not
    // depend on hash-map iteration, which varies across threads.
    let mut posts_by_poster: BTreeMap<ActionId, Vec<(CallSiteId, ActionId)>> = BTreeMap::new();
    for p in &analysis.posts {
        posts_by_poster
            .entry(p.poster)
            .or_default()
            .push((p.site, p.posted));
    }
    for (&poster, posts) in &posts_by_poster {
        for i in 0..posts.len() {
            for j in 0..posts.len() {
                if i == j {
                    continue;
                }
                let (s1, a1) = posts[i];
                let (s2, a2) = posts[j];
                if a1 == a2 {
                    continue;
                }
                let t1 = analysis.actions.action(a1).thread;
                let t2 = analysis.actions.action(a2).thread;
                if !t1.same_looper(t2) {
                    continue; // posting order only fixes same-queue execution order
                }
                let addr1 = program.call_site_addr(s1);
                let addr2 = program.call_site_addr(s2);
                if addr1.method == addr2.method {
                    // Rule 4: plain intra-procedural dominance.
                    let dom = dom_of(dominance, &mut dom_cache, program, addr1.method);
                    if dom.dominates(addr1, addr2) {
                        add(
                            &mut edges,
                            &mut stats,
                            &mut closure,
                            a1,
                            a2,
                            HbRule::IntraProcDom,
                        );
                    }
                } else {
                    // Rule 5: remove e1 from the action's ICFG; if e2 is no
                    // longer reachable, e1 de-facto dominates e2.
                    if !icfg_reachable_avoiding(analysis, program, poster, addr2, Some(addr1))
                        && icfg_reachable_avoiding(analysis, program, poster, addr2, None)
                    {
                        add(
                            &mut edges,
                            &mut stats,
                            &mut closure,
                            a1,
                            a2,
                            HbRule::InterProcDom,
                        );
                    }
                }
            }
        }
    }

    // --- Rules 6 & 7: inter-action transitivity + transitive closure, to a
    //     fixpoint (rule 6 can enable more rule 6 edges). ---
    let mut reach_buf: Vec<usize> = Vec::new();
    loop {
        stats.fixpoint_rounds += 1;
        stats.closure_sccs = closure.transitive_closure();
        let mut grew = false;
        for (p1, posts1) in &posts_by_poster {
            // Walk p1's closure row instead of probing every other
            // poster; buffered because `add` mutates the closure while
            // we iterate. Row bits ascend, matching the BTreeMap order
            // the probing loop visited posters in.
            reach_buf.clear();
            reach_buf.extend(closure.row_bits(p1.index()));
            for &p2_idx in &reach_buf {
                let p2 = ActionId(p2_idx as u32);
                if *p1 == p2 {
                    continue;
                }
                let Some(posts2) = posts_by_poster.get(&p2) else {
                    continue;
                };
                for &(_, a3) in posts1 {
                    // Hoist the row bounds check: a3 is fixed across the
                    // whole a4 sweep, so validate its row once instead of
                    // re-checking both indices on every probe.
                    let row3 = closure.checked_row(a3.index());
                    for &(_, a4) in posts2 {
                        if a3 == a4 {
                            continue;
                        }
                        let t3 = analysis.actions.action(a3).thread;
                        let t4 = analysis.actions.action(a4).thread;
                        if !t3.same_looper(t4) {
                            continue;
                        }
                        if !closure.get_in_row(row3, a4.index()) {
                            add(
                                &mut edges,
                                &mut stats,
                                &mut closure,
                                a3,
                                a4,
                                HbRule::InterActionTransitivity,
                            );
                            grew = true;
                        }
                    }
                }
            }
        }
        if !grew {
            break;
        }
    }

    Shbg {
        edges,
        stats,
        closure,
        n,
    }
}

/// Whether `target` is reachable in `action`'s interprocedural CFG from the
/// action's entry, optionally treating `avoid` as removed (paths may not
/// execute past it).
fn icfg_reachable_avoiding(
    analysis: &Analysis,
    program: &apir::Program,
    action: ActionId,
    target: StmtAddr,
    avoid: Option<StmtAddr>,
) -> bool {
    // Entry contexts: reachable contexts of the action's entry method that
    // belong to the action.
    let entry = analysis.actions.action(action).entry;
    let mut stack: Vec<(MethodId, CtxId, BlockId)> = Vec::new();
    let mut visited: HashSet<(MethodId, CtxId, BlockId)> = HashSet::new();
    for &(m, ctx) in &analysis.reachable {
        if m == entry && analysis.action_of(ctx) == action {
            stack.push((m, ctx, BlockId(0)));
        }
    }
    while let Some((m, ctx, block)) = stack.pop() {
        if !visited.insert((m, ctx, block)) {
            continue;
        }
        let method = program.method(m);
        if !method.has_body() || block.index() >= method.blocks.len() {
            continue;
        }
        let bb = method.block(block);
        let mut cut = false;
        for (i, stmt) in bb.stmts.iter().enumerate() {
            let here = StmtAddr::new(m, block, i as u32);
            if here == target {
                return true;
            }
            if Some(here) == avoid {
                cut = true;
                break; // cannot execute past the removed node
            }
            if let Stmt::Call { site, .. } = stmt {
                if let Some(callees) = analysis.cg_edges.get(&(m, ctx, *site)) {
                    for &(cm, cctx) in callees {
                        // Stay within the action.
                        if analysis.action_of(cctx) == action {
                            stack.push((cm, cctx, BlockId(0)));
                        }
                    }
                }
            }
        }
        if !cut {
            for succ in bb.terminator.successors() {
                stack.push((m, ctx, succ));
            }
        }
    }
    false
}
