//! A dense bit matrix for transitive-closure computation.
//!
//! The closure is computed by **SCC condensation**: Tarjan's algorithm
//! shrinks the edge relation to its strongly-connected components, the
//! condensation (a DAG) is closed in reverse topological order with
//! word-level row ORs, and the component rows are expanded back to the
//! original nodes. On the mostly-acyclic happens-before graphs the SHBG
//! produces, this does one linear pass plus one OR per condensation
//! edge, instead of Warshall-style re-sweeps to a fixpoint.

/// An `n × n` boolean matrix backed by `u64` words.
///
/// # Index contract
///
/// Both [`BitMatrix::set`] and [`BitMatrix::get`] **panic** when an
/// index is `>= len()`. (Earlier versions silently returned `false`
/// from `get`, which let out-of-range action ids read as "unordered"
/// instead of surfacing the bug.)
#[derive(Debug, Clone)]
pub struct BitMatrix {
    n: usize,
    words: usize,
    rows: Vec<u64>,
}

impl BitMatrix {
    /// Creates an all-false `n × n` matrix.
    pub fn new(n: usize) -> Self {
        let words = n.div_ceil(64);
        Self {
            n,
            words,
            rows: vec![0; n * words],
        }
    }

    /// Matrix dimension.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is zero-dimensional.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Sets `(a, b)`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn set(&mut self, a: usize, b: usize) {
        assert!(
            a < self.n && b < self.n,
            "BitMatrix::set({a}, {b}) out of range for n={}",
            self.n
        );
        self.rows[a * self.words + b / 64] |= 1 << (b % 64);
    }

    /// Reads `(a, b)`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range (same contract as [`set`](Self::set)).
    pub fn get(&self, a: usize, b: usize) -> bool {
        assert!(
            a < self.n && b < self.n,
            "BitMatrix::get({a}, {b}) out of range for n={}",
            self.n
        );
        self.rows[a * self.words + b / 64] & (1 << (b % 64)) != 0
    }

    /// `row[a] |= row[b]`; returns whether row `a` changed.
    pub fn or_row(&mut self, a: usize, b: usize) -> bool {
        if a == b {
            return false;
        }
        let mut changed = false;
        let (ra, rb) = (a * self.words, b * self.words);
        for w in 0..self.words {
            let src = self.rows[rb + w];
            let dst = &mut self.rows[ra + w];
            let nv = *dst | src;
            if nv != *dst {
                *dst = nv;
                changed = true;
            }
        }
        changed
    }

    /// Iterates over the set bits of row `a`, ascending, without
    /// allocating.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range (same contract as [`get`](Self::get);
    /// previously this surfaced only as an opaque slice-index panic).
    pub fn row_bits(&self, a: usize) -> RowBits<'_> {
        assert!(
            a < self.n,
            "BitMatrix::row_bits({a}) out of range for n={}",
            self.n
        );
        RowBits {
            words: &self.rows[a * self.words..(a + 1) * self.words],
            next_word: 0,
            base: 0,
            cur: 0,
        }
    }

    /// Validates row `a` once and returns an opaque handle for repeated
    /// [`get_in_row`](Self::get_in_row) probes. Hot loops probing many
    /// columns of one row (SHBG rules 6/7) hoist the row bounds check and
    /// offset multiply here instead of paying them per [`get`](Self::get).
    /// The handle is a plain offset, not a borrow, so the matrix can
    /// still be mutated between probes (bit sets never move the rows).
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn checked_row(&self, a: usize) -> usize {
        assert!(
            a < self.n,
            "BitMatrix::checked_row({a}) out of range for n={}",
            self.n
        );
        a * self.words
    }

    /// Reads column `b` of a row validated by
    /// [`checked_row`](Self::checked_row); only the column index is
    /// re-checked.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn get_in_row(&self, row: usize, b: usize) -> bool {
        assert!(
            b < self.n,
            "BitMatrix::get_in_row(.., {b}) out of range for n={}",
            self.n
        );
        self.rows[row + b / 64] & (1 << (b % 64)) != 0
    }

    /// Number of set bits in the whole matrix.
    pub fn count_ones(&self) -> usize {
        self.rows.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Computes the transitive closure in place; returns the number of
    /// strongly-connected components of the edge relation.
    ///
    /// Semantics: after the call, `get(a, b)` holds iff `b` is
    /// reachable from `a` through **at least one** edge — so `get(a, a)`
    /// holds only when `a` lies on a cycle (including a self-loop).
    pub fn transitive_closure(&mut self) -> usize {
        if self.n == 0 {
            return 0;
        }
        let scc = tarjan(self);
        let words = self.words;
        let sccs = scc.count;
        // Bit mask of each component's member nodes.
        let mut members = vec![0u64; sccs * words];
        for a in 0..self.n {
            members[scc.comp[a] * words + a / 64] |= 1 << (a % 64);
        }
        // A single-node component is cyclic only via a self-loop.
        let mut cyclic = scc.multi;
        for a in 0..self.n {
            if self.get(a, a) {
                cyclic[scc.comp[a]] = true;
            }
        }
        // Close the condensation. Tarjan emits components in reverse
        // topological order (every component reachable from `s` has a
        // smaller id), so by the time `s` is processed the full rows of
        // all its successors are final: one OR per condensation edge.
        let mut full = vec![0u64; sccs * words];
        let mut seen = vec![false; sccs];
        let mut touched: Vec<usize> = Vec::new();
        for s in 0..sccs {
            for a in (0..self.n).filter(|&a| scc.comp[a] == s) {
                for b in self.row_bits(a) {
                    let t = scc.comp[b];
                    if t == s || seen[t] {
                        continue;
                    }
                    seen[t] = true;
                    touched.push(t);
                    for w in 0..words {
                        full[s * words + w] |= full[t * words + w] | members[t * words + w];
                    }
                }
            }
            if cyclic[s] {
                for w in 0..words {
                    full[s * words + w] |= members[s * words + w];
                }
            }
            for &t in &touched {
                seen[t] = false;
            }
            touched.clear();
        }
        // Expand component rows back to the original nodes.
        for a in 0..self.n {
            let s = scc.comp[a];
            self.rows[a * words..(a + 1) * words]
                .copy_from_slice(&full[s * words..(s + 1) * words]);
        }
        sccs
    }
}

/// Borrowed, non-allocating iterator over the set bits of one row.
pub struct RowBits<'a> {
    words: &'a [u64],
    next_word: usize,
    base: usize,
    cur: u64,
}

impl Iterator for RowBits<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.cur != 0 {
                let bit = self.cur.trailing_zeros() as usize;
                self.cur &= self.cur - 1;
                return Some(self.base + bit);
            }
            if self.next_word >= self.words.len() {
                return None;
            }
            self.cur = self.words[self.next_word];
            self.base = self.next_word * 64;
            self.next_word += 1;
        }
    }
}

/// Tarjan condensation of the matrix's edge relation.
struct SccResult {
    /// Node → component id. Ids are assigned in **emission order**:
    /// every component reachable from component `s` has an id `< s`.
    comp: Vec<usize>,
    /// Number of components.
    count: usize,
    /// Per component: whether it has more than one member.
    multi: Vec<bool>,
}

fn tarjan(m: &BitMatrix) -> SccResult {
    const UNVISITED: u32 = u32::MAX;
    let n = m.len();
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0u32;
    let mut comp = vec![usize::MAX; n];
    let mut multi = Vec::new();
    let mut count = 0usize;
    // Explicit DFS frames: (node, its successor iterator).
    let mut frames: Vec<(usize, RowBits<'_>)> = Vec::new();
    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        frames.push((root, m.row_bits(root)));
        while let Some((v, it)) = frames.last_mut() {
            let v = *v;
            if let Some(w) = it.next() {
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, m.row_bits(w)));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                if lowlink[v] == index[v] {
                    let mut size = 0usize;
                    loop {
                        let w = stack.pop().expect("tarjan stack");
                        on_stack[w] = false;
                        comp[w] = count;
                        size += 1;
                        if w == v {
                            break;
                        }
                    }
                    multi.push(size > 1);
                    count += 1;
                }
                frames.pop();
                if let Some((p, _)) = frames.last() {
                    let p = *p;
                    lowlink[p] = lowlink[p].min(lowlink[v]);
                }
            }
        }
    }
    SccResult { comp, count, multi }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut m = BitMatrix::new(130);
        m.set(0, 129);
        m.set(64, 64);
        assert!(m.get(0, 129));
        assert!(m.get(64, 64));
        assert!(!m.get(129, 0));
        assert_eq!(m.count_ones(), 2);
        assert_eq!(m.len(), 130);
        assert!(!m.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_panics_out_of_range() {
        let m = BitMatrix::new(130);
        let _ = m.get(200, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_panics_out_of_range() {
        let mut m = BitMatrix::new(130);
        m.set(0, 130);
    }

    #[test]
    fn closure_of_a_chain() {
        let mut m = BitMatrix::new(5);
        for i in 0..4 {
            m.set(i, i + 1);
        }
        let sccs = m.transitive_closure();
        assert_eq!(sccs, 5, "an acyclic chain has one SCC per node");
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(m.get(i, j), i < j, "({i},{j})");
            }
        }
        assert_eq!(m.count_ones(), 10);
    }

    #[test]
    fn closure_of_a_cycle_collapses_to_one_scc() {
        let mut m = BitMatrix::new(4);
        m.set(0, 1);
        m.set(1, 2);
        m.set(2, 0);
        m.set(2, 3);
        let sccs = m.transitive_closure();
        assert_eq!(sccs, 2, "{{0,1,2}} and {{3}}");
        for a in 0..3 {
            for b in 0..3 {
                assert!(m.get(a, b), "cycle members reach each other ({a},{b})");
            }
            assert!(m.get(a, 3));
        }
        assert!(!m.get(3, 0) && !m.get(3, 3));
    }

    #[test]
    fn self_loop_is_self_reachable() {
        let mut m = BitMatrix::new(2);
        m.set(0, 0);
        let sccs = m.transitive_closure();
        assert_eq!(sccs, 2);
        assert!(m.get(0, 0));
        assert!(!m.get(1, 1), "no edge, not self-reachable");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn row_bits_panics_out_of_range() {
        let m = BitMatrix::new(130);
        let _ = m.row_bits(130);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn checked_row_panics_out_of_range() {
        let m = BitMatrix::new(130);
        let _ = m.checked_row(200);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_in_row_panics_on_bad_column() {
        let m = BitMatrix::new(130);
        let row = m.checked_row(3);
        let _ = m.get_in_row(row, 130);
    }

    #[test]
    fn get_in_row_agrees_with_get() {
        let mut m = BitMatrix::new(70);
        m.set(3, 1);
        m.set(3, 65);
        let row = m.checked_row(3);
        for b in 0..70 {
            assert_eq!(m.get_in_row(row, b), m.get(3, b), "column {b}");
        }
    }

    #[test]
    fn row_bits_enumerates() {
        let mut m = BitMatrix::new(70);
        m.set(3, 1);
        m.set(3, 65);
        assert_eq!(m.row_bits(3).collect::<Vec<_>>(), vec![1, 65]);
        assert_eq!(m.row_bits(0).next(), None);
    }

    #[test]
    fn or_row_merges() {
        let mut m = BitMatrix::new(4);
        m.set(1, 2);
        m.set(1, 3);
        assert!(m.or_row(0, 1));
        assert!(m.get(0, 2) && m.get(0, 3));
        assert!(!m.or_row(0, 1), "idempotent");
        assert!(!m.or_row(2, 2), "self-merge is a no-op");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use sierra_prng::SplitMix64;

    /// A random edge list over 2..=12 nodes.
    fn random_edges(rng: &mut SplitMix64) -> (usize, Vec<(usize, usize)>) {
        let n = 2 + rng.usize(11);
        let edges = (0..rng.usize(24))
            .map(|_| (rng.usize(n), rng.usize(n)))
            .collect();
        (n, edges)
    }

    /// The reference implementation the SCC closure must match: Warshall
    /// over bit rows, re-swept until no row changes.
    fn naive_closure(m: &mut BitMatrix) {
        let mut changed = true;
        while changed {
            changed = false;
            for a in 0..m.len() {
                let succs: Vec<usize> = m.row_bits(a).collect();
                for b in succs {
                    if m.or_row(a, b) {
                        changed = true;
                    }
                }
            }
        }
    }

    /// The closure is exactly graph reachability (excluding trivial
    /// self-reachability unless on a cycle).
    #[test]
    fn closure_is_reachability() {
        let mut rng = SplitMix64::new(0xB17A1);
        for _ in 0..256 {
            let (n, edges) = random_edges(&mut rng);
            let mut m = BitMatrix::new(n);
            let mut adj = vec![vec![]; n];
            for &(a, b) in &edges {
                m.set(a, b);
                adj[a].push(b);
            }
            m.transitive_closure();
            for s in 0..n {
                // BFS from s through at least one edge.
                let mut seen = std::collections::HashSet::new();
                let mut stack: Vec<usize> = adj[s].clone();
                while let Some(x) = stack.pop() {
                    if seen.insert(x) {
                        stack.extend(adj[x].iter().copied());
                    }
                }
                for t in 0..n {
                    assert_eq!(m.get(s, t), seen.contains(&t), "({s},{t}) in {edges:?}");
                }
            }
        }
    }

    /// Closing twice changes nothing (idempotence).
    #[test]
    fn closure_is_idempotent() {
        let mut rng = SplitMix64::new(0x1DE3B);
        for _ in 0..256 {
            let (n, edges) = random_edges(&mut rng);
            let mut m = BitMatrix::new(n);
            for &(a, b) in &edges {
                m.set(a, b);
            }
            m.transitive_closure();
            let once = m.clone();
            m.transitive_closure();
            for a in 0..n {
                for b in 0..n {
                    assert_eq!(m.get(a, b), once.get(a, b));
                }
            }
        }
    }

    /// The closure only adds bits, never removes them.
    #[test]
    fn closure_is_extensive() {
        let mut rng = SplitMix64::new(0xE87E5);
        for _ in 0..256 {
            let (n, edges) = random_edges(&mut rng);
            let mut m = BitMatrix::new(n);
            for &(a, b) in &edges {
                m.set(a, b);
            }
            let before = m.clone();
            m.transitive_closure();
            for a in 0..n {
                for b in 0..n {
                    assert!(!before.get(a, b) || m.get(a, b));
                }
            }
            assert!(m.count_ones() >= before.count_ones());
        }
    }

    /// The SCC-condensed closure agrees with naive Warshall on random
    /// DAG-plus-cycles graphs up to 512 nodes.
    #[test]
    fn scc_closure_matches_naive_warshall() {
        let mut rng = SplitMix64::new(0x5CC_C105);
        for round in 0..24 {
            let n = 2 + rng.usize(511);
            let mut m = BitMatrix::new(n);
            // A sparse random base graph...
            for _ in 0..rng.usize(4 * n + 1) {
                m.set(rng.usize(n), rng.usize(n));
            }
            // ...a layered DAG backbone...
            for a in 0..n.saturating_sub(1) {
                if rng.usize(3) == 0 {
                    m.set(a, a + 1 + rng.usize(n - a - 1));
                }
            }
            // ...plus a few planted cycles (chains closed with a back edge).
            for _ in 0..rng.usize(4) {
                let start = rng.usize(n);
                let len = 1 + rng.usize(8);
                let mut prev = start;
                for k in 1..=len {
                    let next = (start + k) % n;
                    m.set(prev, next);
                    prev = next;
                }
                m.set(prev, start);
            }
            let mut reference = m.clone();
            naive_closure(&mut reference);
            let sccs = m.transitive_closure();
            assert!(sccs >= 1 && sccs <= n);
            for a in 0..n {
                for b in 0..n {
                    assert_eq!(
                        m.get(a, b),
                        reference.get(a, b),
                        "({a},{b}) round {round} n={n}"
                    );
                }
            }
        }
    }
}
