//! A dense bit matrix for transitive-closure computation.

/// An `n × n` boolean matrix backed by `u64` words.
#[derive(Debug, Clone)]
pub struct BitMatrix {
    n: usize,
    words: usize,
    rows: Vec<u64>,
}

impl BitMatrix {
    /// Creates an all-false `n × n` matrix.
    pub fn new(n: usize) -> Self {
        let words = n.div_ceil(64);
        Self {
            n,
            words,
            rows: vec![0; n * words],
        }
    }

    /// Matrix dimension.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is zero-dimensional.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Sets `(a, b)`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn set(&mut self, a: usize, b: usize) {
        assert!(a < self.n && b < self.n);
        self.rows[a * self.words + b / 64] |= 1 << (b % 64);
    }

    /// Reads `(a, b)`.
    pub fn get(&self, a: usize, b: usize) -> bool {
        if a >= self.n || b >= self.n {
            return false;
        }
        self.rows[a * self.words + b / 64] & (1 << (b % 64)) != 0
    }

    /// `row[a] |= row[b]`; returns whether row `a` changed.
    pub fn or_row(&mut self, a: usize, b: usize) -> bool {
        if a == b {
            return false;
        }
        let mut changed = false;
        let (ra, rb) = (a * self.words, b * self.words);
        for w in 0..self.words {
            let src = self.rows[rb + w];
            let dst = &mut self.rows[ra + w];
            let nv = *dst | src;
            if nv != *dst {
                *dst = nv;
                changed = true;
            }
        }
        changed
    }

    /// Iterates over the set bits of row `a`.
    pub fn row_bits(&self, a: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for w in 0..self.words {
            let mut word = self.rows[a * self.words + w];
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                out.push(w * 64 + bit);
                word &= word - 1;
            }
        }
        out
    }

    /// Number of set bits in the whole matrix.
    pub fn count_ones(&self) -> usize {
        self.rows.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Computes the transitive closure in place (Warshall over bit rows).
    pub fn transitive_closure(&mut self) {
        let mut changed = true;
        while changed {
            changed = false;
            for a in 0..self.n {
                for b in self.row_bits(a) {
                    if self.or_row(a, b) {
                        changed = true;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut m = BitMatrix::new(130);
        m.set(0, 129);
        m.set(64, 64);
        assert!(m.get(0, 129));
        assert!(m.get(64, 64));
        assert!(!m.get(129, 0));
        assert!(!m.get(200, 0));
        assert_eq!(m.count_ones(), 2);
        assert_eq!(m.len(), 130);
        assert!(!m.is_empty());
    }

    #[test]
    fn closure_of_a_chain() {
        let mut m = BitMatrix::new(5);
        for i in 0..4 {
            m.set(i, i + 1);
        }
        m.transitive_closure();
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(m.get(i, j), i < j, "({i},{j})");
            }
        }
        assert_eq!(m.count_ones(), 10);
    }

    #[test]
    fn row_bits_enumerates() {
        let mut m = BitMatrix::new(70);
        m.set(3, 1);
        m.set(3, 65);
        assert_eq!(m.row_bits(3), vec![1, 65]);
        assert!(m.row_bits(0).is_empty());
    }

    #[test]
    fn or_row_merges() {
        let mut m = BitMatrix::new(4);
        m.set(1, 2);
        m.set(1, 3);
        assert!(m.or_row(0, 1));
        assert!(m.get(0, 2) && m.get(0, 3));
        assert!(!m.or_row(0, 1), "idempotent");
        assert!(!m.or_row(2, 2), "self-merge is a no-op");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use sierra_prng::SplitMix64;

    /// A random edge list over 2..=12 nodes.
    fn random_edges(rng: &mut SplitMix64) -> (usize, Vec<(usize, usize)>) {
        let n = 2 + rng.usize(11);
        let edges = (0..rng.usize(24))
            .map(|_| (rng.usize(n), rng.usize(n)))
            .collect();
        (n, edges)
    }

    /// The closure is exactly graph reachability (excluding trivial
    /// self-reachability unless on a cycle).
    #[test]
    fn closure_is_reachability() {
        let mut rng = SplitMix64::new(0xB17A1);
        for _ in 0..256 {
            let (n, edges) = random_edges(&mut rng);
            let mut m = BitMatrix::new(n);
            let mut adj = vec![vec![]; n];
            for &(a, b) in &edges {
                m.set(a, b);
                adj[a].push(b);
            }
            m.transitive_closure();
            for s in 0..n {
                // BFS from s through at least one edge.
                let mut seen = std::collections::HashSet::new();
                let mut stack: Vec<usize> = adj[s].clone();
                while let Some(x) = stack.pop() {
                    if seen.insert(x) {
                        stack.extend(adj[x].iter().copied());
                    }
                }
                for t in 0..n {
                    assert_eq!(m.get(s, t), seen.contains(&t), "({s},{t}) in {edges:?}");
                }
            }
        }
    }

    /// Closing twice changes nothing (idempotence).
    #[test]
    fn closure_is_idempotent() {
        let mut rng = SplitMix64::new(0x1DE3B);
        for _ in 0..256 {
            let (n, edges) = random_edges(&mut rng);
            let mut m = BitMatrix::new(n);
            for &(a, b) in &edges {
                m.set(a, b);
            }
            m.transitive_closure();
            let once = m.clone();
            m.transitive_closure();
            for a in 0..n {
                for b in 0..n {
                    assert_eq!(m.get(a, b), once.get(a, b));
                }
            }
        }
    }

    /// The closure only adds bits, never removes them.
    #[test]
    fn closure_is_extensive() {
        let mut rng = SplitMix64::new(0xE87E5);
        for _ in 0..256 {
            let (n, edges) = random_edges(&mut rng);
            let mut m = BitMatrix::new(n);
            for &(a, b) in &edges {
                m.set(a, b);
            }
            let before = m.clone();
            m.transitive_closure();
            for a in 0..n {
                for b in 0..n {
                    assert!(!before.get(a, b) || m.get(a, b));
                }
            }
            assert!(m.count_ones() >= before.count_ones());
        }
    }
}
