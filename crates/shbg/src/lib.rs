//! # shbg — the Static Happens-Before Graph (paper §4)
//!
//! Orders [`android_model::Action`]s with statically-derived happens-before
//! edges:
//!
//! 1. **Action invocation**: a uniquely-posted action happens after its
//!    poster (thread fork, message post, receiver registration).
//! 2. **Lifecycle**: dominance in the harness CFG orders lifecycle
//!    callbacks, including the two instances of `onStart`/`onResume`
//!    disambiguated by their pre-dominators (Figure 5).
//! 3. **GUI order**: harness/GUI-model dominance (Figure 6).
//! 4. **Intra-procedural domination** of posting sites.
//! 5. **Inter-procedural, intra-action domination**: posting site `e1`
//!    de-facto dominates `e2` when removing `e1` from the action's ICFG
//!    makes `e2` unreachable.
//! 6. **Inter-action transitivity** (Figure 7): ordered posters with
//!    same-looper posted actions order the posted actions, justified by
//!    looper atomicity and queue FIFO.
//! 7. **Transitivity**: the closure, interleaved with rule 6 to a fixpoint.
//!
//! The result answers `ordered(a, b)` / `unordered(a, b)` queries that the
//! race detector uses to keep only unordered access pairs.

mod bitmat;
mod rules;

pub use bitmat::BitMatrix;
pub use rules::{build, build_with_dominance, CallDominance, HbEdge, HbRule, Shbg, ShbgStats};

#[cfg(test)]
mod tests;
