//! SHBG construction tests over small harnessed apps.

use crate::{build, HbRule};
use android_model::{ActionId, ActionKind, AndroidAppBuilder, GuiEventKind, LifecycleEvent};
use apir::{ConstValue, InvokeKind, Operand, Type};
use harness_gen::generate;
use pointer::{analyze, Analysis, SelectorKind};

fn lifecycle_action(a: &Analysis, ev: LifecycleEvent, instance: u8) -> ActionId {
    a.actions
        .actions()
        .iter()
        .find(|x| {
            x.kind
                == ActionKind::Lifecycle {
                    event: ev,
                    instance,
                }
        })
        .unwrap_or_else(|| panic!("missing lifecycle action {ev:?} #{instance}"))
        .id
}

fn action_of_kind(a: &Analysis, pred: impl Fn(&ActionKind) -> bool) -> ActionId {
    a.actions
        .actions()
        .iter()
        .find(|x| pred(&x.kind))
        .expect("action of kind")
        .id
}

/// Minimal activity with a lifecycle override (so the harness exists).
fn bare_activity(app: &mut AndroidAppBuilder) -> apir::ClassId {
    let activity = app.activity("Main").build();
    let mut mb = app.method(activity, "onCreate");
    mb.set_param_count(1);
    mb.ret(None);
    mb.finish();
    activity
}

#[test]
fn lifecycle_rule_orders_figure_5_edges() {
    let mut app = AndroidAppBuilder::new("T");
    bare_activity(&mut app);
    let h = generate(app.finish().unwrap());
    let a = analyze(&h, SelectorKind::ActionSensitive(1));
    let g = build(&a, &h);

    use LifecycleEvent::*;
    let c = lifecycle_action(&a, Create, 1);
    let s1 = lifecycle_action(&a, Start, 1);
    let s2 = lifecycle_action(&a, Start, 2);
    let r1 = lifecycle_action(&a, Resume, 1);
    let r2 = lifecycle_action(&a, Resume, 2);
    let p = lifecycle_action(&a, Pause, 1);
    let st = lifecycle_action(&a, Stop, 1);
    let d = lifecycle_action(&a, Destroy, 1);

    // The paper's Figure 5 edges.
    assert!(g.ordered(c, s1));
    assert!(g.ordered(s1, st), "onStart \"1\" ≺ onStop");
    assert!(g.ordered(r1, p), "onResume \"1\" ≺ onPause");
    assert!(g.ordered(p, r2), "onPause ≺ onResume \"2\"");
    assert!(g.ordered(st, s2), "onStop ≺ onStart \"2\"");
    assert!(g.ordered(c, d));
    // Cycle members are not ordered the other way.
    assert!(!g.ordered(s2, st));
    assert!(!g.ordered(r2, p));
    // Transitivity: onCreate ≺ onResume "2".
    assert!(g.ordered(c, r2));
    assert!(!g.unordered(c, r2));
    assert!(g.edges_by_rule(HbRule::Lifecycle).len() >= 8);
}

#[test]
fn async_task_posting_is_ordered_by_rule_1_and_task_order() {
    let mut app = AndroidAppBuilder::new("T");
    let fw = app.framework().clone();
    let mut cb = app.subclass("Task", fw.async_task);
    let f = cb.field("x", Type::Int);
    let task = cb.build();
    for name in ["doInBackground", "onPostExecute"] {
        let mut mb = app.method(task, name);
        mb.set_param_count(1);
        let this = mb.param(0);
        mb.store(this, f, Operand::Const(ConstValue::Int(1)));
        mb.ret(None);
        mb.finish();
    }
    let activity = app.activity("Main").build();
    let mut mb = app.method(activity, "onCreate");
    mb.set_param_count(1);
    let t = mb.fresh_local();
    mb.new_(t, task);
    mb.call(
        None,
        InvokeKind::Virtual,
        fw.async_task_execute,
        Some(t),
        vec![],
    );
    mb.ret(None);
    mb.finish();

    let h = generate(app.finish().unwrap());
    let a = analyze(&h, SelectorKind::ActionSensitive(1));
    let g = build(&a, &h);

    let create = lifecycle_action(&a, LifecycleEvent::Create, 1);
    let bg = action_of_kind(&a, |k| matches!(k, ActionKind::AsyncTaskBg));
    let post = action_of_kind(&a, |k| matches!(k, ActionKind::AsyncTaskPost));
    assert!(g.ordered(create, bg), "rule 1: poster ≺ posted");
    assert!(
        g.ordered(bg, post),
        "task order: doInBackground ≺ onPostExecute"
    );
    assert!(g.ordered(create, post), "transitivity");
    assert!(!g.edges_by_rule(HbRule::AsyncTaskOrder).is_empty());
    assert!(!g.edges_by_rule(HbRule::ActionInvocation).is_empty());

    // onPostExecute is NOT ordered with later lifecycle events like onStop.
    let stop = lifecycle_action(&a, LifecycleEvent::Stop, 1);
    assert!(g.unordered(post, stop));
}

/// Builds an app whose `onCreate` posts two runnables in sequence via
/// `runOnUiThread` — rule 4 must order them.
#[test]
fn rule_4_orders_sequential_posts() {
    let mut app = AndroidAppBuilder::new("T");
    let fw = app.framework().clone();
    let mut runnables = Vec::new();
    for name in ["R1", "R2"] {
        let mut cb = app.subclass(name, fw.object);
        cb.add_interface(fw.runnable);
        let c = cb.build();
        let mut mb = app.method(c, "run");
        mb.set_param_count(1);
        mb.ret(None);
        mb.finish();
        runnables.push(c);
    }
    let activity = app.activity("Main").build();
    let mut mb = app.method(activity, "onCreate");
    mb.set_param_count(1);
    let this = mb.param(0);
    let r1 = mb.fresh_local();
    let r2 = mb.fresh_local();
    mb.new_(r1, runnables[0]);
    mb.new_(r2, runnables[1]);
    mb.call(
        None,
        InvokeKind::Virtual,
        fw.run_on_ui_thread,
        Some(this),
        vec![Operand::Local(r1)],
    );
    mb.call(
        None,
        InvokeKind::Virtual,
        fw.run_on_ui_thread,
        Some(this),
        vec![Operand::Local(r2)],
    );
    mb.ret(None);
    mb.finish();

    let h = generate(app.finish().unwrap());
    let a = analyze(&h, SelectorKind::ActionSensitive(1));
    let g = build(&a, &h);
    let post1 = a
        .actions
        .actions()
        .iter()
        .find(|x| {
            matches!(x.kind, ActionKind::RunnablePost)
                && h.app.program.class(h.app.program.method(x.entry).class).id == runnables[0]
        })
        .unwrap()
        .id;
    let post2 = a
        .actions
        .actions()
        .iter()
        .find(|x| {
            matches!(x.kind, ActionKind::RunnablePost)
                && h.app.program.class(h.app.program.method(x.entry).class).id == runnables[1]
        })
        .unwrap()
        .id;
    assert!(g.ordered(post1, post2), "rule 4: first post ≺ second post");
    assert!(!g.ordered(post2, post1));
    assert!(!g.edges_by_rule(HbRule::IntraProcDom).is_empty());
}

/// Rule 5: `onCreate` posts R1 and then calls a helper that posts R2; the
/// helper is only reachable through `onCreate`, past the first post.
#[test]
fn rule_5_orders_posts_across_methods() {
    let mut app = AndroidAppBuilder::new("T");
    let fw = app.framework().clone();
    let mut runnables = Vec::new();
    for name in ["R1", "R2"] {
        let mut cb = app.subclass(name, fw.object);
        cb.add_interface(fw.runnable);
        let c = cb.build();
        let mut mb = app.method(c, "run");
        mb.set_param_count(1);
        mb.ret(None);
        mb.finish();
        runnables.push(c);
    }
    let activity = app.activity("Main").build();
    // helper() { runOnUiThread(new R2) }
    let mut mb = app.method(activity, "helper");
    mb.set_param_count(1);
    let this = mb.param(0);
    let r2 = mb.fresh_local();
    mb.new_(r2, runnables[1]);
    mb.call(
        None,
        InvokeKind::Virtual,
        fw.run_on_ui_thread,
        Some(this),
        vec![Operand::Local(r2)],
    );
    mb.ret(None);
    let helper = mb.finish();
    // onCreate() { runOnUiThread(new R1); helper() }
    let mut mb = app.method(activity, "onCreate");
    mb.set_param_count(1);
    let this = mb.param(0);
    let r1 = mb.fresh_local();
    mb.new_(r1, runnables[0]);
    mb.call(
        None,
        InvokeKind::Virtual,
        fw.run_on_ui_thread,
        Some(this),
        vec![Operand::Local(r1)],
    );
    mb.vcall(helper, this, vec![]);
    mb.ret(None);
    mb.finish();

    let h = generate(app.finish().unwrap());
    let a = analyze(&h, SelectorKind::ActionSensitive(1));
    let g = build(&a, &h);
    let find = |class: apir::ClassId| {
        a.actions
            .actions()
            .iter()
            .find(|x| {
                matches!(x.kind, ActionKind::RunnablePost)
                    && h.app.program.method(x.entry).class == class
            })
            .unwrap()
            .id
    };
    let p1 = find(runnables[0]);
    let p2 = find(runnables[1]);
    assert!(g.ordered(p1, p2), "rule 5: e1 de-facto dominates e2");
    assert!(!g.ordered(p2, p1));
    assert!(!g.edges_by_rule(HbRule::InterProcDom).is_empty());
}

/// Figure 7: ordered actions A1 ≺ A2 posting A3 and A4 to the same looper
/// order A3 ≺ A4 (rule 6).
#[test]
fn rule_6_inter_action_transitivity() {
    let mut app = AndroidAppBuilder::new("T");
    let fw = app.framework().clone();
    let mut runnables = Vec::new();
    for name in ["R3", "R4"] {
        let mut cb = app.subclass(name, fw.object);
        cb.add_interface(fw.runnable);
        let c = cb.build();
        let mut mb = app.method(c, "run");
        mb.set_param_count(1);
        mb.ret(None);
        mb.finish();
        runnables.push(c);
    }
    let activity = app.activity("Main").build();
    // A1 = onCreate posts R3; A2 = onStart posts R4. onCreate ≺ onStart by
    // rule 2, so rule 6 gives post(R3) ≺ post(R4).
    for (name, class) in [("onCreate", runnables[0]), ("onStart", runnables[1])] {
        let mut mb = app.method(activity, name);
        mb.set_param_count(1);
        let this = mb.param(0);
        let r = mb.fresh_local();
        mb.new_(r, class);
        mb.call(
            None,
            InvokeKind::Virtual,
            fw.run_on_ui_thread,
            Some(this),
            vec![Operand::Local(r)],
        );
        mb.ret(None);
        mb.finish();
    }

    let h = generate(app.finish().unwrap());
    let a = analyze(&h, SelectorKind::ActionSensitive(1));
    let g = build(&a, &h);
    let find = |class: apir::ClassId| {
        a.actions
            .actions()
            .iter()
            .find(|x| {
                matches!(x.kind, ActionKind::RunnablePost)
                    && h.app.program.method(x.entry).class == class
            })
            .unwrap()
            .id
    };
    let p3 = find(runnables[0]);
    let p4 = find(runnables[1]);
    assert!(g.ordered(p3, p4), "rule 6 (Figure 7): A3 ≺ A4");
    assert!(!g.edges_by_rule(HbRule::InterActionTransitivity).is_empty());
}

#[test]
fn gui_events_are_unordered_with_pause_but_after_resume() {
    let mut app = AndroidAppBuilder::new("T");
    let fw = app.framework().clone();
    let mut cb = app.activity("Main");
    cb.add_interface(fw.on_click_listener);
    let activity = cb.build();
    let mut mb = app.method(activity, "onClick");
    mb.set_param_count(2);
    mb.ret(None);
    mb.finish();
    let mut mb = app.method(activity, "onCreate");
    mb.set_param_count(1);
    let this = mb.param(0);
    let v = mb.fresh_local();
    mb.call(
        Some(v),
        InvokeKind::Virtual,
        fw.find_view_by_id,
        Some(this),
        vec![Operand::Const(ConstValue::Int(1))],
    );
    mb.call(
        None,
        InvokeKind::Virtual,
        fw.set_on_click_listener,
        Some(v),
        vec![Operand::Local(this)],
    );
    mb.ret(None);
    mb.finish();

    let h = generate(app.finish().unwrap());
    let a = analyze(&h, SelectorKind::ActionSensitive(1));
    let g = build(&a, &h);
    let click = action_of_kind(&a, |k| {
        matches!(
            k,
            ActionKind::Gui {
                event: GuiEventKind::Click,
                ..
            }
        )
    });
    let resume1 = lifecycle_action(&a, LifecycleEvent::Resume, 1);
    let pause = lifecycle_action(&a, LifecycleEvent::Pause, 1);
    let destroy = lifecycle_action(&a, LifecycleEvent::Destroy, 1);
    assert!(g.ordered(resume1, click), "Figure 6: onResume ≺ onClick");
    assert!(g.unordered(click, pause), "clicks race with pausing");
    assert!(
        g.unordered(click, destroy),
        "no false UI-after-stop ordering *edges* needed"
    );
    assert!(g.ordered_pair_count() > 0);
    assert!(g.action_count() > 10);
}
