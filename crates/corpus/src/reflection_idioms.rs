//! Fixture apps whose planted races hide behind opaque call-graph edges.
//!
//! Each app plants exactly one true race that is invisible under the
//! `ignore` opaque policy and detectable under `resolve` (and therefore
//! `havoc`), pinning that each soundness level finds the races it
//! promises:
//!
//! - **reflection**: `onClick` reaches its racy write only through
//!   `Class.forName("com.reflect.Task")` → `newInstance()` →
//!   `invoke("mutate", inst)`. With reflection unmodeled the write is
//!   unreachable and the static field has a single writer; the resolve
//!   table (constant class/method names) restores the second writer.
//! - **intent dispatch**: `onClick` launches `com.intent.Detail` via
//!   `Intent.setClass` + `startActivity`. Under `ignore` the target's
//!   `onCreate` only runs in its *own* harness, so its write never pairs
//!   with the sender harness's `onLongClick` write; resolving the
//!   manifest-declared target mints the `onCreate` action inside the
//!   sender's harness where the pair races.

use crate::ground_truth::{GroundTruth, RaceLabel};
use android_model::{AndroidApp, AndroidAppBuilder};
use apir::{ConstValue, InvokeKind, Operand, Type};

/// Activity of the reflection fixture.
pub const REFLECT_ACTIVITY: &str = "com.reflect.Main";

/// The reflectively-instantiated task class.
pub const REFLECT_TASK: &str = "com.reflect.Task";

/// Sender activity of the intent fixture.
pub const INTENT_ACTIVITY: &str = "com.intent.Main";

/// Intent-launched target activity.
pub const INTENT_TARGET: &str = "com.intent.Detail";

/// Builds the reflection fixture app and its ground truth.
pub fn reflection_idioms_app() -> (AndroidApp, GroundTruth) {
    let mut app = AndroidAppBuilder::new("ReflectionIdioms");
    let mut truth = GroundTruth::new();
    let fw = app.framework().clone();
    let task_name = app.program_builder().intern(REFLECT_TASK);
    let mutate_name = app.program_builder().intern("mutate");

    // Task: a plain class (deliberately not a manifest component) whose
    // `mutate` writes the racy static field.
    let mut cb = app.subclass(REFLECT_TASK, fw.object);
    let shared = cb.static_field("shared", Type::Int);
    let task = cb.build();

    let mut mb = app.method(task, "mutate");
    mb.set_param_count(1);
    mb.static_store(shared, Operand::Const(ConstValue::Int(1)));
    mb.ret(None);
    mb.finish();

    let mut cb = app.activity(REFLECT_ACTIVITY);
    cb.add_interface(fw.on_click_listener);
    cb.add_interface(fw.on_long_click_listener);
    let activity = cb.build();

    // reflectMutate(): cls = Class.forName("com.reflect.Task");
    // inst = cls.newInstance(); cls.invoke("mutate", inst).
    let mut mb = app.method(activity, "reflectMutate");
    mb.set_param_count(1);
    let cls = mb.fresh_local();
    mb.call(
        Some(cls),
        InvokeKind::Static,
        fw.class_for_name,
        None,
        vec![Operand::Const(ConstValue::Str(task_name))],
    );
    let inst = mb.fresh_local();
    mb.call(
        Some(inst),
        InvokeKind::Virtual,
        fw.class_new_instance,
        Some(cls),
        vec![],
    );
    mb.call(
        None,
        InvokeKind::Virtual,
        fw.method_invoke,
        Some(cls),
        vec![
            Operand::Const(ConstValue::Str(mutate_name)),
            Operand::Local(inst),
        ],
    );
    mb.ret(None);
    let reflect_mutate = mb.finish();

    // onClick: the reflective writer.
    let mut mb = app.method(activity, "onClick");
    mb.set_param_count(2);
    let this = mb.param(0);
    mb.vcall(reflect_mutate, this, vec![]);
    mb.ret(None);
    mb.finish();

    // onLongClick: the direct writer the reflective one races with.
    let mut mb = app.method(activity, "onLongClick");
    mb.set_param_count(2);
    mb.static_store(shared, Operand::Const(ConstValue::Int(2)));
    mb.ret(None);
    mb.finish();

    register_handlers(
        &mut app,
        activity,
        &[
            (1, fw.set_on_click_listener),
            (2, fw.set_on_long_click_listener),
        ],
    );

    truth.plant(REFLECT_TASK, "shared", RaceLabel::TrueRace);
    (app.finish().expect("valid reflection fixture"), truth)
}

/// Builds the intent-dispatch fixture app and its ground truth.
pub fn intent_idioms_app() -> (AndroidApp, GroundTruth) {
    let mut app = AndroidAppBuilder::new("IntentIdioms");
    let mut truth = GroundTruth::new();
    let fw = app.framework().clone();
    let target_name = app.program_builder().intern(INTENT_TARGET);

    // The launched activity: its onCreate writes the racy static field.
    let mut cb = app.activity(INTENT_TARGET);
    let hits = cb.static_field("hits", Type::Int);
    let target = cb.build();

    let mut mb = app.method(target, "onCreate");
    mb.set_param_count(1);
    mb.static_store(hits, Operand::Const(ConstValue::Int(1)));
    mb.ret(None);
    mb.finish();

    let mut cb = app.activity(INTENT_ACTIVITY);
    cb.add_interface(fw.on_click_listener);
    cb.add_interface(fw.on_long_click_listener);
    let activity = cb.build();

    // onClick: intent = new Intent; intent.setClass("com.intent.Detail");
    // startActivity(intent) — the opaque dispatch edge.
    let mut mb = app.method(activity, "onClick");
    mb.set_param_count(2);
    let this = mb.param(0);
    let intent = mb.fresh_local();
    mb.new_(intent, fw.intent);
    mb.call(
        None,
        InvokeKind::Virtual,
        fw.intent_set_class,
        Some(intent),
        vec![Operand::Const(ConstValue::Str(target_name))],
    );
    mb.call(
        None,
        InvokeKind::Virtual,
        fw.start_activity,
        Some(this),
        vec![Operand::Local(intent)],
    );
    mb.ret(None);
    mb.finish();

    // onLongClick: the sender-side writer the launched onCreate races
    // with (unordered GUI actions in the sender's harness).
    let mut mb = app.method(activity, "onLongClick");
    mb.set_param_count(2);
    mb.static_store(hits, Operand::Const(ConstValue::Int(2)));
    mb.ret(None);
    mb.finish();

    register_handlers(
        &mut app,
        activity,
        &[
            (1, fw.set_on_click_listener),
            (2, fw.set_on_long_click_listener),
        ],
    );

    truth.plant(INTENT_TARGET, "hits", RaceLabel::TrueRace);
    (app.finish().expect("valid intent fixture"), truth)
}

/// Emits an `onCreate` that binds each `(view id, setter)` pair to `this`.
fn register_handlers(
    app: &mut AndroidAppBuilder,
    activity: apir::ClassId,
    handlers: &[(i64, apir::MethodId)],
) {
    let fw = app.framework().clone();
    let mut mb = app.method(activity, "onCreate");
    mb.set_param_count(1);
    let this = mb.param(0);
    for &(id, register) in handlers {
        let view = mb.fresh_local();
        mb.call(
            Some(view),
            InvokeKind::Virtual,
            fw.find_view_by_id,
            Some(this),
            vec![Operand::Const(ConstValue::Int(id))],
        );
        mb.call(
            None,
            InvokeKind::Virtual,
            register,
            Some(view),
            vec![Operand::Local(this)],
        );
    }
    mb.ret(None);
    mb.finish();
}
