//! Fixture app exercising each prefilter verdict exactly once.
//!
//! The activity plants three prunable patterns plus their live
//! counterparts, so tests can pin the per-verdict prune counts:
//!
//! - **escape**: two GUI handlers call a helper that allocates a
//!   `Scratch` object per call and writes its field. The object never
//!   leaves the calling action, so even when a context-insensitive
//!   points-to analysis conflates the two allocations into one abstract
//!   object (producing a candidate pair), the escape rule prunes it.
//!   Under action-sensitive contexts the pair never forms at all.
//! - **guarded**: `onScroll` populates `cache` and then sets the
//!   write-once `ready` flag; `onItemClick` reads `cache` only under
//!   `if (ready)`. The "`onItemClick` first" direction is infeasible
//!   (the flag still holds its default), so the guard rule prunes the
//!   `cache` pair. The `ready` pair itself stays — it is the benign
//!   guard race SIERRA still reports.
//! - **constprop**: `onClick` writes `log` only under a
//!   constant-`false` branch; `onLongClick` writes it for real. The
//!   dead-branch access cannot execute, so the pair prunes.

use crate::ground_truth::{GroundTruth, RaceLabel};
use android_model::{AndroidApp, AndroidAppBuilder};
use apir::{ConstValue, InvokeKind, Operand, Type};

/// The activity name the fixture plants everything under.
pub const ACTIVITY: &str = "com.prefilter.Main";

/// Builds the prefilter-idiom fixture app and its ground truth.
pub fn prefilter_idioms_app() -> (AndroidApp, GroundTruth) {
    let mut app = AndroidAppBuilder::new("PrefilterIdioms");
    let mut truth = GroundTruth::new();
    let fw = app.framework().clone();

    let scratch_name = format!("{ACTIVITY}$Scratch");
    let mut cb = app.subclass(&scratch_name, fw.object);
    let val = cb.field("val", Type::Int);
    let scratch = cb.build();

    let mut cb = app.activity(ACTIVITY);
    cb.add_interface(fw.on_click_listener);
    cb.add_interface(fw.on_long_click_listener);
    cb.add_interface(fw.on_scroll_listener);
    cb.add_interface(fw.on_item_click_listener);
    let cache = cb.field("cache", Type::Ref(fw.object));
    let ready = cb.field("ready", Type::Bool);
    let log = cb.field("log", Type::Int);
    let activity = cb.build();

    // helper(): h = new Scratch; h.val = 1 — one confined allocation per
    // calling action.
    let mut mb = app.method(activity, "helper");
    mb.set_param_count(1);
    let h = mb.fresh_local();
    mb.new_(h, scratch);
    mb.store(h, val, Operand::Const(ConstValue::Int(1)));
    mb.ret(None);
    let helper = mb.finish();

    // onClick: helper(); if (false) log = 1.
    let mut mb = app.method(activity, "onClick");
    mb.set_param_count(2);
    let this = mb.param(0);
    mb.vcall(helper, this, vec![]);
    let c = mb.fresh_local();
    mb.const_(c, ConstValue::Bool(false));
    let b_dead = mb.new_block();
    let b_exit = mb.new_block();
    mb.if_(Operand::Local(c), b_dead, b_exit);
    mb.switch_to(b_dead);
    mb.store(this, log, Operand::Const(ConstValue::Int(1)));
    mb.goto(b_exit);
    mb.switch_to(b_exit);
    mb.ret(None);
    mb.finish();

    // onLongClick: helper(); log = 2.
    let mut mb = app.method(activity, "onLongClick");
    mb.set_param_count(2);
    let this = mb.param(0);
    mb.vcall(helper, this, vec![]);
    mb.store(this, log, Operand::Const(ConstValue::Int(2)));
    mb.ret(None);
    mb.finish();

    // onScroll: cache = new Object(); ready = true (the unique store).
    let obj = fw.object;
    let mut mb = app.method(activity, "onScroll");
    mb.set_param_count(2);
    let this = mb.param(0);
    let v = mb.fresh_local();
    mb.new_(v, obj);
    mb.store(this, cache, Operand::Local(v));
    mb.store(this, ready, Operand::Const(ConstValue::Bool(true)));
    mb.ret(None);
    mb.finish();

    // onItemClick: if (ready) read cache.
    let mut mb = app.method(activity, "onItemClick");
    mb.set_param_count(3);
    let this = mb.param(0);
    let g = mb.fresh_local();
    mb.load(g, this, ready);
    let b_then = mb.new_block();
    let b_exit = mb.new_block();
    mb.if_(Operand::Local(g), b_then, b_exit);
    mb.switch_to(b_then);
    let x = mb.fresh_local();
    mb.load(x, this, cache);
    mb.goto(b_exit);
    mb.switch_to(b_exit);
    mb.ret(None);
    mb.finish();

    // onCreate registers all four handlers.
    let mut mb = app.method(activity, "onCreate");
    mb.set_param_count(1);
    let this = mb.param(0);
    for (id, register) in [
        (1i64, fw.set_on_click_listener),
        (2, fw.set_on_long_click_listener),
        (3, fw.set_on_scroll_listener),
        (4, fw.set_on_item_click_listener),
    ] {
        let view = mb.fresh_local();
        mb.call(
            Some(view),
            InvokeKind::Virtual,
            fw.find_view_by_id,
            Some(this),
            vec![Operand::Const(ConstValue::Int(id))],
        );
        mb.call(
            None,
            InvokeKind::Virtual,
            register,
            Some(view),
            vec![Operand::Local(this)],
        );
    }
    mb.ret(None);
    mb.finish();

    truth.plant(&scratch_name, "val", RaceLabel::Ordered);
    truth.plant(ACTIVITY, "cache", RaceLabel::Refutable);
    truth.plant(ACTIVITY, "ready", RaceLabel::BenignGuard);
    truth.plant(ACTIVITY, "log", RaceLabel::Refutable);

    (app.finish().expect("valid prefilter fixture"), truth)
}
