//! Fixture apps for the message-history refutation stage.
//!
//! Each app plants exactly one false positive that *only* the histories
//! stage can discharge — the pair survives the SHBG (the actions are
//! unordered), the prefilter (no guard, no constant branch, the fields
//! escape), and the symbolic refuter (the accesses are unguarded) — plus
//! one genuine race the stage must not touch. The four apps cover the
//! protocol idioms of §4 and all three refutation patterns:
//!
//! - [`dialog_dismiss`] — a click handler shows a dialog, `onDestroy`
//!   dismisses it. The interactive `Resumed` loop cannot follow the
//!   terminal `Destroyed` region: **destroy-dominates**.
//! - [`fragment_detach`] — a "fragment" (modelled as a receiver) is
//!   attached in `onStart` and detached in `onStop`; its callback is
//!   quiesced before `onDestroy` can run: **pause-quiesced**.
//! - [`task_cancel`] — an `AsyncTask` is executed and cancelled inside
//!   the same `onCreate`; its `onPostExecute` is dead:
//!   **unregistered-before-posted** (and the dead callback's helper
//!   feeds infeasible edges to the refuter).
//! - [`pause_unregister`] — a receiver registered in `onCreate` is
//!   unregistered in `onPause`, so `onReceive` cannot reach the
//!   destroy region: **pause-quiesced**.

use crate::ground_truth::{GroundTruth, RaceLabel};
use android_model::{AndroidApp, AndroidAppBuilder};
use apir::{ClassId, ConstValue, FieldId, InvokeKind, MethodId, Operand, Type};

/// Activity of the dialog show/dismiss app.
pub const DIALOG_ACTIVITY: &str = "com.protocol.DialogHost";
/// Activity of the fragment attach/detach app.
pub const FRAGMENT_ACTIVITY: &str = "com.protocol.FragmentHost";
/// Activity of the async-task cancellation app.
pub const TASK_ACTIVITY: &str = "com.protocol.TaskHost";
/// Activity of the unregister-in-onPause app.
pub const PAUSE_ACTIVITY: &str = "com.protocol.PauseGuard";

/// All four fixture apps with their ground truth.
pub fn build_all() -> Vec<(&'static str, AndroidApp, GroundTruth)> {
    let (a, ta) = dialog_dismiss();
    let (b, tb) = fragment_detach();
    let (c, tc) = task_cancel();
    let (d, td) = pause_unregister();
    vec![
        ("dialog-dismiss", a, ta),
        ("fragment-detach", b, tb),
        ("task-cancel", c, tc),
        ("pause-unregister", d, td),
    ]
}

/// Declares a `Runnable` worker with an `outer` back-reference whose
/// `run` body is supplied by `body`, and starts it on a fresh thread at
/// the current point of `mb` (the worker carries the app's true race).
fn start_worker_thread(
    app: &mut AndroidAppBuilder,
    name: &str,
    outer_class: ClassId,
    body: impl FnOnce(&mut apir::MethodBuilder<'_>, apir::Local),
) -> (ClassId, MethodId) {
    let fw = app.framework().clone();
    let mut cb = app.subclass(name, fw.object);
    cb.add_interface(fw.runnable);
    let outer = cb.field("outer", Type::Ref(outer_class));
    let class = cb.build();
    let mut mb = app.method(class, "<init>");
    mb.set_param_count(2);
    let (this, o) = (mb.param(0), mb.param(1));
    mb.store(this, outer, Operand::Local(o));
    mb.ret(None);
    let init = mb.finish();
    let mut mb = app.method(class, "run");
    mb.set_param_count(1);
    let this = mb.param(0);
    let o = mb.fresh_local();
    mb.load(o, this, outer);
    body(&mut mb, o);
    mb.ret(None);
    mb.finish();
    (class, init)
}

/// Emits `w = new Worker(this); new Thread(w).start()` into `mb`.
fn spawn_worker(
    mb: &mut apir::MethodBuilder<'_>,
    fw: &android_model::FrameworkClasses,
    this: apir::Local,
    worker: ClassId,
    worker_init: MethodId,
) {
    let (w, t) = (mb.fresh_local(), mb.fresh_local());
    mb.new_(w, worker);
    mb.call(
        None,
        InvokeKind::Special,
        worker_init,
        Some(w),
        vec![Operand::Local(this)],
    );
    mb.new_(t, fw.thread);
    mb.call(
        None,
        InvokeKind::Special,
        fw.thread_init,
        Some(t),
        vec![Operand::Local(w)],
    );
    mb.call(None, InvokeKind::Virtual, fw.thread_start, Some(t), vec![]);
}

/// Declares a `BroadcastReceiver` subclass with an `outer` back-reference
/// and an `onReceive` body supplied by `body`.
fn receiver_with_outer(
    app: &mut AndroidAppBuilder,
    name: &str,
    outer_class: ClassId,
    body: impl FnOnce(&mut apir::MethodBuilder<'_>, apir::Local),
) -> (ClassId, MethodId) {
    let fw = app.framework().clone();
    let mut cb = app.subclass(name, fw.broadcast_receiver);
    let outer = cb.field("outer", Type::Ref(outer_class));
    let class = cb.build();
    let mut mb = app.method(class, "<init>");
    mb.set_param_count(2);
    let (this, o) = (mb.param(0), mb.param(1));
    mb.store(this, outer, Operand::Local(o));
    mb.ret(None);
    let init = mb.finish();
    let mut mb = app.method(class, "onReceive");
    mb.set_param_count(2);
    let this = mb.param(0);
    let o = mb.fresh_local();
    mb.load(o, this, outer);
    body(&mut mb, o);
    mb.ret(None);
    mb.finish();
    (class, init)
}

/// Allocates `recv_local = new Recv(this)`, stores it into `field`, and
/// registers it: the registration half of the register/unregister idiom.
fn register_receiver_in(
    mb: &mut apir::MethodBuilder<'_>,
    fw: &android_model::FrameworkClasses,
    this: apir::Local,
    recv_class: ClassId,
    recv_init: MethodId,
    field: FieldId,
) {
    let r = mb.fresh_local();
    mb.new_(r, recv_class);
    mb.call(
        None,
        InvokeKind::Special,
        recv_init,
        Some(r),
        vec![Operand::Local(this)],
    );
    mb.store(this, field, Operand::Local(r));
    mb.call(
        None,
        InvokeKind::Virtual,
        fw.register_receiver,
        Some(this),
        vec![Operand::Local(r)],
    );
}

/// Loads the receiver back from `field` and unregisters it.
fn unregister_receiver_in(
    mb: &mut apir::MethodBuilder<'_>,
    fw: &android_model::FrameworkClasses,
    this: apir::Local,
    field: FieldId,
) {
    let r = mb.fresh_local();
    mb.load(r, this, field);
    mb.call(
        None,
        InvokeKind::Virtual,
        fw.unregister_receiver,
        Some(this),
        vec![Operand::Local(r)],
    );
}

/// Dialog show/dismiss: `onClick` shows a dialog (`dlg` write),
/// `onDestroy` dismisses whatever is showing (`dlg` read). The GUI
/// handler only runs in the `Resumed` loop, which the automaton cannot
/// re-enter from `Destroyed` — the **destroy-dominates** discharge. The
/// true race is a background prefetcher bumping `clicks` while the
/// handler reads it.
pub fn dialog_dismiss() -> (AndroidApp, GroundTruth) {
    let mut app = AndroidAppBuilder::new("DialogDismiss");
    let mut truth = GroundTruth::new();
    let fw = app.framework().clone();

    let mut cb = app.activity(DIALOG_ACTIVITY);
    cb.add_interface(fw.on_click_listener);
    let dlg = cb.field("dlg", Type::Ref(fw.object));
    let clicks = cb.field("clicks", Type::Int);
    let activity = cb.build();

    let (worker, worker_init) = start_worker_thread(
        &mut app,
        &format!("{DIALOG_ACTIVITY}$Prefetch"),
        activity,
        |mb, o| {
            mb.store(o, clicks, Operand::Const(ConstValue::Int(1)));
        },
    );

    let mut mb = app.method(activity, "onCreate");
    mb.set_param_count(1);
    let this = mb.param(0);
    spawn_worker(&mut mb, &fw, this, worker, worker_init);
    let v = mb.fresh_local();
    mb.call(
        Some(v),
        InvokeKind::Virtual,
        fw.find_view_by_id,
        Some(this),
        vec![Operand::Const(ConstValue::Int(1))],
    );
    mb.call(
        None,
        InvokeKind::Virtual,
        fw.set_on_click_listener,
        Some(v),
        vec![Operand::Local(this)],
    );
    mb.ret(None);
    mb.finish();

    // onClick: read the click counter, then "show" a dialog.
    let mut mb = app.method(activity, "onClick");
    mb.set_param_count(2);
    let this = mb.param(0);
    let (c, d) = (mb.fresh_local(), mb.fresh_local());
    mb.load(c, this, clicks);
    mb.new_(d, fw.object);
    mb.store(this, dlg, Operand::Local(d));
    mb.ret(None);
    mb.finish();

    // onDestroy: dismiss whatever dialog is showing.
    let mut mb = app.method(activity, "onDestroy");
    mb.set_param_count(1);
    let this = mb.param(0);
    let d = mb.fresh_local();
    mb.load(d, this, dlg);
    mb.ret(None);
    mb.finish();

    truth.plant(DIALOG_ACTIVITY, "dlg", RaceLabel::Refutable);
    truth.plant(DIALOG_ACTIVITY, "clicks", RaceLabel::TrueRace);
    (app.finish().expect("valid dialog fixture"), truth)
}

/// Fragment attach/detach: the "fragment" is attached in `onStart` and
/// detached in `onStop`, so its callback window is `{Started, Resumed,
/// Paused}` — it can never interleave with `onDestroy`'s read of
/// `fragView`: the **pause-quiesced** discharge. The true race is a
/// background loader filling `cache` while the callback reads it.
pub fn fragment_detach() -> (AndroidApp, GroundTruth) {
    let mut app = AndroidAppBuilder::new("FragmentDetach");
    let mut truth = GroundTruth::new();
    let fw = app.framework().clone();

    let mut cb = app.activity(FRAGMENT_ACTIVITY);
    let frag_view = cb.field("fragView", Type::Ref(fw.object));
    let cache = cb.field("cache", Type::Ref(fw.object));
    let activity = cb.build();

    let (frag, frag_init) = receiver_with_outer(
        &mut app,
        &format!("{FRAGMENT_ACTIVITY}$Frag"),
        activity,
        |mb, o| {
            let (v, x) = (mb.fresh_local(), mb.fresh_local());
            mb.new_(v, fw.object);
            mb.store(o, frag_view, Operand::Local(v));
            mb.load(x, o, cache);
        },
    );
    let frag_field = app
        .program_builder()
        .add_field(activity, "frag", Type::Ref(frag), false);

    let (worker, worker_init) = start_worker_thread(
        &mut app,
        &format!("{FRAGMENT_ACTIVITY}$Loader"),
        activity,
        |mb, o| {
            let v = mb.fresh_local();
            mb.new_(v, fw.object);
            mb.store(o, cache, Operand::Local(v));
        },
    );

    let mut mb = app.method(activity, "onCreate");
    mb.set_param_count(1);
    let this = mb.param(0);
    spawn_worker(&mut mb, &fw, this, worker, worker_init);
    mb.ret(None);
    mb.finish();

    let mut mb = app.method(activity, "onStart");
    mb.set_param_count(1);
    let this = mb.param(0);
    register_receiver_in(&mut mb, &fw, this, frag, frag_init, frag_field);
    mb.ret(None);
    mb.finish();

    let mut mb = app.method(activity, "onStop");
    mb.set_param_count(1);
    let this = mb.param(0);
    unregister_receiver_in(&mut mb, &fw, this, frag_field);
    mb.ret(None);
    mb.finish();

    // onDestroy tears down the view the fragment callback writes.
    let mut mb = app.method(activity, "onDestroy");
    mb.set_param_count(1);
    let this = mb.param(0);
    let x = mb.fresh_local();
    mb.load(x, this, frag_view);
    mb.ret(None);
    mb.finish();

    truth.plant(FRAGMENT_ACTIVITY, "fragView", RaceLabel::Refutable);
    truth.plant(FRAGMENT_ACTIVITY, "cache", RaceLabel::TrueRace);
    truth.plant(FRAGMENT_ACTIVITY, "frag", RaceLabel::Ordered);
    (app.finish().expect("valid fragment fixture"), truth)
}

/// Async-task cancellation: `onCreate` executes a task and immediately
/// cancels it, so the posted `onPostExecute` has an empty occurrence
/// window — the **unregistered-before-posted** discharge. Its private
/// `render` helper is a provably-dead callback body whose CFG edges are
/// exported to the refuter. The true race is a background monitor
/// bumping `status` while `onResume` reads it.
pub fn task_cancel() -> (AndroidApp, GroundTruth) {
    let mut app = AndroidAppBuilder::new("TaskCancel");
    let mut truth = GroundTruth::new();
    let fw = app.framework().clone();

    let mut cb = app.activity(TASK_ACTIVITY);
    let result = cb.field("result", Type::Ref(fw.object));
    let status = cb.field("status", Type::Int);
    let banner = cb.field("banner", Type::Int);
    let activity = cb.build();

    let task_name = format!("{TASK_ACTIVITY}$Fetch");
    let mut cb = app.subclass(&task_name, fw.async_task);
    let outer = cb.field("outer", Type::Ref(activity));
    let task = cb.build();

    let mut mb = app.method(task, "<init>");
    mb.set_param_count(2);
    let (this, o) = (mb.param(0), mb.param(1));
    mb.store(this, outer, Operand::Local(o));
    mb.ret(None);
    let task_init = mb.finish();

    let mut mb = app.method(task, "doInBackground");
    mb.set_param_count(1);
    mb.ret(None);
    mb.finish();

    // render(): dead alongside onPostExecute — it is reachable only from
    // the cancelled post action, so its CFG edges become infeasible-edge
    // exports for the refuter. The extra block gives it an edge to export.
    let mut mb = app.method(task, "render");
    mb.set_param_count(1);
    let this = mb.param(0);
    let o = mb.fresh_local();
    mb.load(o, this, outer);
    let b = mb.new_block();
    mb.goto(b);
    mb.switch_to(b);
    let x = mb.fresh_local();
    mb.load(x, o, banner);
    mb.ret(None);
    let render = mb.finish();

    let mut mb = app.method(task, "onPostExecute");
    mb.set_param_count(1);
    let this = mb.param(0);
    let (o, v) = (mb.fresh_local(), mb.fresh_local());
    mb.load(o, this, outer);
    mb.new_(v, fw.object);
    mb.store(o, result, Operand::Local(v));
    mb.call(None, InvokeKind::Virtual, render, Some(this), vec![]);
    mb.ret(None);
    mb.finish();

    let (worker, worker_init) = start_worker_thread(
        &mut app,
        &format!("{TASK_ACTIVITY}$Monitor"),
        activity,
        |mb, o| {
            mb.store(o, status, Operand::Const(ConstValue::Int(1)));
        },
    );

    // onCreate: start the monitor, then execute + cancel the task.
    let mut mb = app.method(activity, "onCreate");
    mb.set_param_count(1);
    let this = mb.param(0);
    spawn_worker(&mut mb, &fw, this, worker, worker_init);
    let t = mb.fresh_local();
    mb.new_(t, task);
    mb.call(
        None,
        InvokeKind::Special,
        task_init,
        Some(t),
        vec![Operand::Local(this)],
    );
    mb.call(
        None,
        InvokeKind::Virtual,
        fw.async_task_execute,
        Some(t),
        vec![],
    );
    mb.call(
        None,
        InvokeKind::Virtual,
        fw.async_task_cancel,
        Some(t),
        vec![],
    );
    mb.ret(None);
    mb.finish();

    let mut mb = app.method(activity, "onResume");
    mb.set_param_count(1);
    let this = mb.param(0);
    let x = mb.fresh_local();
    mb.load(x, this, status);
    mb.ret(None);
    mb.finish();

    let mut mb = app.method(activity, "onPause");
    mb.set_param_count(1);
    let this = mb.param(0);
    let x = mb.fresh_local();
    mb.load(x, this, result);
    mb.ret(None);
    mb.finish();

    truth.plant(TASK_ACTIVITY, "result", RaceLabel::Refutable);
    truth.plant(TASK_ACTIVITY, "status", RaceLabel::TrueRace);
    (app.finish().expect("valid task fixture"), truth)
}

/// Unregister-in-onPause: a receiver registered in `onCreate` is torn
/// down in `onPause`, quiescing `onReceive` before the stop/destroy
/// tail — its `flag` write can never meet `onDestroy`'s read: the
/// **pause-quiesced** discharge. The true race is a background producer
/// filling `buf` while `onReceive` consumes it.
pub fn pause_unregister() -> (AndroidApp, GroundTruth) {
    let mut app = AndroidAppBuilder::new("PauseUnregister");
    let mut truth = GroundTruth::new();
    let fw = app.framework().clone();

    let mut cb = app.activity(PAUSE_ACTIVITY);
    let flag = cb.field("flag", Type::Int);
    let buf = cb.field("buf", Type::Ref(fw.object));
    let activity = cb.build();

    let (recv, recv_init) = receiver_with_outer(
        &mut app,
        &format!("{PAUSE_ACTIVITY}$Recv"),
        activity,
        |mb, o| {
            let x = mb.fresh_local();
            mb.store(o, flag, Operand::Const(ConstValue::Int(1)));
            mb.load(x, o, buf);
        },
    );
    let recv_field = app
        .program_builder()
        .add_field(activity, "recv", Type::Ref(recv), false);

    let (worker, worker_init) = start_worker_thread(
        &mut app,
        &format!("{PAUSE_ACTIVITY}$Producer"),
        activity,
        |mb, o| {
            let v = mb.fresh_local();
            mb.new_(v, fw.object);
            mb.store(o, buf, Operand::Local(v));
        },
    );

    let mut mb = app.method(activity, "onCreate");
    mb.set_param_count(1);
    let this = mb.param(0);
    register_receiver_in(&mut mb, &fw, this, recv, recv_init, recv_field);
    spawn_worker(&mut mb, &fw, this, worker, worker_init);
    mb.ret(None);
    mb.finish();

    let mut mb = app.method(activity, "onPause");
    mb.set_param_count(1);
    let this = mb.param(0);
    unregister_receiver_in(&mut mb, &fw, this, recv_field);
    mb.ret(None);
    mb.finish();

    let mut mb = app.method(activity, "onDestroy");
    mb.set_param_count(1);
    let this = mb.param(0);
    let x = mb.fresh_local();
    mb.load(x, this, flag);
    mb.ret(None);
    mb.finish();

    truth.plant(PAUSE_ACTIVITY, "flag", RaceLabel::Refutable);
    truth.plant(PAUSE_ACTIVITY, "buf", RaceLabel::TrueRace);
    truth.plant(PAUSE_ACTIVITY, "recv", RaceLabel::Ordered);
    (app.finish().expect("valid pause fixture"), truth)
}
