//! Parameterized concurrency idioms.
//!
//! Each idiom synthesizes one activity (plus its helper classes) exhibiting
//! a concurrency pattern from the paper, and records the expected verdict
//! in the app's [`GroundTruth`]. The idioms are transcriptions of:
//!
//! - Figure 1 (intra-component `AsyncTask`/scroll race),
//! - Figure 2 (activity vs. broadcast-receiver race),
//! - Figure 8 (OpenSudoku's guarded timer — refutable),
//! - §6.3 (image-loader style thread races),
//! - §6.5 (OpenManager's implicit dependency — SIERRA's known FP),
//! - §5 (message-code guarded handler — refutable via constant
//!   propagation),
//! - plus HB-ordered patterns that must *not* become racy pairs.

use crate::ground_truth::{GroundTruth, RaceLabel};
use android_model::{AndroidAppBuilder, GuiEventKind, Layout, ViewDecl};
use apir::{ClassId, ConstValue, FieldId, InvokeKind, Local, MethodId, Operand, Type};

/// The available idioms, in planting rotation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Idiom {
    /// Figure 1: background `AsyncTask` write vs. GUI scroll read.
    AsyncUiUpdate,
    /// Figure 2: receiver update vs. lifecycle close.
    ReceiverDb,
    /// Figure 8: guard-flag protected timer (refutable + benign guard).
    GuardedTimer,
    /// Lifecycle-ordered accesses (no race).
    OrderedLifecycle,
    /// Rule-4-ordered sequential posts (no race).
    OrderedPosts,
    /// Unsynchronized background thread vs. GUI read.
    ThreadUnsync,
    /// §6.5 OpenManager implicit dependency (reported; manual FP).
    ImplicitDep,
    /// Message-code guarded handler (refutable via constant propagation).
    MessageGuard,
    /// Service connection callback vs. lifecycle read.
    ServiceConn,
    /// XML-listener GUI handlers racing on a custom view's field.
    ViewText,
    /// Static field written by a thread, read by a lifecycle callback.
    StaticFlag,
    /// Pointer-null-check protected pair: SIERRA refutes it; EventRacer's
    /// race-coverage filter cannot (it only reasons about primitives) and
    /// reports it — the paper's 102-false-positive contrast (§6.4).
    NullGuard,
    /// A loading-flag guard around an `AsyncTask` result (the most common
    /// benign-guard shape: §6.5 reports 74.8% of true races fit it).
    LoadingFlag,
    /// Two GUI actions share a helper that allocates per call — the §3.3
    /// `foo`/`bar` conflation example. Racy *only* without
    /// action-sensitivity; AS-SIERRA must stay silent.
    PerActionScratch,
    /// A `Timer`-scheduled task racing a GUI read.
    TimerTick,
    /// `LocationListener.onLocationChanged` racing a lifecycle read.
    LocationTracker,
    /// `MediaPlayer` completion callback racing a lifecycle read.
    MediaNotify,
    /// A `TextWatcher` GUI callback racing an `AsyncTask` background read.
    WatcherSync,
    /// Indexed container accesses: slot 1 races (same index from two
    /// actions); slot 0 vs slot 2 do not. Exercises the index-sensitive
    /// container model (the §6.5 future-work extension).
    IndexedBuffer,
    /// Race-free bulk code plus a handful of independent GUI handlers
    /// (adds unordered actions; plants nothing reportable).
    Filler,
}

impl Idiom {
    /// Rotation used when synthesizing app suites.
    pub const ALL: [Idiom; 20] = [
        Idiom::AsyncUiUpdate,
        Idiom::ReceiverDb,
        Idiom::GuardedTimer,
        Idiom::OrderedLifecycle,
        Idiom::OrderedPosts,
        Idiom::ThreadUnsync,
        Idiom::ImplicitDep,
        Idiom::MessageGuard,
        Idiom::ServiceConn,
        Idiom::ViewText,
        Idiom::StaticFlag,
        Idiom::NullGuard,
        Idiom::LoadingFlag,
        Idiom::PerActionScratch,
        Idiom::TimerTick,
        Idiom::LocationTracker,
        Idiom::MediaNotify,
        Idiom::WatcherSync,
        Idiom::IndexedBuffer,
        Idiom::Filler,
    ];

    /// Plants this idiom as a new activity named `name`.
    pub fn plant(self, app: &mut AndroidAppBuilder, name: &str, truth: &mut GroundTruth) {
        match self {
            Idiom::AsyncUiUpdate => plant_async_ui_update(app, name, truth),
            Idiom::ReceiverDb => plant_receiver_db(app, name, truth),
            Idiom::GuardedTimer => plant_guarded_timer(app, name, truth),
            Idiom::OrderedLifecycle => plant_ordered_lifecycle(app, name, truth),
            Idiom::OrderedPosts => plant_ordered_posts(app, name, truth),
            Idiom::ThreadUnsync => plant_thread_unsync(app, name, truth),
            Idiom::ImplicitDep => plant_implicit_dep(app, name, truth),
            Idiom::MessageGuard => plant_message_guard(app, name, truth),
            Idiom::ServiceConn => plant_service_conn(app, name, truth),
            Idiom::ViewText => plant_view_text(app, name, truth),
            Idiom::StaticFlag => plant_static_flag(app, name, truth),
            Idiom::NullGuard => plant_null_guard(app, name, truth),
            Idiom::LoadingFlag => plant_loading_flag(app, name, truth),
            Idiom::PerActionScratch => plant_per_action_scratch(app, name, truth),
            Idiom::TimerTick => plant_timer_tick(app, name, truth),
            Idiom::LocationTracker => plant_location_tracker(app, name, truth),
            Idiom::MediaNotify => plant_media_notify(app, name, truth),
            Idiom::WatcherSync => plant_watcher_sync(app, name, truth),
            Idiom::IndexedBuffer => plant_indexed_buffer(app, name, truth),
            Idiom::Filler => plant_filler(app, name),
        }
    }
}

/// Emits `dst = findViewById(view_id)` on `this` and registers `this` as a
/// listener of the given kind.
fn register_self_listener(
    mb: &mut apir::MethodBuilder<'_>,
    fw: &android_model::FrameworkClasses,
    this: Local,
    view_id: i64,
    register: MethodId,
) {
    let v = mb.fresh_local();
    mb.call(
        Some(v),
        InvokeKind::Virtual,
        fw.find_view_by_id,
        Some(this),
        vec![Operand::Const(ConstValue::Int(view_id))],
    );
    mb.call(
        None,
        InvokeKind::Virtual,
        register,
        Some(v),
        vec![Operand::Local(this)],
    );
}

/// Declares a `Runnable` subclass with an `outer` back-reference and a
/// `run` body supplied by `body`.
fn runnable_with_outer(
    app: &mut AndroidAppBuilder,
    name: &str,
    outer_class: ClassId,
    body: impl FnOnce(&mut apir::MethodBuilder<'_>, Local /*outer*/),
) -> (ClassId, MethodId /*init*/) {
    let fw = app.framework().clone();
    let mut cb = app.subclass(name, fw.object);
    cb.add_interface(fw.runnable);
    let outer = cb.field("outer", Type::Ref(outer_class));
    let class = cb.build();
    let mut mb = app.method(class, "<init>");
    mb.set_param_count(2);
    let (this, o) = (mb.param(0), mb.param(1));
    mb.store(this, outer, Operand::Local(o));
    mb.ret(None);
    let init = mb.finish();
    let mut mb = app.method(class, "run");
    mb.set_param_count(1);
    let this = mb.param(0);
    let o = mb.fresh_local();
    mb.load(o, this, outer);
    body(&mut mb, o);
    mb.ret(None);
    mb.finish();
    (class, init)
}

fn plant_async_ui_update(app: &mut AndroidAppBuilder, name: &str, truth: &mut GroundTruth) {
    let fw = app.framework().clone();
    let adapter_name = format!("{name}$Adapter");
    let mut cb = app.subclass(&adapter_name, fw.adapter);
    let data = cb.field("data", Type::Ref(fw.object));
    let adapter_class = cb.build();

    let loader_name = format!("{name}$Loader");
    let mut cb = app.subclass(&loader_name, fw.async_task);
    let task_adapter = cb.field("adapter", Type::Ref(adapter_class));
    let loader = cb.build();

    let mut cb = app.activity(name);
    cb.add_interface(fw.on_click_listener);
    cb.add_interface(fw.on_scroll_listener);
    let act_adapter = cb.field("adapter", Type::Ref(adapter_class));
    let activity = cb.build();

    let mut mb = app.method(loader, "<init>");
    mb.set_param_count(2);
    let (this, a) = (mb.param(0), mb.param(1));
    mb.store(this, task_adapter, Operand::Local(a));
    mb.ret(None);
    let loader_init = mb.finish();

    let mut mb = app.method(loader, "doInBackground");
    mb.set_param_count(1);
    let this = mb.param(0);
    let (ad, news) = (mb.fresh_local(), mb.fresh_local());
    mb.new_(news, fw.object);
    mb.load(ad, this, task_adapter);
    mb.store(ad, data, Operand::Local(news));
    mb.ret(None);
    mb.finish();

    let mut mb = app.method(loader, "onPostExecute");
    mb.set_param_count(1);
    let this = mb.param(0);
    let ad = mb.fresh_local();
    mb.load(ad, this, task_adapter);
    mb.vcall(fw.notify_data_set_changed, ad, vec![]);
    mb.ret(None);
    mb.finish();

    let mut mb = app.method(activity, "onCreate");
    mb.set_param_count(1);
    let this = mb.param(0);
    let ad = mb.fresh_local();
    mb.new_(ad, adapter_class);
    mb.store(this, act_adapter, Operand::Local(ad));
    register_self_listener(&mut mb, &fw, this, 1, fw.set_on_click_listener);
    register_self_listener(&mut mb, &fw, this, 1, fw.set_on_scroll_listener);
    mb.ret(None);
    mb.finish();

    let mut mb = app.method(activity, "onClick");
    mb.set_param_count(2);
    let this = mb.param(0);
    let (ad, t) = (mb.fresh_local(), mb.fresh_local());
    mb.load(ad, this, act_adapter);
    mb.new_(t, loader);
    mb.call(
        None,
        InvokeKind::Special,
        loader_init,
        Some(t),
        vec![Operand::Local(ad)],
    );
    mb.call(
        None,
        InvokeKind::Virtual,
        fw.async_task_execute,
        Some(t),
        vec![],
    );
    mb.ret(None);
    mb.finish();

    let mut mb = app.method(activity, "onScroll");
    mb.set_param_count(2);
    let this = mb.param(0);
    let (ad, x) = (mb.fresh_local(), mb.fresh_local());
    mb.load(ad, this, act_adapter);
    mb.load(x, ad, data);
    mb.ret(None);
    mb.finish();

    truth.plant(&adapter_name, "data", RaceLabel::TrueRace);
    truth.plant(name, "adapter", RaceLabel::Ordered);
}

fn plant_receiver_db(app: &mut AndroidAppBuilder, name: &str, truth: &mut GroundTruth) {
    let fw = app.framework().clone();
    let db_name = format!("{name}$DB");
    let mut cb = app.subclass(&db_name, fw.object);
    let is_open = cb.field("isOpen", Type::Bool);
    let rows = cb.field("rows", Type::Int);
    let db = cb.build();

    // DB.update(): reads isOpen, then writes rows.
    let mut mb = app.method(db, "update");
    mb.set_param_count(2);
    let this = mb.param(0);
    let t = mb.fresh_local();
    mb.load(t, this, is_open);
    mb.store(this, rows, Operand::Const(ConstValue::Int(1)));
    mb.ret(None);
    let db_update = mb.finish();

    let mut cb = app.activity(name);
    let mdb = cb.field("mDB", Type::Ref(db));
    let activity = cb.build();

    let recv_name = format!("{name}$Recv");
    let mut cb = app.subclass(&recv_name, fw.broadcast_receiver);
    let outer = cb.field("outer", Type::Ref(activity));
    let recv = cb.build();
    let mut mb = app.method(recv, "<init>");
    mb.set_param_count(2);
    let (this, o) = (mb.param(0), mb.param(1));
    mb.store(this, outer, Operand::Local(o));
    mb.ret(None);
    let recv_init = mb.finish();
    // Recv.onReceive(intent): outer.mDB.update(intent.getExtras()).
    let mut mb = app.method(recv, "onReceive");
    mb.set_param_count(2);
    let (this, intent) = (mb.param(0), mb.param(1));
    let (o, d, b) = (mb.fresh_local(), mb.fresh_local(), mb.fresh_local());
    mb.load(o, this, outer);
    mb.load(d, o, mdb);
    mb.call(
        Some(b),
        InvokeKind::Virtual,
        fw.intent_get_extras,
        Some(intent),
        vec![],
    );
    mb.call(
        None,
        InvokeKind::Virtual,
        db_update,
        Some(d),
        vec![Operand::Local(b)],
    );
    mb.ret(None);
    mb.finish();

    let recv_field: FieldId =
        app.program_builder()
            .add_field(activity, "recv", Type::Ref(recv), false);

    let mut mb = app.method(activity, "onCreate");
    mb.set_param_count(1);
    let this = mb.param(0);
    let (d, r) = (mb.fresh_local(), mb.fresh_local());
    mb.new_(d, db);
    mb.store(this, mdb, Operand::Local(d));
    mb.new_(r, recv);
    mb.call(
        None,
        InvokeKind::Special,
        recv_init,
        Some(r),
        vec![Operand::Local(this)],
    );
    mb.store(this, recv_field, Operand::Local(r));
    mb.call(
        None,
        InvokeKind::Virtual,
        fw.register_receiver,
        Some(this),
        vec![Operand::Local(r)],
    );
    mb.ret(None);
    mb.finish();

    let mut mb = app.method(activity, "onStart");
    mb.set_param_count(1);
    let this = mb.param(0);
    let d = mb.fresh_local();
    mb.load(d, this, mdb);
    mb.store(d, is_open, Operand::Const(ConstValue::Bool(true)));
    mb.ret(None);
    mb.finish();

    let mut mb = app.method(activity, "onStop");
    mb.set_param_count(1);
    let this = mb.param(0);
    let d = mb.fresh_local();
    mb.load(d, this, mdb);
    mb.store(d, is_open, Operand::Const(ConstValue::Bool(false)));
    mb.ret(None);
    mb.finish();

    let mut mb = app.method(activity, "onDestroy");
    mb.set_param_count(1);
    let this = mb.param(0);
    let r = mb.fresh_local();
    mb.load(r, this, recv_field);
    mb.call(
        None,
        InvokeKind::Virtual,
        fw.unregister_receiver,
        Some(this),
        vec![Operand::Local(r)],
    );
    mb.store(this, mdb, Operand::Const(ConstValue::Null));
    mb.ret(None);
    mb.finish();

    truth.plant(&db_name, "isOpen", RaceLabel::TrueRace);
    truth.plant(name, "mDB", RaceLabel::TrueRace);
    truth.plant(name, "recv", RaceLabel::Ordered);
}

fn plant_guarded_timer(app: &mut AndroidAppBuilder, name: &str, truth: &mut GroundTruth) {
    let fw = app.framework().clone();
    let mut cb = app.activity(name);
    let is_running = cb.field("mIsRunning", Type::Bool);
    let accum = cb.field("mAccumTime", Type::Int);
    let activity = cb.build();

    let (runner, runner_init) =
        runnable_with_outer(app, &format!("{name}$Runner"), activity, |mb, o| {
            let t = mb.fresh_local();
            mb.load(t, o, is_running);
            let b_then = mb.new_block();
            let b_done = mb.new_block();
            let b_off = mb.new_block();
            let b_exit = mb.new_block();
            mb.if_(t, b_then, b_exit);
            mb.switch_to(b_then);
            mb.store(o, accum, Operand::Const(ConstValue::Int(1)));
            mb.nondet(vec![b_done, b_off]);
            mb.switch_to(b_done);
            mb.goto(b_exit);
            mb.switch_to(b_off);
            mb.store(o, is_running, Operand::Const(ConstValue::Bool(false)));
            mb.goto(b_exit);
            mb.switch_to(b_exit);
        });

    let mut mb = app.method(activity, "onResume");
    mb.set_param_count(1);
    let this = mb.param(0);
    let r = mb.fresh_local();
    mb.store(this, is_running, Operand::Const(ConstValue::Bool(true)));
    mb.new_(r, runner);
    mb.call(
        None,
        InvokeKind::Special,
        runner_init,
        Some(r),
        vec![Operand::Local(this)],
    );
    mb.call(
        None,
        InvokeKind::Virtual,
        fw.run_on_ui_thread,
        Some(this),
        vec![Operand::Local(r)],
    );
    mb.ret(None);
    mb.finish();

    let mut mb = app.method(activity, "stop");
    mb.set_param_count(1);
    let this = mb.param(0);
    let t = mb.fresh_local();
    mb.load(t, this, is_running);
    let b_then = mb.new_block();
    let b_exit = mb.new_block();
    mb.if_(t, b_then, b_exit);
    mb.switch_to(b_then);
    mb.store(this, is_running, Operand::Const(ConstValue::Bool(false)));
    mb.store(this, accum, Operand::Const(ConstValue::Int(2)));
    mb.goto(b_exit);
    mb.switch_to(b_exit);
    mb.ret(None);
    let stop = mb.finish();

    let mut mb = app.method(activity, "onPause");
    mb.set_param_count(1);
    let this = mb.param(0);
    mb.vcall(stop, this, vec![]);
    mb.ret(None);
    mb.finish();

    truth.plant(name, "mAccumTime", RaceLabel::Refutable);
    truth.plant(name, "mIsRunning", RaceLabel::BenignGuard);
}

fn plant_ordered_lifecycle(app: &mut AndroidAppBuilder, name: &str, truth: &mut GroundTruth) {
    let obj = app.framework().object;
    let mut cb = app.activity(name);
    let cfg = cb.field("cfg", Type::Ref(obj));
    let activity = cb.build();
    let mut mb = app.method(activity, "onCreate");
    mb.set_param_count(1);
    let this = mb.param(0);
    let v = mb.fresh_local();
    mb.new_(v, obj);
    mb.store(this, cfg, Operand::Local(v));
    mb.ret(None);
    mb.finish();
    let mut mb = app.method(activity, "onResume");
    mb.set_param_count(1);
    let this = mb.param(0);
    let v = mb.fresh_local();
    mb.load(v, this, cfg);
    mb.ret(None);
    mb.finish();
    truth.plant(name, "cfg", RaceLabel::Ordered);
}

fn plant_ordered_posts(app: &mut AndroidAppBuilder, name: &str, truth: &mut GroundTruth) {
    let fw = app.framework().clone();
    let mut cb = app.activity(name);
    let stage = cb.field("stage", Type::Int);
    let activity = cb.build();
    let (r1, r1_init) = runnable_with_outer(app, &format!("{name}$R1"), activity, |mb, o| {
        mb.store(o, stage, Operand::Const(ConstValue::Int(1)));
    });
    let (r2, r2_init) = runnable_with_outer(app, &format!("{name}$R2"), activity, |mb, o| {
        let x = mb.fresh_local();
        mb.load(x, o, stage);
    });
    let mut mb = app.method(activity, "onCreate");
    mb.set_param_count(1);
    let this = mb.param(0);
    for (class, init) in [(r1, r1_init), (r2, r2_init)] {
        let r = mb.fresh_local();
        mb.new_(r, class);
        mb.call(
            None,
            InvokeKind::Special,
            init,
            Some(r),
            vec![Operand::Local(this)],
        );
        mb.call(
            None,
            InvokeKind::Virtual,
            fw.run_on_ui_thread,
            Some(this),
            vec![Operand::Local(r)],
        );
    }
    mb.ret(None);
    mb.finish();
    truth.plant(name, "stage", RaceLabel::Ordered);
}

fn plant_thread_unsync(app: &mut AndroidAppBuilder, name: &str, truth: &mut GroundTruth) {
    let fw = app.framework().clone();
    let mut cb = app.activity(name);
    cb.add_interface(fw.on_click_listener);
    cb.add_interface(fw.on_long_click_listener);
    let cache = cb.field("cache", Type::Ref(fw.object));
    let activity = cb.build();
    let obj = fw.object;
    let (worker, worker_init) =
        runnable_with_outer(app, &format!("{name}$Worker"), activity, |mb, o| {
            let v = mb.fresh_local();
            mb.new_(v, obj);
            mb.store(o, cache, Operand::Local(v));
        });

    let mut mb = app.method(activity, "onCreate");
    mb.set_param_count(1);
    let this = mb.param(0);
    register_self_listener(&mut mb, &fw, this, 1, fw.set_on_click_listener);
    register_self_listener(&mut mb, &fw, this, 2, fw.set_on_long_click_listener);
    mb.ret(None);
    mb.finish();

    let mut mb = app.method(activity, "onClick");
    mb.set_param_count(2);
    let this = mb.param(0);
    let (w, t) = (mb.fresh_local(), mb.fresh_local());
    mb.new_(w, worker);
    mb.call(
        None,
        InvokeKind::Special,
        worker_init,
        Some(w),
        vec![Operand::Local(this)],
    );
    mb.new_(t, fw.thread);
    mb.call(
        None,
        InvokeKind::Special,
        fw.thread_init,
        Some(t),
        vec![Operand::Local(w)],
    );
    mb.call(None, InvokeKind::Virtual, fw.thread_start, Some(t), vec![]);
    mb.ret(None);
    mb.finish();

    let mut mb = app.method(activity, "onLongClick");
    mb.set_param_count(2);
    let this = mb.param(0);
    let x = mb.fresh_local();
    mb.load(x, this, cache);
    mb.ret(None);
    mb.finish();

    truth.plant(name, "cache", RaceLabel::TrueRace);
}

fn plant_implicit_dep(app: &mut AndroidAppBuilder, name: &str, truth: &mut GroundTruth) {
    let fw = app.framework().clone();
    let mut cb = app.activity(name);
    cb.add_interface(fw.on_click_listener);
    let items = cb.field("items", Type::Ref(fw.array_list));
    let activity = cb.build();
    let list_class = fw.array_list;
    let (filler, filler_init) =
        runnable_with_outer(app, &format!("{name}$Filler"), activity, |mb, o| {
            let l = mb.fresh_local();
            mb.new_(l, list_class);
            mb.store(o, items, Operand::Local(l));
        });

    let mut mb = app.method(activity, "onCreate");
    mb.set_param_count(1);
    let this = mb.param(0);
    let (w, t) = (mb.fresh_local(), mb.fresh_local());
    mb.new_(w, filler);
    mb.call(
        None,
        InvokeKind::Special,
        filler_init,
        Some(w),
        vec![Operand::Local(this)],
    );
    mb.new_(t, fw.thread);
    mb.call(
        None,
        InvokeKind::Special,
        fw.thread_init,
        Some(t),
        vec![Operand::Local(w)],
    );
    mb.call(None, InvokeKind::Virtual, fw.thread_start, Some(t), vec![]);
    register_self_listener(&mut mb, &fw, this, 1, fw.set_on_click_listener);
    mb.ret(None);
    mb.finish();

    // In the real app, the click is only possible after the list is filled
    // — an implicit dependency SIERRA cannot see (§6.5).
    let mut mb = app.method(activity, "onClick");
    mb.set_param_count(2);
    let this = mb.param(0);
    let x = mb.fresh_local();
    mb.load(x, this, items);
    mb.ret(None);
    mb.finish();

    truth.plant(name, "items", RaceLabel::ImplicitDep);
}

fn plant_message_guard(app: &mut AndroidAppBuilder, name: &str, truth: &mut GroundTruth) {
    let fw = app.framework().clone();
    let mut cb = app.activity(name);
    let slot = cb.field("msgSlot", Type::Int);
    let activity = cb.build();

    let handler_name = format!("{name}$H");
    let mut cb = app.subclass(&handler_name, fw.handler);
    let outer = cb.field("outer", Type::Ref(activity));
    let handler_class = cb.build();
    let mut mb = app.method(handler_class, "<init>");
    mb.set_param_count(2);
    let (this, o) = (mb.param(0), mb.param(1));
    mb.store(this, outer, Operand::Local(o));
    mb.ret(None);
    let handler_init = mb.finish();
    // handleMessage(msg): if (msg.what == 1) outer.msgSlot = 1;
    let mut mb = app.method(handler_class, "handleMessage");
    mb.set_param_count(2);
    let (this, msg) = (mb.param(0), mb.param(1));
    let (o, w, cond) = (mb.fresh_local(), mb.fresh_local(), mb.fresh_local());
    mb.load(o, this, outer);
    mb.load(w, msg, fw.message_what);
    mb.bin_op(
        cond,
        apir::BinOp::Cmp(apir::CmpOp::Eq),
        Operand::Local(w),
        Operand::Const(ConstValue::Int(1)),
    );
    let b_then = mb.new_block();
    let b_exit = mb.new_block();
    mb.if_(cond, b_then, b_exit);
    mb.switch_to(b_then);
    mb.store(o, slot, Operand::Const(ConstValue::Int(1)));
    mb.goto(b_exit);
    mb.switch_to(b_exit);
    mb.ret(None);
    mb.finish();

    let hfield =
        app.program_builder()
            .add_field(activity, "handler", Type::Ref(handler_class), false);

    let mut mb = app.method(activity, "onCreate");
    mb.set_param_count(1);
    let this = mb.param(0);
    let h = mb.fresh_local();
    mb.new_(h, handler_class);
    mb.call(
        None,
        InvokeKind::Special,
        handler_init,
        Some(h),
        vec![Operand::Local(this)],
    );
    mb.store(this, hfield, Operand::Local(h));
    mb.ret(None);
    mb.finish();

    // onResume sends what=1, onPause sends what=2: the two handler actions
    // both statically reach the guarded store, but the what=2 action cannot
    // execute it — the pair refutes via constant propagation (§5).
    for (cb_name, code) in [("onResume", 1i64), ("onPause", 2i64)] {
        let mut mb = app.method(activity, cb_name);
        mb.set_param_count(1);
        let this = mb.param(0);
        let (h, m) = (mb.fresh_local(), mb.fresh_local());
        mb.load(h, this, hfield);
        mb.call(Some(m), InvokeKind::Static, fw.message_obtain, None, vec![]);
        mb.store(m, fw.message_what, Operand::Const(ConstValue::Int(code)));
        mb.call(
            None,
            InvokeKind::Virtual,
            fw.handler_send_message,
            Some(h),
            vec![Operand::Local(m)],
        );
        mb.ret(None);
        mb.finish();
    }

    truth.plant(name, "msgSlot", RaceLabel::Refutable);
    truth.plant(name, "handler", RaceLabel::Ordered);
}

fn plant_service_conn(app: &mut AndroidAppBuilder, name: &str, truth: &mut GroundTruth) {
    let fw = app.framework().clone();
    let mut cb = app.activity(name);
    let conn_state = cb.field("connState", Type::Int);
    let activity = cb.build();

    let conn_name = format!("{name}$Conn");
    let mut cb = app.subclass(&conn_name, fw.object);
    cb.add_interface(fw.service_connection);
    let outer = cb.field("outer", Type::Ref(activity));
    let conn = cb.build();
    let mut mb = app.method(conn, "<init>");
    mb.set_param_count(2);
    let (this, o) = (mb.param(0), mb.param(1));
    mb.store(this, outer, Operand::Local(o));
    mb.ret(None);
    let conn_init = mb.finish();
    let mut mb = app.method(conn, "onServiceConnected");
    mb.set_param_count(1);
    let this = mb.param(0);
    let o = mb.fresh_local();
    mb.load(o, this, outer);
    mb.store(o, conn_state, Operand::Const(ConstValue::Int(1)));
    mb.ret(None);
    mb.finish();

    let mut mb = app.method(activity, "onCreate");
    mb.set_param_count(1);
    let this = mb.param(0);
    let (c, i) = (mb.fresh_local(), mb.fresh_local());
    mb.new_(c, conn);
    mb.call(
        None,
        InvokeKind::Special,
        conn_init,
        Some(c),
        vec![Operand::Local(this)],
    );
    mb.new_(i, fw.intent);
    mb.call(
        None,
        InvokeKind::Virtual,
        fw.bind_service,
        Some(this),
        vec![Operand::Local(i), Operand::Local(c)],
    );
    mb.ret(None);
    mb.finish();

    let mut mb = app.method(activity, "onDestroy");
    mb.set_param_count(1);
    let this = mb.param(0);
    let x = mb.fresh_local();
    mb.load(x, this, conn_state);
    mb.ret(None);
    mb.finish();

    truth.plant(name, "connState", RaceLabel::TrueRace);
}

fn plant_view_text(app: &mut AndroidAppBuilder, name: &str, truth: &mut GroundTruth) {
    let fw = app.framework().clone();
    let text_name = format!("{name}$Text");
    let mut cb = app.subclass(&text_name, fw.text_view);
    let label = cb.field("label", Type::Int);
    let text_class = cb.build();

    let activity = app.activity(name).build();
    // Two XML-registered click handlers on two views; both write the same
    // custom view's field.
    for (i, handler) in [(1, "onClickA"), (2, "onClickB")] {
        let mut mb = app.method(activity, handler);
        mb.set_param_count(2);
        let this = mb.param(0);
        let v = mb.fresh_local();
        mb.call(
            Some(v),
            InvokeKind::Virtual,
            fw.find_view_by_id,
            Some(this),
            vec![Operand::Const(ConstValue::Int(1))],
        );
        mb.store(v, label, Operand::Const(ConstValue::Int(i)));
        mb.ret(None);
        mb.finish();
    }
    let a_id = app
        .program_builder()
        .find_method(activity, "onClickA")
        .expect("onClickA");
    let b_id = app
        .program_builder()
        .find_method(activity, "onClickB")
        .expect("onClickB");
    let mut layout = Layout::new(activity);
    layout.add_view(ViewDecl::new(1, text_class).with_xml_listener(GuiEventKind::Click, a_id));
    layout.add_view(ViewDecl::new(2, fw.view).with_xml_listener(GuiEventKind::Click, b_id));
    app.add_layout(layout);

    truth.plant(&text_name, "label", RaceLabel::TrueRace);
}

fn plant_static_flag(app: &mut AndroidAppBuilder, name: &str, truth: &mut GroundTruth) {
    let fw = app.framework().clone();
    let mut cb = app.activity(name);
    let flag = cb.static_field("gFlag", Type::Int);
    let activity = cb.build();
    let (worker, worker_init) =
        runnable_with_outer(app, &format!("{name}$Flagger"), activity, |mb, _o| {
            mb.static_store(flag, Operand::Const(ConstValue::Int(7)));
        });

    let mut mb = app.method(activity, "onCreate");
    mb.set_param_count(1);
    let this = mb.param(0);
    let (w, t) = (mb.fresh_local(), mb.fresh_local());
    mb.new_(w, worker);
    mb.call(
        None,
        InvokeKind::Special,
        worker_init,
        Some(w),
        vec![Operand::Local(this)],
    );
    mb.new_(t, fw.thread);
    mb.call(
        None,
        InvokeKind::Special,
        fw.thread_init,
        Some(t),
        vec![Operand::Local(w)],
    );
    mb.call(None, InvokeKind::Virtual, fw.thread_start, Some(t), vec![]);
    mb.ret(None);
    mb.finish();

    let mut mb = app.method(activity, "onPause");
    mb.set_param_count(1);
    let x = mb.fresh_local();
    mb.static_load(x, flag);
    mb.ret(None);
    mb.finish();

    truth.plant(name, "gFlag", RaceLabel::TrueRace);
}

fn plant_null_guard(app: &mut AndroidAppBuilder, name: &str, truth: &mut GroundTruth) {
    let fw = app.framework().clone();
    let mut cb = app.activity(name);
    let res = cb.field("res", Type::Ref(fw.object));
    let payload = cb.field("payload", Type::Int);
    let activity = cb.build();

    // Runner.run: if (outer.res != null) outer.payload = 1;
    let (runner, runner_init) =
        runnable_with_outer(app, &format!("{name}$Checker"), activity, |mb, o| {
            let (r, cond) = (mb.fresh_local(), mb.fresh_local());
            mb.load(r, o, res);
            mb.bin_op(
                cond,
                apir::BinOp::Cmp(apir::CmpOp::Ne),
                Operand::Local(r),
                Operand::Const(ConstValue::Null),
            );
            let b_then = mb.new_block();
            let b_exit = mb.new_block();
            mb.if_(cond, b_then, b_exit);
            mb.switch_to(b_then);
            mb.store(o, payload, Operand::Const(ConstValue::Int(1)));
            mb.goto(b_exit);
            mb.switch_to(b_exit);
        });

    // onResume: res = new Object; post(checker).
    let obj = fw.object;
    let mut mb = app.method(activity, "onResume");
    mb.set_param_count(1);
    let this = mb.param(0);
    let (v, r) = (mb.fresh_local(), mb.fresh_local());
    mb.new_(v, obj);
    mb.store(this, res, Operand::Local(v));
    mb.new_(r, runner);
    mb.call(
        None,
        InvokeKind::Special,
        runner_init,
        Some(r),
        vec![Operand::Local(this)],
    );
    mb.call(
        None,
        InvokeKind::Virtual,
        fw.run_on_ui_thread,
        Some(this),
        vec![Operand::Local(r)],
    );
    mb.ret(None);
    mb.finish();

    // onPause: payload = 2; res = null. (The payload write precedes the
    // res clear, so in the "pause completed first" order the checker's
    // guard reads null and never writes — the pair refutes.)
    let mut mb = app.method(activity, "onPause");
    mb.set_param_count(1);
    let this = mb.param(0);
    mb.store(this, payload, Operand::Const(ConstValue::Int(2)));
    mb.store(this, res, Operand::Const(ConstValue::Null));
    mb.ret(None);
    mb.finish();

    truth.plant(name, "payload", RaceLabel::Refutable);
    truth.plant(name, "res", RaceLabel::BenignGuard);
}

fn plant_loading_flag(app: &mut AndroidAppBuilder, name: &str, truth: &mut GroundTruth) {
    let fw = app.framework().clone();
    let mut cb = app.activity(name);
    let loading = cb.field("mLoading", Type::Bool);
    let result = cb.field("mResult", Type::Ref(fw.object));
    let activity = cb.build();

    let task_name = format!("{name}$LoadTask");
    let mut cb = app.subclass(&task_name, fw.async_task);
    let outer = cb.field("outer", Type::Ref(activity));
    let task = cb.build();
    let mut mb = app.method(task, "<init>");
    mb.set_param_count(2);
    let (this, o) = (mb.param(0), mb.param(1));
    mb.store(this, outer, Operand::Local(o));
    mb.ret(None);
    let task_init = mb.finish();

    // onPostExecute: if (outer.mLoading) outer.mResult = new Object();
    let obj = fw.object;
    let mut mb = app.method(task, "onPostExecute");
    mb.set_param_count(1);
    let this = mb.param(0);
    let (o, t, v) = (mb.fresh_local(), mb.fresh_local(), mb.fresh_local());
    mb.load(o, this, outer);
    mb.load(t, o, loading);
    let b_then = mb.new_block();
    let b_exit = mb.new_block();
    mb.if_(t, b_then, b_exit);
    mb.switch_to(b_then);
    mb.new_(v, obj);
    mb.store(o, result, Operand::Local(v));
    mb.goto(b_exit);
    mb.switch_to(b_exit);
    mb.ret(None);
    mb.finish();

    // onStart: mLoading = true; new LoadTask(this).execute().
    let mut mb = app.method(activity, "onStart");
    mb.set_param_count(1);
    let this = mb.param(0);
    let t = mb.fresh_local();
    mb.store(this, loading, Operand::Const(ConstValue::Bool(true)));
    mb.new_(t, task);
    mb.call(
        None,
        InvokeKind::Special,
        task_init,
        Some(t),
        vec![Operand::Local(this)],
    );
    mb.call(
        None,
        InvokeKind::Virtual,
        fw.async_task_execute,
        Some(t),
        vec![],
    );
    mb.ret(None);
    mb.finish();

    // onStop: if (mLoading) { mLoading = false; mResult = null; }
    let mut mb = app.method(activity, "onStop");
    mb.set_param_count(1);
    let this = mb.param(0);
    let t = mb.fresh_local();
    mb.load(t, this, loading);
    let b_then = mb.new_block();
    let b_exit = mb.new_block();
    mb.if_(t, b_then, b_exit);
    mb.switch_to(b_then);
    mb.store(this, loading, Operand::Const(ConstValue::Bool(false)));
    mb.store(this, result, Operand::Const(ConstValue::Null));
    mb.goto(b_exit);
    mb.switch_to(b_exit);
    mb.ret(None);
    mb.finish();

    truth.plant(name, "mResult", RaceLabel::Refutable);
    truth.plant(name, "mLoading", RaceLabel::BenignGuard);
}

fn plant_per_action_scratch(app: &mut AndroidAppBuilder, name: &str, truth: &mut GroundTruth) {
    let fw = app.framework().clone();
    let scratch_name = format!("{name}$Scratch");
    let mut cb = app.subclass(&scratch_name, fw.object);
    let val = cb.field("val", Type::Int);
    let scratch = cb.build();

    let mut cb = app.activity(name);
    cb.add_interface(fw.on_click_listener);
    cb.add_interface(fw.on_long_click_listener);
    let activity = cb.build();

    // helper(): h = new Scratch; h.val = 1 — one allocation per calling
    // action. Without action-sensitivity the two actions' objects conflate
    // into a spurious racy pair; with it there is nothing to report.
    let mut mb = app.method(activity, "helper");
    mb.set_param_count(1);
    let h = mb.fresh_local();
    mb.new_(h, scratch);
    mb.store(h, val, Operand::Const(ConstValue::Int(1)));
    mb.ret(None);
    let helper = mb.finish();

    for cb_name in ["onClick", "onLongClick"] {
        let mut mb = app.method(activity, cb_name);
        mb.set_param_count(2);
        let this = mb.param(0);
        mb.vcall(helper, this, vec![]);
        mb.ret(None);
        mb.finish();
    }

    let mut mb = app.method(activity, "onCreate");
    mb.set_param_count(1);
    let this = mb.param(0);
    register_self_listener(&mut mb, &fw, this, 1, fw.set_on_click_listener);
    register_self_listener(&mut mb, &fw, this, 2, fw.set_on_long_click_listener);
    mb.ret(None);
    mb.finish();

    truth.plant(&scratch_name, "val", RaceLabel::Ordered);
}

fn plant_timer_tick(app: &mut AndroidAppBuilder, name: &str, truth: &mut GroundTruth) {
    let fw = app.framework().clone();
    let mut cb = app.activity(name);
    cb.add_interface(fw.on_click_listener);
    let ticks = cb.field("ticks", Type::Int);
    let activity = cb.build();

    let task_name = format!("{name}$Tick");
    let mut cb = app.subclass(&task_name, fw.timer_task);
    let outer = cb.field("outer", Type::Ref(activity));
    let task = cb.build();
    let mut mb = app.method(task, "<init>");
    mb.set_param_count(2);
    let (this, o) = (mb.param(0), mb.param(1));
    mb.store(this, outer, Operand::Local(o));
    mb.ret(None);
    let task_init = mb.finish();
    let mut mb = app.method(task, "run");
    mb.set_param_count(1);
    let this = mb.param(0);
    let o = mb.fresh_local();
    mb.load(o, this, outer);
    mb.store(o, ticks, Operand::Const(ConstValue::Int(1)));
    mb.ret(None);
    mb.finish();

    // onCreate: new Timer().schedule(new Tick(this), 100); register click.
    let mut mb = app.method(activity, "onCreate");
    mb.set_param_count(1);
    let this = mb.param(0);
    let (timer, t) = (mb.fresh_local(), mb.fresh_local());
    mb.new_(timer, fw.timer);
    mb.new_(t, task);
    mb.call(
        None,
        InvokeKind::Special,
        task_init,
        Some(t),
        vec![Operand::Local(this)],
    );
    mb.call(
        None,
        InvokeKind::Virtual,
        fw.timer_schedule,
        Some(timer),
        vec![Operand::Local(t), Operand::Const(ConstValue::Int(100))],
    );
    register_self_listener(&mut mb, &fw, this, 1, fw.set_on_click_listener);
    mb.ret(None);
    mb.finish();

    // onClick reads the tick counter.
    let mut mb = app.method(activity, "onClick");
    mb.set_param_count(2);
    let this = mb.param(0);
    let x = mb.fresh_local();
    mb.load(x, this, ticks);
    mb.ret(None);
    mb.finish();

    truth.plant(name, "ticks", RaceLabel::TrueRace);
}

fn plant_location_tracker(app: &mut AndroidAppBuilder, name: &str, truth: &mut GroundTruth) {
    let fw = app.framework().clone();
    let mut cb = app.activity(name);
    cb.add_interface(fw.location_listener);
    let last_loc = cb.field("lastLoc", Type::Ref(fw.object));
    let activity = cb.build();

    // onLocationChanged: lastLoc = new Object().
    let obj = fw.object;
    let mut mb = app.method(activity, "onLocationChanged");
    mb.set_param_count(2);
    let this = mb.param(0);
    let v = mb.fresh_local();
    mb.new_(v, obj);
    mb.store(this, last_loc, Operand::Local(v));
    mb.ret(None);
    mb.finish();

    // onCreate: new LocationManager().requestLocationUpdates(this).
    let mut mb = app.method(activity, "onCreate");
    mb.set_param_count(1);
    let this = mb.param(0);
    let lm = mb.fresh_local();
    mb.new_(lm, fw.location_manager);
    mb.call(
        None,
        InvokeKind::Virtual,
        fw.request_location_updates,
        Some(lm),
        vec![Operand::Local(this)],
    );
    mb.ret(None);
    mb.finish();

    // onDestroy reads the last location (racing late updates).
    let mut mb = app.method(activity, "onDestroy");
    mb.set_param_count(1);
    let this = mb.param(0);
    let x = mb.fresh_local();
    mb.load(x, this, last_loc);
    mb.ret(None);
    mb.finish();

    truth.plant(name, "lastLoc", RaceLabel::TrueRace);
}

fn plant_media_notify(app: &mut AndroidAppBuilder, name: &str, truth: &mut GroundTruth) {
    let fw = app.framework().clone();
    let mut cb = app.activity(name);
    cb.add_interface(fw.on_completion_listener);
    let playing = cb.field("playing", Type::Int);
    let activity = cb.build();

    // onCompletion: playing = 0.
    let mut mb = app.method(activity, "onCompletion");
    mb.set_param_count(2);
    let this = mb.param(0);
    mb.store(this, playing, Operand::Const(ConstValue::Int(0)));
    mb.ret(None);
    mb.finish();

    // onCreate: new MediaPlayer().setOnCompletionListener(this); playing=1.
    let mut mb = app.method(activity, "onCreate");
    mb.set_param_count(1);
    let this = mb.param(0);
    let mp = mb.fresh_local();
    mb.store(this, playing, Operand::Const(ConstValue::Int(1)));
    mb.new_(mp, fw.media_player);
    mb.call(
        None,
        InvokeKind::Virtual,
        fw.set_on_completion_listener,
        Some(mp),
        vec![Operand::Local(this)],
    );
    mb.ret(None);
    mb.finish();

    // onPause reads the playback state.
    let mut mb = app.method(activity, "onPause");
    mb.set_param_count(1);
    let this = mb.param(0);
    let x = mb.fresh_local();
    mb.load(x, this, playing);
    mb.ret(None);
    mb.finish();

    truth.plant(name, "playing", RaceLabel::TrueRace);
}

fn plant_watcher_sync(app: &mut AndroidAppBuilder, name: &str, truth: &mut GroundTruth) {
    let fw = app.framework().clone();
    let mut cb = app.activity(name);
    let draft = cb.field("draft", Type::Ref(fw.object));
    let activity = cb.build();

    // Watcher: afterTextChanged writes the draft.
    let watcher_name = format!("{name}$Watcher");
    let mut cb = app.subclass(&watcher_name, fw.object);
    cb.add_interface(fw.text_watcher);
    let w_outer = cb.field("outer", Type::Ref(activity));
    let watcher = cb.build();
    let mut mb = app.method(watcher, "<init>");
    mb.set_param_count(2);
    let (this, o) = (mb.param(0), mb.param(1));
    mb.store(this, w_outer, Operand::Local(o));
    mb.ret(None);
    let watcher_init = mb.finish();
    let obj = fw.object;
    let mut mb = app.method(watcher, "afterTextChanged");
    mb.set_param_count(2);
    let this = mb.param(0);
    let (o, v) = (mb.fresh_local(), mb.fresh_local());
    mb.load(o, this, w_outer);
    mb.new_(v, obj);
    mb.store(o, draft, Operand::Local(v));
    mb.ret(None);
    mb.finish();

    // Saver task: doInBackground reads the draft.
    let task_name = format!("{name}$Saver");
    let mut cb = app.subclass(&task_name, fw.async_task);
    let t_outer = cb.field("outer", Type::Ref(activity));
    let saver = cb.build();
    let mut mb = app.method(saver, "<init>");
    mb.set_param_count(2);
    let (this, o) = (mb.param(0), mb.param(1));
    mb.store(this, t_outer, Operand::Local(o));
    mb.ret(None);
    let saver_init = mb.finish();
    let mut mb = app.method(saver, "doInBackground");
    mb.set_param_count(1);
    let this = mb.param(0);
    let (o, x) = (mb.fresh_local(), mb.fresh_local());
    mb.load(o, this, t_outer);
    mb.load(x, o, draft);
    mb.ret(None);
    mb.finish();

    // onCreate: tv = findViewById(1); tv.addTextChangedListener(new Watcher(this)).
    let mut mb = app.method(activity, "onCreate");
    mb.set_param_count(1);
    let this = mb.param(0);
    let (tv, w) = (mb.fresh_local(), mb.fresh_local());
    mb.call(
        Some(tv),
        InvokeKind::Virtual,
        fw.find_view_by_id,
        Some(this),
        vec![Operand::Const(ConstValue::Int(1))],
    );
    mb.new_(w, watcher);
    mb.call(
        None,
        InvokeKind::Special,
        watcher_init,
        Some(w),
        vec![Operand::Local(this)],
    );
    mb.call(
        None,
        InvokeKind::Virtual,
        fw.add_text_changed_listener,
        Some(tv),
        vec![Operand::Local(w)],
    );
    mb.ret(None);
    mb.finish();

    // onStart kicks off the background save.
    let mut mb = app.method(activity, "onStart");
    mb.set_param_count(1);
    let this = mb.param(0);
    let t = mb.fresh_local();
    mb.new_(t, saver);
    mb.call(
        None,
        InvokeKind::Special,
        saver_init,
        Some(t),
        vec![Operand::Local(this)],
    );
    mb.call(
        None,
        InvokeKind::Virtual,
        fw.async_task_execute,
        Some(t),
        vec![],
    );
    mb.ret(None);
    mb.finish();

    truth.plant(name, "draft", RaceLabel::TrueRace);
}

fn plant_indexed_buffer(app: &mut AndroidAppBuilder, name: &str, truth: &mut GroundTruth) {
    let fw = app.framework().clone();
    let mut cb = app.activity(name);
    cb.add_interface(fw.on_click_listener);
    let buf = cb.field("buf", Type::Ref(fw.array_list));
    let activity = cb.build();
    let obj = fw.object;

    // Worker thread: buf.setAt(0, new); buf.setAt(1, new).
    let (worker, worker_init) =
        runnable_with_outer(app, &format!("{name}$Indexer"), activity, |mb, o| {
            let (b, v0, v1) = (mb.fresh_local(), mb.fresh_local(), mb.fresh_local());
            mb.load(b, o, buf);
            mb.new_(v0, obj);
            mb.call(
                None,
                InvokeKind::Virtual,
                fw.array_list_set_at,
                Some(b),
                vec![Operand::Const(ConstValue::Int(0)), Operand::Local(v0)],
            );
            mb.new_(v1, obj);
            mb.call(
                None,
                InvokeKind::Virtual,
                fw.array_list_set_at,
                Some(b),
                vec![Operand::Const(ConstValue::Int(1)), Operand::Local(v1)],
            );
        });

    // onCreate: buf = new ArrayList; start the worker; register a click.
    let mut mb = app.method(activity, "onCreate");
    mb.set_param_count(1);
    let this = mb.param(0);
    let (b, w, t) = (mb.fresh_local(), mb.fresh_local(), mb.fresh_local());
    mb.new_(b, fw.array_list);
    mb.store(this, buf, Operand::Local(b));
    mb.new_(w, worker);
    mb.call(
        None,
        InvokeKind::Special,
        worker_init,
        Some(w),
        vec![Operand::Local(this)],
    );
    mb.new_(t, fw.thread);
    mb.call(
        None,
        InvokeKind::Special,
        fw.thread_init,
        Some(t),
        vec![Operand::Local(w)],
    );
    mb.call(None, InvokeKind::Virtual, fw.thread_start, Some(t), vec![]);
    register_self_listener(&mut mb, &fw, this, 1, fw.set_on_click_listener);
    mb.ret(None);
    mb.finish();

    // onClick: reads slot 1 (races with the worker's slot-1 write) and
    // slot 2 (no writer — no race under the index-sensitive model).
    let mut mb = app.method(activity, "onClick");
    mb.set_param_count(2);
    let this = mb.param(0);
    let (b, x, y) = (mb.fresh_local(), mb.fresh_local(), mb.fresh_local());
    mb.load(b, this, buf);
    mb.call(
        Some(x),
        InvokeKind::Virtual,
        fw.array_list_get_at,
        Some(b),
        vec![Operand::Const(ConstValue::Int(1))],
    );
    mb.call(
        Some(y),
        InvokeKind::Virtual,
        fw.array_list_get_at,
        Some(b),
        vec![Operand::Const(ConstValue::Int(2))],
    );
    mb.ret(None);
    mb.finish();

    // Slot 1 is a true race; slots 0 and 2 have no unordered conflicting
    // pair. (The slot fields live on the shared java.util.ArrayList class.)
    truth.plant("java.util.ArrayList", "idx1", RaceLabel::TrueRace);
    truth.plant("java.util.ArrayList", "idx2", RaceLabel::Ordered);
    truth.plant(name, "buf", RaceLabel::Ordered);
}

fn plant_filler(app: &mut AndroidAppBuilder, name: &str) {
    let fw = app.framework().clone();
    let mut cb = app.activity(name);
    cb.add_interface(fw.on_click_listener);
    cb.add_interface(fw.on_long_click_listener);
    cb.add_interface(fw.on_scroll_listener);
    cb.add_interface(fw.on_item_click_listener);
    let scratch = cb.field("scratch", Type::Ref(fw.object));
    let counter = cb.field("counter", Type::Int);
    let activity = cb.build();
    let obj = fw.object;

    // helper(): allocates, computes, writes own fields.
    let mut mb = app.method(activity, "helper");
    mb.set_param_count(1);
    let this = mb.param(0);
    let (v, a, b) = (mb.fresh_local(), mb.fresh_local(), mb.fresh_local());
    mb.new_(v, obj);
    mb.store(this, scratch, Operand::Local(v));
    mb.const_(a, ConstValue::Int(2));
    mb.bin_op(
        b,
        apir::BinOp::Add,
        Operand::Local(a),
        Operand::Const(ConstValue::Int(3)),
    );
    mb.store(this, counter, Operand::Local(b));
    mb.ret(None);
    let helper = mb.finish();

    // Several independent GUI handlers working on action-local state.
    for cb_name in ["onClick", "onLongClick", "onScroll", "onItemClick"] {
        let mut mb = app.method(activity, cb_name);
        mb.set_param_count(if cb_name == "onItemClick" { 3 } else { 2 });
        let (l, x) = (mb.fresh_local(), mb.fresh_local());
        mb.new_(l, obj);
        mb.move_(x, l);
        mb.ret(None);
        mb.finish();
    }

    let mut mb = app.method(activity, "onCreate");
    mb.set_param_count(1);
    let this = mb.param(0);
    mb.vcall(helper, this, vec![]);
    register_self_listener(&mut mb, &fw, this, 1, fw.set_on_click_listener);
    register_self_listener(&mut mb, &fw, this, 2, fw.set_on_long_click_listener);
    register_self_listener(&mut mb, &fw, this, 3, fw.set_on_scroll_listener);
    register_self_listener(&mut mb, &fw, this, 4, fw.set_on_item_click_listener);
    mb.ret(None);
    mb.finish();

    let mut mb = app.method(activity, "onResume");
    mb.set_param_count(1);
    let this = mb.param(0);
    let (x, y) = (mb.fresh_local(), mb.fresh_local());
    mb.load(x, this, scratch);
    mb.load(y, this, counter);
    mb.ret(None);
    mb.finish();
}
