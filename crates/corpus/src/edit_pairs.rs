//! Edit-pair fixture: one app in two versions differing by a single
//! method body, for summary-reuse tests and the `summary_reuse` bench.
//!
//! [`base_app`] and [`edited_app`] declare the *same* classes, fields,
//! and method signatures — only the body of the static helper
//! `Main.helper` differs: the edited version appends one extra
//! statement, `extra = 7`, at the end. That makes the pair exercise
//! every summary-store invalidation rule precisely:
//!
//! - the structural fingerprints are identical (declarations unchanged),
//! - exactly one method's summary key changes (its body text changed),
//! - the appended statement is a constant static store — a points-to
//!   no-op — so every **pointer digest** is unchanged and a warm
//!   re-analysis of the edited app over a store primed with the base
//!   app reuses the whole points-to `Analysis` (zero solver
//!   iterations), while
//! - the race results *do* change: the edited helper's write races with
//!   the `onResume` read of `extra`, so the edit adds one report.

use android_model::{AndroidApp, AndroidAppBuilder};
use apir::{ConstValue, InvokeKind, Operand, Type};

/// The unedited version: `helper` only reads `counter`.
pub fn base_app() -> AndroidApp {
    build(false)
}

/// The edited version: `helper` additionally writes `extra = 7` (a
/// pointer-analysis no-op) at the end of its body.
pub fn edited_app() -> AndroidApp {
    build(true)
}

fn build(edited: bool) -> AndroidApp {
    let mut app = AndroidAppBuilder::new("EditPair");
    let fw = app.framework().clone();

    let mut cb = app.activity("com.edit.Main");
    let counter = cb.static_field("counter", Type::Int);
    let extra = cb.static_field("extra", Type::Int);
    let activity = cb.build();

    // static helper(): x = counter; [edited: extra = 7;] return
    let mut mb = app.method(activity, "helper");
    mb.set_static();
    mb.set_param_count(0);
    let x = mb.fresh_local();
    mb.static_load(x, counter);
    if edited {
        mb.static_store(extra, Operand::Const(ConstValue::Int(7)));
    }
    mb.ret(None);
    let helper = mb.finish();

    // Worker.run: counter = 1; Main.helper()
    let mut cb = app.subclass("com.edit.Main$Worker", fw.object);
    cb.add_interface(fw.runnable);
    let worker = cb.build();
    let mut mb = app.method(worker, "<init>");
    mb.set_param_count(1);
    mb.ret(None);
    let worker_init = mb.finish();
    let mut mb = app.method(worker, "run");
    mb.set_param_count(1);
    mb.static_store(counter, Operand::Const(ConstValue::Int(1)));
    mb.call(None, InvokeKind::Static, helper, None, vec![]);
    mb.ret(None);
    mb.finish();

    // onCreate: new Thread(new Worker()).start()
    let mut mb = app.method(activity, "onCreate");
    mb.set_param_count(1);
    let (w, t) = (mb.fresh_local(), mb.fresh_local());
    mb.new_(w, worker);
    mb.call(None, InvokeKind::Special, worker_init, Some(w), vec![]);
    mb.new_(t, fw.thread);
    mb.call(
        None,
        InvokeKind::Special,
        fw.thread_init,
        Some(t),
        vec![Operand::Local(w)],
    );
    mb.call(None, InvokeKind::Virtual, fw.thread_start, Some(t), vec![]);
    mb.ret(None);
    mb.finish();

    // onResume: reads both statics on the UI thread.
    let mut mb = app.method(activity, "onResume");
    mb.set_param_count(1);
    let (a, b) = (mb.fresh_local(), mb.fresh_local());
    mb.static_load(a, counter);
    mb.static_load(b, extra);
    mb.ret(None);
    mb.finish();

    app.finish().expect("edit-pair fixture is a valid app")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_differ_only_in_the_helper_body() {
        let base = base_app();
        let edited = edited_app();
        let printer = |app: &AndroidApp| {
            let p = &app.program;
            p.methods()
                .iter()
                .map(|m| (p.method_name(m.id).to_owned(), format!("{:?}", m.blocks)))
                .collect::<Vec<_>>()
        };
        let (b, e) = (printer(&base), printer(&edited));
        assert_eq!(b.len(), e.len());
        let diffs: Vec<&str> = b
            .iter()
            .zip(&e)
            .filter(|(x, y)| x != y)
            .map(|(x, _)| x.0.as_str())
            .collect();
        assert_eq!(diffs, ["com.edit.Main.helper"]);
    }
}
