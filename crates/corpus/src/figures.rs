//! The paper's figure apps as standalone one-activity apps.

use crate::ground_truth::GroundTruth;
use crate::idioms::Idiom;
use android_model::{AndroidApp, AndroidAppBuilder};

/// Figure 1: the intra-component `RecycleView`/`AsyncTask` race (AOSP bug
/// 77846 in the paper).
pub fn intra_component() -> (AndroidApp, GroundTruth) {
    build_single("NewsApp", "com.example.NewsActivity", Idiom::AsyncUiUpdate)
}

/// Figure 2: the inter-component Activity-vs-BroadcastReceiver race.
pub fn inter_component() -> (AndroidApp, GroundTruth) {
    build_single(
        "BroadcastApp",
        "com.example.MainActivity",
        Idiom::ReceiverDb,
    )
}

/// Figure 8: OpenSudoku's guarded timer — the refutation showcase.
pub fn open_sudoku_guard() -> (AndroidApp, GroundTruth) {
    build_single(
        "OpenSudokuTimer",
        "com.example.TimerActivity",
        Idiom::GuardedTimer,
    )
}

/// §6.5 OpenManager: the implicit-dependency false positive.
pub fn open_manager_implicit() -> (AndroidApp, GroundTruth) {
    build_single(
        "OpenManagerList",
        "com.example.ListActivity",
        Idiom::ImplicitDep,
    )
}

/// §5 message-code constant-propagation refutation.
pub fn message_guard() -> (AndroidApp, GroundTruth) {
    build_single(
        "MessageGuard",
        "com.example.HandlerActivity",
        Idiom::MessageGuard,
    )
}

fn build_single(app_name: &str, activity: &str, idiom: Idiom) -> (AndroidApp, GroundTruth) {
    let mut app = AndroidAppBuilder::new(app_name);
    let mut truth = GroundTruth::new();
    idiom.plant(&mut app, activity, &mut truth);
    (app.finish().expect("figure app is well-formed"), truth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_apps_build_and_validate() {
        for (app, truth) in [
            intra_component(),
            inter_component(),
            open_sudoku_guard(),
            open_manager_implicit(),
            message_guard(),
        ] {
            assert!(app.program.validate().is_ok(), "{} invalid", app.name);
            assert_eq!(app.manifest.activities.len(), 1);
            assert!(!truth.planted.is_empty());
        }
    }

    #[test]
    fn figure_1_plants_a_true_race_on_adapter_data() {
        let (_, truth) = intra_component();
        let label = truth.classify("com.example.NewsActivity$Adapter", "data");
        assert_eq!(label, Some(crate::RaceLabel::TrueRace));
    }

    #[test]
    fn figure_8_plants_refutable_and_benign() {
        let (_, truth) = open_sudoku_guard();
        assert_eq!(
            truth.classify("com.example.TimerActivity", "mAccumTime"),
            Some(crate::RaceLabel::Refutable)
        );
        assert_eq!(
            truth.classify("com.example.TimerActivity", "mIsRunning"),
            Some(crate::RaceLabel::BenignGuard)
        );
    }
}
