//! The 20-app dataset of Table 2.
//!
//! We cannot redistribute the APKs; instead each app is synthesized
//! deterministically from its Table 2 metadata (name, install band,
//! bytecode size). The bytecode size scales the number of activities and
//! planted idioms, so relative app complexity matches the paper's dataset.

use crate::ground_truth::GroundTruth;
use crate::idioms::Idiom;
use android_model::{AndroidApp, AndroidAppBuilder};
use apir::SymbolArena;
use sierra_prng::SplitMix64;
use std::sync::Arc;

/// Table 2 metadata for one app.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppSpec {
    /// App name as printed in Table 2.
    pub name: &'static str,
    /// Google Play install band (August 2017 per the paper).
    pub installs: &'static str,
    /// Bytecode (.dex) size in KB.
    pub bytecode_kb: u32,
}

/// The Table 2 dataset.
pub const TWENTY: [AppSpec; 20] = [
    AppSpec {
        name: "APV",
        installs: "500,000-1,000,000",
        bytecode_kb: 736,
    },
    AppSpec {
        name: "Astrid",
        installs: "100,000-500,000",
        bytecode_kb: 5400,
    },
    AppSpec {
        name: "Barcode Scanner",
        installs: "100,000,000-500,000,000",
        bytecode_kb: 808,
    },
    AppSpec {
        name: "Beem",
        installs: "50,000-100,000",
        bytecode_kb: 1700,
    },
    AppSpec {
        name: "ConnectBot",
        installs: "1,000,000-5,000,000",
        bytecode_kb: 700,
    },
    AppSpec {
        name: "FBReader",
        installs: "10,000,000-50,000,000",
        bytecode_kb: 1013,
    },
    AppSpec {
        name: "K-9 Mail",
        installs: "5,000,000-10,000,000",
        bytecode_kb: 2800,
    },
    AppSpec {
        name: "KeePassDroid",
        installs: "1,000,000-5,000,000",
        bytecode_kb: 489,
    },
    AppSpec {
        name: "Mileage",
        installs: "500,000-1,000,000",
        bytecode_kb: 641,
    },
    AppSpec {
        name: "MyTracks",
        installs: "500,000-1,000,000",
        bytecode_kb: 5300,
    },
    AppSpec {
        name: "NPR News",
        installs: "1,000,000-5,000,000",
        bytecode_kb: 1500,
    },
    AppSpec {
        name: "NotePad",
        installs: "10,000,000-50,000,000",
        bytecode_kb: 228,
    },
    AppSpec {
        name: "OpenManager",
        installs: "N/A (F-Droid)",
        bytecode_kb: 77,
    },
    AppSpec {
        name: "OpenSudoku",
        installs: "1,000,000-5,000,000",
        bytecode_kb: 170,
    },
    AppSpec {
        name: "SipDroid",
        installs: "1,000,000-5,000,000",
        bytecode_kb: 539,
    },
    AppSpec {
        name: "SuperGenPass",
        installs: "10,000-50,000",
        bytecode_kb: 137,
    },
    AppSpec {
        name: "TippyTipper",
        installs: "100,000-500,000",
        bytecode_kb: 79,
    },
    AppSpec {
        name: "VLC",
        installs: "100,000,000-500,000,000",
        bytecode_kb: 1100,
    },
    AppSpec {
        name: "VuDroid",
        installs: "100,000-500,000",
        bytecode_kb: 63,
    },
    AppSpec {
        name: "XBMC remote",
        installs: "100,000-500,000",
        bytecode_kb: 1100,
    },
];

/// Deterministic seed for an app name.
pub fn seed_of(name: &str) -> u64 {
    // FNV-1a, stable across platforms and Rust versions.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Number of activities synthesized for a bytecode size.
pub fn activity_count(bytecode_kb: u32) -> usize {
    (3 + bytecode_kb / 170).clamp(3, 32) as usize
}

/// Synthesizes one app from its spec.
pub fn build_app(spec: AppSpec) -> (AndroidApp, GroundTruth) {
    build_app_with(spec, None)
}

/// [`build_app`], interning into a shared arena when one is supplied.
pub fn build_app_with(spec: AppSpec, arena: Option<Arc<SymbolArena>>) -> (AndroidApp, GroundTruth) {
    synthesize_with(
        spec.name,
        activity_count(spec.bytecode_kb),
        seed_of(spec.name),
        arena,
    )
}

/// Synthesizes an app with `n_activities` planted idiom activities.
pub fn synthesize(name: &str, n_activities: usize, seed: u64) -> (AndroidApp, GroundTruth) {
    synthesize_with(name, n_activities, seed, None)
}

/// [`synthesize`], interning class/method/field names into a shared
/// [`SymbolArena`] when one is supplied. The synthesized program is
/// identical either way — only where the name strings live differs.
pub fn synthesize_with(
    name: &str,
    n_activities: usize,
    seed: u64,
    arena: Option<Arc<SymbolArena>>,
) -> (AndroidApp, GroundTruth) {
    let mut rng = SplitMix64::new(seed);
    let mut app = match arena {
        Some(arena) => AndroidAppBuilder::with_arena(name, arena),
        None => AndroidAppBuilder::new(name),
    };
    let mut truth = GroundTruth::new();
    let pkg: String = name
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect::<String>()
        .to_ascii_lowercase();
    // Rotate through the idiom list from a seeded offset, so different apps
    // get different idiom mixes but every sizable app covers the spectrum.
    let offset = rng.usize(Idiom::ALL.len());
    for i in 0..n_activities {
        let idiom = Idiom::ALL[(offset + i) % Idiom::ALL.len()];
        let activity = format!("com.{pkg}.Activity{i}");
        idiom.plant(&mut app, &activity, &mut truth);
    }
    (app.finish().expect("synthesized app is well-formed"), truth)
}

/// Builds the whole 20-app dataset.
pub fn build_all() -> Vec<(AppSpec, AndroidApp, GroundTruth)> {
    build_all_with(None)
}

/// [`build_all`], interning into a shared arena when one is supplied.
pub fn build_all_with(arena: Option<Arc<SymbolArena>>) -> Vec<(AppSpec, AndroidApp, GroundTruth)> {
    TWENTY
        .iter()
        .map(|&spec| {
            let (app, truth) = build_app_with(spec, arena.clone());
            (spec, app, truth)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesis_is_deterministic() {
        let (a1, t1) = build_app(TWENTY[0]);
        let (a2, t2) = build_app(TWENTY[0]);
        assert_eq!(a1.program.stmt_count(), a2.program.stmt_count());
        assert_eq!(t1.planted, t2.planted);
    }

    #[test]
    fn bigger_apps_get_more_activities() {
        assert!(activity_count(5400) > activity_count(170));
        assert!(activity_count(63) >= 3);
        assert!(activity_count(100_000) <= 32);
    }

    #[test]
    fn all_twenty_build() {
        for (spec, app, truth) in build_all() {
            assert!(app.program.validate().is_ok(), "{} invalid", spec.name);
            assert_eq!(
                app.manifest.activities.len(),
                activity_count(spec.bytecode_kb)
            );
            assert!(truth.planted.len() >= 2, "{} plants too little", spec.name);
        }
    }

    #[test]
    fn seeds_differ_across_names() {
        assert_ne!(seed_of("APV"), seed_of("VLC"));
        assert_eq!(seed_of("APV"), seed_of("APV"));
    }
}
