//! The 174-app F-Droid dataset (§6.6).
//!
//! The paper's second dataset is 174 open-source apps with a median size of
//! 1.1 MB. We synthesize 174 seeded apps whose size distribution has that
//! median: sizes are drawn log-normally around 1,100 KB, and each size maps
//! to an activity count exactly as in the 20-app dataset.

use crate::ground_truth::GroundTruth;
use crate::twenty::{activity_count, synthesize_with};
use android_model::AndroidApp;
use apir::SymbolArena;
use sierra_prng::SplitMix64;
use std::sync::Arc;

/// Number of apps in the dataset.
pub const APP_COUNT: usize = 174;

/// The dataset's base seed (fixed for reproducibility).
pub const BASE_SEED: u64 = 0x0051_E88A_2018;

/// Approximate standard normal via the sum of 12 uniforms.
fn approx_normal(rng: &mut SplitMix64) -> f64 {
    (0..12).map(|_| rng.f64()).sum::<f64>() - 6.0
}

/// The synthesized bytecode size (KB) of app `index`.
pub fn size_kb(index: usize) -> u32 {
    let mut rng = SplitMix64::new(BASE_SEED.wrapping_add(index as u64));
    let z = approx_normal(&mut rng);
    // Log-normal around the paper's 1.1 MB median.
    let kb = 1100.0 * (0.7 * z).exp();
    kb.clamp(40.0, 9000.0) as u32
}

/// Builds app `index` of the dataset.
pub fn build_app(index: usize) -> (AndroidApp, GroundTruth) {
    build_app_with(index, None)
}

/// [`build_app`], interning into a shared arena when one is supplied.
pub fn build_app_with(index: usize, arena: Option<Arc<SymbolArena>>) -> (AndroidApp, GroundTruth) {
    let kb = size_kb(index);
    let name = format!("org.fdroid.app{index:03}");
    synthesize_with(
        &name,
        activity_count(kb),
        BASE_SEED.wrapping_add(7 + index as u64),
        arena,
    )
}

/// Iterates over all apps lazily (building 174 apps eagerly is wasteful for
/// callers that stream results).
pub fn iter_apps() -> impl Iterator<Item = (usize, AndroidApp, GroundTruth)> {
    iter_apps_with(None)
}

/// [`iter_apps`], interning into a shared arena when one is supplied.
pub fn iter_apps_with(
    arena: Option<Arc<SymbolArena>>,
) -> impl Iterator<Item = (usize, AndroidApp, GroundTruth)> {
    (0..APP_COUNT).map(move |i| {
        let (app, truth) = build_app_with(i, arena.clone());
        (i, app, truth)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_size_is_near_the_papers() {
        let mut sizes: Vec<u32> = (0..APP_COUNT).map(size_kb).collect();
        sizes.sort_unstable();
        let median = sizes[APP_COUNT / 2];
        assert!(
            (600..=1900).contains(&median),
            "median {median} KB strays too far from the paper's 1.1 MB"
        );
    }

    #[test]
    fn apps_build_deterministically() {
        let (a1, t1) = build_app(3);
        let (a2, t2) = build_app(3);
        assert_eq!(a1.program.stmt_count(), a2.program.stmt_count());
        assert_eq!(t1.planted, t2.planted);
        assert!(a1.program.validate().is_ok());
    }

    #[test]
    fn sample_of_apps_validates() {
        for (i, app, _) in iter_apps().take(8) {
            assert!(app.program.validate().is_ok(), "app {i} invalid");
            assert!(!app.manifest.activities.is_empty());
        }
    }
}
