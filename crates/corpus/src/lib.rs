//! # corpus — synthetic app datasets with ground truth
//!
//! The paper evaluates SIERRA on 20 open-source apps (Table 2) plus 174
//! F-Droid apps (§6.6), classifying reported races by manual inspection.
//! Since the APKs cannot ship with this reproduction, this crate
//! synthesizes deterministic stand-ins:
//!
//! - [`figures`] — the paper's motivating examples (Figures 1, 2, 8 and the
//!   §6.5 patterns) as standalone apps;
//! - [`idioms`] — the library of planted concurrency patterns, each
//!   recording its expected verdict in a [`GroundTruth`];
//! - [`prefilter_idioms`] — a fixture app exercising each pre-refutation
//!   pruning verdict (escape, guarded, constprop) exactly once;
//! - [`protocol_idioms`] — four apps whose planted false positives only
//!   the message-history refutation stage can discharge (dialog
//!   show/dismiss, fragment attach/detach, async-task cancellation,
//!   unregister-in-onPause), each alongside a true race it must keep;
//! - [`reflection_idioms`] — two apps whose planted races hide behind
//!   reflection / intent dispatch and surface only under the `resolve`
//!   or `havoc` opaque-call policies;
//! - [`twenty`] — the Table 2 dataset, scaled by each app's real bytecode
//!   size;
//! - [`fdroid`] — 174 seeded apps with the paper's 1.1 MB median size.
//!
//! Ground truth replaces the authors' manual inspection: every planted race
//! is labeled ([`RaceLabel`]) and [`GroundTruth::evaluate`] scores a
//! detector's reports into true races / false positives / misses.

pub mod edit_pairs;
pub mod fdroid;
pub mod figures;
mod ground_truth;
pub mod idioms;
pub mod prefilter_idioms;
pub mod protocol_idioms;
pub mod reflection_idioms;
pub mod triage_idioms;
pub mod twenty;

pub use ground_truth::{EvalCounts, GroundTruth, HarmEval, HarmLabel, PlantedRace, RaceLabel};
pub use idioms::Idiom;
pub use twenty::{AppSpec, TWENTY};
