//! Fixture app planting one race per `triage::Harm` variant.
//!
//! Four unordered GUI handlers (click / long-click / scroll / item-click,
//! registered on distinct views in `onCreate`) manifest four races whose
//! harm class is determined by construction:
//!
//! - **null-deref** (`conn`): `onClick` stores a fresh `Conn` into the
//!   reference field; `onLongClick` loads it and *dereferences* the
//!   result (`x.val`). No happens-before-earlier write initializes the
//!   field, so the read side can observe the type default `null` and the
//!   dereference crashes — `Harm::NullDeref`.
//! - **use-before-init** (`title`): `onScroll` stores a fresh object;
//!   `onItemClick` loads the field and hands the possibly-default value
//!   straight to the framework (`TextView.setText`) without dereferencing
//!   it locally — `Harm::UseBeforeInit`.
//! - **value flow into a branch** (`count`): `onScroll` increments the
//!   counter (a non-constant store); `onItemClick` branches on
//!   `count == 5`. The racy value steers control flow in another action —
//!   `Harm::ValueInconsistency`.
//! - **idempotent boolean store** (`done`): `onClick` and `onLongClick`
//!   both store the constant `true`. A real write-write race, but any
//!   interleaving leaves the same state — `Harm::LikelyBenign`.

use crate::ground_truth::{GroundTruth, HarmLabel, RaceLabel};
use android_model::{AndroidApp, AndroidAppBuilder};
use apir::{BinOp, CmpOp, ConstValue, InvokeKind, Operand, Type};

/// The activity name the fixture plants everything under.
pub const ACTIVITY: &str = "com.triage.Main";

/// Builds the triage-idiom fixture app and its ground truth.
pub fn triage_idioms_app() -> (AndroidApp, GroundTruth) {
    let mut app = AndroidAppBuilder::new("TriageIdioms");
    let mut truth = GroundTruth::new();
    let fw = app.framework().clone();

    let conn_name = format!("{ACTIVITY}$Conn");
    let mut cb = app.subclass(&conn_name, fw.object);
    let val = cb.field("val", Type::Int);
    let conn_class = cb.build();

    let mut cb = app.activity(ACTIVITY);
    cb.add_interface(fw.on_click_listener);
    cb.add_interface(fw.on_long_click_listener);
    cb.add_interface(fw.on_scroll_listener);
    cb.add_interface(fw.on_item_click_listener);
    let conn = cb.field("conn", Type::Ref(conn_class));
    let title = cb.field("title", Type::Ref(fw.object));
    let count = cb.field("count", Type::Int);
    let done = cb.field("done", Type::Bool);
    let activity = cb.build();

    // onClick: conn = new Conn(); done = true.
    let mut mb = app.method(activity, "onClick");
    mb.set_param_count(2);
    let this = mb.param(0);
    let c = mb.fresh_local();
    mb.new_(c, conn_class);
    mb.store(this, conn, Operand::Local(c));
    mb.store(this, done, Operand::Const(ConstValue::Bool(true)));
    mb.ret(None);
    mb.finish();

    // onLongClick: x = conn; y = x.val (the crashing dereference);
    // done = true (second idempotent store).
    let mut mb = app.method(activity, "onLongClick");
    mb.set_param_count(2);
    let this = mb.param(0);
    let (x, y) = (mb.fresh_local(), mb.fresh_local());
    mb.load(x, this, conn);
    mb.load(y, x, val);
    mb.store(this, done, Operand::Const(ConstValue::Bool(true)));
    mb.ret(None);
    mb.finish();

    // onScroll: title = new Object(); count = count + 1.
    let obj = fw.object;
    let mut mb = app.method(activity, "onScroll");
    mb.set_param_count(2);
    let this = mb.param(0);
    let t = mb.fresh_local();
    mb.new_(t, obj);
    mb.store(this, title, Operand::Local(t));
    let (cv, cv2) = (mb.fresh_local(), mb.fresh_local());
    mb.load(cv, this, count);
    mb.bin_op(
        cv2,
        BinOp::Add,
        Operand::Local(cv),
        Operand::Const(ConstValue::Int(1)),
    );
    mb.store(this, count, Operand::Local(cv2));
    mb.ret(None);
    mb.finish();

    // onItemClick: setText(findViewById(5), title); if (count == 5) {...}.
    let mut mb = app.method(activity, "onItemClick");
    mb.set_param_count(3);
    let this = mb.param(0);
    let (v, s) = (mb.fresh_local(), mb.fresh_local());
    mb.call(
        Some(v),
        InvokeKind::Virtual,
        fw.find_view_by_id,
        Some(this),
        vec![Operand::Const(ConstValue::Int(5))],
    );
    mb.load(s, this, title);
    mb.call(
        None,
        InvokeKind::Virtual,
        fw.set_text,
        Some(v),
        vec![Operand::Local(s)],
    );
    let (cr, cond) = (mb.fresh_local(), mb.fresh_local());
    mb.load(cr, this, count);
    mb.bin_op(
        cond,
        BinOp::Cmp(CmpOp::Eq),
        Operand::Local(cr),
        Operand::Const(ConstValue::Int(5)),
    );
    let b_then = mb.new_block();
    let b_exit = mb.new_block();
    mb.if_(Operand::Local(cond), b_then, b_exit);
    mb.switch_to(b_then);
    let z = mb.fresh_local();
    mb.const_(z, ConstValue::Int(0));
    mb.goto(b_exit);
    mb.switch_to(b_exit);
    mb.ret(None);
    mb.finish();

    // onCreate registers all four handlers on distinct views; it writes
    // none of the racy fields, so every reader can observe the defaults.
    let mut mb = app.method(activity, "onCreate");
    mb.set_param_count(1);
    let this = mb.param(0);
    for (id, register) in [
        (1i64, fw.set_on_click_listener),
        (2, fw.set_on_long_click_listener),
        (3, fw.set_on_scroll_listener),
        (4, fw.set_on_item_click_listener),
    ] {
        let view = mb.fresh_local();
        mb.call(
            Some(view),
            InvokeKind::Virtual,
            fw.find_view_by_id,
            Some(this),
            vec![Operand::Const(ConstValue::Int(id))],
        );
        mb.call(
            None,
            InvokeKind::Virtual,
            register,
            Some(view),
            vec![Operand::Local(this)],
        );
    }
    mb.ret(None);
    mb.finish();

    truth.plant_harm(ACTIVITY, "conn", RaceLabel::TrueRace, HarmLabel::Crash);
    truth.plant_harm(ACTIVITY, "title", RaceLabel::TrueRace, HarmLabel::Crash);
    truth.plant_harm(ACTIVITY, "count", RaceLabel::TrueRace, HarmLabel::Value);
    truth.plant_harm(ACTIVITY, "done", RaceLabel::TrueRace, HarmLabel::Benign);

    (app.finish().expect("valid triage fixture"), truth)
}
