//! Ground-truth labels for planted concurrency idioms.
//!
//! The paper's evaluation classifies reported races by manual inspection
//! (§6.1, §6.5). Our synthetic apps plant each idiom deliberately, so the
//! classification is known by construction: each planted race is keyed by
//! the `(declaring class, field)` it manifests on.

use std::collections::HashSet;

/// The expected verdict for a planted race.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RaceLabel {
    /// A genuine, harmful event-based race; SIERRA should report it.
    TrueRace,
    /// A true race on a guard variable — reported, but benign (§6.5: 74.8%
    /// of true reports fit this pattern).
    BenignGuard,
    /// A pair protected by ad-hoc synchronization; refutation should
    /// eliminate it. Reporting it is a false positive.
    Refutable,
    /// Accesses ordered by happens-before; must not even become a racy
    /// pair. Reporting it is a false positive.
    Ordered,
    /// An implicit-dependency pattern SIERRA cannot see (§6.5 OpenManager):
    /// SIERRA is *expected* to report it, and manual inspection counts it
    /// as a false positive.
    ImplicitDep,
}

impl RaceLabel {
    /// Whether a report on this field counts as a true race under manual
    /// inspection.
    pub fn is_true_race(self) -> bool {
        matches!(self, RaceLabel::TrueRace | RaceLabel::BenignGuard)
    }

    /// Whether SIERRA is expected to emit a report for this field.
    pub fn expect_report(self) -> bool {
        matches!(
            self,
            RaceLabel::TrueRace | RaceLabel::BenignGuard | RaceLabel::ImplicitDep
        )
    }
}

/// One planted race site.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlantedRace {
    /// Declaring class of the racy field.
    pub class: String,
    /// Field name.
    pub field: String,
    /// Expected verdict.
    pub label: RaceLabel,
}

/// All planted races of one app.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// The planted races.
    pub planted: Vec<PlantedRace>,
}

impl GroundTruth {
    /// Creates an empty ground truth.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a planted race (duplicate `(class, field)` keys are merged;
    /// shared substrate classes can be planted by several activities).
    pub fn plant(&mut self, class: &str, field: &str, label: RaceLabel) {
        if self
            .planted
            .iter()
            .any(|p| p.class == class && p.field == field)
        {
            return;
        }
        self.planted.push(PlantedRace {
            class: class.to_owned(),
            field: field.to_owned(),
            label,
        });
    }

    /// Merges another app fragment's truth into this one.
    pub fn extend(&mut self, other: GroundTruth) {
        self.planted.extend(other.planted);
    }

    /// The label planted on `(class, field)`, if any.
    pub fn classify(&self, class: &str, field: &str) -> Option<RaceLabel> {
        self.planted
            .iter()
            .find(|p| p.class == class && p.field == field)
            .map(|p| p.label)
    }

    /// Number of planted sites SIERRA is expected to report.
    pub fn expected_reports(&self) -> usize {
        self.planted
            .iter()
            .filter(|p| p.label.expect_report())
            .count()
    }

    /// Scores a set of reported `(class, field)` race groups against the
    /// truth (the "After Manual Inspection" columns of Table 3).
    pub fn evaluate<'a>(
        &self,
        reports: impl IntoIterator<Item = (&'a str, &'a str)>,
    ) -> EvalCounts {
        let distinct: HashSet<(String, String)> = reports
            .into_iter()
            .map(|(c, f)| (c.to_owned(), f.to_owned()))
            .collect();
        let mut counts = EvalCounts {
            reported: distinct.len(),
            ..Default::default()
        };
        for (c, f) in &distinct {
            match self.classify(c, f) {
                Some(l) if l.is_true_race() => counts.true_races += 1,
                Some(RaceLabel::ImplicitDep) => counts.false_positives += 1,
                Some(_) => counts.false_positives += 1,
                None => counts.unplanted += 1,
            }
        }
        // Missed true races (false negatives).
        for p in &self.planted {
            if p.label.is_true_race() && !distinct.contains(&(p.class.clone(), p.field.clone())) {
                counts.missed += 1;
            }
        }
        counts
    }
}

/// Evaluation counters over one app's reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalCounts {
    /// Distinct reported `(class, field)` groups.
    pub reported: usize,
    /// Groups matching a planted true race (incl. benign guards).
    pub true_races: usize,
    /// Groups matching a planted false-positive pattern.
    pub false_positives: usize,
    /// Groups on fields not planted (noise from shared substrates).
    pub unplanted: usize,
    /// Planted true races that went unreported (false negatives).
    pub missed: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_splits_true_and_false_positives() {
        let mut t = GroundTruth::new();
        t.plant("A", "x", RaceLabel::TrueRace);
        t.plant("A", "g", RaceLabel::BenignGuard);
        t.plant("A", "p", RaceLabel::Refutable);
        t.plant("A", "d", RaceLabel::ImplicitDep);
        t.plant("A", "o", RaceLabel::Ordered);
        assert_eq!(t.expected_reports(), 3);

        let reports = vec![("A", "x"), ("A", "g"), ("A", "d"), ("A", "z")];
        let c = t.evaluate(reports);
        assert_eq!(c.reported, 4);
        assert_eq!(c.true_races, 2);
        assert_eq!(c.false_positives, 1, "implicit dependency counts as FP");
        assert_eq!(c.unplanted, 1);
        assert_eq!(c.missed, 0);
    }

    #[test]
    fn missed_true_races_are_counted() {
        let mut t = GroundTruth::new();
        t.plant("A", "x", RaceLabel::TrueRace);
        t.plant("A", "y", RaceLabel::TrueRace);
        let c = t.evaluate(vec![("A", "x")]);
        assert_eq!(c.true_races, 1);
        assert_eq!(c.missed, 1);
    }

    #[test]
    fn labels_behave() {
        assert!(RaceLabel::TrueRace.is_true_race());
        assert!(RaceLabel::BenignGuard.is_true_race());
        assert!(!RaceLabel::Refutable.is_true_race());
        assert!(RaceLabel::ImplicitDep.expect_report());
        assert!(!RaceLabel::Ordered.expect_report());
    }
}
