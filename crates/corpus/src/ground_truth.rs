//! Ground-truth labels for planted concurrency idioms.
//!
//! The paper's evaluation classifies reported races by manual inspection
//! (§6.1, §6.5). Our synthetic apps plant each idiom deliberately, so the
//! classification is known by construction: each planted race is keyed by
//! the `(declaring class, field)` it manifests on.

use std::collections::HashSet;

/// The expected verdict for a planted race.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RaceLabel {
    /// A genuine, harmful event-based race; SIERRA should report it.
    TrueRace,
    /// A true race on a guard variable — reported, but benign (§6.5: 74.8%
    /// of true reports fit this pattern).
    BenignGuard,
    /// A pair protected by ad-hoc synchronization; refutation should
    /// eliminate it. Reporting it is a false positive.
    Refutable,
    /// Accesses ordered by happens-before; must not even become a racy
    /// pair. Reporting it is a false positive.
    Ordered,
    /// An implicit-dependency pattern SIERRA cannot see (§6.5 OpenManager):
    /// SIERRA is *expected* to report it, and manual inspection counts it
    /// as a false positive.
    ImplicitDep,
}

impl RaceLabel {
    /// Whether a report on this field counts as a true race under manual
    /// inspection.
    pub fn is_true_race(self) -> bool {
        matches!(self, RaceLabel::TrueRace | RaceLabel::BenignGuard)
    }

    /// Whether SIERRA is expected to emit a report for this field.
    pub fn expect_report(self) -> bool {
        matches!(
            self,
            RaceLabel::TrueRace | RaceLabel::BenignGuard | RaceLabel::ImplicitDep
        )
    }
}

/// The expected *harm* of a planted race — the manual-inspection severity
/// taxonomy of Table 2 (§6.1), which the triage classifier reproduces
/// automatically. Coarser than `triage::Harm`: ground truth only pins
/// down what the classifier is scored on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HarmLabel {
    /// Crash-capable: a null dereference or use-before-init is reachable
    /// (the classifier must say `NullDeref` or `UseBeforeInit`).
    Crash,
    /// The racy value feeds a branch or sink in another action; wrong
    /// ordering yields inconsistent behavior but no crash.
    Value,
    /// Idempotent or guard-style store; the race is real but harmless.
    Benign,
}

/// One planted race site.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlantedRace {
    /// Declaring class of the racy field.
    pub class: String,
    /// Field name.
    pub field: String,
    /// Expected verdict.
    pub label: RaceLabel,
    /// Expected harm class, where the idiom determines it by
    /// construction; `None` leaves the site unscored for triage.
    pub harm: Option<HarmLabel>,
}

/// All planted races of one app.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// The planted races.
    pub planted: Vec<PlantedRace>,
}

impl GroundTruth {
    /// Creates an empty ground truth.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a planted race (duplicate `(class, field)` keys are merged;
    /// shared substrate classes can be planted by several activities).
    pub fn plant(&mut self, class: &str, field: &str, label: RaceLabel) {
        self.plant_with_harm(class, field, label, None);
    }

    /// Records a planted race together with its expected harm class.
    pub fn plant_harm(&mut self, class: &str, field: &str, label: RaceLabel, harm: HarmLabel) {
        self.plant_with_harm(class, field, label, Some(harm));
    }

    fn plant_with_harm(
        &mut self,
        class: &str,
        field: &str,
        label: RaceLabel,
        harm: Option<HarmLabel>,
    ) {
        if self
            .planted
            .iter()
            .any(|p| p.class == class && p.field == field)
        {
            return;
        }
        self.planted.push(PlantedRace {
            class: class.to_owned(),
            field: field.to_owned(),
            label,
            harm,
        });
    }

    /// Merges another app fragment's truth into this one.
    pub fn extend(&mut self, other: GroundTruth) {
        self.planted.extend(other.planted);
    }

    /// The label planted on `(class, field)`, if any.
    pub fn classify(&self, class: &str, field: &str) -> Option<RaceLabel> {
        self.planted
            .iter()
            .find(|p| p.class == class && p.field == field)
            .map(|p| p.label)
    }

    /// The expected harm of `(class, field)`, if scored. Explicit
    /// [`plant_harm`](Self::plant_harm) labels win; absent one, a
    /// `BenignGuard` race derives `Benign` (a guard store is harmless by
    /// definition), and every other site stays unscored.
    pub fn expected_harm(&self, class: &str, field: &str) -> Option<HarmLabel> {
        let p = self
            .planted
            .iter()
            .find(|p| p.class == class && p.field == field)?;
        p.harm.or(match p.label {
            RaceLabel::BenignGuard => Some(HarmLabel::Benign),
            _ => None,
        })
    }

    /// Number of planted sites SIERRA is expected to report.
    pub fn expected_reports(&self) -> usize {
        self.planted
            .iter()
            .filter(|p| p.label.expect_report())
            .count()
    }

    /// Scores a set of reported `(class, field)` race groups against the
    /// truth (the "After Manual Inspection" columns of Table 3).
    pub fn evaluate<'a>(
        &self,
        reports: impl IntoIterator<Item = (&'a str, &'a str)>,
    ) -> EvalCounts {
        let distinct: HashSet<(String, String)> = reports
            .into_iter()
            .map(|(c, f)| (c.to_owned(), f.to_owned()))
            .collect();
        let mut counts = EvalCounts {
            reported: distinct.len(),
            ..Default::default()
        };
        for (c, f) in &distinct {
            match self.classify(c, f) {
                Some(l) if l.is_true_race() => counts.true_races += 1,
                Some(RaceLabel::ImplicitDep) => counts.false_positives += 1,
                Some(_) => counts.false_positives += 1,
                None => counts.unplanted += 1,
            }
        }
        // Missed true races (false negatives).
        for p in &self.planted {
            if p.label.is_true_race() && !distinct.contains(&(p.class.clone(), p.field.clone())) {
                counts.missed += 1;
            }
        }
        counts
    }

    /// Scores triage verdicts against the harm ground truth. Each input is
    /// a reported `(class, field, is_crash_verdict)` triple, where
    /// `is_crash_verdict` says the classifier flagged the race as
    /// crash-capable (`NullDeref`/`UseBeforeInit`). Only sites with an
    /// expected harm participate; unscored sites are skipped, so synthetic
    /// noise cannot dilute precision.
    pub fn evaluate_harm<'a>(
        &self,
        verdicts: impl IntoIterator<Item = (&'a str, &'a str, bool)>,
    ) -> HarmEval {
        let mut eval = HarmEval::default();
        let mut seen: HashSet<(String, String)> = HashSet::new();
        for (c, f, is_crash) in verdicts {
            let Some(expected) = self.expected_harm(c, f) else {
                continue;
            };
            if !seen.insert((c.to_owned(), f.to_owned())) {
                continue;
            }
            eval.scored += 1;
            match (expected, is_crash) {
                (HarmLabel::Crash, true) => eval.crash_tp += 1,
                (HarmLabel::Crash, false) => eval.crash_fn += 1,
                (_, true) => eval.crash_fp += 1,
                (_, false) => {}
            }
        }
        eval
    }
}

/// Evaluation counters over one app's reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalCounts {
    /// Distinct reported `(class, field)` groups.
    pub reported: usize,
    /// Groups matching a planted true race (incl. benign guards).
    pub true_races: usize,
    /// Groups matching a planted false-positive pattern.
    pub false_positives: usize,
    /// Groups on fields not planted (noise from shared substrates).
    pub unplanted: usize,
    /// Planted true races that went unreported (false negatives).
    pub missed: usize,
}

/// Triage-classifier score over harm-labelled sites: precision/recall of
/// the crash-capable verdicts (the acceptance bar the bench gate holds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HarmEval {
    /// Crash-labelled sites the classifier flagged crash-capable.
    pub crash_tp: usize,
    /// Non-crash sites wrongly flagged crash-capable.
    pub crash_fp: usize,
    /// Crash-labelled sites the classifier missed.
    pub crash_fn: usize,
    /// Harm-scored sites that were reported at all.
    pub scored: usize,
}

impl HarmEval {
    /// Precision of crash-capable verdicts (1.0 when none were emitted).
    pub fn precision(&self) -> f64 {
        let flagged = self.crash_tp + self.crash_fp;
        if flagged == 0 {
            1.0
        } else {
            self.crash_tp as f64 / flagged as f64
        }
    }

    /// Recall of crash-capable verdicts (1.0 when none were expected).
    pub fn recall(&self) -> f64 {
        let expected = self.crash_tp + self.crash_fn;
        if expected == 0 {
            1.0
        } else {
            self.crash_tp as f64 / expected as f64
        }
    }

    /// Merges another app's score into this one.
    pub fn merge(&mut self, other: HarmEval) {
        self.crash_tp += other.crash_tp;
        self.crash_fp += other.crash_fp;
        self.crash_fn += other.crash_fn;
        self.scored += other.scored;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_splits_true_and_false_positives() {
        let mut t = GroundTruth::new();
        t.plant("A", "x", RaceLabel::TrueRace);
        t.plant("A", "g", RaceLabel::BenignGuard);
        t.plant("A", "p", RaceLabel::Refutable);
        t.plant("A", "d", RaceLabel::ImplicitDep);
        t.plant("A", "o", RaceLabel::Ordered);
        assert_eq!(t.expected_reports(), 3);

        let reports = vec![("A", "x"), ("A", "g"), ("A", "d"), ("A", "z")];
        let c = t.evaluate(reports);
        assert_eq!(c.reported, 4);
        assert_eq!(c.true_races, 2);
        assert_eq!(c.false_positives, 1, "implicit dependency counts as FP");
        assert_eq!(c.unplanted, 1);
        assert_eq!(c.missed, 0);
    }

    #[test]
    fn missed_true_races_are_counted() {
        let mut t = GroundTruth::new();
        t.plant("A", "x", RaceLabel::TrueRace);
        t.plant("A", "y", RaceLabel::TrueRace);
        let c = t.evaluate(vec![("A", "x")]);
        assert_eq!(c.true_races, 1);
        assert_eq!(c.missed, 1);
    }

    #[test]
    fn harm_labels_derive_and_score() {
        let mut t = GroundTruth::new();
        t.plant_harm("A", "conn", RaceLabel::TrueRace, HarmLabel::Crash);
        t.plant_harm("A", "count", RaceLabel::TrueRace, HarmLabel::Value);
        t.plant("A", "flag", RaceLabel::BenignGuard);
        t.plant("A", "x", RaceLabel::TrueRace);
        assert_eq!(t.expected_harm("A", "conn"), Some(HarmLabel::Crash));
        assert_eq!(
            t.expected_harm("A", "flag"),
            Some(HarmLabel::Benign),
            "benign guards derive Benign"
        );
        assert_eq!(t.expected_harm("A", "x"), None, "unscored without a label");

        let eval = t.evaluate_harm(vec![
            ("A", "conn", true),
            ("A", "conn", true), // duplicate report is scored once
            ("A", "count", false),
            ("A", "flag", true), // false crash alarm
            ("A", "x", true),    // unscored: skipped entirely
        ]);
        assert_eq!(eval.scored, 3);
        assert_eq!(eval.crash_tp, 1);
        assert_eq!(eval.crash_fp, 1);
        assert_eq!(eval.crash_fn, 0);
        assert!((eval.precision() - 0.5).abs() < 1e-9);
        assert!((eval.recall() - 1.0).abs() < 1e-9);

        let mut total = HarmEval::default();
        total.merge(eval);
        total.merge(HarmEval {
            crash_tp: 1,
            crash_fp: 0,
            crash_fn: 1,
            scored: 2,
        });
        assert_eq!(total.crash_tp, 2);
        assert!((total.recall() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(HarmEval::default().precision(), 1.0);
    }

    #[test]
    fn labels_behave() {
        assert!(RaceLabel::TrueRace.is_true_race());
        assert!(RaceLabel::BenignGuard.is_true_race());
        assert!(!RaceLabel::Refutable.is_true_race());
        assert!(RaceLabel::ImplicitDep.expect_report());
        assert!(!RaceLabel::Ordered.expect_report());
    }
}
