//! Unit tests for the three pruning analyses on hand-built methods.

use crate::constprop;
use apir::{
    BinOp, BlockId, CmpOp, ConstValue, Local, Operand, Origin, ProgramBuilder, StmtAddr, Type,
};

#[test]
fn constant_false_branch_is_infeasible_and_then_block_dead() {
    let mut pb = ProgramBuilder::new();
    let c = pb.class("A", Origin::App).build();
    let f = {
        let mut cb = pb.class("B", Origin::App);
        cb.field("x", Type::Int)
    };
    let _ = pb.class("B2", Origin::App);
    let mut mb = pb.method(c, "m");
    mb.set_param_count(1);
    let this = mb.param(0);
    let cond = mb.fresh_local();
    mb.const_(cond, ConstValue::Bool(false));
    let t = mb.new_block();
    let e = mb.new_block();
    mb.if_(cond, t, e);
    mb.switch_to(t);
    let one = mb.fresh_local();
    mb.const_(one, ConstValue::Int(1));
    mb.store(this, f, Operand::Local(one));
    mb.ret(None);
    mb.switch_to(e);
    mb.ret(None);
    let m = mb.finish();
    let p = pb.finish();

    let facts = constprop::analyze_method(p.method(m));
    assert_eq!(facts.infeasible, vec![(BlockId(0), t)]);
    assert_eq!(facts.dead_blocks, vec![t]);
    assert!(facts.is_dead(t));
    assert!(!facts.is_dead(e));
}

#[test]
fn unknown_branch_prunes_nothing() {
    let mut pb = ProgramBuilder::new();
    let c = pb.class("A", Origin::App).build();
    let mut mb = pb.method(c, "m");
    mb.set_param_count(2);
    let arg = mb.param(1);
    let t = mb.new_block();
    let e = mb.new_block();
    mb.if_(arg, t, e);
    mb.switch_to(t);
    mb.ret(None);
    mb.switch_to(e);
    mb.ret(None);
    let m = mb.finish();
    let p = pb.finish();

    let facts = constprop::analyze_method(p.method(m));
    assert!(facts.infeasible.is_empty());
    assert!(facts.dead_blocks.is_empty());
}

#[test]
fn constants_survive_joins_only_when_they_agree() {
    // b0: if (unknown) { x = 1 } else { x = 1 }; join: if (x == 1) {dead?}
    // Both arms assign the same constant, so the join keeps x = 1 and the
    // second branch folds.
    let mut pb = ProgramBuilder::new();
    let c = pb.class("A", Origin::App).build();
    let mut mb = pb.method(c, "m");
    mb.set_param_count(2);
    let arg = mb.param(1);
    let x = mb.fresh_local();
    let t = mb.new_block();
    let e = mb.new_block();
    let join = mb.new_block();
    mb.if_(arg, t, e);
    mb.switch_to(t);
    mb.const_(x, ConstValue::Int(1));
    mb.goto(join);
    mb.switch_to(e);
    mb.const_(x, ConstValue::Int(1));
    mb.goto(join);
    mb.switch_to(join);
    let cmp = mb.fresh_local();
    mb.bin_op(
        cmp,
        BinOp::Cmp(CmpOp::Eq),
        Operand::Local(x),
        Operand::Const(ConstValue::Int(1)),
    );
    let t2 = mb.new_block();
    let e2 = mb.new_block();
    mb.if_(cmp, t2, e2);
    mb.switch_to(t2);
    mb.ret(None);
    mb.switch_to(e2);
    mb.ret(None);
    let m = mb.finish();
    let p = pb.finish();

    let facts = constprop::analyze_method(p.method(m));
    assert_eq!(facts.infeasible, vec![(join, e2)]);
    assert_eq!(facts.dead_blocks, vec![e2]);
}

#[test]
fn disagreeing_joins_reach_bottom() {
    // Arms assign different constants; the join must not fold the test.
    let mut pb = ProgramBuilder::new();
    let c = pb.class("A", Origin::App).build();
    let mut mb = pb.method(c, "m");
    mb.set_param_count(2);
    let arg = mb.param(1);
    let x = mb.fresh_local();
    let t = mb.new_block();
    let e = mb.new_block();
    let join = mb.new_block();
    mb.if_(arg, t, e);
    mb.switch_to(t);
    mb.const_(x, ConstValue::Int(1));
    mb.goto(join);
    mb.switch_to(e);
    mb.const_(x, ConstValue::Int(2));
    mb.goto(join);
    mb.switch_to(join);
    let cmp = mb.fresh_local();
    mb.bin_op(
        cmp,
        BinOp::Cmp(CmpOp::Eq),
        Operand::Local(x),
        Operand::Const(ConstValue::Int(1)),
    );
    let t2 = mb.new_block();
    let e2 = mb.new_block();
    mb.if_(cmp, t2, e2);
    mb.switch_to(t2);
    mb.ret(None);
    mb.switch_to(e2);
    mb.ret(None);
    let m = mb.finish();
    let p = pb.finish();

    let facts = constprop::analyze_method(p.method(m));
    assert!(facts.infeasible.is_empty());
    assert!(facts.dead_blocks.is_empty());
}

#[test]
fn negated_bool_and_arithmetic_fold() {
    // y = !(false); z = 2 * 3; if (y && z == 6) then else — else is dead.
    let mut pb = ProgramBuilder::new();
    let c = pb.class("A", Origin::App).build();
    let mut mb = pb.method(c, "m");
    mb.set_param_count(1);
    let y = mb.fresh_local();
    mb.un_op(y, apir::UnOp::Not, Operand::Const(ConstValue::Bool(false)));
    let z = mb.fresh_local();
    mb.bin_op(
        z,
        BinOp::Mul,
        Operand::Const(ConstValue::Int(2)),
        Operand::Const(ConstValue::Int(3)),
    );
    let zeq = mb.fresh_local();
    mb.bin_op(
        zeq,
        BinOp::Cmp(CmpOp::Eq),
        Operand::Local(z),
        Operand::Const(ConstValue::Int(6)),
    );
    let both = mb.fresh_local();
    mb.bin_op(both, BinOp::And, Operand::Local(y), Operand::Local(zeq));
    let t = mb.new_block();
    let e = mb.new_block();
    mb.if_(both, t, e);
    mb.switch_to(t);
    mb.ret(None);
    mb.switch_to(e);
    mb.ret(None);
    let m = mb.finish();
    let p = pb.finish();

    let facts = constprop::analyze_method(p.method(m));
    assert_eq!(facts.infeasible, vec![(BlockId(0), e)]);
    assert_eq!(facts.dead_blocks, vec![e]);
}

#[test]
fn verdict_descriptions_are_stable() {
    use crate::Verdict;
    let mut pb = ProgramBuilder::new();
    let g = {
        let mut cb = pb.class("com.x.A", Origin::App);
        cb.field("ready", Type::Bool)
    };
    let c = pb.class("com.x.B", Origin::App).build();
    let mut mb = pb.method(c, "m");
    mb.set_param_count(1);
    mb.ret(None);
    let m = mb.finish();
    let p = pb.finish();

    let v = Verdict::NonEscaping {
        obj: pointer::ObjId(7),
    };
    assert_eq!(v.describe(&p), "non-escaping object obj7");
    assert_eq!(v.tag(), "escape");
    let v = Verdict::Guarded {
        guard: g,
        writer: android_model::ActionId(3),
    };
    assert!(
        v.describe(&p).contains("com.x.A.ready"),
        "{}",
        v.describe(&p)
    );
    assert_eq!(v.tag(), "guarded");
    let v = Verdict::ConstProp {
        dead: StmtAddr::new(m, BlockId(0), 0),
    };
    assert!(v.describe(&p).contains("bb0"), "{}", v.describe(&p));
    assert_eq!(v.tag(), "constprop");
    let _ = Local(0);
}
