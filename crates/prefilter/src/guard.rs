//! Dominator-based detection of write-once guard fields.
//!
//! The target idiom is the ubiquitous "initialized" flag:
//!
//! ```text
//! // action W:            // action R:
//! this.data = compute();  if (this.ready) {   // or `x != null`
//! this.ready = true;          use(this.data);
//!                         }
//! ```
//!
//! When `ready` is *write-once* — exactly one store statement in the
//! whole reachable program, contained in a single action `W` — its value
//! is the type default (`false` / `null`) in every state before `W`'s
//! store runs, on **every** receiver, which makes the reasoning
//! alias-free. Three sound consequences, each keyed on a branch edge
//! that (a) is the unique in-edge of its target block and (b) dominates
//! the guarded access `x`:
//!
//! - **dead-guard**: the edge requires a non-default value but
//!   `x.action ≺ W` in the happens-before closure — the store can never
//!   have run during `x.action`, so `x` is dead;
//! - **established-guard**: the edge requires the default but `W ≺
//!   x.action`, the unique store provably writes a non-default value,
//!   and the field is static (single cell) — the default can never be
//!   observed, so `x` is dead;
//! - **one-sided pair**: the edge requires a non-default value and the
//!   writer `W` *is* the other access's action — the pair direction
//!   "`x.action` runs entirely first" is infeasible (the store has not
//!   run, the guard still holds its default, `x` is unreachable), which
//!   is exactly the refuter's criterion for refuting the pair.

use crate::Verdict;
use android_model::ActionId;
use apir::{
    local_defs, BlockId, CmpOp, ConstValue, Dominators, FieldId, Local, Method, MethodId, Operand,
    Program, Stmt, StmtAddr, Type, UnOp,
};
use pointer::{Access, Analysis};
use shbg::Shbg;
use std::collections::{HashMap, HashSet};

/// The unique store of a write-once field.
#[derive(Debug, Clone, Copy)]
struct WriteOnce {
    /// The single action whose code contains the store.
    writer: ActionId,
    /// Whether the field is static (one cell — enables the
    /// established-guard rule without alias reasoning).
    is_static: bool,
    /// Whether the stored value is provably non-default
    /// (`true` / a fresh allocation).
    sets_nondefault: bool,
}

/// A branch edge `from → to` conditioned on a guard field, where `to`
/// has `from` as its unique predecessor (so dominance by `to` implies
/// the edge was taken).
#[derive(Debug, Clone, Copy)]
struct GuardEdge {
    /// The guard field the condition tests.
    field: FieldId,
    /// The edge's target block.
    to: BlockId,
    /// Whether taking this edge requires the field to hold a
    /// non-default value (`true`/non-null) rather than the default.
    requires_nondefault: bool,
}

/// Lazily-computed guard facts over one analyzed app.
pub struct GuardAnalysis<'a> {
    program: &'a Program,
    graph: &'a Shbg,
    write_once: HashMap<FieldId, WriteOnce>,
    doms: HashMap<MethodId, Dominators>,
    edges: HashMap<MethodId, Vec<GuardEdge>>,
}

impl<'a> GuardAnalysis<'a> {
    /// Scans the reachable program for write-once fields.
    pub fn new(program: &'a Program, analysis: &'a Analysis, graph: &'a Shbg) -> Self {
        Self {
            program,
            graph,
            write_once: find_write_once_fields(program, analysis),
            doms: HashMap::new(),
            edges: HashMap::new(),
        }
    }

    /// Applies the guard rules to a candidate pair, in deterministic
    /// order (dead-access rules on `a` then `b`, then the one-sided pair
    /// rule on `a` then `b`).
    pub fn pair_verdict(&mut self, a: &Access, b: &Access) -> Option<Verdict> {
        self.dead_verdict(a)
            .or_else(|| self.dead_verdict(b))
            .or_else(|| self.one_sided_verdict(a, b.action))
            .or_else(|| self.one_sided_verdict(b, a.action))
    }

    /// Dead-guard and established-guard rules: is `x` unreachable under
    /// every schedule because a dominating guard edge can never be taken
    /// during `x.action`?
    fn dead_verdict(&mut self, x: &Access) -> Option<Verdict> {
        for g in self.dominating_guards(x.method, x.addr.block) {
            let Some(&wo) = self.write_once.get(&g.field) else {
                continue;
            };
            if wo.writer == x.action {
                continue;
            }
            let dead = if g.requires_nondefault {
                // The store has not run during any of x.action.
                self.graph.ordered(x.action, wo.writer)
            } else {
                // The store ran before x.action and wrote non-default.
                wo.is_static && wo.sets_nondefault && self.graph.ordered(wo.writer, x.action)
            };
            if dead {
                return Some(Verdict::Guarded {
                    guard: g.field,
                    writer: wo.writer,
                });
            }
        }
        None
    }

    /// One-sided pair rule: `x` is guarded on a non-default value whose
    /// unique writer is the partner's action, so the pair direction with
    /// `x.action` first has no feasible witness.
    fn one_sided_verdict(&mut self, x: &Access, other: ActionId) -> Option<Verdict> {
        for g in self.dominating_guards(x.method, x.addr.block) {
            if !g.requires_nondefault {
                continue;
            }
            let Some(&wo) = self.write_once.get(&g.field) else {
                continue;
            };
            if wo.writer == other && wo.writer != x.action {
                return Some(Verdict::Guarded {
                    guard: g.field,
                    writer: wo.writer,
                });
            }
        }
        None
    }

    /// Guard edges of `method` whose target dominates `block`.
    fn dominating_guards(&mut self, method: MethodId, block: BlockId) -> Vec<GuardEdge> {
        let m = self.program.method(method);
        let doms = self
            .doms
            .entry(method)
            .or_insert_with(|| Dominators::compute(m));
        let program = self.program;
        self.edges
            .entry(method)
            .or_insert_with(|| guard_edges(program, m))
            .iter()
            .filter(|g| doms.dominates(g.to, block))
            .copied()
            .collect()
    }
}

/// Fields with exactly one store statement in the reachable program,
/// that store sitting in code reachable from exactly one action.
fn find_write_once_fields(program: &Program, analysis: &Analysis) -> HashMap<FieldId, WriteOnce> {
    let mut methods: Vec<MethodId> = analysis
        .reachable
        .iter()
        .map(|&(m, _)| m)
        .collect::<HashSet<_>>()
        .into_iter()
        .collect();
    methods.sort_unstable();

    // field → (store count, the last store's location and value).
    let mut stores: HashMap<FieldId, (usize, MethodId, StmtAddr, Operand, bool)> = HashMap::new();
    for &mid in &methods {
        let method = program.method(mid);
        if !method.has_body() {
            continue;
        }
        for (addr, stmt) in method.iter_stmts() {
            let (field, value, is_static) = match stmt {
                Stmt::Store { field, value, .. } => (*field, *value, false),
                Stmt::StaticStore { field, value } => (*field, *value, true),
                _ => continue,
            };
            stores
                .entry(field)
                .and_modify(|e| e.0 += 1)
                .or_insert((1, mid, addr, value, is_static));
        }
    }

    let mut out = HashMap::new();
    for (field, (count, mid, addr, value, is_static)) in stores {
        if count != 1 {
            continue;
        }
        // The store's method must be reachable from exactly one action.
        let mut writers: HashSet<ActionId> = HashSet::new();
        for &ctx in analysis.contexts_of(mid) {
            writers.insert(analysis.action_of(ctx));
        }
        let mut it = writers.into_iter();
        let (Some(writer), None) = (it.next(), it.next()) else {
            continue;
        };
        let method = program.method(mid);
        out.insert(
            field,
            WriteOnce {
                writer,
                is_static,
                sets_nondefault: stores_nondefault(method, addr, value),
            },
        );
    }
    out
}

/// Whether the stored value is provably non-default for a guard field:
/// the literal `true`, or a freshly allocated object.
fn stores_nondefault(method: &Method, addr: StmtAddr, value: Operand) -> bool {
    match local_defs::resolve_const_operand(method, addr, value) {
        Some(ConstValue::Bool(b)) => b,
        Some(ConstValue::Int(i)) => i != 0,
        Some(ConstValue::Str(_)) => true,
        Some(ConstValue::Null) => false,
        None => match value {
            Operand::Local(l) => matches!(
                local_defs::find_value_origin(method, addr, l),
                Some((_, Stmt::New { .. }))
            ),
            Operand::Const(_) => false,
        },
    }
}

/// Extracts the guard edges of one method: for each `If` whose condition
/// traces to a boolean-field load or a null-check of a reference-field
/// load, the then/else edges whose target has the branch as its unique
/// predecessor.
fn guard_edges(program: &Program, method: &Method) -> Vec<GuardEdge> {
    let mut out = Vec::new();
    for edge in method.branch_edges() {
        if method.preds(edge.to) != [edge.from] {
            continue;
        }
        let branch_addr = StmtAddr::new(
            method.id,
            edge.from,
            method.block(edge.from).stmts.len() as u32,
        );
        let Some((field, then_requires_nondefault)) =
            classify_cond(program, method, branch_addr, edge.cond)
        else {
            continue;
        };
        out.push(GuardEdge {
            field,
            to: edge.to,
            requires_nondefault: if edge.taken {
                then_requires_nondefault
            } else {
                !then_requires_nondefault
            },
        });
    }
    out
}

/// Traces a branch condition to a guard-field test. Returns the field
/// and whether the *then* edge requires a non-default value.
fn classify_cond(
    program: &Program,
    method: &Method,
    addr: StmtAddr,
    cond: Operand,
) -> Option<(FieldId, bool)> {
    let l = cond.as_local()?;
    trace_cond(program, method, addr, l, false, 8)
}

fn trace_cond(
    program: &Program,
    method: &Method,
    addr: StmtAddr,
    local: Local,
    negated: bool,
    fuel: u8,
) -> Option<(FieldId, bool)> {
    let fuel = fuel.checked_sub(1)?;
    let (def_addr, def) = local_defs::find_def(method, addr, local)?;
    match def {
        Stmt::Load { field, .. } | Stmt::StaticLoad { field, .. } => {
            // `if (flag)`: true ⇔ non-default, for boolean fields only.
            (program.field(*field).ty == Type::Bool).then_some((*field, !negated))
        }
        Stmt::Move { src, .. } => trace_cond(program, method, def_addr, *src, negated, fuel),
        Stmt::UnOp {
            op: UnOp::Not,
            src: Operand::Local(s),
            ..
        } => trace_cond(program, method, def_addr, *s, !negated, fuel),
        Stmt::BinOp { op, lhs, rhs, .. } => {
            let cmp = match op {
                apir::BinOp::Cmp(c @ (CmpOp::Eq | CmpOp::Ne)) => *c,
                _ => return None,
            };
            let field = null_compared_field(program, method, def_addr, *lhs, *rhs)
                .or_else(|| null_compared_field(program, method, def_addr, *rhs, *lhs))?;
            // `x == null`: true ⇔ default; `x != null`: true ⇔ non-default.
            let raw = cmp == CmpOp::Ne;
            Some((field, raw != negated))
        }
        _ => None,
    }
}

/// If `konst` is the literal `null` and `loaded` traces to a
/// reference-field load, returns that field.
fn null_compared_field(
    program: &Program,
    method: &Method,
    addr: StmtAddr,
    loaded: Operand,
    konst: Operand,
) -> Option<FieldId> {
    if local_defs::resolve_const_operand(method, addr, konst) != Some(ConstValue::Null) {
        return None;
    }
    let l = loaded.as_local()?;
    match local_defs::find_value_origin(method, addr, l)? {
        (_, Stmt::Load { field, .. }) | (_, Stmt::StaticLoad { field, .. }) => {
            matches!(program.field(*field).ty, Type::Ref(_)).then_some(*field)
        }
        _ => None,
    }
}
