//! Action-local escape analysis over the pointer-analysis results.
//!
//! A reference can travel from one action's code to another's in only
//! four ways in this model:
//!
//! 1. through the heap — the object appears in an instance-field or
//!    static-field points-to set ([`Analysis::heap_published`]);
//! 2. as the receiver of a posted/registered action (the object whose
//!    callback the action runs — `Action::recv_site`, plus whatever the
//!    action entry's `this` points to);
//! 3. through a call edge that crosses actions (the harness invoking a
//!    callback, a framework op entering a posted body);
//! 4. into an *opaque* callee — a call site with no analyzed target —
//!    whose effect on its arguments is unmodeled.
//!
//! An allocation-site object touched by none of these channels is
//! confined to the locals of its allocating action's transitive call
//! region: two distinct actions can never alias a concrete instance of
//! it, so a candidate pair whose shared bases are all confined cannot be
//! a race. Abstract objects are classified per *context* of allocation,
//! which is why the analysis leans on the action-tagged contexts the
//! solver always maintains (§3.3): under weaker selectors the same
//! syntactic site may serve many actions, and confinement is exactly the
//! property that restores action-sensitivity-like precision for it.

use apir::{AllocSiteId, Operand, Program, Stmt};
use pointer::{Analysis, ObjData, ObjId};
use std::collections::HashSet;

/// Objects confined to a single action (allocation-site objects only;
/// view and framework objects are shared by design and never qualify).
pub fn non_escaping_objects(program: &Program, analysis: &Analysis) -> HashSet<ObjId> {
    // Channel 1: heap publication.
    let mut escaped = analysis.heap_published();

    // Channel 2: action receivers.
    let recv_sites: HashSet<AllocSiteId> = analysis
        .actions
        .actions()
        .iter()
        .filter_map(|a| a.recv_site)
        .collect();
    for action in analysis.actions.actions() {
        let entry = program.method(action.entry);
        if let Some(this) = entry.this() {
            for &ctx in analysis.contexts_of(action.entry) {
                escaped.extend(analysis.pts_var(action.entry, ctx, this).iter());
            }
        }
    }

    // Channels 3 and 4: pointer arguments at opaque or cross-action call
    // sites. Framework ops (post, execute, sendMessage, ...) resolve to
    // no analyzed callee and land in the opaque case; harness→callback
    // and poster→body edges land in the cross-action case.
    for &(m, ctx) in &analysis.reachable {
        let method = program.method(m);
        if !method.has_body() {
            continue;
        }
        let action = analysis.action_of(ctx);
        for (_, stmt) in method.iter_stmts() {
            let Stmt::Call {
                site,
                receiver,
                args,
                ..
            } = stmt
            else {
                continue;
            };
            let leaks = if analysis.is_opaque_call(m, ctx, *site) {
                true
            } else {
                // A policy-resolved site may carry no call edge at all
                // (`Class.forName` minting a token, `Intent.setClass`
                // binding a target): nothing crosses actions there, so
                // it is no longer an opaque-leak channel.
                analysis
                    .cg_edges
                    .get(&(m, ctx, *site))
                    .is_some_and(|callees| {
                        callees
                            .iter()
                            .any(|&(_, callee_ctx)| analysis.action_of(callee_ctx) != action)
                    })
            };
            if !leaks {
                continue;
            }
            if let Some(r) = receiver {
                escaped.extend(analysis.pts_var(m, ctx, *r).iter());
            }
            for a in args {
                if let Operand::Local(l) = a {
                    escaped.extend(analysis.pts_var(m, ctx, *l).iter());
                }
            }
        }
    }

    let mut out = HashSet::new();
    for i in 0..analysis.objs.len() {
        let o = ObjId(i as u32);
        if let ObjData::Site { site, .. } = analysis.objs.get(o) {
            if !escaped.contains(&o) && !recv_sites.contains(site) {
                out.insert(o);
            }
        }
    }
    out
}
