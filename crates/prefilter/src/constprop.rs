//! Sparse conditional constant propagation over `apir` locals.
//!
//! A small SCCP-style analysis per method: block entry states map locals
//! to known constants (absent = unknown), edges become *executable* only
//! when their source block runs and the branch condition permits them.
//! At the fixpoint, an `If` edge of an executable block that was never
//! taken is statically infeasible, and a block with no executable
//! in-edge is dead.
//!
//! Both facts are consumed twice: the prefilter drops candidate accesses
//! in dead blocks ([`crate::Verdict::ConstProp`]), and the infeasible
//! edges are exported to the symbolic refuter so backward path search
//! never crosses them.

use apir::{
    BinOp, BlockId, CmpOp, ConstValue, Local, Method, MethodId, Operand, Program, Stmt, Terminator,
    UnOp,
};
use pointer::Analysis;
use std::collections::{HashMap, HashSet, VecDeque};

/// Per-method constant-propagation facts.
#[derive(Debug, Clone, Default)]
pub struct ConstFacts {
    /// `If` edges that can never be taken, in `(from, to)` block order.
    pub infeasible: Vec<(BlockId, BlockId)>,
    /// Blocks that never execute (no feasible in-edge), sorted.
    pub dead_blocks: Vec<BlockId>,
}

impl ConstFacts {
    /// Whether `block` was proven dead.
    pub fn is_dead(&self, block: BlockId) -> bool {
        self.dead_blocks.binary_search(&block).is_ok()
    }
}

/// Known-constant environment at a program point (absent local = unknown).
type State = HashMap<Local, ConstValue>;

/// Runs the analysis over every reachable method body of `analysis`, in
/// deterministic (method-id) order.
pub fn analyze_reachable(program: &Program, analysis: &Analysis) -> HashMap<MethodId, ConstFacts> {
    let mut methods: Vec<MethodId> = analysis
        .reachable
        .iter()
        .map(|&(m, _)| m)
        .collect::<HashSet<_>>()
        .into_iter()
        .collect();
    methods.sort_unstable();
    let mut out = HashMap::new();
    for m in methods {
        let method = program.method(m);
        if !method.has_body() {
            continue;
        }
        let facts = analyze_method(method);
        if !facts.infeasible.is_empty() || !facts.dead_blocks.is_empty() {
            out.insert(m, facts);
        }
    }
    out
}

/// Analyzes one method body.
pub fn analyze_method(method: &Method) -> ConstFacts {
    let n = method.blocks.len();
    let mut in_states: Vec<Option<State>> = vec![None; n];
    let mut exec_edges: HashSet<(BlockId, BlockId)> = HashSet::new();
    let mut worklist: VecDeque<BlockId> = VecDeque::new();

    in_states[method.entry().index()] = Some(State::new());
    worklist.push_back(method.entry());

    while let Some(b) = worklist.pop_front() {
        let mut state = match &in_states[b.index()] {
            Some(s) => s.clone(),
            None => continue,
        };
        let block = method.block(b);
        for stmt in &block.stmts {
            transfer(stmt, &mut state);
        }
        let succs: Vec<BlockId> = match block.terminator {
            Terminator::If {
                cond,
                then_bb,
                else_bb,
            } if then_bb != else_bb => match eval(cond, &state) {
                Some(ConstValue::Bool(true)) => vec![then_bb],
                Some(ConstValue::Bool(false)) => vec![else_bb],
                _ => vec![then_bb, else_bb],
            },
            ref t => t.successors(),
        };
        for succ in succs {
            let newly_exec = exec_edges.insert((b, succ));
            let changed = merge_into(&mut in_states[succ.index()], &state);
            if newly_exec || changed {
                worklist.push_back(succ);
            }
        }
    }

    let mut facts = ConstFacts::default();
    for (b, block) in method.iter_blocks() {
        if in_states[b.index()].is_none() {
            facts.dead_blocks.push(b);
            continue;
        }
        if let Terminator::If {
            then_bb, else_bb, ..
        } = block.terminator
        {
            if then_bb != else_bb {
                for succ in [then_bb, else_bb] {
                    if !exec_edges.contains(&(b, succ)) {
                        facts.infeasible.push((b, succ));
                    }
                }
            }
        }
    }
    facts
}

/// Joins `from` into the entry state at `into`; keys must agree on the
/// same constant to survive. Returns whether `into` changed.
fn merge_into(into: &mut Option<State>, from: &State) -> bool {
    match into {
        None => {
            *into = Some(from.clone());
            true
        }
        Some(cur) => {
            let before = cur.len();
            cur.retain(|l, v| from.get(l) == Some(v));
            cur.len() != before
        }
    }
}

fn eval(op: Operand, state: &State) -> Option<ConstValue> {
    match op {
        Operand::Const(c) => Some(c),
        Operand::Local(l) => state.get(&l).copied(),
    }
}

fn transfer(stmt: &Stmt, state: &mut State) {
    match stmt {
        Stmt::Const { dst, value } => {
            state.insert(*dst, *value);
        }
        Stmt::Move { dst, src } => match state.get(src).copied() {
            Some(v) => {
                state.insert(*dst, v);
            }
            None => {
                state.remove(dst);
            }
        },
        Stmt::UnOp { dst, op, src } => {
            let v = match (op, eval(*src, state)) {
                (UnOp::Not, Some(ConstValue::Bool(b))) => Some(ConstValue::Bool(!b)),
                (UnOp::Neg, Some(ConstValue::Int(i))) => Some(ConstValue::Int(i.wrapping_neg())),
                _ => None,
            };
            set_or_clear(state, *dst, v);
        }
        Stmt::BinOp { dst, op, lhs, rhs } => {
            let v = apply_binop(*op, eval(*lhs, state), eval(*rhs, state));
            set_or_clear(state, *dst, v);
        }
        Stmt::New { dst, .. } | Stmt::Load { dst, .. } | Stmt::StaticLoad { dst, .. } => {
            state.remove(dst);
        }
        Stmt::Call { dst, .. } => {
            if let Some(d) = dst {
                state.remove(d);
            }
        }
        Stmt::Store { .. } | Stmt::StaticStore { .. } => {}
    }
}

fn set_or_clear(state: &mut State, dst: Local, v: Option<ConstValue>) {
    match v {
        Some(v) => {
            state.insert(dst, v);
        }
        None => {
            state.remove(&dst);
        }
    }
}

fn apply_binop(op: BinOp, lhs: Option<ConstValue>, rhs: Option<ConstValue>) -> Option<ConstValue> {
    let (l, r) = (lhs?, rhs?);
    match (op, l, r) {
        (BinOp::Add, ConstValue::Int(a), ConstValue::Int(b)) => {
            Some(ConstValue::Int(a.wrapping_add(b)))
        }
        (BinOp::Sub, ConstValue::Int(a), ConstValue::Int(b)) => {
            Some(ConstValue::Int(a.wrapping_sub(b)))
        }
        (BinOp::Mul, ConstValue::Int(a), ConstValue::Int(b)) => {
            Some(ConstValue::Int(a.wrapping_mul(b)))
        }
        (BinOp::And, ConstValue::Bool(a), ConstValue::Bool(b)) => Some(ConstValue::Bool(a && b)),
        (BinOp::Or, ConstValue::Bool(a), ConstValue::Bool(b)) => Some(ConstValue::Bool(a || b)),
        (BinOp::Cmp(CmpOp::Eq), a, b) => Some(ConstValue::Bool(a == b)),
        (BinOp::Cmp(CmpOp::Ne), a, b) => Some(ConstValue::Bool(a != b)),
        (BinOp::Cmp(CmpOp::Lt), ConstValue::Int(a), ConstValue::Int(b)) => {
            Some(ConstValue::Bool(a < b))
        }
        (BinOp::Cmp(CmpOp::Le), ConstValue::Int(a), ConstValue::Int(b)) => {
            Some(ConstValue::Bool(a <= b))
        }
        _ => None,
    }
}
