//! Sparse conditional constant propagation over `apir` locals.
//!
//! A small SCCP-style analysis per method, expressed as an instance of
//! the generic monotone framework in [`apir::dataflow`]: block entry
//! states map locals to known constants (absent = unknown, intersection
//! join), and the edge transfer refutes the untaken side of an `If`
//! whose condition folds to a constant — the framework's executable-edge
//! semantics. At the fixpoint, an `If` edge of an executable block that
//! was never taken is statically infeasible, and a block with no
//! executable in-edge is dead.
//!
//! Both facts are consumed twice: the prefilter drops candidate accesses
//! in dead blocks ([`crate::Verdict::ConstProp`]), and the infeasible
//! edges are exported to the symbolic refuter so backward path search
//! never crosses them.

use apir::dataflow::{self, DataflowAnalysis, JoinSemiLattice};
use apir::{
    BinOp, BlockId, CmpOp, ConstValue, Local, Method, MethodId, Operand, Program, Stmt, StmtAddr,
    Terminator, UnOp,
};
use pointer::Analysis;
use std::collections::{HashMap, HashSet};

/// Per-method constant-propagation facts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConstFacts {
    /// `If` edges that can never be taken, in `(from, to)` block order.
    pub infeasible: Vec<(BlockId, BlockId)>,
    /// Blocks that never execute (no feasible in-edge), sorted.
    pub dead_blocks: Vec<BlockId>,
}

impl ConstFacts {
    /// Whether `block` was proven dead.
    pub fn is_dead(&self, block: BlockId) -> bool {
        self.dead_blocks.binary_search(&block).is_ok()
    }
}

/// Known-constant environment at a program point (absent local =
/// unknown). The lattice order is pointwise: a state is *lower* the more
/// constants it pins down, and the join intersects agreeing bindings.
#[derive(Debug, Clone, Default)]
struct ConstState(HashMap<Local, ConstValue>);

impl JoinSemiLattice for ConstState {
    fn join(&mut self, other: &Self) -> bool {
        let before = self.0.len();
        self.0.retain(|l, v| other.0.get(l) == Some(v));
        self.0.len() != before
    }
}

/// The SCCP instance: forward constant folding with branch refutation.
struct Sccp;

impl DataflowAnalysis for Sccp {
    type State = ConstState;

    fn boundary_state(&self, _method: &Method) -> ConstState {
        ConstState::default()
    }

    fn transfer_stmt(&self, _addr: StmtAddr, stmt: &Stmt, state: &mut ConstState) {
        transfer(stmt, &mut state.0);
    }

    fn transfer_edge(
        &self,
        _method: &Method,
        _from: BlockId,
        term: &Terminator,
        to: BlockId,
        state: &ConstState,
    ) -> Option<ConstState> {
        if let Terminator::If {
            cond,
            then_bb,
            else_bb,
        } = *term
        {
            if then_bb != else_bb {
                if let Some(ConstValue::Bool(v)) = eval(cond, &state.0) {
                    let taken = if v { then_bb } else { else_bb };
                    if to != taken {
                        return None;
                    }
                }
            }
        }
        Some(state.clone())
    }
}

/// Runs the analysis over every reachable method body of `analysis`, in
/// deterministic (method-id) order.
pub fn analyze_reachable(program: &Program, analysis: &Analysis) -> HashMap<MethodId, ConstFacts> {
    let mut methods: Vec<MethodId> = analysis
        .reachable
        .iter()
        .map(|&(m, _)| m)
        .collect::<HashSet<_>>()
        .into_iter()
        .collect();
    methods.sort_unstable();
    let mut out = HashMap::new();
    for m in methods {
        let method = program.method(m);
        if !method.has_body() {
            continue;
        }
        let facts = analyze_method(method);
        if !facts.infeasible.is_empty() || !facts.dead_blocks.is_empty() {
            out.insert(m, facts);
        }
    }
    out
}

/// Analyzes one method body.
pub fn analyze_method(method: &Method) -> ConstFacts {
    let results = dataflow::solve(method, &Sccp);
    let mut facts = ConstFacts::default();
    for (b, block) in method.iter_blocks() {
        if !results.reached(b) {
            facts.dead_blocks.push(b);
            continue;
        }
        if let Terminator::If {
            then_bb, else_bb, ..
        } = block.terminator
        {
            if then_bb != else_bb {
                for succ in [then_bb, else_bb] {
                    if !results.edge_executable(b, succ) {
                        facts.infeasible.push((b, succ));
                    }
                }
            }
        }
    }
    facts
}

fn eval(op: Operand, state: &HashMap<Local, ConstValue>) -> Option<ConstValue> {
    match op {
        Operand::Const(c) => Some(c),
        Operand::Local(l) => state.get(&l).copied(),
    }
}

fn transfer(stmt: &Stmt, state: &mut HashMap<Local, ConstValue>) {
    match stmt {
        Stmt::Const { dst, value } => {
            state.insert(*dst, *value);
        }
        Stmt::Move { dst, src } => match state.get(src).copied() {
            Some(v) => {
                state.insert(*dst, v);
            }
            None => {
                state.remove(dst);
            }
        },
        Stmt::UnOp { dst, op, src } => {
            let v = match (op, eval(*src, state)) {
                (UnOp::Not, Some(ConstValue::Bool(b))) => Some(ConstValue::Bool(!b)),
                (UnOp::Neg, Some(ConstValue::Int(i))) => Some(ConstValue::Int(i.wrapping_neg())),
                _ => None,
            };
            set_or_clear(state, *dst, v);
        }
        Stmt::BinOp { dst, op, lhs, rhs } => {
            let v = apply_binop(*op, eval(*lhs, state), eval(*rhs, state));
            set_or_clear(state, *dst, v);
        }
        Stmt::New { dst, .. } | Stmt::Load { dst, .. } | Stmt::StaticLoad { dst, .. } => {
            state.remove(dst);
        }
        Stmt::Call { dst, .. } => {
            if let Some(d) = dst {
                state.remove(d);
            }
        }
        Stmt::Store { .. } | Stmt::StaticStore { .. } => {}
    }
}

fn set_or_clear(state: &mut HashMap<Local, ConstValue>, dst: Local, v: Option<ConstValue>) {
    match v {
        Some(v) => {
            state.insert(dst, v);
        }
        None => {
            state.remove(&dst);
        }
    }
}

fn apply_binop(op: BinOp, lhs: Option<ConstValue>, rhs: Option<ConstValue>) -> Option<ConstValue> {
    let (l, r) = (lhs?, rhs?);
    match (op, l, r) {
        (BinOp::Add, ConstValue::Int(a), ConstValue::Int(b)) => {
            Some(ConstValue::Int(a.wrapping_add(b)))
        }
        (BinOp::Sub, ConstValue::Int(a), ConstValue::Int(b)) => {
            Some(ConstValue::Int(a.wrapping_sub(b)))
        }
        (BinOp::Mul, ConstValue::Int(a), ConstValue::Int(b)) => {
            Some(ConstValue::Int(a.wrapping_mul(b)))
        }
        (BinOp::And, ConstValue::Bool(a), ConstValue::Bool(b)) => Some(ConstValue::Bool(a && b)),
        (BinOp::Or, ConstValue::Bool(a), ConstValue::Bool(b)) => Some(ConstValue::Bool(a || b)),
        (BinOp::Cmp(CmpOp::Eq), a, b) => Some(ConstValue::Bool(a == b)),
        (BinOp::Cmp(CmpOp::Ne), a, b) => Some(ConstValue::Bool(a != b)),
        (BinOp::Cmp(CmpOp::Lt), ConstValue::Int(a), ConstValue::Int(b)) => {
            Some(ConstValue::Bool(a < b))
        }
        (BinOp::Cmp(CmpOp::Le), ConstValue::Int(a), ConstValue::Int(b)) => {
            Some(ConstValue::Bool(a <= b))
        }
        _ => None,
    }
}
