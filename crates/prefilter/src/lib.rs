//! # prefilter — pre-refutation static pruning of candidate racy pairs
//!
//! SIERRA's pipeline spends most of its time in backward symbolic
//! refutation (§5), yet many candidate pairs are refutable by far cheaper
//! flow-aware static reasoning. This crate sits between candidate
//! generation and the refuter (`harness → pointer → shbg → candidates →
//! prefilter → refute`) and runs three cooperating analyses:
//!
//! 1. **Action-local escape analysis** ([`escape`]): an object whose
//!    points-to closure never leaves the locals of its allocating action's
//!    transitive call region cannot be touched by two different actions,
//!    so candidate pairs whose shared base objects are all non-escaping
//!    are pruned with [`Verdict::NonEscaping`].
//! 2. **Dominator-based guard detection** ([`guard`]): an access dominated
//!    by a branch on a *write-once* boolean / null-checked field whose
//!    only assignment is HB-ordered against the access's action is either
//!    dead or one-sided-ordered against its partner; such pairs are pruned
//!    with [`Verdict::Guarded`].
//! 3. **Intraprocedural constant/branch pruning** ([`constprop`]): a
//!    sparse conditional constant propagation marks statically-infeasible
//!    branch edges. Accesses in dead blocks are pruned with
//!    [`Verdict::ConstProp`], and the edge set is exported (as
//!    [`apir::InfeasibleEdges`]) so the symbolic refuter skips infeasible
//!    paths and converges in fewer steps.
//!
//! Every pruned pair carries a machine-checkable [`Verdict`] so that
//! reports (and the soundness regression tests) can audit exactly why a
//! pair never reached the refuter.

pub mod constprop;
pub mod escape;
pub mod guard;

use android_model::ActionId;
use apir::{FieldId, InfeasibleEdges, MethodId, Program, StmtAddr};
use pointer::{Access, Analysis, ObjId};
use shbg::Shbg;
use std::collections::HashMap;

/// Why a candidate pair was pruned before refutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Every base object shared by the two accesses is confined to its
    /// allocating action: it is never published to the heap, never the
    /// receiver of a posted action, and never handed to an unmodeled or
    /// cross-action callee.
    NonEscaping {
        /// A witness confined object (the smallest shared base).
        obj: ObjId,
    },
    /// One access is dominated by a branch on a write-once guard field
    /// whose unique store is HB-ordered such that the guarded path (or
    /// one whole pair direction) is infeasible.
    Guarded {
        /// The write-once guard field.
        guard: FieldId,
        /// The action containing the guard's unique store.
        writer: ActionId,
    },
    /// One access sits in a block proven unreachable by intraprocedural
    /// constant propagation (e.g. under an always-false branch).
    ConstProp {
        /// The dead access.
        dead: StmtAddr,
    },
    /// The pair's two callbacks are not jointly reachable in both
    /// orders under any realizable message history of the lifecycle
    /// automaton (discharged by the `histories` stage, which runs
    /// *after* the symbolic refuter).
    History {
        /// The refutation pattern that discharged the pair.
        pattern: histories::HistoryPattern,
        /// The action the pattern blames (the unpostable, quiesced, or
        /// destroy-separated side).
        action: ActionId,
    },
}

impl Verdict {
    /// Human-readable reason, resolving ids against `program`.
    pub fn describe(&self, program: &Program) -> String {
        match *self {
            Verdict::NonEscaping { obj } => {
                format!("non-escaping object obj{}", obj.0)
            }
            Verdict::Guarded { guard, writer } => {
                let f = program.field(guard);
                format!(
                    "guarded by write-once {}.{} (writer action {})",
                    program.class_name(f.class),
                    program.name(f.name),
                    writer.index()
                )
            }
            Verdict::ConstProp { dead } => {
                format!(
                    "constant-dead access at {}:bb{}:{}",
                    program.method_name(dead.method),
                    dead.block.index(),
                    dead.stmt
                )
            }
            Verdict::History { pattern, action } => {
                format!(
                    "unrealizable ordering ({}, action {})",
                    pattern.tag(),
                    action.index()
                )
            }
        }
    }

    /// Short machine tag (`escape` / `guarded` / `constprop` / `history`).
    pub fn tag(&self) -> &'static str {
        match self {
            Verdict::NonEscaping { .. } => "escape",
            Verdict::Guarded { .. } => "guarded",
            Verdict::ConstProp { .. } => "constprop",
            Verdict::History { .. } => "history",
        }
    }
}

/// A candidate pair removed by the prefilter, with its reason.
#[derive(Debug, Clone)]
pub struct PrunedPair {
    /// First access of the pruned pair.
    pub a: Access,
    /// Second access of the pruned pair.
    pub b: Access,
    /// Why the pair cannot race.
    pub verdict: Verdict,
}

/// Counters for the prefilter stage (flows into Table 4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefilterStats {
    /// Pairs pruned by the escape analysis.
    pub pruned_escape: usize,
    /// Pairs pruned by guard detection.
    pub pruned_guarded: usize,
    /// Pairs pruned by constant/branch pruning.
    pub pruned_constprop: usize,
    /// Statically-infeasible branch edges found (exported to the refuter).
    pub infeasible_edges: usize,
    /// Wall-clock time of the stage, in nanoseconds.
    pub prefilter_ns: u64,
}

impl PrefilterStats {
    /// Total pairs pruned across all three analyses.
    pub fn pruned_total(&self) -> usize {
        self.pruned_escape + self.pruned_guarded + self.pruned_constprop
    }
}

/// The outcome of running the prefilter over a candidate set.
#[derive(Debug, Clone)]
pub struct PrefilterResult {
    /// Candidate pairs that survive to refutation, in input order.
    pub kept: Vec<(Access, Access)>,
    /// Pruned pairs with their verdicts, in input order.
    pub pruned: Vec<PrunedPair>,
    /// Statically-infeasible branch edges over all reachable methods.
    pub infeasible: InfeasibleEdges,
    /// Stage counters (`prefilter_ns` is left to the caller's timer).
    pub stats: PrefilterStats,
}

/// Runs the three pruning analyses over `candidates`.
///
/// The result partitions the input: `kept ∪ pruned == candidates`, order
/// preserved within each part. Analyses are tried per pair in a fixed
/// order (escape, then guard, then constprop) so verdict counts are
/// deterministic.
pub fn run(
    program: &Program,
    analysis: &Analysis,
    graph: &Shbg,
    candidates: &[(Access, Access)],
) -> PrefilterResult {
    let const_facts = constprop::analyze_reachable(program, analysis);
    run_with_const_facts(program, analysis, graph, candidates, &const_facts)
}

/// [`run`] with per-method constant-propagation facts supplied by the
/// summary layer instead of recomputed. The map must match what
/// [`constprop::analyze_reachable`] would produce (reachable methods
/// with bodies, empty fact sets omitted) for results to be identical.
pub fn run_with_const_facts(
    program: &Program,
    analysis: &Analysis,
    graph: &Shbg,
    candidates: &[(Access, Access)],
    const_facts: &HashMap<MethodId, constprop::ConstFacts>,
) -> PrefilterResult {
    let confined = escape::non_escaping_objects(program, analysis);
    let mut guards = guard::GuardAnalysis::new(program, analysis, graph);

    let mut infeasible = InfeasibleEdges::new();
    for (&m, facts) in const_facts {
        for &(from, to) in &facts.infeasible {
            infeasible.insert(m, from, to);
        }
    }

    let mut stats = PrefilterStats {
        infeasible_edges: infeasible.len(),
        ..PrefilterStats::default()
    };
    let mut kept = Vec::new();
    let mut pruned = Vec::new();
    for (a, b) in candidates {
        let verdict = escape_verdict(&confined, a, b)
            .or_else(|| guards.pair_verdict(a, b))
            .or_else(|| constprop_verdict(const_facts, a, b));
        match verdict {
            Some(verdict) => {
                match verdict {
                    Verdict::NonEscaping { .. } => stats.pruned_escape += 1,
                    Verdict::Guarded { .. } => stats.pruned_guarded += 1,
                    Verdict::ConstProp { .. } => stats.pruned_constprop += 1,
                    // The prefilter's own analyses never emit History;
                    // the histories stage appends those pairs later.
                    Verdict::History { .. } => {}
                }
                pruned.push(PrunedPair {
                    a: a.clone(),
                    b: b.clone(),
                    verdict,
                });
            }
            None => kept.push((a.clone(), b.clone())),
        }
    }
    PrefilterResult {
        kept,
        pruned,
        infeasible,
        stats,
    }
}

/// Escape check: all shared base objects confined ⇒ the two actions can
/// never alias a concrete instance, so the pair cannot race.
fn escape_verdict(
    confined: &std::collections::HashSet<ObjId>,
    a: &Access,
    b: &Access,
) -> Option<Verdict> {
    if a.is_static || b.is_static {
        return None;
    }
    let shared: Vec<ObjId> = a
        .base
        .iter()
        .filter(|o| b.base.contains(o))
        .copied()
        .collect();
    if shared.is_empty() || !shared.iter().all(|o| confined.contains(o)) {
        return None;
    }
    let obj = shared.into_iter().min_by_key(|o| o.0)?;
    Some(Verdict::NonEscaping { obj })
}

/// Constant-propagation check: an access inside a dead block never
/// executes, so any pair containing it is vacuous.
fn constprop_verdict(
    facts: &HashMap<MethodId, constprop::ConstFacts>,
    a: &Access,
    b: &Access,
) -> Option<Verdict> {
    for x in [a, b] {
        if let Some(f) = facts.get(&x.method) {
            if f.is_dead(x.addr.block) {
                return Some(Verdict::ConstProp { dead: x.addr });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests;
