//! # symexec — backward symbolic-execution refutation (paper §5)
//!
//! Candidate racy pairs that survive the SHBG are frequently protected by
//! *ad-hoc synchronization* — guard flags checked in one action and cleared
//! in another. This crate plays the role of the paper's adapted Thresher +
//! Z3: a goal-directed, path-sensitive backward executor that tries to
//! *witness* each ordering of the two actions and refutes the candidate
//! when one ordering admits no feasible path.
//!
//! Key behaviours transcribed from §5:
//!
//! - a candidate is a true positive **iff both orderings** have feasible
//!   witness paths (`αA` reachable after the other action completed, and
//!   vice versa);
//! - strong updates to must-aliased locations conflict-check against the
//!   accumulated path constraints (the `mIsRunning` example of Figure 8);
//! - exploration is budgeted (5,000 paths by default); budget exhaustion
//!   reports the race, over-approximating;
//! - refuted queries populate a node cache that later queries consult.

mod constraints;
mod engine;

pub use constraints::{Constraint, ConstraintStore, SymLoc};
pub use engine::{Outcome, Refuter, RefuterConfig, RefuterStats};

#[cfg(test)]
mod tests;
