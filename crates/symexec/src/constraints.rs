//! Path-constraint representation for backward symbolic execution.
//!
//! SIERRA's refutation queries only ever need conjunctions of
//! (in)equalities between storage locations and compile-time constants —
//! guard-flag idioms (`if (mIsRunning)`), null checks (`if (x != null)`),
//! and message codes (`msg.what == 3`). A conjunction over such atoms is
//! decidable by a map from location to constraint with eager contradiction
//! detection, which is the role Z3 plays in the original tool.

use apir::{ConstValue, FieldId, Local};
use pointer::ObjId;
use std::collections::BTreeMap;

/// A symbolic storage location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SymLoc {
    /// A local variable of the *current frame* (frame-crossing substitutes
    /// or drops these).
    Local(Local),
    /// An instance field of an abstract object (tracked only when the base
    /// points-to set is a singleton — a must-alias).
    Heap(ObjId, FieldId),
    /// A static field.
    Static(FieldId),
}

/// A constraint on one location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Constraint {
    /// The location holds exactly this constant.
    Eq(ConstValue),
    /// The location holds anything but this constant.
    Ne(ConstValue),
}

impl Constraint {
    /// Whether a known constant value satisfies the constraint.
    pub fn admits(self, v: ConstValue) -> bool {
        match self {
            Constraint::Eq(c) => c == v,
            Constraint::Ne(c) => c != v,
        }
    }

    /// Conjunction of two constraints on the same location, as a
    /// **conservative over-approximation**: the result admits every value
    /// both operands admit (and possibly more), and `None` is returned only
    /// when the conjunction is genuinely unsatisfiable.
    ///
    /// The one lossy case is two *distinct* disequalities (`x ≠ a ∧ x ≠ b`),
    /// which a single [`Constraint`] cannot represent; one of them is kept.
    /// Losing precision here only weakens path conditions, i.e. the refuter
    /// refutes *less* — the safe direction for a race detector that
    /// over-approximates races (§4.3's closing remark).
    pub fn meet(self, other: Constraint) -> Option<Constraint> {
        use Constraint::*;
        match (self, other) {
            (Eq(a), Eq(b)) => (a == b).then_some(Eq(a)),
            (Eq(a), Ne(b)) | (Ne(b), Eq(a)) => (a != b).then_some(Eq(a)),
            // Distinct disequalities are jointly satisfiable (int domains
            // have ≥3 values; boolean Ne normalizes to Eq before meeting);
            // keeping only `self`'s is the documented over-approximation.
            (Ne(a), Ne(_)) => Some(Ne(a)),
        }
    }

    /// Normalizes boolean disequalities to equalities (`x ≠ true ⇒ x = false`).
    pub fn normalized(self) -> Constraint {
        match self {
            Constraint::Ne(ConstValue::Bool(b)) => Constraint::Eq(ConstValue::Bool(!b)),
            c => c,
        }
    }
}

/// A conjunction of constraints; `None` results signal contradiction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConstraintStore {
    map: BTreeMap<SymLoc, Constraint>,
}

impl ConstraintStore {
    /// Creates an empty (trivially satisfiable) store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `loc ⊨ c`; returns `false` on contradiction.
    #[must_use]
    pub fn add(&mut self, loc: SymLoc, c: Constraint) -> bool {
        let c = c.normalized();
        match self.map.get(&loc) {
            None => {
                self.map.insert(loc, c);
                true
            }
            Some(&old) => match old.meet(c) {
                Some(m) => {
                    self.map.insert(loc, m);
                    true
                }
                None => false,
            },
        }
    }

    /// The constraint on `loc`, if any.
    pub fn get(&self, loc: SymLoc) -> Option<Constraint> {
        self.map.get(&loc).copied()
    }

    /// Removes and returns the constraint on `loc`.
    pub fn take(&mut self, loc: SymLoc) -> Option<Constraint> {
        self.map.remove(&loc)
    }

    /// Discharges `loc` against a known constant: `true` if consistent
    /// (constraint removed), `false` if contradictory.
    #[must_use]
    pub fn discharge_const(&mut self, loc: SymLoc, v: ConstValue) -> bool {
        match self.map.remove(&loc) {
            None => true,
            Some(c) => c.admits(v),
        }
    }

    /// Drops every local-variable constraint (used at frame boundaries).
    pub fn drop_locals(&mut self) {
        self.map.retain(|loc, _| !matches!(loc, SymLoc::Local(_)));
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over `(loc, constraint)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SymLoc, Constraint)> + '_ {
        self.map.iter().map(|(&l, &c)| (l, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meet_detects_contradictions() {
        use Constraint::*;
        assert_eq!(
            Eq(ConstValue::Int(1)).meet(Eq(ConstValue::Int(1))),
            Some(Eq(ConstValue::Int(1)))
        );
        assert_eq!(Eq(ConstValue::Int(1)).meet(Eq(ConstValue::Int(2))), None);
        assert_eq!(
            Eq(ConstValue::Int(1)).meet(Ne(ConstValue::Int(2))),
            Some(Eq(ConstValue::Int(1)))
        );
        assert_eq!(Eq(ConstValue::Int(1)).meet(Ne(ConstValue::Int(1))), None);
        assert!(Ne(ConstValue::Int(1))
            .meet(Ne(ConstValue::Int(2)))
            .is_some());
    }

    #[test]
    fn boolean_ne_normalizes_to_eq() {
        let c = Constraint::Ne(ConstValue::Bool(true)).normalized();
        assert_eq!(c, Constraint::Eq(ConstValue::Bool(false)));
        assert!(c.admits(ConstValue::Bool(false)));
        assert!(!c.admits(ConstValue::Bool(true)));
    }

    #[test]
    fn store_add_and_discharge() {
        let mut s = ConstraintStore::new();
        let loc = SymLoc::Local(Local(1));
        assert!(s.add(loc, Constraint::Eq(ConstValue::Bool(true))));
        // Contradictory add fails.
        assert!(!s.clone_add_fails(loc));
        assert!(s.discharge_const(loc, ConstValue::Bool(true)));
        assert!(s.is_empty());
        // Discharging an unconstrained loc is fine.
        assert!(s.discharge_const(loc, ConstValue::Int(9)));
    }

    impl ConstraintStore {
        fn clone_add_fails(&self, loc: SymLoc) -> bool {
            let mut c = self.clone();
            c.add(loc, Constraint::Eq(ConstValue::Bool(false)))
        }
    }

    #[test]
    fn drop_locals_keeps_heap() {
        let mut s = ConstraintStore::new();
        assert!(s.add(SymLoc::Local(Local(0)), Constraint::Eq(ConstValue::Int(1))));
        assert!(s.add(
            SymLoc::Heap(ObjId(3), FieldId(2)),
            Constraint::Eq(ConstValue::Bool(true))
        ));
        assert!(s.add(SymLoc::Static(FieldId(9)), Constraint::Ne(ConstValue::Null)));
        s.drop_locals();
        assert_eq!(s.len(), 2);
        assert!(s.get(SymLoc::Local(Local(0))).is_none());
        assert!(s.get(SymLoc::Heap(ObjId(3), FieldId(2))).is_some());
        assert_eq!(s.iter().count(), 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use sierra_prng::SplitMix64;

    fn random_const(rng: &mut SplitMix64) -> ConstValue {
        match rng.usize(3) {
            0 => ConstValue::Int(rng.range_i64(-4, 4)),
            1 => ConstValue::Bool(rng.bool()),
            _ => ConstValue::Null,
        }
    }

    fn random_constraint(rng: &mut SplitMix64) -> Constraint {
        let v = random_const(rng);
        if rng.bool() {
            Constraint::Eq(v)
        } else {
            Constraint::Ne(v)
        }
    }

    /// `meet` is a *sound over-approximation*: every value admitted by
    /// both operands is admitted by the meet, and `None` (contradiction)
    /// is only returned when no value satisfies both. This is the
    /// direction refutation soundness needs — a lossy meet refutes
    /// less, never more.
    #[test]
    fn meet_over_approximates_conjunction() {
        let mut rng = SplitMix64::new(0x533E7);
        for _ in 0..1024 {
            let a = random_constraint(&mut rng);
            let b = random_constraint(&mut rng);
            let v = random_const(&mut rng);
            match a.meet(b) {
                Some(c) => {
                    if a.admits(v) && b.admits(v) {
                        assert!(c.admits(v), "{a:?} ⊓ {b:?} = {c:?} must admit {v:?}");
                    }
                }
                None => {
                    // Contradiction: no value satisfies both (over this
                    // sampled domain).
                    assert!(!(a.admits(v) && b.admits(v)));
                }
            }
        }
    }

    /// Normalization preserves satisfaction.
    #[test]
    fn normalization_preserves_semantics() {
        let mut rng = SplitMix64::new(0x9083A);
        for _ in 0..1024 {
            let c = random_constraint(&mut rng);
            // Boolean disequalities flip to equalities over {true, false}.
            for v in [ConstValue::Bool(false), ConstValue::Bool(true)] {
                assert_eq!(c.normalized().admits(v), c.admits(v));
            }
        }
    }

    /// The store accumulates conjunctively in the sound direction: if a
    /// sequence of adds succeeds and a value satisfies every added
    /// constraint, the stored constraint still admits it — and a
    /// rejected add really was a contradiction.
    ///
    /// Constraints and the probe value are drawn from one kind: the
    /// boolean normalization (`x ≠ true ⇒ x = false`) is only sound for
    /// boolean-typed locations, which the IR's typing guarantees.
    #[test]
    fn store_accumulates_conjunctively() {
        let mut rng = SplitMix64::new(0x5704E);
        for _ in 0..1024 {
            let len = 1 + rng.usize(5);
            let (cs, v): (Vec<Constraint>, ConstValue) = if rng.bool() {
                // Integer-typed location.
                let cs = (0..len)
                    .map(|_| {
                        let i = ConstValue::Int(rng.range_i64(-4, 4));
                        if rng.bool() {
                            Constraint::Eq(i)
                        } else {
                            Constraint::Ne(i)
                        }
                    })
                    .collect();
                (cs, ConstValue::Int(rng.range_i64(-4, 4)))
            } else {
                // Boolean-typed location.
                let cs = (0..len)
                    .map(|_| {
                        let b = ConstValue::Bool(rng.bool());
                        if rng.bool() {
                            Constraint::Eq(b)
                        } else {
                            Constraint::Ne(b)
                        }
                    })
                    .collect();
                (cs, ConstValue::Bool(rng.bool()))
            };
            let mut store = ConstraintStore::new();
            let loc = SymLoc::Static(FieldId(0));
            let mut all_ok = true;
            for &c in &cs {
                if !store.add(loc, c) {
                    all_ok = false;
                    break;
                }
            }
            if all_ok {
                let stored = store.get(loc).expect("constraint present");
                if cs.iter().all(|c| c.admits(v)) {
                    assert!(
                        stored.admits(v),
                        "{cs:?} stored as {stored:?} must admit {v:?}"
                    );
                }
            }
        }
    }
}
