//! Goal-directed backward symbolic execution (§5).
//!
//! A candidate race ⟨αA, αB⟩ is a **true positive** iff *both* orderings of
//! the two actions admit a feasible witness path:
//!
//! - order "B before A": a backward path from αA through action A's code to
//!   A's entry, then from action B's exit backward *through αB* to B's
//!   entry, with all accumulated path constraints simultaneously
//!   satisfiable (strong updates conflict-checked along the way);
//! - and symmetrically for "A before B".
//!
//! If either direction has no witness, the candidate is refuted — the
//! accesses are protected by ad-hoc synchronization. Budget exhaustion
//! reports the race (over-approximation, §5 "Caching").

use crate::constraints::{Constraint, ConstraintStore, SymLoc};
use android_model::{ActionId, ActionKind};
use apir::{
    BlockId, CallSiteId, ConstValue, FieldId, InfeasibleEdges, Local, MethodId, Operand, Program,
    Stmt, StmtAddr, Terminator,
};
use pointer::{Access, Analysis, CtxId};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Refutation tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct RefuterConfig {
    /// Maximum forked paths per query direction (the paper uses 5,000).
    pub max_paths: usize,
    /// Maximum backward steps per query direction.
    pub max_steps: usize,
    /// Per-path bound on re-visiting one basic block (backward loop
    /// unrolling).
    pub block_visit_limit: u32,
    /// Enable the refuted-node memoization cache (§5 "Caching").
    pub use_cache: bool,
}

impl Default for RefuterConfig {
    fn default() -> Self {
        Self {
            max_paths: 5_000,
            max_steps: 200_000,
            block_visit_limit: 2,
            use_cache: true,
        }
    }
}

/// Outcome of a refutation query on a candidate race.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// One direction has no feasible witness: the pair is ordered by
    /// ad-hoc synchronization — not a race.
    Refuted,
    /// Both directions witnessed: reported as a race.
    TruePositive,
    /// Budget exhausted: reported as a (possibly false-positive) race.
    Budget,
}

/// Aggregate statistics across queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefuterStats {
    /// Queries issued.
    pub queries: usize,
    /// Queries refuted.
    pub refuted: usize,
    /// Queries witnessed in both directions.
    pub witnessed: usize,
    /// Queries that ran out of budget.
    pub budget_exhausted: usize,
    /// Queries answered from the refuted-node cache.
    pub cache_hits: usize,
    /// Total paths explored.
    pub paths: usize,
}

impl RefuterStats {
    /// Adds `other`'s counters into `self` (used when merging the
    /// per-worker refuters of a parallel refutation batch).
    pub fn absorb(&mut self, other: &RefuterStats) {
        self.queries += other.queries;
        self.refuted += other.refuted;
        self.witnessed += other.witnessed;
        self.budget_exhausted += other.budget_exhausted;
        self.cache_hits += other.cache_hits;
        self.paths += other.paths;
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Backward from the later access to its action entry.
    Later,
    /// Backward from the earlier action's exit through the earlier access.
    Earlier,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WitnessResult {
    Witness,
    NoWitness,
    Budget,
}

#[derive(Debug, Clone)]
struct State {
    m: MethodId,
    ctx: CtxId,
    block: BlockId,
    /// Index of the next statement to process, walking down to `-1`.
    next: i32,
    store: ConstraintStore,
    /// Resume points for backward descents into callees.
    ret_stack: Vec<(MethodId, CtxId, BlockId, i32)>,
    visits: HashMap<(MethodId, BlockId), u32>,
    seen_target: bool,
    phase: Phase,
}

/// Inverse call-graph index: callee frame → (caller frame, call site).
type CallerIndex = HashMap<(MethodId, CtxId), Vec<(MethodId, CtxId, CallSiteId)>>;

/// The backward symbolic-execution refuter.
#[derive(Debug)]
pub struct Refuter<'a> {
    program: &'a Program,
    analysis: &'a Analysis,
    config: RefuterConfig,
    /// Inverse call graph: callee frame → (caller frame, site).
    /// Shared read-only across forked workers, so `fork` is cheap.
    callers: Arc<CallerIndex>,
    /// Methods visited by fully-refuted queries (the paper's cache).
    refuted_methods: HashSet<MethodId>,
    /// `Message.what`'s field id, enabling the §5 on-demand
    /// constant-propagation facts for `handleMessage` actions.
    message_what_field: Option<FieldId>,
    /// Statically-infeasible branch edges (from the prefilter's constant
    /// propagation): backward search never crosses them.
    infeasible: Arc<InfeasibleEdges>,
    /// Aggregate statistics.
    pub stats: RefuterStats,
}

impl<'a> Refuter<'a> {
    /// Creates a refuter over a finished analysis.
    pub fn new(analysis: &'a Analysis, program: &'a Program, config: RefuterConfig) -> Self {
        let mut callers: CallerIndex = HashMap::new();
        for (&(cm, cctx, site), callees) in &analysis.cg_edges {
            for &(m, ctx) in callees {
                callers.entry((m, ctx)).or_default().push((cm, cctx, site));
            }
        }
        // The source map iterates in hash order, which varies per thread;
        // sorted caller lists keep path exploration (and its budget
        // counters) identical regardless of which worker runs the query.
        for list in callers.values_mut() {
            list.sort_unstable();
        }
        Self {
            program,
            analysis,
            config,
            callers: Arc::new(callers),
            refuted_methods: HashSet::new(),
            message_what_field: None,
            infeasible: Arc::new(InfeasibleEdges::new()),
            stats: RefuterStats::default(),
        }
    }

    /// A worker refuter for one batch of a parallel refutation: shares
    /// the caller index (an `Arc` bump), snapshots the current
    /// refuted-methods cache, and starts with zeroed stats. Verdicts of
    /// a fork depend only on the snapshot, never on what sibling
    /// workers discover concurrently — that is what makes parallel
    /// refutation thread-count-independent.
    #[must_use]
    pub fn fork(&self) -> Refuter<'a> {
        Refuter {
            program: self.program,
            analysis: self.analysis,
            config: self.config,
            callers: Arc::clone(&self.callers),
            refuted_methods: self.refuted_methods.clone(),
            message_what_field: self.message_what_field,
            infeasible: Arc::clone(&self.infeasible),
            stats: RefuterStats::default(),
        }
    }

    /// Merges a finished fork back: unions its refuted-methods cache
    /// (set union is order-independent, so merge order cannot affect
    /// later batches) and absorbs its stats.
    pub fn merge_from(&mut self, other: Refuter<'a>) {
        self.refuted_methods.extend(other.refuted_methods);
        self.stats.absorb(&other.stats);
    }

    /// Enables `Message.what` constant-propagation facts: a
    /// `handleMessage` action with a known message code contributes
    /// `msg.what = code` to every query touching it.
    pub fn with_message_model(mut self, message_what: FieldId) -> Self {
        self.message_what_field = Some(message_what);
        self
    }

    /// Installs statically-infeasible branch edges (from the prefilter's
    /// constant propagation). Backward path search skips predecessors
    /// reached through such an edge, so queries converge in fewer paths
    /// without changing any feasible verdict.
    pub fn with_infeasible_edges(mut self, edges: Arc<InfeasibleEdges>) -> Self {
        self.infeasible = edges;
        self
    }

    /// Checks store consistency against the action's known facts at its
    /// entry boundary (currently: the constant message code).
    fn action_facts_ok(&self, store: &ConstraintStore, action: ActionId, ctx: CtxId) -> bool {
        let Some(wf) = self.message_what_field else {
            return true;
        };
        let a = self.analysis.actions.action(action);
        let ActionKind::MessageHandle { what: Some(w) } = a.kind else {
            return true;
        };
        let pts = self.analysis.pts_var(a.entry, ctx, Local(1));
        for (loc, c) in store.iter() {
            if let SymLoc::Heap(o, f) = loc {
                if f == wf && pts.contains(o) && !c.admits(ConstValue::Int(w)) {
                    return false;
                }
            }
        }
        true
    }

    /// Queries a candidate racy pair.
    pub fn refute_pair(&mut self, a: &Access, b: &Access) -> Outcome {
        self.stats.queries += 1;
        if self.config.use_cache
            && self.refuted_methods.contains(&a.method)
            && self.refuted_methods.contains(&b.method)
        {
            self.stats.cache_hits += 1;
            self.stats.refuted += 1;
            return Outcome::Refuted;
        }
        let mut visited_methods: HashSet<MethodId> = HashSet::new();
        let d1 = self.witness(a, b, &mut visited_methods);
        if d1 == WitnessResult::NoWitness {
            self.finish_refuted(visited_methods);
            return Outcome::Refuted;
        }
        let d2 = self.witness(b, a, &mut visited_methods);
        if d2 == WitnessResult::NoWitness {
            self.finish_refuted(visited_methods);
            return Outcome::Refuted;
        }
        if d1 == WitnessResult::Budget || d2 == WitnessResult::Budget {
            self.stats.budget_exhausted += 1;
            Outcome::Budget
        } else {
            self.stats.witnessed += 1;
            Outcome::TruePositive
        }
    }

    fn finish_refuted(&mut self, visited: HashSet<MethodId>) {
        self.stats.refuted += 1;
        if self.config.use_cache {
            self.refuted_methods.extend(visited);
        }
    }

    /// Searches for a witness of the schedule "`earlier`'s action completes,
    /// then `later`'s action runs up to its access".
    fn witness(
        &mut self,
        later: &Access,
        earlier: &Access,
        visited_methods: &mut HashSet<MethodId>,
    ) -> WitnessResult {
        let later_action = later.action;
        let earlier_action = earlier.action;
        let mut steps = 0usize;
        let mut paths = 1usize;

        // Which frames of the earlier action can reach the target access's
        // frame (used to decide backward descents into callees).
        let reach_target = self.frames_reaching(earlier.method, earlier.ctx, earlier_action);

        let mut stack: Vec<State> = vec![State {
            m: later.method,
            ctx: later.ctx,
            block: later.addr.block,
            next: later.addr.stmt as i32 - 1,
            store: ConstraintStore::new(),
            ret_stack: Vec::new(),
            visits: HashMap::new(),
            seen_target: false,
            phase: Phase::Later,
        }];

        while let Some(mut st) = stack.pop() {
            steps += 1;
            if steps > self.config.max_steps || paths > self.config.max_paths {
                self.stats.paths += paths;
                return WitnessResult::Budget;
            }
            visited_methods.insert(st.m);
            if self.config.use_cache
                && self.refuted_methods.contains(&st.m)
                && st.phase == Phase::Earlier
            {
                continue; // paper's cache: refuted nodes prune paths
            }

            if st.next >= 0 {
                let method = self.program.method(st.m);
                let stmt = method.block(st.block).stmts[st.next as usize].clone();
                let here = StmtAddr::new(st.m, st.block, st.next as u32);
                if st.phase == Phase::Earlier && here == earlier.addr {
                    st.seen_target = true;
                }
                // Backward descent into callees (earlier phase only, and
                // only while hunting for the target access).
                if let Stmt::Call { site, dst, .. } = &stmt {
                    if st.phase == Phase::Earlier && !st.seen_target {
                        if let Some(callees) = self.analysis.cg_edges.get(&(st.m, st.ctx, *site)) {
                            let mut descended = false;
                            for &(cm, cctx) in callees {
                                if self.analysis.action_of(cctx) != earlier_action
                                    || !reach_target.contains(&(cm, cctx))
                                {
                                    continue;
                                }
                                for exit in self.exit_blocks(cm) {
                                    let mut forked = st.clone();
                                    forked.next -= 1; // resume before the call
                                    let resume = (st.m, st.ctx, st.block, forked.next);
                                    let mut child = State {
                                        m: cm,
                                        ctx: cctx,
                                        block: exit,
                                        next: self.program.method(cm).block(exit).stmts.len()
                                            as i32
                                            - 1,
                                        store: st.store.clone(),
                                        ret_stack: {
                                            let mut r = st.ret_stack.clone();
                                            r.push(resume);
                                            r
                                        },
                                        visits: st.visits.clone(),
                                        seen_target: st.seen_target,
                                        phase: st.phase,
                                    };
                                    // Return-value constraint transfers to
                                    // the return operand.
                                    if let Some(d) = dst {
                                        if let Some(c) = child.store.take(SymLoc::Local(*d)) {
                                            let term =
                                                &self.program.method(cm).block(exit).terminator;
                                            if let Terminator::Return(Some(op)) = term {
                                                if !add_operand_constraint(&mut child.store, *op, c)
                                                {
                                                    continue;
                                                }
                                            }
                                        }
                                    }
                                    paths += 1;
                                    descended = true;
                                    stack.push(child);
                                }
                            }
                            if descended {
                                continue; // the descents replace this state
                            }
                        }
                    }
                }
                if !self.transfer(&mut st, &stmt) {
                    continue; // infeasible
                }
                st.next -= 1;
                stack.push(st);
                continue;
            }

            // next < 0: cross to predecessors or handle method entry.
            let method = self.program.method(st.m);
            let pred_list = method.preds(st.block);
            if !pred_list.is_empty() {
                for &p in pred_list {
                    let count = st.visits.get(&(st.m, p)).copied().unwrap_or(0);
                    if count >= self.config.block_visit_limit {
                        continue;
                    }
                    if self.infeasible.contains(st.m, p, st.block) {
                        continue;
                    }
                    let mut forked = st.clone();
                    *forked.visits.entry((st.m, p)).or_insert(0) += 1;
                    // Branch condition constraint.
                    if let Terminator::If {
                        cond,
                        then_bb,
                        else_bb,
                    } = &method.block(p).terminator
                    {
                        let want = if *then_bb == st.block && *else_bb == st.block {
                            None
                        } else if *then_bb == st.block {
                            Some(true)
                        } else {
                            Some(false)
                        };
                        if let Some(b) = want {
                            if !add_operand_constraint(
                                &mut forked.store,
                                *cond,
                                Constraint::Eq(ConstValue::Bool(b)),
                            ) {
                                continue;
                            }
                        }
                    }
                    forked.block = p;
                    forked.next = method.block(p).stmts.len() as i32 - 1;
                    paths += 1;
                    stack.push(forked);
                }
                continue;
            }

            // Method entry reached.
            if let Some((rm, rctx, rblock, rnext)) = st.ret_stack.last().copied() {
                // Pop a backward descent: substitute params at the call.
                let call_stmt = self
                    .call_stmt_at(rm, rblock, rnext + 1)
                    .expect("resume points at a call statement");
                let mut store = st.store.clone();
                if !self.substitute_params(&mut store, st.m, rm, rctx, &call_stmt) {
                    continue;
                }
                let mut resumed = st.clone();
                resumed.ret_stack.pop();
                resumed.m = rm;
                resumed.ctx = rctx;
                resumed.block = rblock;
                resumed.next = rnext;
                resumed.store = store;
                stack.push(resumed);
                continue;
            }

            match st.phase {
                Phase::Later => {
                    let entry = self.analysis.actions.action(later_action).entry;
                    if st.m == entry {
                        if !self.action_facts_ok(&st.store, later_action, st.ctx) {
                            continue; // contradicts the known message code
                        }
                        // Phase boundary: start the earlier action's
                        // backward walk from its exits.
                        let mut store = st.store.clone();
                        store.drop_locals();
                        for ectx in self.action_entry_ctxs(earlier_action) {
                            let em = self.analysis.actions.action(earlier_action).entry;
                            for exit in self.exit_blocks(em) {
                                paths += 1;
                                stack.push(State {
                                    m: em,
                                    ctx: ectx,
                                    block: exit,
                                    next: self.program.method(em).block(exit).stmts.len() as i32
                                        - 1,
                                    store: store.clone(),
                                    ret_stack: Vec::new(),
                                    visits: HashMap::new(),
                                    seen_target: false,
                                    phase: Phase::Earlier,
                                });
                            }
                        }
                    } else {
                        // Ascend to same-action callers.
                        let callers = Arc::clone(&self.callers);
                        let Some(callers) = callers.get(&(st.m, st.ctx)) else {
                            continue;
                        };
                        for &(cm, cctx, site) in callers {
                            if self.analysis.action_of(cctx) != later_action {
                                continue;
                            }
                            let Some(addr) = self.site_addr(site) else {
                                continue;
                            };
                            let Some(call_stmt) =
                                self.call_stmt_at(cm, addr.block, addr.stmt as i32)
                            else {
                                continue;
                            };
                            let mut store = st.store.clone();
                            if !self.substitute_params(&mut store, st.m, cm, cctx, &call_stmt) {
                                continue;
                            }
                            paths += 1;
                            stack.push(State {
                                m: cm,
                                ctx: cctx,
                                block: addr.block,
                                next: addr.stmt as i32 - 1,
                                store,
                                ret_stack: Vec::new(),
                                visits: st.visits.clone(),
                                seen_target: st.seen_target,
                                phase: st.phase,
                            });
                        }
                    }
                }
                Phase::Earlier => {
                    let entry = self.analysis.actions.action(earlier_action).entry;
                    if st.m == entry
                        && st.seen_target
                        && self.action_facts_ok(&st.store, earlier_action, st.ctx)
                    {
                        self.stats.paths += paths;
                        return WitnessResult::Witness;
                    }
                    // Without the target on the path, this path does not
                    // witness αB executing — dead end.
                }
            }
        }
        self.stats.paths += paths;
        WitnessResult::NoWitness
    }

    // ---- helpers ----

    fn exit_blocks(&self, m: MethodId) -> Vec<BlockId> {
        self.program
            .method(m)
            .iter_blocks()
            .filter(|(_, b)| matches!(b.terminator, Terminator::Return(_)))
            .map(|(id, _)| id)
            .collect()
    }

    fn site_addr(&self, site: CallSiteId) -> Option<StmtAddr> {
        Some(self.program.call_site_addr(site))
    }

    fn call_stmt_at(&self, m: MethodId, block: BlockId, stmt: i32) -> Option<Stmt> {
        if stmt < 0 {
            return None;
        }
        self.program
            .method(m)
            .block(block)
            .stmts
            .get(stmt as usize)
            .filter(|s| matches!(s, Stmt::Call { .. }))
            .cloned()
    }

    /// All contexts of `action`'s entry method that belong to the action.
    fn action_entry_ctxs(&self, action: ActionId) -> Vec<CtxId> {
        let entry = self.analysis.actions.action(action).entry;
        let mut out: Vec<CtxId> = self
            .analysis
            .reachable
            .iter()
            .filter(|&&(m, ctx)| m == entry && self.analysis.action_of(ctx) == action)
            .map(|&(_, ctx)| ctx)
            .collect();
        out.sort_unstable();
        out
    }

    /// Frames of `action` that can reach `(tm, tctx)` in the call graph.
    fn frames_reaching(
        &self,
        tm: MethodId,
        tctx: CtxId,
        action: ActionId,
    ) -> HashSet<(MethodId, CtxId)> {
        let mut out: HashSet<(MethodId, CtxId)> = HashSet::new();
        let mut stack = vec![(tm, tctx)];
        while let Some(f) = stack.pop() {
            if !out.insert(f) {
                continue;
            }
            if let Some(callers) = self.callers.get(&f) {
                for &(cm, cctx, _) in callers {
                    if self.analysis.action_of(cctx) == action {
                        stack.push((cm, cctx));
                    }
                }
            }
        }
        out
    }

    /// Backward transfer of one statement; `false` means infeasible.
    fn transfer(&self, st: &mut State, stmt: &Stmt) -> bool {
        let store = &mut st.store;
        match stmt {
            Stmt::Const { dst, value } => store.discharge_const(SymLoc::Local(*dst), *value),
            Stmt::Move { dst, src } => match store.take(SymLoc::Local(*dst)) {
                Some(c) => store.add(SymLoc::Local(*src), c),
                None => true,
            },
            Stmt::UnOp { dst, op, src } => {
                let Some(c) = store.take(SymLoc::Local(*dst)) else {
                    return true;
                };
                match (op, c.normalized()) {
                    (apir::UnOp::Not, Constraint::Eq(ConstValue::Bool(b))) => {
                        add_operand_constraint(store, *src, Constraint::Eq(ConstValue::Bool(!b)))
                    }
                    _ => true, // arithmetic negation: drop
                }
            }
            Stmt::BinOp { dst, op, lhs, rhs } => {
                let Some(c) = store.take(SymLoc::Local(*dst)) else {
                    return true;
                };
                let Constraint::Eq(ConstValue::Bool(b)) = c.normalized() else {
                    return true;
                };
                let eq_holds = match op {
                    apir::BinOp::Cmp(apir::CmpOp::Eq) => b,
                    apir::BinOp::Cmp(apir::CmpOp::Ne) => !b,
                    _ => return true, // orderings/arithmetic: drop
                };
                match (lhs, rhs) {
                    (Operand::Local(l), Operand::Const(v))
                    | (Operand::Const(v), Operand::Local(l)) => {
                        let cc = if eq_holds {
                            Constraint::Eq(*v)
                        } else {
                            Constraint::Ne(*v)
                        };
                        store.add(SymLoc::Local(*l), cc)
                    }
                    (Operand::Const(a), Operand::Const(b2)) => (a == b2) == eq_holds,
                    _ => true,
                }
            }
            Stmt::New { dst, .. } => match store.take(SymLoc::Local(*dst)) {
                Some(Constraint::Eq(ConstValue::Null)) => false, // fresh ≠ null
                _ => true,
            },
            Stmt::Load { dst, obj, field } => {
                let Some(c) = store.take(SymLoc::Local(*dst)) else {
                    return true;
                };
                let pts = self.analysis.pts_var(st.m, st.ctx, *obj);
                if let Some(o) = pts.as_singleton() {
                    store.add(SymLoc::Heap(o, *field), c)
                } else {
                    true // may-alias base: drop the constraint
                }
            }
            Stmt::Store { obj, field, value } => {
                let pts = self.analysis.pts_var(st.m, st.ctx, *obj);
                if let Some(o) = pts.as_singleton() {
                    match store.take(SymLoc::Heap(o, *field)) {
                        None => true,
                        Some(c) => match value {
                            Operand::Const(v) => c.admits(*v),
                            Operand::Local(l) => store.add(SymLoc::Local(*l), c),
                        },
                    }
                } else {
                    true // weak update: constraint neither discharged nor conflicted
                }
            }
            Stmt::StaticLoad { dst, field } => match store.take(SymLoc::Local(*dst)) {
                Some(c) => store.add(SymLoc::Static(*field), c),
                None => true,
            },
            Stmt::StaticStore { field, value } => match store.take(SymLoc::Static(*field)) {
                None => true,
                Some(c) => match value {
                    Operand::Const(v) => c.admits(*v),
                    Operand::Local(l) => store.add(SymLoc::Local(*l), c),
                },
            },
            Stmt::Call { dst, .. } => {
                if let Some(d) = dst {
                    store.take(SymLoc::Local(*d)); // opaque return value
                }
                true
            }
        }
    }

    /// Rewrites callee-parameter constraints into caller-side constraints
    /// when crossing a method entry backwards.
    fn substitute_params(
        &self,
        store: &mut ConstraintStore,
        callee: MethodId,
        _caller: MethodId,
        _cctx: CtxId,
        call_stmt: &Stmt,
    ) -> bool {
        let Stmt::Call { receiver, args, .. } = call_stmt else {
            return true;
        };
        let callee_m = self.program.method(callee);
        let mut transfers: Vec<(Operand, Constraint)> = Vec::new();
        let shift = if callee_m.is_static { 0 } else { 1 };
        for p in 0..callee_m.param_count {
            let Some(c) = store.take(SymLoc::Local(Local(p))) else {
                continue;
            };
            if !callee_m.is_static && p == 0 {
                if let Some(r) = receiver {
                    transfers.push((Operand::Local(*r), c))
                }
            } else if let Some(a) = args.get((p - shift) as usize) {
                transfers.push((*a, c));
            }
        }
        store.drop_locals(); // non-parameter locals are dead before entry
        for (op, c) in transfers {
            if !add_operand_constraint(store, op, c) {
                return false;
            }
        }
        true
    }
}

/// Adds a constraint on an operand: checks constants, constrains locals.
fn add_operand_constraint(store: &mut ConstraintStore, op: Operand, c: Constraint) -> bool {
    match op {
        Operand::Const(v) => c.admits(v),
        Operand::Local(l) => store.add(SymLoc::Local(l), c),
    }
}
