//! Refutation tests on the paper's Figure 8 idiom (OpenSudoku).

use crate::{Outcome, Refuter, RefuterConfig};
use android_model::{ActionKind, AndroidAppBuilder};
use apir::{ConstValue, FieldId, InvokeKind, Operand, Type};
use harness_gen::{generate, HarnessResult};
use pointer::{analyze, collect_accesses, Access, Analysis, SelectorKind};

/// Builds the Figure 8 app:
///
/// ```java
/// class Runner implements Runnable {           // action A (posted)
///   void run() {
///     if (outer.mIsRunning) {
///       outer.mAccumTime = 1;                  // αA
///       if (*) { /* re-post */ } else outer.mIsRunning = false;
///     }
///   }
/// }
/// class Act extends Activity {
///   void onResume() { runOnUiThread(new Runner(this)); }
///   void stop() {                              // called from onPause = B
///     if (mIsRunning) { mIsRunning = false; mAccumTime = 2; /* αB */ }
///   }
///   void onPause() { stop(); }
/// }
/// ```
struct Fig8 {
    harness: HarnessResult,
    is_running: FieldId,
    accum: FieldId,
}

fn fig8() -> Fig8 {
    let mut app = AndroidAppBuilder::new("OpenSudoku");
    let fw = app.framework().clone();

    let mut cb = app.activity("Act");
    let is_running = cb.field("mIsRunning", Type::Bool);
    let accum = cb.field("mAccumTime", Type::Int);
    let activity = cb.build();

    let mut cb = app.subclass("Runner", fw.object);
    cb.add_interface(fw.runnable);
    let outer = cb.field("outer", Type::Ref(activity));
    let runner = cb.build();

    // Runner.<init>(outer)
    let mut mb = app.method(runner, "<init>");
    mb.set_param_count(2);
    let (this, o) = (mb.param(0), mb.param(1));
    mb.store(this, outer, Operand::Local(o));
    mb.ret(None);
    let runner_init = mb.finish();

    // Runner.run()
    let mut mb = app.method(runner, "run");
    mb.set_param_count(1);
    let this = mb.param(0);
    let o = mb.fresh_local();
    let t = mb.fresh_local();
    mb.load(o, this, outer);
    mb.load(t, o, is_running);
    let b_then = mb.new_block();
    let b_done = mb.new_block();
    let b_off = mb.new_block();
    let b_exit = mb.new_block();
    mb.if_(t, b_then, b_exit);
    mb.switch_to(b_then);
    mb.store(o, accum, Operand::Const(ConstValue::Int(1))); // αA
    mb.nondet(vec![b_done, b_off]);
    mb.switch_to(b_done);
    mb.goto(b_exit);
    mb.switch_to(b_off);
    mb.store(o, is_running, Operand::Const(ConstValue::Bool(false)));
    mb.goto(b_exit);
    mb.switch_to(b_exit);
    mb.ret(None);
    mb.finish();

    // Act.onResume() { mIsRunning = true; runOnUiThread(new Runner(this)) }
    let mut mb = app.method(activity, "onResume");
    mb.set_param_count(1);
    let this = mb.param(0);
    let r = mb.fresh_local();
    mb.store(this, is_running, Operand::Const(ConstValue::Bool(true)));
    mb.new_(r, runner);
    mb.call(
        None,
        InvokeKind::Special,
        runner_init,
        Some(r),
        vec![Operand::Local(this)],
    );
    mb.call(
        None,
        InvokeKind::Virtual,
        fw.run_on_ui_thread,
        Some(this),
        vec![Operand::Local(r)],
    );
    mb.ret(None);
    mb.finish();

    // Act.stop()
    let mut mb = app.method(activity, "stop");
    mb.set_param_count(1);
    let this = mb.param(0);
    let t = mb.fresh_local();
    mb.load(t, this, is_running);
    let b_then = mb.new_block();
    let b_exit = mb.new_block();
    mb.if_(t, b_then, b_exit);
    mb.switch_to(b_then);
    mb.store(this, is_running, Operand::Const(ConstValue::Bool(false)));
    mb.store(this, accum, Operand::Const(ConstValue::Int(2))); // αB
    mb.goto(b_exit);
    mb.switch_to(b_exit);
    mb.ret(None);
    let stop = mb.finish();

    // Act.onPause() { stop() }
    let mut mb = app.method(activity, "onPause");
    mb.set_param_count(1);
    let this = mb.param(0);
    mb.vcall(stop, this, vec![]);
    mb.ret(None);
    mb.finish();

    let harness = generate(app.finish().unwrap());
    Fig8 {
        harness,
        is_running,
        accum,
    }
}

fn access_in<'a>(
    accesses: &'a [Access],
    analysis: &Analysis,
    field: FieldId,
    is_write: bool,
    kind: impl Fn(&ActionKind) -> bool,
) -> &'a Access {
    accesses
        .iter()
        .find(|a| {
            a.field == field
                && a.is_write == is_write
                && kind(&analysis.actions.action(a.action).kind)
        })
        .expect("access present")
}

#[test]
fn figure_8_accum_time_race_is_refuted() {
    let f = fig8();
    let analysis = analyze(&f.harness, SelectorKind::ActionSensitive(1));
    let accesses = collect_accesses(
        &analysis,
        &f.harness.app.program,
        Some(f.harness.harness_class),
    );

    let alpha_a = access_in(&accesses, &analysis, f.accum, true, |k| {
        matches!(k, ActionKind::RunnablePost)
    });
    let alpha_b = access_in(&accesses, &analysis, f.accum, true, |k| {
        matches!(
            k,
            ActionKind::Lifecycle {
                event: android_model::LifecycleEvent::Pause,
                ..
            }
        )
    });

    let mut refuter = Refuter::new(&analysis, &f.harness.app.program, RefuterConfig::default());
    let outcome = refuter.refute_pair(alpha_a, alpha_b);
    assert_eq!(
        outcome,
        Outcome::Refuted,
        "the mAccumTime pair is guarded by mIsRunning"
    );
    assert_eq!(refuter.stats.refuted, 1);
}

#[test]
fn figure_8_guard_variable_race_is_a_true_positive() {
    let f = fig8();
    let analysis = analyze(&f.harness, SelectorKind::ActionSensitive(1));
    let accesses = collect_accesses(
        &analysis,
        &f.harness.app.program,
        Some(f.harness.harness_class),
    );

    // The guard itself races: run() reads mIsRunning, stop() writes it.
    let guard_read = access_in(&accesses, &analysis, f.is_running, false, |k| {
        matches!(k, ActionKind::RunnablePost)
    });
    let guard_write = access_in(&accesses, &analysis, f.is_running, true, |k| {
        matches!(
            k,
            ActionKind::Lifecycle {
                event: android_model::LifecycleEvent::Pause,
                ..
            }
        )
    });

    let mut refuter = Refuter::new(&analysis, &f.harness.app.program, RefuterConfig::default());
    let outcome = refuter.refute_pair(guard_read, guard_write);
    assert_eq!(
        outcome,
        Outcome::TruePositive,
        "the guard flag itself is racy (benign per §6.5, but reported)"
    );
    assert_eq!(refuter.stats.witnessed, 1);
}

#[test]
fn budget_exhaustion_reports_the_race() {
    let f = fig8();
    let analysis = analyze(&f.harness, SelectorKind::ActionSensitive(1));
    let accesses = collect_accesses(
        &analysis,
        &f.harness.app.program,
        Some(f.harness.harness_class),
    );
    let alpha_a = access_in(&accesses, &analysis, f.accum, true, |k| {
        matches!(k, ActionKind::RunnablePost)
    });
    let alpha_b = access_in(&accesses, &analysis, f.accum, true, |k| {
        matches!(k, ActionKind::Lifecycle { .. })
    });

    let config = RefuterConfig {
        max_paths: 1,
        max_steps: 2,
        ..Default::default()
    };
    let mut refuter = Refuter::new(&analysis, &f.harness.app.program, config);
    assert_eq!(refuter.refute_pair(alpha_a, alpha_b), Outcome::Budget);
    assert_eq!(refuter.stats.budget_exhausted, 1);
}

#[test]
fn unguarded_pair_is_witnessed() {
    // Same shape as Figure 8 but with the guard checks removed: both
    // orders are feasible, so the pair must not be refuted.
    let mut app = AndroidAppBuilder::new("T");
    let fw = app.framework().clone();
    let mut cb = app.activity("Act");
    let accum = cb.field("x", Type::Int);
    let activity = cb.build();
    let mut cb = app.subclass("Runner", fw.object);
    cb.add_interface(fw.runnable);
    let outer = cb.field("outer", Type::Ref(activity));
    let runner = cb.build();
    let mut mb = app.method(runner, "<init>");
    mb.set_param_count(2);
    let (this, o) = (mb.param(0), mb.param(1));
    mb.store(this, outer, Operand::Local(o));
    mb.ret(None);
    let runner_init = mb.finish();
    let mut mb = app.method(runner, "run");
    mb.set_param_count(1);
    let this = mb.param(0);
    let o = mb.fresh_local();
    mb.load(o, this, outer);
    mb.store(o, accum, Operand::Const(ConstValue::Int(1)));
    mb.ret(None);
    mb.finish();
    let mut mb = app.method(activity, "onResume");
    mb.set_param_count(1);
    let this = mb.param(0);
    let r = mb.fresh_local();
    mb.new_(r, runner);
    mb.call(
        None,
        InvokeKind::Special,
        runner_init,
        Some(r),
        vec![Operand::Local(this)],
    );
    mb.call(
        None,
        InvokeKind::Virtual,
        fw.run_on_ui_thread,
        Some(this),
        vec![Operand::Local(r)],
    );
    mb.ret(None);
    mb.finish();
    let mut mb = app.method(activity, "onPause");
    mb.set_param_count(1);
    let this = mb.param(0);
    mb.store(this, accum, Operand::Const(ConstValue::Int(2)));
    mb.ret(None);
    mb.finish();

    let harness = generate(app.finish().unwrap());
    let analysis = analyze(&harness, SelectorKind::ActionSensitive(1));
    let accesses = collect_accesses(&analysis, &harness.app.program, Some(harness.harness_class));
    let a = access_in(&accesses, &analysis, accum, true, |k| {
        matches!(k, ActionKind::RunnablePost)
    });
    let b = access_in(&accesses, &analysis, accum, true, |k| {
        matches!(k, ActionKind::Lifecycle { .. })
    });
    let mut refuter = Refuter::new(&analysis, &harness.app.program, RefuterConfig::default());
    assert_eq!(refuter.refute_pair(a, b), Outcome::TruePositive);
}

#[test]
fn cache_short_circuits_repeat_queries() {
    let f = fig8();
    let analysis = analyze(&f.harness, SelectorKind::ActionSensitive(1));
    let accesses = collect_accesses(
        &analysis,
        &f.harness.app.program,
        Some(f.harness.harness_class),
    );
    let alpha_a = access_in(&accesses, &analysis, f.accum, true, |k| {
        matches!(k, ActionKind::RunnablePost)
    });
    let alpha_b = access_in(&accesses, &analysis, f.accum, true, |k| {
        matches!(k, ActionKind::Lifecycle { .. })
    });
    let mut refuter = Refuter::new(&analysis, &f.harness.app.program, RefuterConfig::default());
    assert_eq!(refuter.refute_pair(alpha_a, alpha_b), Outcome::Refuted);
    // The same pair again: answered from the refuted-node cache.
    assert_eq!(refuter.refute_pair(alpha_a, alpha_b), Outcome::Refuted);
    assert_eq!(refuter.stats.cache_hits, 1);
    assert_eq!(refuter.stats.queries, 2);
}

#[test]
fn refutation_ascends_through_nested_callers() {
    // The guarded write sits two calls below the action entry:
    // onPause → outer() → inner() { if (flag) { flag=false; x=2 } },
    // racing a posted runnable's guarded write. The backward walk must
    // ascend inner → outer → onPause and still find the conflict.
    let mut app = AndroidAppBuilder::new("Nested");
    let fw = app.framework().clone();
    let mut cb = app.activity("Act");
    let flag = cb.field("flag", Type::Bool);
    let x = cb.field("x", Type::Int);
    let activity = cb.build();

    let mut cb = app.subclass("R", fw.object);
    cb.add_interface(fw.runnable);
    let outer_f = cb.field("outer", Type::Ref(activity));
    let runner = cb.build();
    let mut mb = app.method(runner, "<init>");
    mb.set_param_count(2);
    let (this, o) = (mb.param(0), mb.param(1));
    mb.store(this, outer_f, Operand::Local(o));
    mb.ret(None);
    let rinit = mb.finish();
    let mut mb = app.method(runner, "run");
    mb.set_param_count(1);
    let this = mb.param(0);
    let (o, t) = (mb.fresh_local(), mb.fresh_local());
    mb.load(o, this, outer_f);
    mb.load(t, o, flag);
    let b1 = mb.new_block();
    let b2 = mb.new_block();
    mb.if_(t, b1, b2);
    mb.switch_to(b1);
    mb.store(o, x, Operand::Const(ConstValue::Int(1)));
    mb.goto(b2);
    mb.switch_to(b2);
    mb.ret(None);
    mb.finish();

    // inner(): the guarded clear + write.
    let mut mb = app.method(activity, "inner");
    mb.set_param_count(1);
    let this = mb.param(0);
    let t = mb.fresh_local();
    mb.load(t, this, flag);
    let b1 = mb.new_block();
    let b2 = mb.new_block();
    mb.if_(t, b1, b2);
    mb.switch_to(b1);
    mb.store(this, flag, Operand::Const(ConstValue::Bool(false)));
    mb.store(this, x, Operand::Const(ConstValue::Int(2)));
    mb.goto(b2);
    mb.switch_to(b2);
    mb.ret(None);
    let inner = mb.finish();
    // outer() { inner() }
    let mut mb = app.method(activity, "outer");
    mb.set_param_count(1);
    let this = mb.param(0);
    mb.vcall(inner, this, vec![]);
    mb.ret(None);
    let outer = mb.finish();
    // onPause() { outer() }
    let mut mb = app.method(activity, "onPause");
    mb.set_param_count(1);
    let this = mb.param(0);
    mb.vcall(outer, this, vec![]);
    mb.ret(None);
    mb.finish();
    // onResume() { flag = true; runOnUiThread(new R(this)) }
    let mut mb = app.method(activity, "onResume");
    mb.set_param_count(1);
    let this = mb.param(0);
    let r = mb.fresh_local();
    mb.store(this, flag, Operand::Const(ConstValue::Bool(true)));
    mb.new_(r, runner);
    mb.call(
        None,
        InvokeKind::Special,
        rinit,
        Some(r),
        vec![Operand::Local(this)],
    );
    mb.call(
        None,
        InvokeKind::Virtual,
        fw.run_on_ui_thread,
        Some(this),
        vec![Operand::Local(r)],
    );
    mb.ret(None);
    mb.finish();

    let harness = generate(app.finish().unwrap());
    let analysis = analyze(&harness, SelectorKind::ActionSensitive(1));
    let accesses = collect_accesses(&analysis, &harness.app.program, Some(harness.harness_class));
    let xf = harness
        .app
        .program
        .declared_field(harness.app.program.class_by_name("Act").unwrap(), "x")
        .unwrap();
    let a = access_in(&accesses, &analysis, xf, true, |k| {
        matches!(k, ActionKind::RunnablePost)
    });
    let b = access_in(&accesses, &analysis, xf, true, |k| {
        matches!(
            k,
            ActionKind::Lifecycle {
                event: android_model::LifecycleEvent::Pause,
                ..
            }
        )
    });
    let mut refuter = Refuter::new(&analysis, &harness.app.program, RefuterConfig::default());
    assert_eq!(
        refuter.refute_pair(a, b),
        Outcome::Refuted,
        "guard conflict must be found two frames deep"
    );
}

#[test]
fn disabling_the_cache_gives_the_same_verdicts() {
    let f = fig8();
    let analysis = analyze(&f.harness, SelectorKind::ActionSensitive(1));
    let accesses = collect_accesses(
        &analysis,
        &f.harness.app.program,
        Some(f.harness.harness_class),
    );
    let pairs: Vec<(&Access, &Access)> = {
        let mut v = Vec::new();
        for i in 0..accesses.len() {
            for j in i + 1..accesses.len() {
                let (a, b) = (&accesses[i], &accesses[j]);
                if a.action != b.action && (a.is_write || b.is_write) && a.overlaps(b) {
                    v.push((a, b));
                }
            }
        }
        v
    };
    let run = |use_cache: bool| {
        let cfg = RefuterConfig {
            use_cache,
            ..Default::default()
        };
        let mut r = Refuter::new(&analysis, &f.harness.app.program, cfg);
        pairs
            .iter()
            .map(|(a, b)| r.refute_pair(a, b))
            .collect::<Vec<_>>()
    };
    // The paper's cache is deliberately aggressive (§5 "Caching"): paths
    // entering a node visited by a refuted query are pruned, so the cache
    // can only *add* refutations, never remove one.
    let with_cache = run(true);
    let without = run(false);
    assert_eq!(with_cache.len(), without.len());
    for (w, wo) in with_cache.iter().zip(&without) {
        if *wo == Outcome::Refuted {
            assert_eq!(*w, Outcome::Refuted, "cache must preserve refutations");
        }
    }
    let refuted = |v: &[Outcome]| v.iter().filter(|o| **o == Outcome::Refuted).count();
    assert!(refuted(&with_cache) >= refuted(&without));
}
