//! End-to-end tests of the points-to analysis over harnessed apps.

use crate::{analyze, collect_accesses, SelectorKind};
use android_model::{ActionKind, AndroidAppBuilder, GuiEventKind, LifecycleEvent, ThreadKind};
use apir::{ConstValue, InvokeKind, Operand, Type};
use harness_gen::generate;

/// Builds the Figure-1 style app: an activity whose `onClick` executes an
/// `AsyncTask` that writes the adapter's data in `doInBackground`, while
/// `onScroll` reads it.
fn news_app() -> harness_gen::HarnessResult {
    let mut app = AndroidAppBuilder::new("News");
    let fw = app.framework().clone();

    let mut cb = app.subclass("NewsAdapter", fw.adapter);
    let data = cb.field("data", Type::Ref(fw.object));
    let adapter_class = cb.build();

    let mut cb = app.subclass("LoaderTask", fw.async_task);
    let task_adapter = cb.field("adapter", Type::Ref(adapter_class));
    let task_class = cb.build();

    let mut cb = app.activity("NewsActivity");
    cb.add_interface(fw.on_click_listener);
    cb.add_interface(fw.on_scroll_listener);
    let act_adapter = cb.field("adapter", Type::Ref(adapter_class));
    let activity = cb.build();

    // LoaderTask.<init>(adapter) { this.adapter = adapter }
    let mut mb = app.method(task_class, "<init>");
    mb.set_param_count(2);
    let (this, a) = (mb.param(0), mb.param(1));
    mb.store(this, task_adapter, Operand::Local(a));
    mb.ret(None);
    let task_init = mb.finish();

    // LoaderTask.doInBackground { news = new Object; this.adapter.data = news }
    let mut mb = app.method(task_class, "doInBackground");
    mb.set_param_count(1);
    let this = mb.param(0);
    let ad = mb.fresh_local();
    let news = mb.fresh_local();
    mb.new_(news, fw.object);
    mb.load(ad, this, task_adapter);
    mb.store(ad, data, Operand::Local(news));
    mb.ret(None);
    mb.finish();

    // LoaderTask.onPostExecute { this.adapter.notifyDataSetChanged() }
    let mut mb = app.method(task_class, "onPostExecute");
    mb.set_param_count(1);
    let this = mb.param(0);
    let ad = mb.fresh_local();
    mb.load(ad, this, task_adapter);
    mb.vcall(fw.notify_data_set_changed, ad, vec![]);
    mb.ret(None);
    mb.finish();

    // Activity.onCreate { rv = findViewById(1); adapter = new NewsAdapter;
    //   this.adapter = adapter; rv.setOnClickListener(this);
    //   rv.setOnScrollListener(this) }
    let mut mb = app.method(activity, "onCreate");
    mb.set_param_count(1);
    let this = mb.param(0);
    let rv = mb.fresh_local();
    let ad = mb.fresh_local();
    mb.call(
        Some(rv),
        InvokeKind::Virtual,
        fw.find_view_by_id,
        Some(this),
        vec![Operand::Const(ConstValue::Int(1))],
    );
    mb.new_(ad, adapter_class);
    mb.store(this, act_adapter, Operand::Local(ad));
    mb.call(
        None,
        InvokeKind::Virtual,
        fw.set_on_click_listener,
        Some(rv),
        vec![Operand::Local(this)],
    );
    mb.call(
        None,
        InvokeKind::Virtual,
        fw.set_on_scroll_listener,
        Some(rv),
        vec![Operand::Local(this)],
    );
    mb.ret(None);
    mb.finish();

    // Activity.onClick { t = new LoaderTask(this.adapter); t.execute() }
    let mut mb = app.method(activity, "onClick");
    mb.set_param_count(2);
    let this = mb.param(0);
    let ad = mb.fresh_local();
    let t = mb.fresh_local();
    mb.load(ad, this, act_adapter);
    mb.new_(t, task_class);
    mb.call(
        None,
        InvokeKind::Special,
        task_init,
        Some(t),
        vec![Operand::Local(ad)],
    );
    mb.call(
        None,
        InvokeKind::Virtual,
        fw.async_task_execute,
        Some(t),
        vec![],
    );
    mb.ret(None);
    mb.finish();

    // Activity.onScroll { x = this.adapter.data }
    let mut mb = app.method(activity, "onScroll");
    mb.set_param_count(2);
    let this = mb.param(0);
    let ad = mb.fresh_local();
    let x = mb.fresh_local();
    mb.load(ad, this, act_adapter);
    mb.load(x, ad, data);
    mb.ret(None);
    mb.finish();

    generate(app.finish().unwrap())
}

#[test]
fn news_app_actions_and_posts() {
    let h = news_app();
    let a = analyze(&h, SelectorKind::ActionSensitive(1));

    let lifecycle = a
        .actions
        .actions()
        .iter()
        .filter(|x| matches!(x.kind, ActionKind::Lifecycle { .. }))
        .count();
    assert_eq!(lifecycle, 9, "9 lifecycle callback instances per Figure 5");

    let gui: Vec<_> = a
        .actions
        .actions()
        .iter()
        .filter(|x| matches!(x.kind, ActionKind::Gui { .. }))
        .collect();
    assert_eq!(gui.len(), 2, "onClick and onScroll registrations");

    let bg = a
        .actions
        .actions()
        .iter()
        .find(|x| matches!(x.kind, ActionKind::AsyncTaskBg))
        .expect("doInBackground action");
    assert!(matches!(bg.thread, ThreadKind::Background(Some(_))));
    let post = a
        .actions
        .actions()
        .iter()
        .find(|x| matches!(x.kind, ActionKind::AsyncTaskPost))
        .expect("onPostExecute action");
    assert_eq!(post.thread, ThreadKind::Main);

    // The onClick action posted the task actions.
    let click = gui
        .iter()
        .find(|x| {
            matches!(
                x.kind,
                ActionKind::Gui {
                    event: GuiEventKind::Click,
                    ..
                }
            )
        })
        .unwrap();
    assert!(a
        .posts
        .iter()
        .any(|p| p.poster == click.id && p.posted == bg.id));
    assert!(a
        .posts
        .iter()
        .any(|p| p.poster == click.id && p.posted == post.id));
}

#[test]
fn news_app_accesses_overlap_between_bg_write_and_scroll_read() {
    let h = news_app();
    let a = analyze(&h, SelectorKind::ActionSensitive(1));
    let accesses = collect_accesses(&a, &h.app.program, Some(h.harness_class));
    let data_field = h.app.program.class_by_name("NewsAdapter").unwrap();
    let data_field = h.app.program.declared_field(data_field, "data").unwrap();

    let writes: Vec<_> = accesses
        .iter()
        .filter(|x| x.is_write && x.field == data_field)
        .collect();
    let reads: Vec<_> = accesses
        .iter()
        .filter(|x| !x.is_write && x.field == data_field)
        .collect();
    assert!(!writes.is_empty() && !reads.is_empty());
    let w = writes
        .iter()
        .find(|x| matches!(a.actions.action(x.action).kind, ActionKind::AsyncTaskBg))
        .expect("write attributed to doInBackground action");
    let r = reads
        .iter()
        .find(|x| {
            matches!(
                a.actions.action(x.action).kind,
                ActionKind::Gui {
                    event: GuiEventKind::Scroll,
                    ..
                }
            )
        })
        .expect("read attributed to onScroll action");
    assert!(
        w.overlaps(r),
        "bg write and scroll read must alias the adapter"
    );
}

/// Two different GUI actions call the same helper that allocates an object
/// and writes a field on it. Action-sensitivity keeps the two allocations
/// apart; plain hybrid(1) conflates them (§3.3's `foo`/`bar` example).
fn factory_app() -> harness_gen::HarnessResult {
    let mut app = AndroidAppBuilder::new("Factory");
    let fw = app.framework().clone();
    let mut cb = app.subclass("Holder", fw.object);
    let xf = cb.field("x", Type::Int);
    let holder = cb.build();

    let mut cb = app.activity("Main");
    cb.add_interface(fw.on_click_listener);
    cb.add_interface(fw.on_long_click_listener);
    let activity = cb.build();

    // helper() { h = new Holder; h.x = 1 }
    let mut mb = app.method(activity, "helper");
    mb.set_param_count(1);
    let h = mb.fresh_local();
    mb.new_(h, holder);
    mb.store(h, xf, Operand::Const(ConstValue::Int(1)));
    mb.ret(None);
    let helper = mb.finish();

    // onClick / onLongClick both call helperBody().
    for name in ["onClick", "onLongClick"] {
        let mut mb = app.method(activity, name);
        mb.set_param_count(2);
        let this = mb.param(0);
        mb.vcall(helper, this, vec![]);
        mb.ret(None);
        mb.finish();
    }

    // onCreate registers both listeners on a view.
    let mut mb = app.method(activity, "onCreate");
    mb.set_param_count(1);
    let this = mb.param(0);
    let v = mb.fresh_local();
    mb.call(
        Some(v),
        InvokeKind::Virtual,
        fw.find_view_by_id,
        Some(this),
        vec![Operand::Const(ConstValue::Int(9))],
    );
    mb.call(
        None,
        InvokeKind::Virtual,
        fw.set_on_click_listener,
        Some(v),
        vec![Operand::Local(this)],
    );
    mb.call(
        None,
        InvokeKind::Virtual,
        fw.set_on_long_click_listener,
        Some(v),
        vec![Operand::Local(this)],
    );
    mb.ret(None);
    mb.finish();

    generate(app.finish().unwrap())
}

#[test]
fn action_sensitivity_separates_per_action_allocations() {
    let h = factory_app();
    let program = &h.app.program;
    let holder = program.class_by_name("Holder").unwrap();
    let xf = program.declared_field(holder, "x").unwrap();

    let count_holder_writes = |sel: SelectorKind| {
        let a = analyze(&h, sel);
        let accesses = collect_accesses(&a, program, Some(h.harness_class));
        let writes: Vec<_> = accesses
            .into_iter()
            .filter(|x| x.is_write && x.field == xf)
            .collect();
        let mut overlapping_cross_action = 0;
        for i in 0..writes.len() {
            for j in i + 1..writes.len() {
                if writes[i].action != writes[j].action && writes[i].overlaps(&writes[j]) {
                    overlapping_cross_action += 1;
                }
            }
        }
        overlapping_cross_action
    };

    assert!(
        count_holder_writes(SelectorKind::Hybrid(1)) > 0,
        "hybrid(1) conflates the two per-action allocations"
    );
    assert_eq!(
        count_holder_writes(SelectorKind::ActionSensitive(1)),
        0,
        "action-sensitivity separates them"
    );
}

#[test]
fn thread_with_runnable_reaches_run_body() {
    let mut app = AndroidAppBuilder::new("Threads");
    let fw = app.framework().clone();
    let mut cb = app.subclass("Work", fw.object);
    cb.add_interface(fw.runnable);
    let done = cb.field("done", Type::Bool);
    let work = cb.build();
    let mut mb = app.method(work, "run");
    mb.set_param_count(1);
    let this = mb.param(0);
    mb.store(this, done, Operand::Const(ConstValue::Bool(true)));
    mb.ret(None);
    mb.finish();

    let activity = app.activity("Main").build();
    let mut mb = app.method(activity, "onCreate");
    mb.set_param_count(1);
    let r = mb.fresh_local();
    let t = mb.fresh_local();
    mb.new_(r, work);
    mb.new_(t, fw.thread);
    mb.call(
        None,
        InvokeKind::Special,
        fw.thread_init,
        Some(t),
        vec![Operand::Local(r)],
    );
    mb.call(None, InvokeKind::Virtual, fw.thread_start, Some(t), vec![]);
    mb.ret(None);
    mb.finish();

    let h = generate(app.finish().unwrap());
    let a = analyze(&h, SelectorKind::ActionSensitive(1));
    let thread_action = a
        .actions
        .actions()
        .iter()
        .find(|x| matches!(x.kind, ActionKind::ThreadRun))
        .expect("thread action");
    assert!(
        matches!(thread_action.thread, ThreadKind::Background(Some(id)) if id == thread_action.id)
    );

    // Work.run's store must be attributed to the thread action.
    let accesses = collect_accesses(&a, &h.app.program, Some(h.harness_class));
    let run_writes: Vec<_> = accesses
        .iter()
        .filter(|x| x.is_write && x.field == done)
        .collect();
    assert_eq!(run_writes.len(), 1);
    assert_eq!(run_writes[0].action, thread_action.id);
}

#[test]
fn handler_message_gets_constant_what_and_main_looper() {
    let mut app = AndroidAppBuilder::new("Handlers");
    let fw = app.framework().clone();
    let mut cb = app.subclass("MyHandler", fw.handler);
    let seen = cb.field("seen", Type::Int);
    let my_handler = cb.build();
    let mut mb = app.method(my_handler, "handleMessage");
    mb.set_param_count(2);
    let this = mb.param(0);
    mb.store(this, seen, Operand::Const(ConstValue::Int(1)));
    mb.ret(None);
    mb.finish();

    let mut cb = app.activity("Main");
    let hf = cb.field("h", Type::Ref(my_handler));
    let activity = cb.build();
    let mut mb = app.method(activity, "onCreate");
    mb.set_param_count(1);
    let this = mb.param(0);
    let h = mb.fresh_local();
    mb.new_(h, my_handler);
    mb.store(this, hf, Operand::Local(h));
    mb.ret(None);
    mb.finish();
    let mut mb = app.method(activity, "onResume");
    mb.set_param_count(1);
    let this = mb.param(0);
    let h = mb.fresh_local();
    mb.load(h, this, hf);
    mb.call(
        None,
        InvokeKind::Virtual,
        fw.handler_send_empty_message,
        Some(h),
        vec![Operand::Const(ConstValue::Int(3))],
    );
    mb.ret(None);
    mb.finish();

    let h = generate(app.finish().unwrap());
    let a = analyze(&h, SelectorKind::ActionSensitive(1));
    let msg = a
        .actions
        .actions()
        .iter()
        .find(|x| matches!(x.kind, ActionKind::MessageHandle { .. }))
        .expect("message action");
    assert_eq!(msg.kind, ActionKind::MessageHandle { what: Some(3) });
    assert_eq!(
        msg.thread,
        ThreadKind::Main,
        "handler allocated on the main thread"
    );
}

#[test]
fn find_view_by_id_aliases_across_actions() {
    let mut app = AndroidAppBuilder::new("Views");
    let fw = app.framework().clone();
    let activity = app.activity("Main").build();
    let mut layout = android_model::Layout::new(activity);
    layout.add_view(android_model::ViewDecl::new(5, fw.text_view));
    app.add_layout(layout);

    for cb_name in ["onCreate", "onPause"] {
        let mut mb = app.method(activity, cb_name);
        mb.set_param_count(1);
        let this = mb.param(0);
        let v = mb.fresh_local();
        let s = mb.fresh_local();
        mb.const_(s, ConstValue::Str(apir::Symbol(0)));
        mb.call(
            Some(v),
            InvokeKind::Virtual,
            fw.find_view_by_id,
            Some(this),
            vec![Operand::Const(ConstValue::Int(5))],
        );
        mb.call(
            None,
            InvokeKind::Virtual,
            fw.set_text,
            Some(v),
            vec![Operand::Local(s)],
        );
        mb.ret(None);
        mb.finish();
    }

    let h = generate(app.finish().unwrap());
    let a = analyze(&h, SelectorKind::ActionSensitive(1));
    let accesses = collect_accesses(&a, &h.app.program, Some(h.harness_class));
    let text_writes: Vec<_> = accesses
        .iter()
        .filter(|x| x.is_write && x.field == fw.text_view_text)
        .collect();
    // setText's store is reached under both caller actions (onCreate and
    // onPause), and in each the base is the *same* single inflated view.
    assert_eq!(text_writes.len(), 2, "one store per caller action context");
    assert_eq!(text_writes[0].base.len(), 1);
    assert_eq!(
        text_writes[0].base, text_writes[1].base,
        "inflated view aliases across actions"
    );
    assert_ne!(text_writes[0].action, text_writes[1].action);
    assert!(text_writes[0].overlaps(text_writes[1]));
}

#[test]
fn lifecycle_actions_cover_both_instances() {
    let h = news_app();
    let a = analyze(&h, SelectorKind::ActionSensitive(1));
    let starts: Vec<u8> = a
        .actions
        .actions()
        .iter()
        .filter_map(|x| match x.kind {
            ActionKind::Lifecycle {
                event: LifecycleEvent::Start,
                instance,
            } => Some(instance),
            _ => None,
        })
        .collect();
    assert_eq!(starts.len(), 2);
    assert!(starts.contains(&1) && starts.contains(&2));
}

#[test]
fn index_sensitive_containers_separate_slots() {
    use crate::solver::AnalysisOptions;
    // onCreate writes buf.setAt(0, ...); onPause reads buf.getAt(1).
    let mut app = AndroidAppBuilder::new("Indexed");
    let fw = app.framework().clone();
    let mut cb = app.activity("Main");
    let buf = cb.field("buf", Type::Ref(fw.array_list));
    let activity = cb.build();
    let mut mb = app.method(activity, "onCreate");
    mb.set_param_count(1);
    let this = mb.param(0);
    let (b, v) = (mb.fresh_local(), mb.fresh_local());
    mb.new_(b, fw.array_list);
    mb.store(this, buf, Operand::Local(b));
    mb.new_(v, fw.object);
    mb.call(
        None,
        InvokeKind::Virtual,
        fw.array_list_set_at,
        Some(b),
        vec![Operand::Const(ConstValue::Int(0)), Operand::Local(v)],
    );
    mb.ret(None);
    mb.finish();
    let mut mb = app.method(activity, "onPause");
    mb.set_param_count(1);
    let this = mb.param(0);
    let (b, x) = (mb.fresh_local(), mb.fresh_local());
    mb.load(b, this, buf);
    mb.call(
        Some(x),
        InvokeKind::Virtual,
        fw.array_list_get_at,
        Some(b),
        vec![Operand::Const(ConstValue::Int(1))],
    );
    mb.ret(None);
    mb.finish();
    let h = generate(app.finish().unwrap());

    // Index-sensitive: the slot-0 write and slot-1 read touch different
    // fields and cannot overlap.
    let a = crate::solver::analyze_opts(
        &h,
        SelectorKind::ActionSensitive(1),
        AnalysisOptions {
            index_sensitive: true,
            ..AnalysisOptions::default()
        },
    );
    let accesses = collect_accesses(&a, &h.app.program, Some(h.harness_class));
    let slot_accs: Vec<_> = accesses
        .iter()
        .filter(|x| {
            let n = h.app.program.field_name(x.field);
            n.starts_with("idx") || n == "contents"
        })
        .collect();
    assert_eq!(slot_accs.len(), 2, "{slot_accs:?}");
    assert!(
        !slot_accs[0].overlaps(slot_accs[1]),
        "different slots must not overlap"
    );

    // Index-insensitive: both fold onto `contents` and overlap.
    let a = crate::solver::analyze_opts(
        &h,
        SelectorKind::ActionSensitive(1),
        AnalysisOptions {
            index_sensitive: false,
            ..AnalysisOptions::default()
        },
    );
    let accesses = collect_accesses(&a, &h.app.program, Some(h.harness_class));
    let slot_accs: Vec<_> = accesses
        .iter()
        .filter(|x| h.app.program.field_name(x.field) == "contents")
        .collect();
    assert_eq!(slot_accs.len(), 2);
    assert!(
        slot_accs[0].overlaps(slot_accs[1]),
        "summary model conflates slots"
    );
}

#[test]
fn handler_allocated_on_background_thread_binds_its_looper() {
    // A handler created inside Thread.run delivers to that thread's looper
    // (the §4.4 in-thread reachability rule), not to main.
    let mut app = AndroidAppBuilder::new("BgLooper");
    let fw = app.framework().clone();
    let mut cb = app.subclass("BgHandler", fw.handler);
    let seen = cb.field("seen", Type::Int);
    let bg_handler = cb.build();
    let mut mb = app.method(bg_handler, "handleMessage");
    mb.set_param_count(2);
    let this = mb.param(0);
    mb.store(this, seen, Operand::Const(ConstValue::Int(1)));
    mb.ret(None);
    mb.finish();

    // Worker thread: h = new BgHandler(); h.sendEmptyMessage(1).
    let mut cb = app.subclass("Worker", fw.object);
    cb.add_interface(fw.runnable);
    let worker = cb.build();
    let mut mb = app.method(worker, "run");
    mb.set_param_count(1);
    let h = mb.fresh_local();
    mb.new_(h, bg_handler);
    mb.call(
        None,
        InvokeKind::Virtual,
        fw.handler_send_empty_message,
        Some(h),
        vec![Operand::Const(ConstValue::Int(1))],
    );
    mb.ret(None);
    mb.finish();

    let activity = app.activity("Main").build();
    let mut mb = app.method(activity, "onCreate");
    mb.set_param_count(1);
    let (w, t) = (mb.fresh_local(), mb.fresh_local());
    mb.new_(w, worker);
    mb.new_(t, fw.thread);
    mb.call(
        None,
        InvokeKind::Special,
        fw.thread_init,
        Some(t),
        vec![Operand::Local(w)],
    );
    mb.call(None, InvokeKind::Virtual, fw.thread_start, Some(t), vec![]);
    mb.ret(None);
    mb.finish();

    let h = generate(app.finish().unwrap());
    let a = analyze(&h, SelectorKind::ActionSensitive(1));
    let thread_action = a
        .actions
        .actions()
        .iter()
        .find(|x| matches!(x.kind, ActionKind::ThreadRun))
        .expect("thread action")
        .id;
    let msg = a
        .actions
        .actions()
        .iter()
        .find(|x| matches!(x.kind, ActionKind::MessageHandle { .. }))
        .expect("message action");
    assert_eq!(
        msg.thread,
        ThreadKind::Background(Some(thread_action)),
        "the message must deliver to the allocating thread's looper"
    );
    assert!(!msg.on_main());
}

#[test]
fn new_framework_families_mint_their_action_kinds() {
    // Timer / location / media / text-watcher families end to end.
    let mut app = AndroidAppBuilder::new("Families");
    let mut truth = corpus_free_truth();
    corpus_plant(&mut app, "com.fam.Timer", 14, &mut truth); // TimerTick
    corpus_plant(&mut app, "com.fam.Loc", 15, &mut truth); // LocationTracker
    corpus_plant(&mut app, "com.fam.Media", 16, &mut truth); // MediaNotify
    corpus_plant(&mut app, "com.fam.Watch", 17, &mut truth); // WatcherSync
    let h = generate(app.finish().unwrap());
    let a = analyze(&h, SelectorKind::ActionSensitive(1));
    let kinds: Vec<&ActionKind> = a.actions.actions().iter().map(|x| &x.kind).collect();
    assert!(kinds.iter().any(|k| matches!(k, ActionKind::TimerTask)));
    assert!(kinds
        .iter()
        .any(|k| matches!(k, ActionKind::LocationUpdate)));
    assert!(kinds
        .iter()
        .any(|k| matches!(k, ActionKind::MediaCompletion)));
    assert!(kinds.iter().any(|k| matches!(
        k,
        ActionKind::Gui {
            event: GuiEventKind::TextChanged,
            ..
        }
    )));
}

// Small helpers so this test file does not depend on `corpus` (which would
// be a dependency cycle): replicate the idiom dispatch indices.
fn corpus_free_truth() -> Vec<(String, String)> {
    Vec::new()
}

fn corpus_plant(
    app: &mut AndroidAppBuilder,
    name: &str,
    idiom_index: usize,
    _truth: &mut Vec<(String, String)>,
) {
    // Indices follow corpus::Idiom::ALL; we re-build the four families
    // inline to avoid the dependency.
    let fw = app.framework().clone();
    match idiom_index {
        14 => {
            // TimerTick (abridged): timer.schedule(task) in onCreate.
            let mut cb = app.activity(name);
            let ticks = cb.field("ticks", Type::Int);
            let activity = cb.build();
            let task_cls = app.subclass(&format!("{name}$T"), fw.timer_task).build();
            let mut mb = app.method(task_cls, "run");
            mb.set_param_count(1);
            mb.ret(None);
            mb.finish();
            let mut mb = app.method(activity, "onCreate");
            mb.set_param_count(1);
            let (timer, t, x) = (mb.fresh_local(), mb.fresh_local(), mb.fresh_local());
            mb.new_(timer, fw.timer);
            mb.new_(t, task_cls);
            mb.call(
                None,
                InvokeKind::Virtual,
                fw.timer_schedule,
                Some(timer),
                vec![Operand::Local(t), Operand::Const(ConstValue::Int(5))],
            );
            let this = mb.param(0);
            mb.load(x, this, ticks);
            mb.ret(None);
            mb.finish();
        }
        15 => {
            let mut cb = app.activity(name);
            cb.add_interface(fw.location_listener);
            let activity = cb.build();
            let mut mb = app.method(activity, "onLocationChanged");
            mb.set_param_count(2);
            mb.ret(None);
            mb.finish();
            let mut mb = app.method(activity, "onCreate");
            mb.set_param_count(1);
            let this = mb.param(0);
            let lm = mb.fresh_local();
            mb.new_(lm, fw.location_manager);
            mb.call(
                None,
                InvokeKind::Virtual,
                fw.request_location_updates,
                Some(lm),
                vec![Operand::Local(this)],
            );
            mb.ret(None);
            mb.finish();
        }
        16 => {
            let mut cb = app.activity(name);
            cb.add_interface(fw.on_completion_listener);
            let activity = cb.build();
            let mut mb = app.method(activity, "onCompletion");
            mb.set_param_count(2);
            mb.ret(None);
            mb.finish();
            let mut mb = app.method(activity, "onCreate");
            mb.set_param_count(1);
            let this = mb.param(0);
            let mp = mb.fresh_local();
            mb.new_(mp, fw.media_player);
            mb.call(
                None,
                InvokeKind::Virtual,
                fw.set_on_completion_listener,
                Some(mp),
                vec![Operand::Local(this)],
            );
            mb.ret(None);
            mb.finish();
        }
        _ => {
            let mut cb = app.activity(name);
            cb.add_interface(fw.text_watcher);
            let activity = cb.build();
            let mut mb = app.method(activity, "afterTextChanged");
            mb.set_param_count(2);
            mb.ret(None);
            mb.finish();
            let mut mb = app.method(activity, "onCreate");
            mb.set_param_count(1);
            let this = mb.param(0);
            let tv = mb.fresh_local();
            mb.call(
                Some(tv),
                InvokeKind::Virtual,
                fw.find_view_by_id,
                Some(this),
                vec![Operand::Const(ConstValue::Int(1))],
            );
            mb.call(
                None,
                InvokeKind::Virtual,
                fw.add_text_changed_listener,
                Some(tv),
                vec![Operand::Local(this)],
            );
            mb.ret(None);
            mb.finish();
        }
    }
}

// ---- cycle-collapse equivalence (perf overhaul regression suite) ----

mod cycle_collapse {
    use super::*;
    use crate::solver::{analyze_opts, Analysis, AnalysisOptions, WorklistPolicy};
    use apir::{Local, MethodId};
    use sierra_prng::SplitMix64;

    /// Canonical, run-independent rendering of a points-to set: object
    /// ids are resolved to their interned [`crate::ObjData`], which is
    /// content-addressed (alloc site, heap context, class) and therefore
    /// stable across solver schedules.
    fn canon_pts(a: &Analysis, m: MethodId, l: Local) -> Vec<String> {
        let mut out: Vec<String> = a
            .contexts_of(m)
            .iter()
            .flat_map(|&ctx| {
                a.pts_var(m, ctx, l)
                    .iter()
                    .map(|o| format!("{:?}", a.objs.get(o)))
            })
            .collect();
        out.sort();
        out
    }

    /// Canonical rendering of every access the analysis extracts.
    fn canon_accesses(a: &Analysis, h: &harness_gen::HarnessResult) -> Vec<String> {
        collect_accesses(a, &h.app.program, Some(h.harness_class))
            .iter()
            .map(|x| {
                let mut base: Vec<String> = x
                    .base
                    .iter()
                    .map(|&o| format!("{:?}", a.objs.get(o)))
                    .collect();
                base.sort();
                format!(
                    "{:?} w={} f={:?} static={} base={base:?}",
                    x.addr, x.is_write, x.field, x.is_static
                )
            })
            .collect()
    }

    /// An activity whose `onCreate` contains a pure copy cycle
    /// `a → b → c → a` seeded from one allocation: the smallest graph on
    /// which lazy cycle detection must fire and fold a multi-node SCC.
    fn copy_cycle_harness() -> (harness_gen::HarnessResult, MethodId, Vec<Local>) {
        let mut app = AndroidAppBuilder::new("Cycle");
        let fw = app.framework().clone();
        let activity = app.activity("Main").build();
        let mut mb = app.method(activity, "onCreate");
        mb.set_param_count(1);
        let x = mb.fresh_local();
        let a = mb.fresh_local();
        let b = mb.fresh_local();
        let c = mb.fresh_local();
        mb.new_(x, fw.object);
        mb.move_(a, x);
        mb.move_(b, a);
        mb.move_(c, b);
        mb.move_(a, c); // closes the a → b → c → a inclusion cycle
        mb.ret(None);
        let m = mb.finish();
        (generate(app.finish().unwrap()), m, vec![x, a, b, c])
    }

    #[test]
    fn copy_cycle_fixture_collapses_one_multi_node_scc() {
        let (h, m, locals) = copy_cycle_harness();
        let on = analyze_opts(
            &h,
            SelectorKind::ActionSensitive(1),
            AnalysisOptions::default(),
        );
        let off = analyze_opts(
            &h,
            SelectorKind::ActionSensitive(1),
            AnalysisOptions {
                cycle_collapse: false,
                ..AnalysisOptions::default()
            },
        );
        assert!(
            on.stats.collapsed_sccs >= 1,
            "the a→b→c→a cycle must collapse: {:?}",
            on.stats
        );
        assert!(on.stats.collapsed_nodes >= 2, "{:?}", on.stats);
        assert_eq!(off.stats.collapsed_sccs, 0);
        assert_eq!(off.stats.collapsed_nodes, 0);
        // Identical points-to results, fewer (or equal) propagations.
        for &l in &locals {
            assert_eq!(canon_pts(&on, m, l), canon_pts(&off, m, l));
            assert!(!canon_pts(&on, m, l).is_empty());
        }
        assert!(
            on.stats.propagations <= off.stats.propagations,
            "collapse must not add work: {} > {}",
            on.stats.propagations,
            off.stats.propagations
        );
    }

    /// Emits a random, cycle-rich constraint program: ≤512 locals with
    /// seeded allocations, random copies, guaranteed 3-cycles, and
    /// random field stores/loads (which exercise the pending complex
    /// constraints through collapse).
    fn random_harness(seed: u64) -> (harness_gen::HarnessResult, MethodId, Vec<Local>) {
        let mut rng = SplitMix64::new(seed);
        let mut app = AndroidAppBuilder::new("Rand");
        let fw = app.framework().clone();
        let mut cb = app.subclass("Box", fw.object);
        let f = cb.field("f", Type::Ref(fw.object));
        let g = cb.field("g", Type::Ref(fw.object));
        let boxc = cb.build();
        let activity = app.activity("Main").build();
        let mut mb = app.method(activity, "onCreate");
        mb.set_param_count(1);
        let n = 16 + rng.usize(497); // ≤ 512 constraint-graph variables
        let locals: Vec<Local> = (0..n).map(|_| mb.fresh_local()).collect();
        // Seed roughly an eighth of the locals with allocations.
        for &l in locals.iter().take((n / 8).max(2)) {
            mb.new_(l, boxc);
        }
        let pick = |rng: &mut SplitMix64, locals: &[Local]| locals[rng.usize(locals.len())];
        for _ in 0..(2 * n) {
            match rng.usize(10) {
                // Random copy edge.
                0..=4 => {
                    let (d, s) = (pick(&mut rng, &locals), pick(&mut rng, &locals));
                    mb.move_(d, s);
                }
                // Guaranteed copy 3-cycle.
                5..=6 => {
                    let (a, b, c) = (
                        pick(&mut rng, &locals),
                        pick(&mut rng, &locals),
                        pick(&mut rng, &locals),
                    );
                    mb.move_(b, a);
                    mb.move_(c, b);
                    mb.move_(a, c);
                }
                // Field store: o.f = v.
                7..=8 => {
                    let (o, v) = (pick(&mut rng, &locals), pick(&mut rng, &locals));
                    let fld = if rng.bool() { f } else { g };
                    mb.store(o, fld, Operand::Local(v));
                }
                // Field load: d = o.f.
                _ => {
                    let (d, o) = (pick(&mut rng, &locals), pick(&mut rng, &locals));
                    let fld = if rng.bool() { f } else { g };
                    mb.load(d, o, fld);
                }
            }
        }
        mb.ret(None);
        let m = mb.finish();
        (generate(app.finish().unwrap()), m, locals)
    }

    #[test]
    fn randomized_graphs_solve_identically_with_and_without_collapse() {
        let mut total_collapsed = 0usize;
        for seed in 0..6u64 {
            let (h, m, locals) = random_harness(seed);
            let on = analyze_opts(&h, SelectorKind::Insensitive, AnalysisOptions::default());
            let off = analyze_opts(
                &h,
                SelectorKind::Insensitive,
                AnalysisOptions {
                    cycle_collapse: false,
                    ..AnalysisOptions::default()
                },
            );
            for &l in &locals {
                assert_eq!(
                    canon_pts(&on, m, l),
                    canon_pts(&off, m, l),
                    "seed {seed}: pts diverged for {l:?}"
                );
            }
            assert_eq!(
                canon_accesses(&on, &h),
                canon_accesses(&off, &h),
                "seed {seed}"
            );
            assert_eq!(on.cg_edge_count(), off.cg_edge_count(), "seed {seed}");
            total_collapsed += on.stats.collapsed_sccs;
        }
        assert!(
            total_collapsed > 0,
            "the randomized suite must actually exercise cycle collapse"
        );
    }

    #[test]
    fn randomized_graphs_solve_identically_under_both_worklist_policies() {
        for seed in 0..4u64 {
            let (h, m, locals) = random_harness(seed);
            let lrf = analyze_opts(&h, SelectorKind::Insensitive, AnalysisOptions::default());
            let fifo = analyze_opts(
                &h,
                SelectorKind::Insensitive,
                AnalysisOptions {
                    worklist: WorklistPolicy::Fifo,
                    ..AnalysisOptions::default()
                },
            );
            for &l in &locals {
                assert_eq!(
                    canon_pts(&lrf, m, l),
                    canon_pts(&fifo, m, l),
                    "seed {seed}: pts diverged for {l:?}"
                );
            }
            assert_eq!(canon_accesses(&lrf, &h), canon_accesses(&fifo, &h));
        }
    }
}

mod artifact_roundtrip {
    use super::news_app;
    use crate::{analyze, artifact, collect_accesses, SelectorKind};

    /// Canonical projection of accesses for equality (Access lacks
    /// PartialEq by design).
    fn canon(a: &crate::Analysis, h: &harness_gen::HarnessResult) -> Vec<String> {
        let mut v: Vec<String> = collect_accesses(a, &h.app.program, Some(h.harness_class))
            .iter()
            .map(|x| {
                format!(
                    "{:?}",
                    (
                        x.action,
                        x.method,
                        x.ctx,
                        x.addr,
                        x.is_write,
                        x.field,
                        &x.base,
                        x.is_static
                    )
                )
            })
            .collect();
        v.sort();
        v
    }

    #[test]
    fn encode_is_deterministic_and_round_trips() {
        let h = news_app();
        let a = analyze(&h, SelectorKind::ActionSensitive(1));
        let blob = artifact::encode(&a);
        assert_eq!(blob, artifact::encode(&a), "encode must be deterministic");
        assert!(artifact::envelope_is_valid(&blob));
        let d = artifact::decode(&blob, h.app.framework.clone()).expect("round-trip decode");
        // Analysis has no PartialEq; byte-identical re-encode proves every
        // serialized component survived, and stats carry over verbatim.
        assert_eq!(artifact::encode(&d), blob);
        assert_eq!(d.stats, a.stats);
        assert!(
            d.stats.worklist_iterations > 0,
            "stats are the original run's"
        );
    }

    #[test]
    fn decoded_analysis_is_observationally_equivalent() {
        let h = news_app();
        let a = analyze(&h, SelectorKind::ActionSensitive(1));
        let d = artifact::decode(&artifact::encode(&a), h.app.framework.clone()).unwrap();
        assert_eq!(canon(&d, &h), canon(&a, &h));
        assert_eq!(d.reachable, a.reachable);
        assert_eq!(d.cg_edges, a.cg_edges);
        assert_eq!(d.posts, a.posts);
        assert_eq!(d.root_actions, a.root_actions);
        assert_eq!(d.actions.actions().len(), a.actions.actions().len());
    }

    #[test]
    fn envelope_rejects_truncation_corruption_and_version_skew() {
        let h = news_app();
        let a = analyze(&h, SelectorKind::ActionSensitive(1));
        let blob = artifact::encode(&a);
        let fw = h.app.framework.clone();

        // Truncated at every interesting boundary.
        for cut in [0, 7, 8, 27, blob.len() / 2, blob.len() - 1] {
            assert!(!artifact::envelope_is_valid(&blob[..cut]), "cut={cut}");
            assert!(artifact::decode(&blob[..cut], fw.clone()).is_none());
        }

        // Flipped payload byte breaks the checksum.
        let mut torn = blob.clone();
        *torn.last_mut().unwrap() ^= 0xff;
        assert!(!artifact::envelope_is_valid(&torn));
        assert!(artifact::decode(&torn, fw.clone()).is_none());

        // Version bump must read as a miss, not a parse attempt.
        let mut skewed = blob.clone();
        skewed[8] = skewed[8].wrapping_add(1);
        assert!(!artifact::envelope_is_valid(&skewed));
        assert!(artifact::decode(&skewed, fw).is_none());
    }
}
