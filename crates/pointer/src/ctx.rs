//! Context abstractions (§3.3).
//!
//! A method context is always `(action, elems)`: the enclosing concurrency
//! action plus a selector-managed string of allocation/call sites. The
//! *selector* decides how `elems` evolve at calls and — crucially — whether
//! abstract heap objects carry the allocating action. Carrying the action is
//! the paper's **action-sensitivity**: objects allocated at the same site in
//! two different actions stay distinct, which is what cuts racy pairs ~5×
//! in Table 3.

use android_model::ActionId;
use apir::{AllocSiteId, CallSiteId, ClassId};
use std::borrow::Cow;
use std::collections::HashMap;

/// One element of a context string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CtxElem {
    /// An allocation site (object-sensitivity).
    Alloc(AllocSiteId),
    /// A call site (call-site-sensitivity).
    Call(CallSiteId),
}

/// An interned method context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CtxId(pub u32);

/// The data behind a [`CtxId`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CtxData {
    /// The enclosing action (always tracked, for access attribution).
    pub action: ActionId,
    /// The selector-managed context string.
    pub elems: Vec<CtxElem>,
}

/// Interns method contexts.
#[derive(Debug, Default)]
pub struct CtxTable {
    data: Vec<CtxData>,
    map: HashMap<CtxData, CtxId>,
}

impl CtxTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a context.
    pub fn intern(&mut self, data: CtxData) -> CtxId {
        if let Some(&id) = self.map.get(&data) {
            return id;
        }
        let id = CtxId(u32::try_from(self.data.len()).expect("ctx overflow"));
        self.data.push(data.clone());
        self.map.insert(data, id);
        id
    }

    /// Resolves a context id.
    pub fn get(&self, id: CtxId) -> &CtxData {
        &self.data[id.0 as usize]
    }

    /// Every interned context, in id order (`CtxId(i)` is position `i`).
    pub fn entries(&self) -> &[CtxData] {
        &self.data
    }

    /// Rebuilds a table from an id-ordered entry list (the inverse of
    /// [`Self::entries`], for artifact deserialization). Interning the
    /// same data afterwards resolves to the original ids.
    pub fn from_entries(data: Vec<CtxData>) -> Self {
        let map = data
            .iter()
            .enumerate()
            .map(|(i, d)| (d.clone(), CtxId(i as u32)))
            .collect();
        Self { data, map }
    }

    /// Number of distinct contexts.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// An interned abstract object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjId(pub u32);

/// The data behind an [`ObjId`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ObjData {
    /// An allocation-site object with its heap context.
    Site {
        /// The allocation site.
        site: AllocSiteId,
        /// The allocating action — `Some` only under action-sensitivity.
        action: Option<ActionId>,
        /// Selector-truncated heap context string.
        elems: Vec<CtxElem>,
        /// The allocated class.
        class: ClassId,
    },
    /// An inflated view (the `InflatedViewContext` of §3.3): identified by
    /// activity and resource id, so `findViewById` calls with the same id
    /// alias across actions.
    View {
        /// The activity whose layout declares the view.
        activity: ClassId,
        /// The view resource id (negative synthetic ids for unresolved
        /// `findViewById` arguments, unique per call site).
        view_id: i64,
        /// The view's class per the layout (or the base `View`).
        class: ClassId,
    },
    /// A soundness-policy-conjured object with no program allocation
    /// site: a reflective class token (`Class.forName`), a reflective
    /// instance (`Class.newInstance`), or an intent-launched component.
    /// Keyed by the conjuring call site so tokens and instances from
    /// different sites stay distinct.
    Conjured {
        /// The denoted (token) or instantiated class.
        class: ClassId,
        /// The call site that conjured the object.
        site: CallSiteId,
    },
}

impl ObjData {
    /// The object's dynamic class.
    pub fn class(&self) -> ClassId {
        match self {
            ObjData::Site { class, .. }
            | ObjData::View { class, .. }
            | ObjData::Conjured { class, .. } => *class,
        }
    }

    /// The allocation site, for site-keyed objects.
    pub fn site(&self) -> Option<AllocSiteId> {
        match self {
            ObjData::Site { site, .. } => Some(*site),
            ObjData::View { .. } | ObjData::Conjured { .. } => None,
        }
    }

    /// The heap context string (empty for views).
    pub fn elems(&self) -> &[CtxElem] {
        match self {
            ObjData::Site { elems, .. } => elems,
            ObjData::View { .. } | ObjData::Conjured { .. } => &[],
        }
    }
}

/// Interns abstract objects.
#[derive(Debug, Default)]
pub struct ObjTable {
    data: Vec<ObjData>,
    map: HashMap<ObjData, ObjId>,
}

impl ObjTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns an object.
    pub fn intern(&mut self, data: ObjData) -> ObjId {
        if let Some(&id) = self.map.get(&data) {
            return id;
        }
        let id = ObjId(u32::try_from(self.data.len()).expect("obj overflow"));
        self.data.push(data.clone());
        self.map.insert(data, id);
        id
    }

    /// Resolves an object id.
    pub fn get(&self, id: ObjId) -> &ObjData {
        &self.data[id.0 as usize]
    }

    /// Every interned object, in id order (`ObjId(i)` is position `i`).
    pub fn entries(&self) -> &[ObjData] {
        &self.data
    }

    /// Rebuilds a table from an id-ordered entry list (the inverse of
    /// [`Self::entries`], for artifact deserialization). Interning the
    /// same data afterwards resolves to the original ids.
    pub fn from_entries(data: Vec<ObjData>) -> Self {
        let map = data
            .iter()
            .enumerate()
            .map(|(i, d)| (d.clone(), ObjId(i as u32)))
            .collect();
        Self { data, map }
    }

    /// Number of distinct objects.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// The context-sensitivity policy (§3.3 and the ablations of §6.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelectorKind {
    /// Context-insensitive.
    Insensitive,
    /// k-call-site sensitivity (k-cfa).
    KCfa(u32),
    /// k-object sensitivity (k-obj).
    KObj(u32),
    /// Hybrid: k-obj at virtual dispatch, k-cfa at static calls.
    Hybrid(u32),
    /// The paper's action-sensitivity: hybrid + the allocating action on
    /// every heap object.
    ActionSensitive(u32),
}

/// Error from parsing a context-selector spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSelectorError(String);

impl std::fmt::Display for ParseSelectorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid context spec {:?}: expected \"insensitive\" or \"action|k-cfa|k-obj|hybrid:K\"",
            self.0
        )
    }
}

impl std::error::Error for ParseSelectorError {}

impl std::fmt::Display for SelectorKind {
    /// The canonical spec syntax, re-parsable by [`FromStr`]:
    /// `insensitive`, `action:K`, `k-cfa:K`, `k-obj:K`, `hybrid:K`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SelectorKind::Insensitive => write!(f, "insensitive"),
            SelectorKind::KCfa(k) => write!(f, "k-cfa:{k}"),
            SelectorKind::KObj(k) => write!(f, "k-obj:{k}"),
            SelectorKind::Hybrid(k) => write!(f, "hybrid:{k}"),
            SelectorKind::ActionSensitive(k) => write!(f, "action:{k}"),
        }
    }
}

impl std::str::FromStr for SelectorKind {
    type Err = ParseSelectorError;

    /// Parses the spec syntax rendered by [`Display`](fmt::Display):
    /// `insensitive`, or one of `action`/`k-cfa`/`k-obj`/`hybrid`
    /// followed by `:K` (`K` defaults to 1 when omitted).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseSelectorError(s.to_owned());
        let (kind, k) = match s.split_once(':') {
            Some((kind, k)) => (kind, Some(k.parse::<u32>().map_err(|_| err())?)),
            None => (s, None),
        };
        match (kind, k) {
            ("insensitive", None) => Ok(SelectorKind::Insensitive),
            ("action", k) => Ok(SelectorKind::ActionSensitive(k.unwrap_or(1))),
            ("k-cfa", k) => Ok(SelectorKind::KCfa(k.unwrap_or(1))),
            ("k-obj", k) => Ok(SelectorKind::KObj(k.unwrap_or(1))),
            ("hybrid", k) => Ok(SelectorKind::Hybrid(k.unwrap_or(1))),
            _ => Err(err()),
        }
    }
}

impl SelectorKind {
    /// Human-readable name (used in ablation tables).
    pub fn name(self) -> String {
        match self {
            SelectorKind::Insensitive => "insensitive".into(),
            SelectorKind::KCfa(k) => format!("{k}-cfa"),
            SelectorKind::KObj(k) => format!("{k}-obj"),
            SelectorKind::Hybrid(k) => format!("hybrid({k})"),
            SelectorKind::ActionSensitive(k) => format!("action+hybrid({k})"),
        }
    }

    fn k(self) -> usize {
        match self {
            SelectorKind::Insensitive => 0,
            SelectorKind::KCfa(k)
            | SelectorKind::KObj(k)
            | SelectorKind::Hybrid(k)
            | SelectorKind::ActionSensitive(k) => k as usize,
        }
    }

    /// Whether heap objects carry the allocating action.
    pub fn action_sensitive(self) -> bool {
        matches!(self, SelectorKind::ActionSensitive(_))
    }

    /// Context string for a virtually-dispatched callee, given the caller's
    /// string and the receiver object.
    ///
    /// Returns a [`Cow`] so selectors that pass an existing string
    /// through unchanged (insensitive, already-short k-obj chains)
    /// borrow instead of allocating; callers that need ownership use
    /// `into_owned`.
    pub fn virtual_elems<'a>(
        self,
        caller: &'a [CtxElem],
        site: CallSiteId,
        recv: &'a ObjData,
    ) -> Cow<'a, [CtxElem]> {
        match self {
            SelectorKind::Insensitive => Cow::Borrowed(&[]),
            SelectorKind::KCfa(_) => truncate_last(caller, Some(CtxElem::Call(site)), self.k()),
            SelectorKind::KObj(_) | SelectorKind::Hybrid(_) | SelectorKind::ActionSensitive(_) => {
                let alloc = recv.site().map(CtxElem::Alloc);
                truncate_last(recv.elems(), alloc, self.k())
            }
        }
    }

    /// Context string for a static/special callee. See
    /// [`SelectorKind::virtual_elems`] for the borrowing contract.
    pub fn static_elems<'a>(self, caller: &'a [CtxElem], site: CallSiteId) -> Cow<'a, [CtxElem]> {
        match self {
            SelectorKind::Insensitive => Cow::Borrowed(&[]),
            SelectorKind::KObj(_) => Cow::Borrowed(caller),
            SelectorKind::KCfa(_) | SelectorKind::Hybrid(_) | SelectorKind::ActionSensitive(_) => {
                truncate_last(caller, Some(CtxElem::Call(site)), self.k())
            }
        }
    }

    /// Heap context for an allocation in `ctx`. The string borrows from
    /// `ctx` whenever truncation is a no-op.
    pub fn heap_ctx<'a>(self, ctx: &'a CtxData) -> (Option<ActionId>, Cow<'a, [CtxElem]>) {
        let action = if self.action_sensitive() {
            Some(ctx.action)
        } else {
            None
        };
        (action, truncate_last(&ctx.elems, None, self.k()))
    }
}

/// Keeps the last `k` elements of `base ++ [extra]`, borrowing `base`
/// when the result is exactly `base` (no append, no truncation).
fn truncate_last(base: &[CtxElem], extra: Option<CtxElem>, k: usize) -> Cow<'_, [CtxElem]> {
    match extra {
        None if base.len() <= k => Cow::Borrowed(base),
        None => Cow::Owned(base[base.len() - k..].to_vec()),
        Some(_) if k == 0 => Cow::Borrowed(&[]),
        Some(e) => {
            let keep_base = (k - 1).min(base.len());
            let mut v = Vec::with_capacity(keep_base + 1);
            v.extend_from_slice(&base[base.len() - keep_base..]);
            v.push(e);
            Cow::Owned(v)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(site: u32, elems: Vec<CtxElem>) -> ObjData {
        ObjData::Site {
            site: AllocSiteId(site),
            action: None,
            elems,
            class: ClassId(0),
        }
    }

    #[test]
    fn tables_intern_and_deduplicate() {
        let mut ctxs = CtxTable::new();
        let a = ctxs.intern(CtxData {
            action: ActionId(0),
            elems: vec![],
        });
        let b = ctxs.intern(CtxData {
            action: ActionId(0),
            elems: vec![],
        });
        let c = ctxs.intern(CtxData {
            action: ActionId(1),
            elems: vec![],
        });
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(ctxs.len(), 2);

        let mut objs = ObjTable::new();
        let o1 = objs.intern(obj(0, vec![]));
        let o2 = objs.intern(obj(0, vec![]));
        assert_eq!(o1, o2);
        assert_eq!(objs.len(), 1);
        assert_eq!(objs.get(o1).class(), ClassId(0));
    }

    #[test]
    fn kcfa_appends_call_sites_and_truncates() {
        let s = SelectorKind::KCfa(2);
        let caller = vec![CtxElem::Call(CallSiteId(1)), CtxElem::Call(CallSiteId(2))];
        let got = s.static_elems(&caller, CallSiteId(3));
        assert_eq!(
            got,
            vec![CtxElem::Call(CallSiteId(2)), CtxElem::Call(CallSiteId(3))]
        );
    }

    #[test]
    fn kobj_uses_receiver_allocation_chain() {
        let s = SelectorKind::KObj(2);
        let recv = obj(9, vec![CtxElem::Alloc(AllocSiteId(5))]);
        let got = s.virtual_elems(&[], CallSiteId(0), &recv);
        assert_eq!(
            got,
            vec![
                CtxElem::Alloc(AllocSiteId(5)),
                CtxElem::Alloc(AllocSiteId(9))
            ]
        );
        // Static calls pass the caller context through.
        let caller = vec![CtxElem::Alloc(AllocSiteId(1))];
        assert_eq!(s.static_elems(&caller, CallSiteId(0)), caller);
    }

    #[test]
    fn hybrid_mixes_obj_and_cfa() {
        let s = SelectorKind::Hybrid(1);
        let recv = obj(9, vec![]);
        assert_eq!(
            s.virtual_elems(&[], CallSiteId(0), &recv),
            vec![CtxElem::Alloc(AllocSiteId(9))]
        );
        assert_eq!(
            s.static_elems(&[], CallSiteId(4)),
            vec![CtxElem::Call(CallSiteId(4))]
        );
    }

    #[test]
    fn action_sensitivity_tags_heap_objects() {
        let plain = SelectorKind::Hybrid(1);
        let action = SelectorKind::ActionSensitive(1);
        let ctx = CtxData {
            action: ActionId(7),
            elems: vec![CtxElem::Call(CallSiteId(1))],
        };
        assert_eq!(plain.heap_ctx(&ctx).0, None);
        assert_eq!(action.heap_ctx(&ctx).0, Some(ActionId(7)));
        assert!(plain.name().starts_with("hybrid"));
        assert!(action.action_sensitive());
    }

    #[test]
    fn insensitive_contexts_are_empty() {
        let s = SelectorKind::Insensitive;
        let recv = obj(9, vec![CtxElem::Alloc(AllocSiteId(5))]);
        assert!(s
            .virtual_elems(&[CtxElem::Call(CallSiteId(1))], CallSiteId(0), &recv)
            .is_empty());
        assert!(s
            .static_elems(&[CtxElem::Call(CallSiteId(1))], CallSiteId(0))
            .is_empty());
        let ctx = CtxData {
            action: ActionId(0),
            elems: vec![CtxElem::Call(CallSiteId(1))],
        };
        let (action, elems) = s.heap_ctx(&ctx);
        assert_eq!(action, None);
        assert!(elems.is_empty());
    }

    #[test]
    fn pass_through_context_strings_borrow() {
        // The no-op cases must not allocate: KObj static calls and
        // already-short heap contexts borrow the input string.
        let caller = vec![CtxElem::Alloc(AllocSiteId(1))];
        assert!(matches!(
            SelectorKind::KObj(2).static_elems(&caller, CallSiteId(0)),
            Cow::Borrowed(_)
        ));
        assert!(matches!(
            SelectorKind::Insensitive.virtual_elems(&caller, CallSiteId(0), &obj(9, vec![])),
            Cow::Borrowed(_)
        ));
        let ctx = CtxData {
            action: ActionId(0),
            elems: vec![CtxElem::Call(CallSiteId(1))],
        };
        assert!(matches!(
            SelectorKind::ActionSensitive(2).heap_ctx(&ctx).1,
            Cow::Borrowed(_)
        ));
        // Truncation still owns.
        assert!(matches!(
            SelectorKind::KCfa(1).static_elems(&caller, CallSiteId(3)),
            Cow::Owned(_)
        ));
    }
}
