//! The context-sensitive Andersen solver with on-the-fly call graph.
//!
//! Standard inclusion-based points-to analysis (difference propagation over
//! a constraint graph), extended with:
//!
//! - **on-the-fly dispatch**: virtual calls resolve per receiver object as
//!   its points-to set grows;
//! - **the Android concurrency model**: calls classified as
//!   [`FrameworkOp`]s mint [`Action`]s (Table 1) and analyze the posted
//!   callback bodies under fresh action contexts;
//! - **harness sites**: the generated harness's callback invocation sites
//!   each start a lifecycle/GUI/system action;
//! - **inflated views**: `findViewById(const)` returns the per-`(activity,
//!   id)` view object (§3.3's `InflatedViewContext`).

use crate::ctx::{CtxData, CtxId, CtxTable, ObjData, ObjId, ObjTable, SelectorKind};
use crate::ptsset::PtsSet;
use crate::summary::{extract_pointer_facts, MethodPointerFacts};
use android_model::{
    ActionId, ActionKind, ActionRegistry, FrameworkClasses, FrameworkOp, ThreadKind,
};
use apir::{
    local_defs, CallSiteId, ClassId, ConstValue, FieldId, InvokeKind, Local, MethodId, Operand,
    Program, Stmt, StmtAddr,
};
use harness_gen::{HarnessResult, HarnessSiteKind};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::rc::Rc;

/// Worklist scheduling policy for the propagation loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WorklistPolicy {
    /// Plain FIFO queue (the pre-overhaul behavior, kept for ablation).
    Fifo,
    /// Least-recently-fired priority order with node-id tie-breaks: a
    /// node that has not fired yet (or fired longest ago) pops first, so
    /// deltas flow downstream through the current condensation before
    /// upstream nodes re-fire. Deterministic: priorities are
    /// `(last_fired_stamp, node_id)` and both are derived from the
    /// solver's own (single-threaded, id-ordered) execution.
    #[default]
    TopoLrf,
}

impl WorklistPolicy {
    /// Stable lowercase name (used by CLI flags and metrics output).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            WorklistPolicy::Fifo => "fifo",
            WorklistPolicy::TopoLrf => "topo-lrf",
        }
    }
}

impl std::str::FromStr for WorklistPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "fifo" => Ok(WorklistPolicy::Fifo),
            "topo-lrf" | "topo" | "lrf" => Ok(WorklistPolicy::TopoLrf),
            other => Err(format!(
                "unknown worklist policy `{other}` (expected `fifo` or `topo-lrf`)"
            )),
        }
    }
}

impl std::fmt::Display for WorklistPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Soundness policy for opaque call edges — reflection lookups and
/// inter-component intent dispatch ([`FrameworkOp::is_policy_gated`]).
///
/// Android call graphs silently drop methods behind these edges (Samhi
/// et al.); the policy makes that unsoundness explicit and selectable:
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OpaquePolicy {
    /// Leave every policy-gated site unmodeled. Byte-identical to the
    /// pipeline before soundness modes existed.
    #[default]
    Ignore,
    /// Everything `Resolve` does, plus conservative fallbacks at sites
    /// the table cannot prove: pointer arguments are smashed into the
    /// published-heap set and type-compatible component callbacks are
    /// marked reachable. Over-approximates `Resolve`.
    Havoc,
    /// Resolve constant class-name strings and manifest-declared intent
    /// targets to concrete callees via the resolve table; sites the
    /// table cannot prove stay silent (per-site fallback to `Ignore`).
    Resolve,
}

impl OpaquePolicy {
    /// Stable lowercase name (used by CLI flags and metrics output).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            OpaquePolicy::Ignore => "ignore",
            OpaquePolicy::Havoc => "havoc",
            OpaquePolicy::Resolve => "resolve",
        }
    }

    /// All policies, ordered from least to most sound.
    pub const ALL: [OpaquePolicy; 3] = [
        OpaquePolicy::Ignore,
        OpaquePolicy::Resolve,
        OpaquePolicy::Havoc,
    ];
}

impl std::str::FromStr for OpaquePolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "ignore" => Ok(OpaquePolicy::Ignore),
            "havoc" => Ok(OpaquePolicy::Havoc),
            "resolve" => Ok(OpaquePolicy::Resolve),
            other => Err(format!(
                "unknown opaque policy `{other}` (expected `ignore`, `havoc`, or `resolve`)"
            )),
        }
    }
}

impl std::fmt::Display for OpaquePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Analysis options beyond the context selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisOptions {
    /// Model `ArrayList.setAt`/`getAt` with per-constant-index slot fields
    /// (the §6.5 future-work extension after Dillig et al.). When off,
    /// every indexed access folds onto the summarized `contents` field.
    pub index_sensitive: bool,
    /// Online cycle detection and collapse (lazy cycle detection after
    /// Hardekopf–Lin): when propagation along an edge leaves source and
    /// target with equal points-to sets, the solver runs an SCC pass
    /// from the source and collapses every multi-node SCC onto its
    /// smallest `NodeId` via union-find, so cyclic sets propagate once.
    /// Off restores the PR 3 solver for the `--no-cycle-collapse`
    /// ablation; results are identical either way.
    pub cycle_collapse: bool,
    /// Worklist scheduling policy.
    pub worklist: WorklistPolicy,
    /// Soundness policy for reflection and intent-dispatch edges.
    pub opaque_policy: OpaquePolicy,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        Self {
            index_sensitive: true,
            cycle_collapse: true,
            worklist: WorklistPolicy::default(),
            opaque_policy: OpaquePolicy::default(),
        }
    }
}

/// A record of one action posting another (consumed by HB rules 1 and 4–6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PostRecord {
    /// The action whose code contains the posting site.
    pub poster: ActionId,
    /// The posting call site.
    pub site: CallSiteId,
    /// The posted action.
    pub posted: ActionId,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum NodeKey {
    Var {
        method: MethodId,
        ctx: CtxId,
        local: Local,
    },
    Ret {
        method: MethodId,
        ctx: CtxId,
    },
    Field {
        obj: ObjId,
        field: FieldId,
    },
    Static {
        field: FieldId,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) struct NodeId(pub(crate) u32);

/// Counters recorded while the solver runs, reported per stage by the
/// pipeline's metrics. All counts are deterministic: the solver visits
/// work in a sorted order, so the same app yields the same counters on
/// every run and every thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Worklist pops that carried a non-empty delta (i.e. real
    /// propagation rounds, not spurious re-queues).
    pub worklist_iterations: usize,
    /// Objects newly inserted into some points-to set.
    pub propagations: usize,
    /// Total call-graph edges discovered.
    pub cg_edges: usize,
    /// Reachable `(method, context)` pairs.
    pub reachable_contexts: usize,
    /// Distinct abstract objects minted.
    pub abstract_objects: usize,
    /// Heap bytes held by all points-to sets at the fixpoint (the
    /// footprint of the hybrid [`PtsSet`] representation).
    pub pts_set_bytes: usize,
    /// Multi-node SCCs collapsed by online cycle detection (0 when the
    /// `cycle_collapse` option is off or the graph is acyclic).
    pub collapsed_sccs: usize,
    /// Constraint-graph nodes retired into a representative by collapse
    /// (members minus representatives, summed over all collapsed SCCs).
    pub collapsed_nodes: usize,
    /// The worklist scheduling policy the solve ran with.
    pub worklist_policy: WorklistPolicy,
}

#[derive(Debug, Clone)]
enum Pending {
    Load {
        field: FieldId,
        dst: NodeId,
    },
    Store {
        field: FieldId,
        src: SrcValue,
    },
    VCall(CallInfo),
    HarnessCall(CallInfo),
    Op(OpInfo),
    /// `havoc`-policy smash: every object reaching this node is treated
    /// as published to the heap (it escaped through an unresolved
    /// opaque call).
    Havoc,
}

#[derive(Debug, Clone, Copy)]
enum SrcValue {
    Node(NodeId),
    // Constants stored to pointer fields carry no objects; recorded for
    // completeness so stores of `null` don't create nodes.
    Nothing,
}

#[derive(Debug, Clone)]
struct CallInfo {
    site: CallSiteId,
    caller_method: MethodId,
    caller_ctx: CtxId,
    callee: MethodId,
    dst: Option<Local>,
    args: Vec<Operand>,
}

#[derive(Debug, Clone)]
struct OpInfo {
    op: FrameworkOp,
    site: CallSiteId,
    caller_method: MethodId,
    caller_ctx: CtxId,
    recv_node: Option<NodeId>,
    args: Vec<Operand>,
    /// Pre-resolved constant `Message.what`, for message ops.
    what: Option<i64>,
    /// Result destination, for ops that produce a value (reflection).
    dst: Option<Local>,
    /// Pre-resolved constant method-name string, for `MethodInvoke`.
    name_const: Option<apir::Symbol>,
}

/// The finished analysis (points-to sets, call graph, actions, posts).
#[derive(Debug)]
pub struct Analysis {
    /// The selector the analysis ran with.
    pub selector: SelectorKind,
    /// The options the analysis ran with.
    pub options: AnalysisOptions,
    /// The framework ids of the analyzed app (needed to re-recognize
    /// container ops when extracting accesses).
    pub(crate) framework: FrameworkClasses,
    /// All minted actions.
    pub actions: ActionRegistry,
    /// Method-context table.
    pub ctxs: CtxTable,
    /// Abstract-object table.
    pub objs: ObjTable,
    /// Reachable method contexts.
    pub reachable: HashSet<(MethodId, CtxId)>,
    /// Per-method reachable contexts, sorted (cached from `reachable`
    /// so [`Analysis::contexts_of`] never re-scans or re-sorts).
    pub(crate) contexts_by_method: HashMap<MethodId, Vec<CtxId>>,
    /// Call-graph edges: `(caller, ctx, site) → callees`.
    pub cg_edges: HashMap<(MethodId, CtxId, CallSiteId), Vec<(MethodId, CtxId)>>,
    /// Action-posting records.
    pub posts: Vec<PostRecord>,
    /// Harness callback site → its action.
    pub harness_actions: HashMap<CallSiteId, ActionId>,
    /// Per activity: the harness-root action.
    pub root_actions: Vec<(ClassId, ActionId)>,
    /// Opaque (reflection/intent) call sites the active policy's resolve
    /// table discharged to concrete targets. Empty under `ignore`.
    pub resolved_sites: HashSet<CallSiteId>,
    /// Objects conservatively published by the `havoc` policy: pointer
    /// arguments smashed at opaque sites the table could not resolve.
    /// Empty under `ignore` and `resolve`.
    pub havoc_escaped: HashSet<ObjId>,
    /// Counters recorded during solving.
    pub stats: SolverStats,
    pub(crate) nodes: HashMap<NodeKey, NodeId>,
    pub(crate) pts: Vec<PtsSet>,
}

static EMPTY_PTS: PtsSet = PtsSet::new();

impl Analysis {
    /// Points-to set of a local under a context.
    pub fn pts_var(&self, method: MethodId, ctx: CtxId, local: Local) -> &PtsSet {
        let key = NodeKey::Var { method, ctx, local };
        match self.nodes.get(&key) {
            Some(n) => &self.pts[n.0 as usize],
            None => &EMPTY_PTS,
        }
    }

    /// Points-to set of an object field.
    pub fn pts_field(&self, obj: ObjId, field: FieldId) -> &PtsSet {
        match self.nodes.get(&NodeKey::Field { obj, field }) {
            Some(n) => &self.pts[n.0 as usize],
            None => &EMPTY_PTS,
        }
    }

    /// The action a context belongs to.
    pub fn action_of(&self, ctx: CtxId) -> ActionId {
        self.ctxs.get(ctx).action
    }

    /// Every reachable context of a method, in sorted order (cached at
    /// solve time; this is a map lookup, not a scan).
    pub fn contexts_of(&self, method: MethodId) -> &[CtxId] {
        self.contexts_by_method
            .get(&method)
            .map_or(&[], Vec::as_slice)
    }

    /// Total call-graph edges (for stats).
    pub fn cg_edge_count(&self) -> usize {
        self.cg_edges.values().map(Vec::len).sum()
    }

    /// The analyzed app's framework ids.
    pub fn framework(&self) -> &FrameworkClasses {
        &self.framework
    }

    /// Every object that appears in at least one instance-field or
    /// static-field points-to set — i.e. every object published to the
    /// heap. An object absent from this set is reachable only through
    /// locals (and return values), which is the load-bearing fact behind
    /// the prefilter's escape analysis: a reference can only cross from
    /// one action to another via the heap, via a posted receiver, or via
    /// an unmodeled callee.
    pub fn heap_published(&self) -> HashSet<ObjId> {
        let mut out = HashSet::new();
        for (key, node) in &self.nodes {
            if matches!(key, NodeKey::Field { .. } | NodeKey::Static { .. }) {
                out.extend(self.pts[node.0 as usize].iter());
            }
        }
        // `havoc` publishes smashed arguments of unresolved opaque
        // calls: the unknown callee may store them anywhere.
        out.extend(self.havoc_escaped.iter().copied());
        out
    }

    /// Call sites in `(method, ctx)` that resolved to no analyzed callee
    /// (framework ops, body-less targets, empty receiver sets). The
    /// escape analysis treats pointer arguments at such sites as having
    /// escaped, since the callee's effect on them is unmodeled. A site
    /// the opaque-policy table resolved is *not* opaque even when its
    /// effect is purely model-level (e.g. `Class.forName` minting a
    /// token without a call edge).
    pub fn is_opaque_call(&self, method: MethodId, ctx: CtxId, site: CallSiteId) -> bool {
        if self.resolved_sites.contains(&site) {
            return false;
        }
        self.cg_edges
            .get(&(method, ctx, site))
            .is_none_or(Vec::is_empty)
    }
}

/// Runs the analysis over a harnessed app with default options.
pub fn analyze(harness: &HarnessResult, selector: SelectorKind) -> Analysis {
    analyze_opts(harness, selector, AnalysisOptions::default())
}

/// Runs the analysis with explicit options (ablation entry point).
pub fn analyze_opts(
    harness: &HarnessResult,
    selector: SelectorKind,
    options: AnalysisOptions,
) -> Analysis {
    Solver::new(harness, selector, options).run()
}

/// The propagation worklist under either scheduling policy. The
/// `queued` flags in the solver guarantee at most one live entry per
/// node, so the heap variant never holds duplicates.
#[derive(Debug)]
enum Worklist {
    Fifo(VecDeque<NodeId>),
    /// Min-heap on `(last_fired_stamp, node_id)`.
    Lrf(BinaryHeap<Reverse<(u64, u32)>>),
}

impl Worklist {
    fn new(policy: WorklistPolicy) -> Self {
        match policy {
            WorklistPolicy::Fifo => Worklist::Fifo(VecDeque::new()),
            WorklistPolicy::TopoLrf => Worklist::Lrf(BinaryHeap::new()),
        }
    }

    fn push(&mut self, n: NodeId, last_fired: &[u64]) {
        match self {
            Worklist::Fifo(q) => q.push_back(n),
            Worklist::Lrf(h) => h.push(Reverse((last_fired[n.0 as usize], n.0))),
        }
    }

    fn pop(&mut self) -> Option<NodeId> {
        match self {
            Worklist::Fifo(q) => q.pop_front(),
            Worklist::Lrf(h) => h.pop().map(|Reverse((_, id))| NodeId(id)),
        }
    }
}

/// Reusable solver working memory: every per-node side table that does
/// *not* flow into the final [`Analysis`] (those are `nodes` and `pts`).
///
/// A corpus run solves hundreds of apps back to back; taking the scratch
/// from a process-wide pool lets each solve inherit the previous app's
/// vector capacities instead of growing them from zero again. Slots are
/// cleared lazily as nodes are minted (`Solver::node`), so taking a
/// scratch is O(1) regardless of how big the previous solve was.
///
/// Reuse is invisible to results: only capacities survive between
/// solves, never values, so reports stay byte-identical with or without
/// a warm pool.
#[derive(Debug)]
struct SolverScratch {
    keys: Vec<NodeKey>,
    delta: Vec<Vec<ObjId>>,
    succ: Vec<Vec<NodeId>>,
    pending: Vec<Vec<Pending>>,
    queued: Vec<bool>,
    parent: Vec<u32>,
    last_fired: Vec<u64>,
    lcd_seen: HashSet<(u32, u32)>,
    lcd_queue: Vec<NodeId>,
    worklist: Worklist,
}

impl Default for SolverScratch {
    fn default() -> Self {
        Self {
            keys: Vec::new(),
            delta: Vec::new(),
            succ: Vec::new(),
            pending: Vec::new(),
            queued: Vec::new(),
            parent: Vec::new(),
            last_fired: Vec::new(),
            lcd_seen: HashSet::new(),
            lcd_queue: Vec::new(),
            worklist: Worklist::new(WorklistPolicy::default()),
        }
    }
}

impl SolverScratch {
    /// Prepares a (possibly recycled) scratch for a new solve. Per-node
    /// slots are left as-is — `Solver::node` clears each one as it is
    /// handed out — so only the global structures are reset here.
    fn reset_for(&mut self, policy: WorklistPolicy) {
        self.lcd_seen.clear();
        self.lcd_queue.clear();
        match (&mut self.worklist, policy) {
            (Worklist::Fifo(q), WorklistPolicy::Fifo) => q.clear(),
            (Worklist::Lrf(h), WorklistPolicy::TopoLrf) => h.clear(),
            (w, p) => *w = Worklist::new(p),
        }
    }
}

/// Upper bound on idle scratches kept alive — about one per worker
/// thread; anything beyond that is dropped instead of pooled.
const MAX_POOLED_SCRATCH: usize = 16;

struct ScratchPool {
    free: std::sync::Mutex<Vec<SolverScratch>>,
    reused: std::sync::atomic::AtomicU64,
    fresh: std::sync::atomic::AtomicU64,
}

fn scratch_pool() -> &'static ScratchPool {
    static POOL: std::sync::OnceLock<ScratchPool> = std::sync::OnceLock::new();
    POOL.get_or_init(|| ScratchPool {
        free: std::sync::Mutex::new(Vec::new()),
        reused: std::sync::atomic::AtomicU64::new(0),
        fresh: std::sync::atomic::AtomicU64::new(0),
    })
}

impl ScratchPool {
    fn take(&self) -> SolverScratch {
        use std::sync::atomic::Ordering;
        let popped = self.free.lock().expect("scratch pool lock").pop();
        match popped {
            Some(s) => {
                self.reused.fetch_add(1, Ordering::Relaxed);
                s
            }
            None => {
                self.fresh.fetch_add(1, Ordering::Relaxed);
                SolverScratch::default()
            }
        }
    }

    fn give(&self, scratch: SolverScratch) {
        let mut free = self.free.lock().expect("scratch pool lock");
        if free.len() < MAX_POOLED_SCRATCH {
            free.push(scratch);
        }
    }
}

/// `(reused, fresh)` counts of solver-scratch checkouts since process
/// start. `reused > 0` on a multi-app run confirms warm working memory
/// is flowing between solves. Process-wide (not per-app) so per-app
/// [`SolverStats`] stay deterministic regardless of scheduling.
pub fn scratch_pool_stats() -> (u64, u64) {
    use std::sync::atomic::Ordering;
    let p = scratch_pool();
    (
        p.reused.load(Ordering::Relaxed),
        p.fresh.load(Ordering::Relaxed),
    )
}

struct Solver<'a> {
    program: &'a Program,
    fw: &'a FrameworkClasses,
    harness: &'a HarnessResult,
    selector: SelectorKind,
    options: AnalysisOptions,
    ctxs: CtxTable,
    objs: ObjTable,
    actions: ActionRegistry,
    nodes: HashMap<NodeKey, NodeId>,
    keys: Vec<NodeKey>,
    pts: Vec<PtsSet>,
    delta: Vec<Vec<ObjId>>,
    /// Successor lists, kept sorted so the worklist loop needs no
    /// per-pop collect-and-sort. Entries may be stale after a collapse;
    /// readers canonicalize through `find`.
    succ: Vec<Vec<NodeId>>,
    pending: Vec<Vec<Pending>>,
    worklist: Worklist,
    queued: Vec<bool>,
    /// Union-find forest over constraint-graph nodes: `parent[i] == i`
    /// for a live representative; collapsed members point (possibly
    /// transitively) at their SCC's smallest `NodeId`.
    parent: Vec<u32>,
    /// Monotone stamp of each node's last worklist firing (feeds the
    /// least-recently-fired priority).
    last_fired: Vec<u64>,
    /// Firing clock behind `last_fired`.
    clock: u64,
    /// Edges that already triggered lazy cycle detection — each edge
    /// pays for at most one SCC pass.
    lcd_seen: HashSet<(u32, u32)>,
    /// Deferred LCD triggers, drained between worklist iterations so
    /// collapse never mutates the graph mid-propagation.
    lcd_queue: Vec<NodeId>,
    reachable: HashSet<(MethodId, CtxId)>,
    cg_edges: HashMap<(MethodId, CtxId, CallSiteId), Vec<(MethodId, CtxId)>>,
    cg_edge_set: HashSet<(MethodId, CtxId, CallSiteId, MethodId, CtxId)>,
    posts: Vec<PostRecord>,
    post_set: HashSet<PostRecord>,
    harness_actions: HashMap<CallSiteId, ActionId>,
    harness_site_kinds: HashMap<CallSiteId, HarnessSiteKind>,
    alloc_action: HashMap<ObjId, ActionId>,
    resolved: HashSet<(CallSiteId, CtxId, ObjId)>,
    op_resolved: HashSet<(CallSiteId, CtxId, ObjId, ObjId)>,
    root_actions: Vec<(ClassId, ActionId)>,
    resolved_sites: HashSet<CallSiteId>,
    havoc_escaped: HashSet<ObjId>,
    /// Per-method body facts, extracted once and shared across contexts
    /// (the statement list is context-independent).
    facts: HashMap<MethodId, Rc<MethodPointerFacts>>,
    stats: SolverStats,
}

/// Sentinel "no object" id for op dedup pairs.
const NO_OBJ: ObjId = ObjId(u32::MAX);

/// Non-mutating union-find lookup (for contexts where the solver's
/// path-halving [`Solver::find`] can't borrow mutably).
fn resolve(parent: &[u32], n: NodeId) -> NodeId {
    let mut i = n.0;
    while parent[i as usize] != i {
        i = parent[i as usize];
    }
    NodeId(i)
}

/// Splits one set out of `v` immutably and another mutably; `a != b`.
fn pair_mut(v: &mut [PtsSet], a: usize, b: usize) -> (&PtsSet, &mut PtsSet) {
    debug_assert_ne!(a, b);
    if a < b {
        let (lo, hi) = v.split_at_mut(b);
        (&lo[a], &mut hi[0])
    } else {
        let (lo, hi) = v.split_at_mut(a);
        (&hi[0], &mut lo[b])
    }
}

impl<'a> Solver<'a> {
    fn new(harness: &'a HarnessResult, selector: SelectorKind, options: AnalysisOptions) -> Self {
        let mut harness_site_kinds = HashMap::new();
        for h in &harness.activities {
            for (site, kind) in &h.sites {
                harness_site_kinds.insert(*site, kind.clone());
            }
        }
        let mut scratch = scratch_pool().take();
        scratch.reset_for(options.worklist);
        let SolverScratch {
            keys,
            delta,
            succ,
            pending,
            queued,
            parent,
            last_fired,
            lcd_seen,
            lcd_queue,
            worklist,
        } = scratch;
        Self {
            program: &harness.app.program,
            fw: &harness.app.framework,
            harness,
            selector,
            options,
            ctxs: CtxTable::new(),
            objs: ObjTable::new(),
            actions: ActionRegistry::new(),
            nodes: HashMap::new(),
            keys,
            pts: Vec::new(),
            delta,
            succ,
            pending,
            worklist,
            queued,
            parent,
            last_fired,
            clock: 0,
            lcd_seen,
            lcd_queue,
            reachable: HashSet::new(),
            cg_edges: HashMap::new(),
            cg_edge_set: HashSet::new(),
            posts: Vec::new(),
            post_set: HashSet::new(),
            harness_actions: HashMap::new(),
            harness_site_kinds,
            alloc_action: HashMap::new(),
            resolved: HashSet::new(),
            op_resolved: HashSet::new(),
            root_actions: Vec::new(),
            resolved_sites: HashSet::new(),
            havoc_escaped: HashSet::new(),
            facts: HashMap::new(),
            stats: SolverStats::default(),
        }
    }

    fn run(mut self) -> Analysis {
        self.stats.worklist_policy = self.options.worklist;
        for h in &self.harness.activities {
            let (root, _) = self.actions.obtain(
                h.activity,
                ActionKind::HarnessRoot,
                None,
                None,
                h.method,
                ThreadKind::Main,
                None,
            );
            self.root_actions.push((h.activity, root));
            let ctx = self.ctxs.intern(CtxData {
                action: root,
                elems: Vec::new(),
            });
            self.mark_reachable(h.method, ctx);
        }
        while let Some(n) = self.worklist.pop() {
            let n_idx = n.0 as usize;
            self.queued[n_idx] = false;
            let delta = std::mem::take(&mut self.delta[n_idx]);
            if delta.is_empty() {
                // Spurious entry: a node re-queued with nothing left to
                // do, or one retired into a representative by collapse
                // (which clears its delta and re-queues the rep).
                continue;
            }
            self.stats.worklist_iterations += 1;
            self.clock += 1;
            self.last_fired[n_idx] = self.clock;
            // Successor lists are kept sorted, so id-order traversal —
            // required for thread-independent counters and tie-breaks —
            // is an index walk over the stored list. `add_obj` never
            // mutates successor lists and collapse is deferred to the
            // drain below, so the length is stable across the loop.
            let mut i = 0;
            while i < self.succ[n_idx].len() {
                let s = self.find(self.succ[n_idx][i]);
                i += 1;
                if s == n {
                    continue;
                }
                for &o in &delta {
                    self.add_obj(s, o);
                }
                // Lazy cycle detection: equal endpoint sets along an
                // edge suggest a cycle. Each edge triggers at most one
                // (deferred) SCC pass.
                if self.options.cycle_collapse
                    && self.pts[s.0 as usize].len() == self.pts[n_idx].len()
                    && !self.lcd_seen.contains(&(n.0, s.0))
                    && self.pts[s.0 as usize] == self.pts[n_idx]
                {
                    self.lcd_seen.insert((n.0, s.0));
                    self.lcd_queue.push(n);
                }
            }
            // Drain the pending list instead of cloning it: entries
            // added while processing (always for *other* nodes, or
            // already self-processed by `add_pending`) accumulate in the
            // emptied slot and are re-appended after the drained list so
            // the order matches what the clone-based loop produced.
            let taken = std::mem::take(&mut self.pending[n_idx]);
            for p in &taken {
                self.process_pending(p, &delta);
            }
            let added = std::mem::replace(&mut self.pending[n_idx], taken);
            self.pending[n_idx].extend(added);
            // Safe point: no propagation is in flight, so collapsing the
            // SCCs behind the queued triggers cannot invalidate a loop.
            while let Some(start) = self.lcd_queue.pop() {
                self.detect_and_collapse(start);
            }
        }
        // Remap every key to its SCC representative so post-solve
        // lookups (`pts_var`, `pts_field`, `heap_published`) land on the
        // canonical sets. A no-op when nothing collapsed.
        if self.stats.collapsed_nodes > 0 {
            for id in self.nodes.values_mut() {
                *id = resolve(&self.parent, *id);
            }
        }
        self.stats.cg_edges = self.cg_edges.values().map(Vec::len).sum();
        self.stats.reachable_contexts = self.reachable.len();
        self.stats.abstract_objects = self.objs.len();
        self.stats.pts_set_bytes = self.pts.iter().map(PtsSet::heap_bytes).sum();
        let mut contexts_by_method: HashMap<MethodId, Vec<CtxId>> = HashMap::new();
        for &(m, c) in &self.reachable {
            contexts_by_method.entry(m).or_default().push(c);
        }
        for ctxs in contexts_by_method.values_mut() {
            ctxs.sort_unstable();
        }
        // Hand the working memory back for the next solve. Values never
        // survive the round trip (slots are reset as nodes are minted),
        // only capacities do.
        scratch_pool().give(SolverScratch {
            keys: std::mem::take(&mut self.keys),
            delta: std::mem::take(&mut self.delta),
            succ: std::mem::take(&mut self.succ),
            pending: std::mem::take(&mut self.pending),
            queued: std::mem::take(&mut self.queued),
            parent: std::mem::take(&mut self.parent),
            last_fired: std::mem::take(&mut self.last_fired),
            lcd_seen: std::mem::take(&mut self.lcd_seen),
            lcd_queue: std::mem::take(&mut self.lcd_queue),
            worklist: std::mem::replace(&mut self.worklist, Worklist::new(WorklistPolicy::Fifo)),
        });
        Analysis {
            selector: self.selector,
            options: self.options,
            framework: self.fw.clone(),
            actions: self.actions,
            ctxs: self.ctxs,
            objs: self.objs,
            reachable: self.reachable,
            contexts_by_method,
            cg_edges: self.cg_edges,
            posts: self.posts,
            harness_actions: self.harness_actions,
            root_actions: self.root_actions,
            resolved_sites: self.resolved_sites,
            havoc_escaped: self.havoc_escaped,
            stats: self.stats,
            nodes: self.nodes,
            pts: self.pts,
        }
    }

    // ---- node & graph plumbing ----

    /// Canonical representative of `n` (path-halving union-find).
    fn find(&mut self, n: NodeId) -> NodeId {
        let mut i = n.0 as usize;
        while self.parent[i] as usize != i {
            let gp = self.parent[self.parent[i] as usize];
            self.parent[i] = gp;
            i = gp as usize;
        }
        NodeId(i as u32)
    }

    fn node(&mut self, key: NodeKey) -> NodeId {
        if let Some(&n) = self.nodes.get(&key) {
            return self.find(n);
        }
        // `pts` is the node-count authority: it starts empty every solve,
        // while the scratch-backed side tables may be longer (recycled
        // from a bigger previous solve) and are reset slot by slot here.
        let idx = self.pts.len();
        let n = NodeId(u32::try_from(idx).expect("node overflow"));
        self.nodes.insert(key.clone(), n);
        self.pts.push(PtsSet::new());
        if idx < self.keys.len() {
            self.keys[idx] = key;
            self.delta[idx].clear();
            self.succ[idx].clear();
            self.pending[idx].clear();
            self.queued[idx] = false;
            self.parent[idx] = n.0;
            self.last_fired[idx] = 0;
        } else {
            self.keys.push(key);
            self.delta.push(Vec::new());
            self.succ.push(Vec::new());
            self.pending.push(Vec::new());
            self.queued.push(false);
            self.parent.push(n.0);
            self.last_fired.push(0);
        }
        n
    }

    fn var(&mut self, method: MethodId, ctx: CtxId, local: Local) -> NodeId {
        self.node(NodeKey::Var { method, ctx, local })
    }

    fn add_obj(&mut self, n: NodeId, o: ObjId) {
        let n = self.find(n);
        if self.pts[n.0 as usize].insert(o) {
            self.stats.propagations += 1;
            self.delta[n.0 as usize].push(o);
            if !self.queued[n.0 as usize] {
                self.queued[n.0 as usize] = true;
                self.worklist.push(n, &self.last_fired);
            }
        }
    }

    fn add_edge(&mut self, from: NodeId, to: NodeId) {
        let from = self.find(from);
        let to = self.find(to);
        if from == to {
            return;
        }
        let succs = &mut self.succ[from.0 as usize];
        let Err(pos) = succs.binary_search(&to) else {
            return;
        };
        succs.insert(pos, to);
        let (f, t) = (from.0 as usize, to.0 as usize);
        let Self {
            pts,
            delta,
            stats,
            queued,
            worklist,
            last_fired,
            ..
        } = self;
        let (src, dst) = pair_mut(pts, f, t);
        // Two passes, both allocation-free: record the genuinely new
        // objects in the target's delta (ascending, like add_obj would),
        // then union at word level.
        let d = &mut delta[t];
        let before = d.len();
        for o in src.iter() {
            if !dst.contains(o) {
                d.push(o);
            }
        }
        if d.len() > before {
            dst.union_in_place(src);
            stats.propagations += d.len() - before;
            if !queued[t] {
                queued[t] = true;
                worklist.push(to, last_fired);
            }
        }
    }

    fn add_pending(&mut self, n: NodeId, p: Pending) {
        let n = self.find(n);
        // PtsSet iterates ascending, so no sort is needed.
        let objs: Vec<ObjId> = self.pts[n.0 as usize].iter().collect();
        self.pending[n.0 as usize].push(p.clone());
        if !objs.is_empty() {
            self.process_pending(&p, &objs);
        }
    }

    // ---- online cycle detection & collapse ----

    /// Runs an iterative Tarjan SCC pass over the canonicalized
    /// constraint graph reachable from `start` and collapses every
    /// multi-node SCC found. Called only from the run loop's safe point
    /// (no propagation in flight). Traversal order is the stored
    /// successor order, so the discovered SCCs — and therefore the
    /// collapse — are deterministic.
    fn detect_and_collapse(&mut self, start: NodeId) {
        let start = self.find(start).0;
        let mut index: HashMap<u32, u32> = HashMap::new();
        let mut low: HashMap<u32, u32> = HashMap::new();
        let mut on_stack: HashSet<u32> = HashSet::new();
        let mut stack: Vec<u32> = Vec::new();
        let mut sccs: Vec<Vec<u32>> = Vec::new();
        let mut counter = 0u32;
        let mut frames: Vec<(u32, usize)> = vec![(start, 0)];
        index.insert(start, counter);
        low.insert(start, counter);
        counter += 1;
        stack.push(start);
        on_stack.insert(start);
        while let Some(&(v, i)) = frames.last() {
            if i < self.succ[v as usize].len() {
                frames.last_mut().expect("nonempty").1 = i + 1;
                let w = self.find(self.succ[v as usize][i]).0;
                if w == v {
                    continue;
                }
                if let Some(&wi) = index.get(&w) {
                    if on_stack.contains(&w) && wi < low[&v] {
                        low.insert(v, wi);
                    }
                } else {
                    index.insert(w, counter);
                    low.insert(w, counter);
                    counter += 1;
                    stack.push(w);
                    on_stack.insert(w);
                    frames.push((w, 0));
                }
            } else {
                frames.pop();
                let lv = low[&v];
                if let Some(&(p, _)) = frames.last() {
                    if lv < low[&p] {
                        low.insert(p, lv);
                    }
                }
                if lv == index[&v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("Tarjan stack underflow");
                        on_stack.remove(&w);
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    if scc.len() > 1 {
                        sccs.push(scc);
                    }
                }
            }
        }
        for scc in sccs {
            self.collapse_scc(scc);
        }
    }

    /// Collapses one SCC onto its smallest member: points-to sets,
    /// successor lists, and pending work all merge into the
    /// representative, whose full set is re-queued as a delta (every
    /// downstream insertion is idempotent, so over-propagation is safe
    /// and the member's un-flushed deltas are subsumed).
    fn collapse_scc(&mut self, mut scc: Vec<u32>) {
        scc.sort_unstable();
        let rep = scc[0] as usize;
        for &m in &scc[1..] {
            let m = m as usize;
            self.parent[m] = rep as u32;
            let member_pts = std::mem::take(&mut self.pts[m]);
            self.pts[rep].union_in_place(&member_pts);
            let member_succ = std::mem::take(&mut self.succ[m]);
            self.succ[rep].extend(member_succ);
            let member_pending = std::mem::take(&mut self.pending[m]);
            self.pending[rep].extend(member_pending);
            self.delta[m].clear();
            self.queued[m] = false;
        }
        let rep_id = NodeId(rep as u32);
        let mut succs = std::mem::take(&mut self.succ[rep]);
        for s in &mut succs {
            *s = self.find(*s);
        }
        succs.sort_unstable();
        succs.dedup();
        succs.retain(|&s| s != rep_id);
        self.succ[rep] = succs;
        self.delta[rep] = self.pts[rep].iter().collect();
        if !self.delta[rep].is_empty() && !self.queued[rep] {
            self.queued[rep] = true;
            self.worklist.push(rep_id, &self.last_fired);
        }
        self.stats.collapsed_sccs += 1;
        self.stats.collapsed_nodes += scc.len() - 1;
    }

    fn operand_node(&mut self, method: MethodId, ctx: CtxId, op: Operand) -> Option<NodeId> {
        op.as_local().map(|l| self.var(method, ctx, l))
    }

    // ---- reachability & body processing ----

    fn mark_reachable(&mut self, method: MethodId, ctx: CtxId) {
        if !self.reachable.insert((method, ctx)) {
            return;
        }
        if !self.program.method(method).has_body() {
            return;
        }
        self.process_body(method, ctx);
    }

    fn process_body(&mut self, method: MethodId, ctx: CtxId) {
        // Body facts are context-independent: extract once per method,
        // share the `Rc` across every context that reaches it.
        let facts = match self.facts.get(&method) {
            Some(f) => Rc::clone(f),
            None => {
                let f = Rc::new(extract_pointer_facts(self.program.method(method)));
                self.facts.insert(method, Rc::clone(&f));
                f
            }
        };
        for &r in &facts.rets {
            if let Some(src) = self.operand_node(method, ctx, r) {
                let ret = self.node(NodeKey::Ret { method, ctx });
                self.add_edge(src, ret);
            }
        }
        for &(addr, ref stmt) in &facts.stmts {
            match *stmt {
                Stmt::Move { dst, src } => {
                    let s = self.var(method, ctx, src);
                    let d = self.var(method, ctx, dst);
                    self.add_edge(s, d);
                }
                Stmt::New { dst, class, site } => {
                    let (action, elems) = self.selector.heap_ctx(self.ctxs.get(ctx));
                    let obj = self.objs.intern(ObjData::Site {
                        site,
                        action,
                        elems: elems.into_owned(),
                        class,
                    });
                    let cur = self.ctxs.get(ctx).action;
                    self.alloc_action.entry(obj).or_insert(cur);
                    let d = self.var(method, ctx, dst);
                    self.add_obj(d, obj);
                }
                Stmt::Load { dst, obj, field } => {
                    let base = self.var(method, ctx, obj);
                    let d = self.var(method, ctx, dst);
                    self.add_pending(base, Pending::Load { field, dst: d });
                }
                Stmt::Store { obj, field, value } => {
                    let base = self.var(method, ctx, obj);
                    let src = match self.operand_node(method, ctx, value) {
                        Some(n) => SrcValue::Node(n),
                        None => SrcValue::Nothing,
                    };
                    self.add_pending(base, Pending::Store { field, src });
                }
                Stmt::StaticLoad { dst, field } => {
                    let s = self.node(NodeKey::Static { field });
                    let d = self.var(method, ctx, dst);
                    self.add_edge(s, d);
                }
                Stmt::StaticStore { field, value } => {
                    if let Some(src) = self.operand_node(method, ctx, value) {
                        let d = self.node(NodeKey::Static { field });
                        self.add_edge(src, d);
                    }
                }
                Stmt::Call {
                    site,
                    dst,
                    kind,
                    callee,
                    receiver,
                    ref args,
                } => {
                    let args = args.clone();
                    self.process_call(method, ctx, addr, site, dst, kind, callee, receiver, args);
                }
                Stmt::Const { .. } | Stmt::UnOp { .. } | Stmt::BinOp { .. } => {}
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn process_call(
        &mut self,
        method: MethodId,
        ctx: CtxId,
        addr: StmtAddr,
        site: CallSiteId,
        dst: Option<Local>,
        kind: InvokeKind,
        callee: MethodId,
        receiver: Option<Local>,
        args: Vec<Operand>,
    ) {
        // 1. Harness callback invocation sites mint lifecycle/GUI/system
        //    actions per receiver object.
        if self.harness_site_kinds.contains_key(&site) {
            if let Some(r) = receiver {
                let rn = self.var(method, ctx, r);
                self.add_pending(
                    rn,
                    Pending::HarnessCall(CallInfo {
                        site,
                        caller_method: method,
                        caller_ctx: ctx,
                        callee,
                        dst,
                        args,
                    }),
                );
            }
            return;
        }
        // 2. Framework ops.
        if let Some(op) = FrameworkOp::classify(self.fw, callee) {
            self.process_op(method, ctx, addr, site, dst, op, receiver, args);
            return;
        }
        // 3. Ordinary calls.
        match kind {
            InvokeKind::Virtual => {
                if let Some(r) = receiver {
                    let rn = self.var(method, ctx, r);
                    self.add_pending(
                        rn,
                        Pending::VCall(CallInfo {
                            site,
                            caller_method: method,
                            caller_ctx: ctx,
                            callee,
                            dst,
                            args,
                        }),
                    );
                }
            }
            InvokeKind::Static | InvokeKind::Special => {
                let target = callee;
                if !self.program.method(target).has_body() {
                    return;
                }
                let data = self.ctxs.get(ctx);
                let action = data.action;
                let elems = self.selector.static_elems(&data.elems, site).into_owned();
                let tctx = self.ctxs.intern(CtxData { action, elems });
                self.record_cg_edge(method, ctx, site, target, tctx);
                self.mark_reachable(target, tctx);
                let mut param = 0u32;
                if kind == InvokeKind::Special {
                    if let Some(r) = receiver {
                        let rn = self.var(method, ctx, r);
                        let p0 = self.var(target, tctx, Local(0));
                        self.add_edge(rn, p0);
                    }
                    param = 1;
                }
                for (i, a) in args.iter().enumerate() {
                    if let Some(an) = self.operand_node(method, ctx, *a) {
                        let pn = self.var(target, tctx, Local(param + i as u32));
                        self.add_edge(an, pn);
                    }
                }
                if let Some(d) = dst {
                    let ret = self.node(NodeKey::Ret {
                        method: target,
                        ctx: tctx,
                    });
                    let dn = self.var(method, ctx, d);
                    self.add_edge(ret, dn);
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn process_op(
        &mut self,
        method: MethodId,
        ctx: CtxId,
        addr: StmtAddr,
        site: CallSiteId,
        dst: Option<Local>,
        op: FrameworkOp,
        receiver: Option<Local>,
        args: Vec<Operand>,
    ) {
        use FrameworkOp::*;
        match op {
            FindViewById => {
                let Some(d) = dst else { return };
                let m = self.program.method(method);
                let view_id = args
                    .first()
                    .and_then(|a| local_defs::resolve_const_operand(m, addr, *a))
                    .and_then(|c| match c {
                        ConstValue::Int(v) => Some(v),
                        _ => None,
                    })
                    .unwrap_or(-(site.0 as i64) - 1);
                let action = self.ctxs.get(ctx).action;
                let activity = self.actions.action(action).harness;
                let class = i32::try_from(view_id)
                    .ok()
                    .and_then(|id| self.harness.app.view_class(activity, id))
                    .unwrap_or(self.fw.view);
                let obj = self.objs.intern(ObjData::View {
                    activity,
                    view_id,
                    class,
                });
                self.alloc_action.entry(obj).or_insert(action);
                let dn = self.var(method, ctx, d);
                self.add_obj(dn, obj);
            }
            SetListener(_) | UnregisterReceiver | RemoveUpdates | AsyncTaskCancel | HandlerInit
            | GetMainLooper | MyLooper | StartService => {}
            ClassForName | ClassNewInstance | MethodInvoke | IntentSetClass | StartActivity
            | SendBroadcast => {
                self.process_opaque_op(method, ctx, addr, site, dst, op, receiver, args);
            }
            ArrayListSetAt => {
                let Some(r) = receiver else { return };
                let rn = self.var(method, ctx, r);
                let field = self.index_field(method, addr, args.first().copied());
                let src = match args.get(1).and_then(|a| self.operand_node(method, ctx, *a)) {
                    Some(n) => SrcValue::Node(n),
                    None => SrcValue::Nothing,
                };
                self.add_pending(rn, Pending::Store { field, src });
            }
            ArrayListGetAt => {
                let (Some(r), Some(d)) = (receiver, dst) else {
                    return;
                };
                let rn = self.var(method, ctx, r);
                let dn = self.var(method, ctx, d);
                let field = self.index_field(method, addr, args.first().copied());
                self.add_pending(rn, Pending::Load { field, dst: dn });
            }
            HandlerSendMessage | HandlerSendEmptyMessage => {
                let what = self.message_what(method, addr, op, &args);
                if let Some(r) = receiver {
                    let rn = self.var(method, ctx, r);
                    self.add_pending(
                        rn,
                        Pending::Op(OpInfo {
                            op,
                            site,
                            caller_method: method,
                            caller_ctx: ctx,
                            recv_node: Some(rn),
                            args,
                            what,
                            dst: None,
                            name_const: None,
                        }),
                    );
                }
            }
            ThreadStart | AsyncTaskExecute => {
                if let Some(r) = receiver {
                    let rn = self.var(method, ctx, r);
                    self.add_pending(
                        rn,
                        Pending::Op(OpInfo {
                            op,
                            site,
                            caller_method: method,
                            caller_ctx: ctx,
                            recv_node: Some(rn),
                            args,
                            what: None,
                            dst: None,
                            name_const: None,
                        }),
                    );
                }
            }
            HandlerPost | HandlerPostDelayed => {
                // Cross-product op: handler receiver × runnable argument.
                let Some(r) = receiver else { return };
                let rn = self.var(method, ctx, r);
                let Some(an) = args
                    .first()
                    .and_then(|a| self.operand_node(method, ctx, *a))
                else {
                    return;
                };
                let info = OpInfo {
                    op,
                    site,
                    caller_method: method,
                    caller_ctx: ctx,
                    recv_node: Some(rn),
                    args,
                    what: None,
                    dst: None,
                    name_const: None,
                };
                self.add_pending(rn, Pending::Op(info.clone()));
                self.add_pending(an, Pending::Op(info));
            }
            TimerSchedule
            | RequestLocationUpdates
            | SetOnCompletionListener
            | ExecutorExecute
            | ViewPost
            | ViewPostDelayed
            | RunOnUiThread => {
                let Some(an) = args
                    .first()
                    .and_then(|a| self.operand_node(method, ctx, *a))
                else {
                    return;
                };
                self.add_pending(
                    an,
                    Pending::Op(OpInfo {
                        op,
                        site,
                        caller_method: method,
                        caller_ctx: ctx,
                        recv_node: None,
                        args,
                        what: None,
                        dst: None,
                        name_const: None,
                    }),
                );
            }
            RegisterReceiver => {
                let Some(an) = args
                    .first()
                    .and_then(|a| self.operand_node(method, ctx, *a))
                else {
                    return;
                };
                self.add_pending(
                    an,
                    Pending::Op(OpInfo {
                        op,
                        site,
                        caller_method: method,
                        caller_ctx: ctx,
                        recv_node: None,
                        args,
                        what: None,
                        dst: None,
                        name_const: None,
                    }),
                );
            }
            BindService => {
                let Some(an) = args.get(1).and_then(|a| self.operand_node(method, ctx, *a)) else {
                    return;
                };
                self.add_pending(
                    an,
                    Pending::Op(OpInfo {
                        op,
                        site,
                        caller_method: method,
                        caller_ctx: ctx,
                        recv_node: None,
                        args,
                        what: None,
                        dst: None,
                        name_const: None,
                    }),
                );
            }
        }
    }

    /// Policy-gated opaque ops: reflection and inter-component intent
    /// dispatch. Under `ignore` every site is left unmodeled (the
    /// pre-soundness-modes behavior, bit for bit). `resolve` consults
    /// the resolve table — constant class-name strings against the
    /// program's class list, intent targets against the manifest — and
    /// `havoc` adds conservative fallbacks at sites the table cannot
    /// discharge.
    #[allow(clippy::too_many_arguments)]
    fn process_opaque_op(
        &mut self,
        method: MethodId,
        ctx: CtxId,
        addr: StmtAddr,
        site: CallSiteId,
        dst: Option<Local>,
        op: FrameworkOp,
        receiver: Option<Local>,
        args: Vec<Operand>,
    ) {
        use FrameworkOp::*;
        if self.options.opaque_policy == OpaquePolicy::Ignore {
            return;
        }
        let havoc = self.options.opaque_policy == OpaquePolicy::Havoc;
        match op {
            ClassForName => {
                let Some(d) = dst else { return };
                let action = self.ctxs.get(ctx).action;
                let dn = self.var(method, ctx, d);
                match self.const_class_arg(method, addr, args.first().copied()) {
                    Some(target) => {
                        let token = self.conjure(target, site, action);
                        self.add_obj(dn, token);
                        self.resolved_sites.insert(site);
                    }
                    None if havoc => {
                        // Any manifest component could be the reflected
                        // class: conjure a token per candidate so
                        // type-compatible callbacks become reachable
                        // through downstream flow.
                        for target in self.manifest_components() {
                            let token = self.conjure(target, site, action);
                            self.add_obj(dn, token);
                        }
                    }
                    None => {}
                }
            }
            ClassNewInstance => {
                let Some(rn) = receiver.map(|r| self.var(method, ctx, r)) else {
                    return;
                };
                self.add_pending(
                    rn,
                    Pending::Op(OpInfo {
                        op,
                        site,
                        caller_method: method,
                        caller_ctx: ctx,
                        recv_node: Some(rn),
                        args,
                        what: None,
                        dst,
                        name_const: None,
                    }),
                );
            }
            MethodInvoke => {
                // invoke(name, target): resolve the name constant here
                // (statement addresses are unavailable later) and pend on
                // the target-object argument.
                let name_const = self.const_str_arg(method, addr, args.first().copied());
                let Some(an) = args.get(1).and_then(|a| self.operand_node(method, ctx, *a)) else {
                    return;
                };
                self.add_pending(
                    an,
                    Pending::Op(OpInfo {
                        op,
                        site,
                        caller_method: method,
                        caller_ctx: ctx,
                        recv_node: None,
                        args,
                        what: None,
                        dst,
                        name_const,
                    }),
                );
            }
            IntentSetClass => {
                // Pure binding marker: `intent_target` reads the bound
                // class off the IR at the dispatch site. A constant
                // binding means the site is table-resolved, not opaque.
                if self
                    .const_class_arg(method, addr, args.first().copied())
                    .is_some()
                {
                    self.resolved_sites.insert(site);
                }
            }
            StartActivity | SendBroadcast => {
                match self.intent_target(method, addr, args.first().copied(), op) {
                    Some(target) => {
                        self.spawn_component(method, ctx, site, target, op);
                        self.resolved_sites.insert(site);
                    }
                    None if havoc => {
                        // Unknown target: launch every type-compatible
                        // manifest component and smash the intent — its
                        // contents escape to an unknown callee.
                        let fallback = if op == StartActivity {
                            self.harness.app.manifest.activities.clone()
                        } else {
                            self.harness.app.manifest.receivers.clone()
                        };
                        for target in fallback {
                            self.spawn_component(method, ctx, site, target, op);
                        }
                        if let Some(an) = args
                            .first()
                            .and_then(|a| self.operand_node(method, ctx, *a))
                        {
                            self.add_pending(an, Pending::Havoc);
                        }
                    }
                    None => {}
                }
            }
            _ => unreachable!("not a policy-gated op: {op:?}"),
        }
    }

    /// A constant string argument, via SCCP-lite local constant tracing.
    fn const_str_arg(
        &self,
        method: MethodId,
        addr: StmtAddr,
        arg: Option<Operand>,
    ) -> Option<apir::Symbol> {
        let m = self.program.method(method);
        match arg.and_then(|op| local_defs::resolve_const_operand(m, addr, op))? {
            ConstValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A constant class-name argument resolved against the program's
    /// class list — the string half of the resolve table.
    fn const_class_arg(
        &self,
        method: MethodId,
        addr: StmtAddr,
        arg: Option<Operand>,
    ) -> Option<ClassId> {
        let sym = self.const_str_arg(method, addr, arg)?;
        self.program.class_by_name(self.program.name(sym))
    }

    /// Every manifest-declared component class (the `havoc` fallback
    /// candidate set for unresolved reflective lookups).
    fn manifest_components(&self) -> Vec<ClassId> {
        let m = &self.harness.app.manifest;
        m.activities
            .iter()
            .chain(&m.receivers)
            .chain(&m.services)
            .copied()
            .collect()
    }

    /// Mints a policy-conjured object and pins its allocating action.
    fn conjure(&mut self, class: ClassId, site: CallSiteId, action: ActionId) -> ObjId {
        let obj = self.objs.intern(ObjData::Conjured { class, site });
        self.alloc_action.entry(obj).or_insert(action);
        obj
    }

    /// The intent-dispatch half of the resolve table: traces the intent
    /// operand to its allocation, finds the unique constant
    /// `Intent.setClass` binding on the same allocation, and checks the
    /// bound class is manifest-declared for the dispatch kind. Mirrors
    /// the `message_what` origin-tracing discipline: any ambiguity
    /// (no binding, conflicting bindings, non-constant name) is
    /// unresolved.
    fn intent_target(
        &self,
        method: MethodId,
        addr: StmtAddr,
        intent: Option<Operand>,
        op: FrameworkOp,
    ) -> Option<ClassId> {
        let m = self.program.method(method);
        let l = intent?.as_local()?;
        let (origin_addr, _) = local_defs::find_value_origin(m, addr, l)?;
        let mut found: Option<ClassId> = None;
        for (saddr, stmt) in m.iter_stmts() {
            let Stmt::Call {
                callee,
                receiver: Some(r),
                args,
                ..
            } = stmt
            else {
                continue;
            };
            if *callee != self.fw.intent_set_class {
                continue;
            }
            let Some((oaddr, _)) = local_defs::find_value_origin(m, saddr, *r) else {
                continue;
            };
            if oaddr != origin_addr {
                continue;
            }
            match args
                .first()
                .and_then(|a| local_defs::resolve_const_operand(m, saddr, *a))
            {
                Some(ConstValue::Str(s)) => {
                    let class = self.program.class_by_name(self.program.name(s))?;
                    if found.is_none() || found == Some(class) {
                        found = Some(class);
                    } else {
                        return None;
                    }
                }
                _ => return None,
            }
        }
        let class = found?;
        let manifest = &self.harness.app.manifest;
        let declared = if op == FrameworkOp::StartActivity {
            manifest.activities.contains(&class)
        } else {
            manifest.receivers.contains(&class)
        };
        declared.then_some(class)
    }

    /// Launches an intent target: mints the component's entry action
    /// (`onCreate` for activities, `onReceive` for receivers) *within
    /// the sender's harness*, conjures the component instance, and
    /// analyzes the entry body under the new action — the solver-side
    /// mirror of [`Solver::spawn`] for components without an allocation
    /// site.
    fn spawn_component(
        &mut self,
        method: MethodId,
        ctx: CtxId,
        site: CallSiteId,
        target: ClassId,
        op: FrameworkOp,
    ) {
        let (decl, kind) = if op == FrameworkOp::StartActivity {
            (
                self.fw.activity_on_create,
                ActionKind::Lifecycle {
                    event: android_model::LifecycleEvent::Create,
                    instance: 0,
                },
            )
        } else {
            (self.fw.on_receive, ActionKind::Receive)
        };
        let Some(entry) = self.program.dispatch(target, decl) else {
            return;
        };
        let cur = self.ctxs.get(ctx).action;
        let harness = self.actions.action(cur).harness;
        let recv = self.conjure(target, site, cur);
        let (action, _) = self.actions.obtain(
            harness,
            kind,
            Some(site),
            None,
            entry,
            ThreadKind::Main,
            Some(cur),
        );
        let rec = PostRecord {
            poster: cur,
            site,
            posted: action,
        };
        if self.post_set.insert(rec) {
            self.posts.push(rec);
        }
        if !self.program.method(entry).has_body() {
            return;
        }
        let elems = self
            .selector
            .virtual_elems(&self.ctxs.get(ctx).elems, site, self.objs.get(recv))
            .into_owned();
        let tctx = self.ctxs.intern(CtxData { action, elems });
        self.record_cg_edge(method, ctx, site, entry, tctx);
        self.mark_reachable(entry, tctx);
        let p0 = self.var(entry, tctx, Local(0));
        self.add_obj(p0, recv);
    }

    /// Reflective method lookup: the named method with a body on the
    /// receiver's class or its nearest superclass.
    fn reflect_lookup(&self, recv_class: ClassId, name: apir::Symbol) -> Option<MethodId> {
        let mut cur = Some(recv_class);
        while let Some(c) = cur {
            let class = self.program.class(c);
            if let Some(&m) = class.methods.iter().find(|&&m| {
                let mm = self.program.method(m);
                mm.name == name && mm.has_body()
            }) {
                return Some(m);
            }
            cur = class.super_class;
        }
        None
    }

    /// Resolves a container index operand to its slot field: `idx0..idx7`
    /// for small constants under the index-sensitive model, otherwise the
    /// summarized `contents` field.
    fn index_field(&self, method: MethodId, addr: StmtAddr, idx: Option<Operand>) -> FieldId {
        if !self.options.index_sensitive {
            return self.fw.array_list_contents;
        }
        let m = self.program.method(method);
        match idx.and_then(|op| local_defs::resolve_const_operand(m, addr, op)) {
            Some(ConstValue::Int(k)) if (0..8).contains(&k) => self.fw.index_slots[k as usize],
            _ => self.fw.array_list_contents,
        }
    }

    /// On-demand constant propagation for message codes (§5).
    fn message_what(
        &self,
        method: MethodId,
        addr: StmtAddr,
        op: FrameworkOp,
        args: &[Operand],
    ) -> Option<i64> {
        let m = self.program.method(method);
        match op {
            FrameworkOp::HandlerSendEmptyMessage => {
                match local_defs::resolve_const_operand(m, addr, *args.first()?)? {
                    ConstValue::Int(v) => Some(v),
                    _ => None,
                }
            }
            FrameworkOp::HandlerSendMessage => {
                // Trace the message operand to its origin, then look for a
                // unique constant store to `.what` on the same origin.
                let msg = args.first()?.as_local()?;
                let (origin_addr, _) = local_defs::find_value_origin(m, addr, msg)?;
                let mut found: Option<i64> = None;
                for (saddr, stmt) in m.iter_stmts() {
                    let Stmt::Store { obj, field, value } = stmt else {
                        continue;
                    };
                    if *field != self.fw.message_what {
                        continue;
                    }
                    let Some((oaddr, _)) = local_defs::find_value_origin(m, saddr, *obj) else {
                        continue;
                    };
                    if oaddr != origin_addr {
                        continue;
                    }
                    match local_defs::resolve_const_operand(m, saddr, *value) {
                        Some(ConstValue::Int(v)) if found.is_none() || found == Some(v) => {
                            found = Some(v)
                        }
                        _ => return None,
                    }
                }
                found
            }
            _ => None,
        }
    }

    // ---- pending resolution ----

    fn process_pending(&mut self, p: &Pending, delta: &[ObjId]) {
        match p {
            Pending::Load { field, dst } => {
                for &o in delta {
                    let f = self.node(NodeKey::Field {
                        obj: o,
                        field: *field,
                    });
                    self.add_edge(f, *dst);
                }
            }
            Pending::Store { field, src } => {
                if let SrcValue::Node(src) = src {
                    for &o in delta {
                        let f = self.node(NodeKey::Field {
                            obj: o,
                            field: *field,
                        });
                        self.add_edge(*src, f);
                    }
                }
            }
            Pending::VCall(info) => {
                for &o in delta {
                    if !self.resolved.insert((info.site, info.caller_ctx, o)) {
                        continue;
                    }
                    self.resolve_virtual(info, o);
                }
            }
            Pending::HarnessCall(info) => {
                for &o in delta {
                    if !self.resolved.insert((info.site, info.caller_ctx, o)) {
                        continue;
                    }
                    self.resolve_harness(info, o);
                }
            }
            Pending::Op(info) => self.resolve_op(info),
            Pending::Havoc => {
                for &o in delta {
                    self.havoc_escaped.insert(o);
                }
            }
        }
    }

    fn resolve_virtual(&mut self, info: &CallInfo, recv: ObjId) {
        let recv_class = self.objs.get(recv).class();
        let Some(target) = self.program.dispatch(recv_class, info.callee) else {
            return;
        };
        if !self.program.method(target).has_body() {
            return;
        }
        let data = self.ctxs.get(info.caller_ctx);
        let action = data.action;
        let elems = self
            .selector
            .virtual_elems(&data.elems, info.site, self.objs.get(recv))
            .into_owned();
        let tctx = self.ctxs.intern(CtxData { action, elems });
        self.record_cg_edge(info.caller_method, info.caller_ctx, info.site, target, tctx);
        self.mark_reachable(target, tctx);
        let p0 = self.var(target, tctx, Local(0));
        self.add_obj(p0, recv);
        self.bind_args_and_ret(info, target, tctx);
    }

    fn bind_args_and_ret(&mut self, info: &CallInfo, target: MethodId, tctx: CtxId) {
        for (i, a) in info.args.iter().enumerate() {
            if let Some(an) = self.operand_node(info.caller_method, info.caller_ctx, *a) {
                let pn = self.var(target, tctx, Local(1 + i as u32));
                self.add_edge(an, pn);
            }
        }
        if let Some(d) = info.dst {
            let ret = self.node(NodeKey::Ret {
                method: target,
                ctx: tctx,
            });
            let dn = self.var(info.caller_method, info.caller_ctx, d);
            self.add_edge(ret, dn);
        }
    }

    fn resolve_harness(&mut self, info: &CallInfo, recv: ObjId) {
        let kind = match &self.harness_site_kinds[&info.site] {
            HarnessSiteKind::Lifecycle { event, instance } => ActionKind::Lifecycle {
                event: *event,
                instance: *instance,
            },
            HarnessSiteKind::Gui { event, view, .. } => ActionKind::Gui {
                event: *event,
                view: *view,
            },
            HarnessSiteKind::Receive { .. } => ActionKind::Receive,
            HarnessSiteKind::ServiceStart { .. } => ActionKind::ServiceStart,
        };
        let cur = self.ctxs.get(info.caller_ctx).action;
        let harness_activity = self.actions.action(cur).harness;
        let recv_class = self.objs.get(recv).class();
        let entry = self
            .program
            .dispatch(recv_class, info.callee)
            .unwrap_or(info.callee);
        let (action, _) = self.actions.obtain(
            harness_activity,
            kind,
            Some(info.site),
            self.objs.get(recv).site(),
            entry,
            ThreadKind::Main,
            Some(cur),
        );
        self.harness_actions.insert(info.site, action);
        if !self.program.method(entry).has_body() {
            return;
        }
        let elems = self
            .selector
            .virtual_elems(
                &self.ctxs.get(info.caller_ctx).elems,
                info.site,
                self.objs.get(recv),
            )
            .into_owned();
        let tctx = self.ctxs.intern(CtxData { action, elems });
        self.record_cg_edge(info.caller_method, info.caller_ctx, info.site, entry, tctx);
        self.mark_reachable(entry, tctx);
        let p0 = self.var(entry, tctx, Local(0));
        self.add_obj(p0, recv);
        self.bind_args_and_ret(info, entry, tctx);
    }

    /// Resolves an action-creating framework op over the cross product of
    /// its driver points-to sets.
    fn resolve_op(&mut self, info: &OpInfo) {
        use FrameworkOp::*;
        // Both object lists come out of PtsSet iteration already sorted.
        // Stored node ids may predate a collapse; canonicalize first.
        let recv_objs: Vec<ObjId> = match info.recv_node {
            Some(n) => {
                let n = self.find(n);
                self.pts[n.0 as usize].iter().collect()
            }
            None => vec![NO_OBJ],
        };
        let arg_objs: Vec<ObjId> = match info.op {
            HandlerPost
            | HandlerPostDelayed
            | ExecutorExecute
            | ViewPost
            | ViewPostDelayed
            | RunOnUiThread
            | RegisterReceiver
            | TimerSchedule
            | RequestLocationUpdates
            | SetOnCompletionListener => {
                let idx = 0;
                match info.args.get(idx).and_then(|a| a.as_local()) {
                    Some(l) => {
                        let n = self.var(info.caller_method, info.caller_ctx, l);
                        self.pts[n.0 as usize].iter().collect()
                    }
                    None => Vec::new(),
                }
            }
            BindService | MethodInvoke => match info.args.get(1).and_then(|a| a.as_local()) {
                Some(l) => {
                    let n = self.var(info.caller_method, info.caller_ctx, l);
                    self.pts[n.0 as usize].iter().collect()
                }
                None => Vec::new(),
            },
            _ => vec![NO_OBJ],
        };
        for &r in &recv_objs {
            for &a in &arg_objs {
                if !self.op_resolved.insert((info.site, info.caller_ctx, r, a)) {
                    continue;
                }
                self.dispatch_op(info, r, a);
            }
        }
    }

    fn dispatch_op(&mut self, info: &OpInfo, recv: ObjId, arg: ObjId) {
        use FrameworkOp::*;
        let cur = self.ctxs.get(info.caller_ctx).action;
        let harness = self.actions.action(cur).harness;
        match info.op {
            ThreadStart => {
                self.spawn(
                    info,
                    recv,
                    self.fw.thread_run,
                    ActionKind::ThreadRun,
                    None,
                    true,
                );
            }
            AsyncTaskExecute => {
                self.spawn(
                    info,
                    recv,
                    self.fw.async_task_on_pre_execute,
                    ActionKind::AsyncTaskPre,
                    Some(ThreadKind::Main),
                    false,
                );
                self.spawn(
                    info,
                    recv,
                    self.fw.async_task_do_in_background,
                    ActionKind::AsyncTaskBg,
                    None,
                    true,
                );
                self.spawn(
                    info,
                    recv,
                    self.fw.async_task_on_post_execute,
                    ActionKind::AsyncTaskPost,
                    Some(ThreadKind::Main),
                    false,
                );
            }
            ExecutorExecute => {
                self.spawn(
                    info,
                    arg,
                    self.fw.runnable_run,
                    ActionKind::ExecutorRun,
                    None,
                    true,
                );
            }
            HandlerPost | HandlerPostDelayed => {
                let looper = self.looper_of(recv);
                self.spawn(
                    info,
                    arg,
                    self.fw.runnable_run,
                    ActionKind::RunnablePost,
                    Some(looper),
                    false,
                );
            }
            ViewPost | ViewPostDelayed | RunOnUiThread => {
                self.spawn(
                    info,
                    arg,
                    self.fw.runnable_run,
                    ActionKind::RunnablePost,
                    Some(ThreadKind::Main),
                    false,
                );
            }
            HandlerSendMessage | HandlerSendEmptyMessage => {
                let looper = self.looper_of(recv);
                let kind = ActionKind::MessageHandle { what: info.what };
                let posted = self.spawn(
                    info,
                    recv,
                    self.fw.handler_handle_message,
                    kind,
                    Some(looper),
                    false,
                );
                // Bind the message argument to handleMessage's parameter.
                if info.op == HandlerSendMessage {
                    if let (Some((entry, tctx)), Some(l)) =
                        (posted, info.args.first().and_then(|a| a.as_local()))
                    {
                        let an = self.var(info.caller_method, info.caller_ctx, l);
                        let pn = self.var(entry, tctx, Local(1));
                        self.add_edge(an, pn);
                    }
                }
            }
            RegisterReceiver => {
                self.spawn(
                    info,
                    arg,
                    self.fw.on_receive,
                    ActionKind::Receive,
                    Some(ThreadKind::Main),
                    false,
                );
            }
            TimerSchedule => {
                self.spawn(
                    info,
                    arg,
                    self.fw.timer_task_run,
                    ActionKind::TimerTask,
                    None,
                    true,
                );
            }
            RequestLocationUpdates => {
                self.spawn(
                    info,
                    arg,
                    self.fw.on_location_changed,
                    ActionKind::LocationUpdate,
                    Some(ThreadKind::Main),
                    false,
                );
            }
            SetOnCompletionListener => {
                self.spawn(
                    info,
                    arg,
                    self.fw.on_completion,
                    ActionKind::MediaCompletion,
                    Some(ThreadKind::Main),
                    false,
                );
            }
            BindService => {
                self.spawn(
                    info,
                    arg,
                    self.fw.on_service_connected,
                    ActionKind::ServiceConnected,
                    Some(ThreadKind::Main),
                    false,
                );
                self.spawn(
                    info,
                    arg,
                    self.fw.on_service_disconnected,
                    ActionKind::ServiceDisconnected,
                    Some(ThreadKind::Main),
                    false,
                );
            }
            ClassNewInstance => {
                // The receiver is a reflective class token; conjure an
                // instance of the class it denotes. Ordinary virtual
                // dispatch takes over from there.
                let ObjData::Conjured { class, .. } = *self.objs.get(recv) else {
                    return;
                };
                let Some(d) = info.dst else { return };
                let inst = self.conjure(class, info.site, cur);
                let dn = self.var(info.caller_method, info.caller_ctx, d);
                self.add_obj(dn, inst);
                self.resolved_sites.insert(info.site);
            }
            MethodInvoke => {
                if arg == NO_OBJ {
                    return;
                }
                let Some(name) = info.name_const else {
                    // Unknown method name: under havoc the target object
                    // escapes into the unknown callee.
                    if self.options.opaque_policy == OpaquePolicy::Havoc {
                        self.havoc_escaped.insert(arg);
                    }
                    return;
                };
                let recv_class = self.objs.get(arg).class();
                let Some(target) = self.reflect_lookup(recv_class, name) else {
                    if self.options.opaque_policy == OpaquePolicy::Havoc {
                        self.havoc_escaped.insert(arg);
                    }
                    return;
                };
                let data = self.ctxs.get(info.caller_ctx);
                let elems = self
                    .selector
                    .virtual_elems(&data.elems, info.site, self.objs.get(arg))
                    .into_owned();
                let tctx = self.ctxs.intern(CtxData { action: cur, elems });
                self.record_cg_edge(info.caller_method, info.caller_ctx, info.site, target, tctx);
                self.mark_reachable(target, tctx);
                let p0 = self.var(target, tctx, Local(0));
                self.add_obj(p0, arg);
                if let Some(d) = info.dst {
                    let ret = self.node(NodeKey::Ret {
                        method: target,
                        ctx: tctx,
                    });
                    let dn = self.var(info.caller_method, info.caller_ctx, d);
                    self.add_edge(ret, dn);
                }
                self.resolved_sites.insert(info.site);
            }
            _ => {
                let _ = harness;
            }
        }
    }

    /// Mints an action for `decl` dispatched on `recv`, analyzes its body
    /// under the new action context, and records the post.
    ///
    /// Returns the entry and its context when a body was analyzed.
    fn spawn(
        &mut self,
        info: &OpInfo,
        recv: ObjId,
        decl: MethodId,
        kind: ActionKind,
        thread: Option<ThreadKind>,
        own_thread: bool,
    ) -> Option<(MethodId, CtxId)> {
        if recv == NO_OBJ {
            return None;
        }
        let recv_class = self.objs.get(recv).class();
        let entry = self.program.dispatch(recv_class, decl)?;
        let cur = self.ctxs.get(info.caller_ctx).action;
        let harness = self.actions.action(cur).harness;
        let thread = thread.unwrap_or_else(|| kind.default_thread());
        let (action, _) = self.actions.obtain(
            harness,
            kind,
            Some(info.site),
            self.objs.get(recv).site(),
            entry,
            thread,
            Some(cur),
        );
        if own_thread {
            self.actions.bind_own_thread(action);
        }
        let rec = PostRecord {
            poster: cur,
            site: info.site,
            posted: action,
        };
        if self.post_set.insert(rec) {
            self.posts.push(rec);
        }
        if !self.program.method(entry).has_body() {
            return None;
        }
        let elems = self
            .selector
            .virtual_elems(
                &self.ctxs.get(info.caller_ctx).elems,
                info.site,
                self.objs.get(recv),
            )
            .into_owned();
        let tctx = self.ctxs.intern(CtxData { action, elems });
        self.record_cg_edge(info.caller_method, info.caller_ctx, info.site, entry, tctx);
        self.mark_reachable(entry, tctx);
        let p0 = self.var(entry, tctx, Local(0));
        self.add_obj(p0, recv);
        Some((entry, tctx))
    }

    /// The looper a handler object delivers to: the thread of the action
    /// that allocated the handler (the paper's in-thread reachability
    /// pre-processing, §4.4).
    fn looper_of(&self, handler: ObjId) -> ThreadKind {
        match self.alloc_action.get(&handler) {
            Some(&a) => self.actions.action(a).thread,
            None => ThreadKind::Main,
        }
    }

    fn record_cg_edge(
        &mut self,
        caller: MethodId,
        cctx: CtxId,
        site: CallSiteId,
        callee: MethodId,
        tctx: CtxId,
    ) {
        if self.cg_edge_set.insert((caller, cctx, site, callee, tctx)) {
            self.cg_edges
                .entry((caller, cctx, site))
                .or_default()
                .push((callee, tctx));
        }
    }
}
