//! Per-method facts for the compositional summary layer.
//!
//! The solver walks every method body once per reachable `(method, ctx)`
//! pair. All the body-derived inputs it consumes — the return operands
//! and the statement list — are context-independent, so they are
//! extracted once per method as [`MethodPointerFacts`] and shared across
//! contexts. The same extraction feeds the **pointer digest**: a content
//! hash over exactly the statements the solver reacts to, which the
//! summary store uses to key whole-`Analysis` artifact reuse. Two method
//! bodies with equal digests produce identical constraint graphs, so a
//! program whose every digest is unchanged re-solves to the identical
//! `Analysis`.
//!
//! [`AccessSite`] is the per-method half of access collection
//! (`collect_accesses`): the field-access statements of one body with
//! their base locals, before any context/points-to instantiation. Access
//! sites are pure functions of the body (given the framework table and
//! the `index_sensitive` option), so they are cacheable per method hash.

use crate::solver::Analysis;
use android_model::{FrameworkClasses, FrameworkOp};
use apir::{
    local_defs, ConstValue, FieldId, Local, Method, MethodId, Operand, Program, Stmt, StmtAddr,
    Terminator,
};

/// 64-bit FNV-1a, the repo-wide content-hash primitive for summary keys.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// The FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self
    }

    /// Absorbs a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a over a byte string.
pub fn fnv64(bytes: &[u8]) -> u64 {
    Fnv64::new().write(bytes).finish()
}

/// The context-independent inputs the solver reads from one method body:
/// return operands (in block order) and the statement list (in
/// [`Method::iter_stmts`] order) — exactly what `process_body` consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodPointerFacts {
    /// Operands of every `Return(Some(op))` terminator, in block order.
    pub rets: Vec<Operand>,
    /// Every statement with its address, in iteration order.
    pub stmts: Vec<(StmtAddr, Stmt)>,
}

/// Extracts the solver-consumed facts of one method body, in the exact
/// order the solver processes them.
pub fn extract_pointer_facts(method: &Method) -> MethodPointerFacts {
    let rets: Vec<Operand> = method
        .iter_blocks()
        .filter_map(|(_, b)| match &b.terminator {
            Terminator::Return(Some(op)) => Some(*op),
            _ => None,
        })
        .collect();
    let stmts: Vec<(StmtAddr, Stmt)> = method.iter_stmts().map(|(a, s)| (a, s.clone())).collect();
    MethodPointerFacts { rets, stmts }
}

/// Whether the solver ignores `stmt` entirely. A `StaticStore` of a
/// constant creates no node and no edge (`operand_node` of a constant is
/// `None`), so it cannot perturb the constraint graph — it is the one
/// statement class excluded from the pointer digest. `Const`/`UnOp`/
/// `BinOp` statements *are* digested: the solver's container-index and
/// `findViewById`/`sendMessage` resolution reads them through
/// [`local_defs::resolve_const_operand`].
fn solver_noop(stmt: &Stmt) -> bool {
    matches!(
        stmt,
        Stmt::StaticStore {
            value: Operand::Const(_),
            ..
        }
    )
}

/// Content hash over the solver-relevant part of a method body.
///
/// Equal digests guarantee the solver builds the same constraints for
/// the method; the summary linker keys whole-`Analysis` reuse on the
/// concatenation of all digests (plus the structural and config
/// fingerprints).
pub fn pointer_digest(facts: &MethodPointerFacts) -> u64 {
    let mut h = Fnv64::new();
    for r in &facts.rets {
        h.write(format!("r{r:?};").as_bytes());
    }
    for (addr, stmt) in &facts.stmts {
        if solver_noop(stmt) {
            continue;
        }
        h.write(format!("{addr:?}={stmt:?};").as_bytes());
    }
    h.finish()
}

/// One field-access statement of a method body, before context
/// instantiation: the per-method half of `collect_accesses`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessSite {
    /// The accessing statement.
    pub addr: StmtAddr,
    /// The accessed field (container ops resolve to their slot field).
    pub field: FieldId,
    /// Base local for instance accesses, `None` for statics.
    pub base: Option<Local>,
    /// `true` for stores.
    pub is_write: bool,
    /// Whether this is a static-field access.
    pub is_static: bool,
}

/// Extracts the field-access sites of one method body, in statement
/// order. Pure in the body given the framework table and the
/// `index_sensitive` option, so cacheable by body hash.
pub fn method_access_sites(
    program: &Program,
    fw: &FrameworkClasses,
    method: MethodId,
    index_sensitive: bool,
) -> Vec<AccessSite> {
    let m = program.method(method);
    if !m.has_body() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (addr, stmt) in m.iter_stmts() {
        let (is_write, field, base, is_static) = match stmt {
            Stmt::Load { obj, field, .. } => (false, *field, Some(*obj), false),
            Stmt::Store { obj, field, .. } => (true, *field, Some(*obj), false),
            Stmt::StaticLoad { field, .. } => (false, *field, None, true),
            Stmt::StaticStore { field, .. } => (true, *field, None, true),
            Stmt::Call {
                callee,
                receiver,
                args,
                ..
            } => {
                // Container ops are heap accesses in disguise.
                let (w, idx_op) = match FrameworkOp::classify(fw, *callee) {
                    Some(FrameworkOp::ArrayListSetAt) => (true, args.first().copied()),
                    Some(FrameworkOp::ArrayListGetAt) => (false, args.first().copied()),
                    _ => continue,
                };
                let Some(base) = receiver else { continue };
                let field = resolve_index_field(fw, index_sensitive, m, addr, idx_op);
                (w, field, Some(*base), false)
            }
            _ => continue,
        };
        out.push(AccessSite {
            addr,
            field,
            base,
            is_write,
            is_static,
        });
    }
    out
}

/// The slot field an indexed container access touches, mirroring the
/// solver's resolution exactly.
pub(crate) fn resolve_index_field(
    fw: &FrameworkClasses,
    index_sensitive: bool,
    method: &Method,
    addr: StmtAddr,
    idx: Option<Operand>,
) -> FieldId {
    if !index_sensitive {
        return fw.array_list_contents;
    }
    match idx.and_then(|op| local_defs::resolve_const_operand(method, addr, op)) {
        Some(ConstValue::Int(k)) if (0..8).contains(&k) => fw.index_slots[k as usize],
        _ => fw.array_list_contents,
    }
}

/// Per-method access sites for every method with a body that is
/// reachable in `analysis`, keyed by method id.
pub fn reachable_access_sites(
    analysis: &Analysis,
    program: &Program,
) -> std::collections::HashMap<MethodId, Vec<AccessSite>> {
    let fw = analysis.framework();
    let mut sites = std::collections::HashMap::new();
    for &(m, _) in &analysis.reachable {
        if program.method(m).has_body() {
            sites.entry(m).or_insert_with(|| {
                method_access_sites(program, fw, m, analysis.options.index_sensitive)
            });
        }
    }
    sites
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_deterministic_and_input_sensitive() {
        assert_eq!(fnv64(b"abc"), fnv64(b"abc"));
        assert_ne!(fnv64(b"abc"), fnv64(b"abd"));
        assert_ne!(
            Fnv64::new().write_u64(1).finish(),
            Fnv64::new().write_u64(2).finish()
        );
    }
}
