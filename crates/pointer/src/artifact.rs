//! Versioned binary serialization of a finished [`Analysis`] — the
//! persistent half of the whole-artifact cache.
//!
//! [`encode`] flattens everything the linking pass reuses on an
//! analysis-key hit (points-to solution, call graph, context/object
//! tables, actions, posting records, solver stats) into a
//! self-validating blob; [`decode`] rebuilds an `Analysis` that is
//! observationally identical to the one the solver produced, so a cold
//! *process* warm-starts exactly like a warm in-memory session: zero
//! worklist iterations and byte-identical reports.
//!
//! Design constraints, in order:
//!
//! - **Determinism.** The same `Analysis` always encodes to the same
//!   bytes: every hash-map is emitted in sorted key order, every table
//!   in id order. (Decode does not depend on this, but deterministic
//!   blobs make caches diffable and tests exact.)
//! - **Versioned envelope.** The payload is wrapped in a header of
//!   magic, version, length, and FNV-1a checksum
//!   ([`envelope_is_valid`]); a store can reject truncated or
//!   version-mismatched blobs *without* decoding, mirroring the
//!   summary-file version header. Bump [`VERSION`] on any layout
//!   change so stale caches miss instead of misparse.
//! - **No interned names.** Ids (`MethodId`, `FieldId`, `CtxId`, …) are
//!   table positions, stable for a fixed program structure; the cache
//!   key (the analysis key) pins the structural fingerprint, so a blob
//!   is only ever decoded against the id assignment it was built from.
//!   The one non-positional input, the [`FrameworkClasses`] id table, is
//!   supplied by the caller at decode time rather than serialized.
//! - **Stats verbatim.** [`SolverStats`] are carried through unchanged —
//!   a decoded artifact reports the counters of the run that produced
//!   it, which is what keeps warm reports byte-identical to cold ones.
//!
//! Any structural deviation during decode — short buffer, unknown tag,
//! out-of-range index — returns `None`; the caller treats it as a cache
//! miss and re-solves.

use crate::ctx::{CtxData, CtxElem, CtxTable, ObjData, ObjTable, SelectorKind};
use crate::ptsset::PtsSet;
use crate::solver::{Analysis, AnalysisOptions, NodeId, NodeKey, PostRecord, SolverStats};
use crate::{OpaquePolicy, WorklistPolicy};
use android_model::{
    Action, ActionId, ActionKind, ActionRegistry, FrameworkClasses, GuiEventKind, LifecycleEvent,
    ThreadKind,
};
use apir::{AllocSiteId, CallSiteId, ClassId, FieldId, Local, MethodId};
use std::collections::{HashMap, HashSet};

/// Envelope magic: identifies a sierra analysis artifact.
const MAGIC: &[u8; 8] = b"SIERRART";

/// Artifact layout version; bump on any payload format change.
const VERSION: u32 = 2;

/// Envelope header length: magic + version + payload length + checksum.
const HEADER_LEN: usize = 8 + 4 + 8 + 8;

/// Whether `bytes` carries a well-formed artifact envelope: correct
/// magic, current version, exact payload length, and matching payload
/// checksum. Cheap enough for a store to run on every lookup; a `false`
/// means the blob is truncated, torn, or from another format version
/// and must be treated as a (counted) corrupt miss.
pub fn envelope_is_valid(bytes: &[u8]) -> bool {
    if bytes.len() < HEADER_LEN || &bytes[..8] != MAGIC {
        return false;
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != VERSION {
        return false;
    }
    let len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")) as usize;
    let checksum = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes"));
    let payload = &bytes[HEADER_LEN..];
    payload.len() == len && crate::fnv64(payload) == checksum
}

/// Serializes an analysis into a self-validating artifact blob.
pub fn encode(analysis: &Analysis) -> Vec<u8> {
    let mut w = Writer::default();
    w.selector(analysis.selector);
    w.options(analysis.options);

    let actions = analysis.actions.actions();
    w.len(actions.len());
    for a in actions {
        w.action(a);
    }

    w.len(analysis.ctxs.entries().len());
    for c in analysis.ctxs.entries() {
        w.ctx_data(c);
    }
    w.len(analysis.objs.entries().len());
    for o in analysis.objs.entries() {
        w.obj_data(o);
    }

    let mut reachable: Vec<(MethodId, crate::CtxId)> = analysis.reachable.iter().copied().collect();
    reachable.sort_unstable_by_key(|&(m, c)| (m.0, c.0));
    w.len(reachable.len());
    for (m, c) in reachable {
        w.u32(m.0);
        w.u32(c.0);
    }

    let mut edges: Vec<_> = analysis.cg_edges.iter().collect();
    edges.sort_unstable_by_key(|&(&(m, c, s), _)| (m.0, c.0, s.0));
    w.len(edges.len());
    for (&(m, c, s), callees) in edges {
        w.u32(m.0);
        w.u32(c.0);
        w.u32(s.0);
        w.len(callees.len());
        for &(cm, cc) in callees {
            w.u32(cm.0);
            w.u32(cc.0);
        }
    }

    w.len(analysis.posts.len());
    for p in &analysis.posts {
        w.u32(p.poster.0);
        w.u32(p.site.0);
        w.u32(p.posted.0);
    }

    let mut harness_actions: Vec<(CallSiteId, ActionId)> = analysis
        .harness_actions
        .iter()
        .map(|(&s, &a)| (s, a))
        .collect();
    harness_actions.sort_unstable_by_key(|&(s, _)| s.0);
    w.len(harness_actions.len());
    for (s, a) in harness_actions {
        w.u32(s.0);
        w.u32(a.0);
    }

    w.len(analysis.root_actions.len());
    for &(c, a) in &analysis.root_actions {
        w.u32(c.0);
        w.u32(a.0);
    }

    w.stats(&analysis.stats);

    let mut nodes: Vec<(&NodeKey, NodeId)> = analysis.nodes.iter().map(|(k, &n)| (k, n)).collect();
    nodes.sort_unstable_by_key(|&(k, _)| node_sort_key(k));
    w.len(nodes.len());
    for (key, node) in nodes {
        w.node_key(key);
        w.u32(node.0);
    }

    w.len(analysis.pts.len());
    for set in &analysis.pts {
        w.len(set.iter().count());
        for obj in set.iter() {
            w.u32(obj.0);
        }
    }

    let mut resolved: Vec<CallSiteId> = analysis.resolved_sites.iter().copied().collect();
    resolved.sort_unstable_by_key(|s| s.0);
    w.len(resolved.len());
    for s in resolved {
        w.u32(s.0);
    }

    let mut havoc: Vec<crate::ObjId> = analysis.havoc_escaped.iter().copied().collect();
    havoc.sort_unstable_by_key(|o| o.0);
    w.len(havoc.len());
    for o in havoc {
        w.u32(o.0);
    }

    let payload = w.0;
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crate::fnv64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Rebuilds an analysis from an artifact blob. `framework` supplies the
/// one input the blob does not carry: the framework id table of the app
/// the artifact was keyed against (the analysis key pins the structural
/// fingerprint, so the ids are guaranteed to line up). Returns `None`
/// on any envelope or payload deviation — the caller re-solves.
pub fn decode(bytes: &[u8], framework: FrameworkClasses) -> Option<Analysis> {
    if !envelope_is_valid(bytes) {
        return None;
    }
    let mut r = Reader {
        bytes: &bytes[HEADER_LEN..],
        pos: 0,
    };
    let selector = r.selector()?;
    let options = r.options()?;

    let n_actions = r.len()?;
    let mut actions = Vec::with_capacity(n_actions);
    for i in 0..n_actions {
        actions.push(r.action(ActionId(i as u32))?);
    }
    let actions = ActionRegistry::from_actions(actions);

    let n_ctxs = r.len()?;
    let mut ctxs = Vec::with_capacity(n_ctxs);
    for _ in 0..n_ctxs {
        ctxs.push(r.ctx_data()?);
    }
    let ctxs = CtxTable::from_entries(ctxs);

    let n_objs = r.len()?;
    let mut objs = Vec::with_capacity(n_objs);
    for _ in 0..n_objs {
        objs.push(r.obj_data()?);
    }
    let objs = ObjTable::from_entries(objs);

    let n_reachable = r.len()?;
    let mut reachable = HashSet::with_capacity(n_reachable);
    let mut contexts_by_method: HashMap<MethodId, Vec<crate::CtxId>> = HashMap::new();
    for _ in 0..n_reachable {
        let m = MethodId(r.u32()?);
        let c = crate::CtxId(r.u32()?);
        reachable.insert((m, c));
        contexts_by_method.entry(m).or_default().push(c);
    }
    // The solver sorts each method's context list after building it;
    // re-establish that invariant regardless of blob emission order.
    for ctxs in contexts_by_method.values_mut() {
        ctxs.sort_unstable();
    }

    let n_edges = r.len()?;
    let mut cg_edges = HashMap::with_capacity(n_edges);
    for _ in 0..n_edges {
        let key = (
            MethodId(r.u32()?),
            crate::CtxId(r.u32()?),
            CallSiteId(r.u32()?),
        );
        let n_callees = r.len()?;
        let mut callees = Vec::with_capacity(n_callees);
        for _ in 0..n_callees {
            callees.push((MethodId(r.u32()?), crate::CtxId(r.u32()?)));
        }
        cg_edges.insert(key, callees);
    }

    let n_posts = r.len()?;
    let mut posts = Vec::with_capacity(n_posts);
    for _ in 0..n_posts {
        posts.push(PostRecord {
            poster: ActionId(r.u32()?),
            site: CallSiteId(r.u32()?),
            posted: ActionId(r.u32()?),
        });
    }

    let n_harness = r.len()?;
    let mut harness_actions = HashMap::with_capacity(n_harness);
    for _ in 0..n_harness {
        harness_actions.insert(CallSiteId(r.u32()?), ActionId(r.u32()?));
    }

    let n_roots = r.len()?;
    let mut root_actions = Vec::with_capacity(n_roots);
    for _ in 0..n_roots {
        root_actions.push((ClassId(r.u32()?), ActionId(r.u32()?)));
    }

    let stats = r.stats()?;

    let n_nodes = r.len()?;
    let mut nodes = HashMap::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        let key = r.node_key()?;
        let node = NodeId(r.u32()?);
        nodes.insert(key, node);
    }

    let n_pts = r.len()?;
    let mut pts = Vec::with_capacity(n_pts);
    for _ in 0..n_pts {
        let n_objs = r.len()?;
        let mut set = PtsSet::new();
        for _ in 0..n_objs {
            set.insert(crate::ObjId(r.u32()?));
        }
        pts.push(set);
    }
    // Every node must index into the points-to vector.
    if nodes.values().any(|n| n.0 as usize >= pts.len()) {
        return None;
    }

    let n_resolved = r.len()?;
    let mut resolved_sites = HashSet::with_capacity(n_resolved);
    for _ in 0..n_resolved {
        resolved_sites.insert(CallSiteId(r.u32()?));
    }

    let n_havoc = r.len()?;
    let mut havoc_escaped = HashSet::with_capacity(n_havoc);
    for _ in 0..n_havoc {
        havoc_escaped.insert(crate::ObjId(r.u32()?));
    }

    if !r.at_end() {
        return None;
    }

    Some(Analysis {
        selector,
        options,
        framework,
        actions,
        ctxs,
        objs,
        reachable,
        contexts_by_method,
        cg_edges,
        posts,
        harness_actions,
        root_actions,
        resolved_sites,
        havoc_escaped,
        stats,
        nodes,
        pts,
    })
}

/// Total order over node keys for deterministic emission.
fn node_sort_key(key: &NodeKey) -> (u8, u32, u32, u32) {
    match *key {
        NodeKey::Var { method, ctx, local } => (0, method.0, ctx.0, local.0),
        NodeKey::Ret { method, ctx } => (1, method.0, ctx.0, 0),
        NodeKey::Field { obj, field } => (2, obj.0, field.0, 0),
        NodeKey::Static { field } => (3, field.0, 0, 0),
    }
}

#[derive(Default)]
struct Writer(Vec<u8>);

impl Writer {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn len(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn opt_u32(&mut self, v: Option<u32>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.u32(x);
            }
            None => self.u8(0),
        }
    }

    fn selector(&mut self, s: SelectorKind) {
        let (tag, k) = match s {
            SelectorKind::Insensitive => (0, 0),
            SelectorKind::KCfa(k) => (1, k),
            SelectorKind::KObj(k) => (2, k),
            SelectorKind::Hybrid(k) => (3, k),
            SelectorKind::ActionSensitive(k) => (4, k),
        };
        self.u8(tag);
        self.u32(k);
    }

    fn options(&mut self, o: AnalysisOptions) {
        self.u8(o.index_sensitive as u8);
        self.u8(o.cycle_collapse as u8);
        self.u8(match o.worklist {
            WorklistPolicy::Fifo => 0,
            WorklistPolicy::TopoLrf => 1,
        });
        self.u8(match o.opaque_policy {
            OpaquePolicy::Ignore => 0,
            OpaquePolicy::Resolve => 1,
            OpaquePolicy::Havoc => 2,
        });
    }

    fn action(&mut self, a: &Action) {
        self.action_kind(a.kind);
        self.opt_u32(a.parent.map(|p| p.0));
        self.len(a.posters.len());
        for p in &a.posters {
            self.u32(p.0);
        }
        match a.thread {
            ThreadKind::Main => self.u8(0),
            ThreadKind::Background(root) => {
                self.u8(1);
                self.opt_u32(root.map(|r| r.0));
            }
        }
        self.u32(a.entry.0);
        self.opt_u32(a.recv_site.map(|s| s.0));
        self.u32(a.harness.0);
        self.opt_u32(a.origin_site.map(|s| s.0));
    }

    fn action_kind(&mut self, kind: ActionKind) {
        match kind {
            ActionKind::HarnessRoot => self.u8(0),
            ActionKind::Lifecycle { event, instance } => {
                self.u8(1);
                self.u8(lifecycle_tag(event));
                self.u8(instance);
            }
            ActionKind::Gui { event, view } => {
                self.u8(2);
                self.u8(gui_tag(event));
                match view {
                    Some(v) => {
                        self.u8(1);
                        self.u32(v as u32);
                    }
                    None => self.u8(0),
                }
            }
            ActionKind::ThreadRun => self.u8(3),
            ActionKind::AsyncTaskPre => self.u8(4),
            ActionKind::AsyncTaskBg => self.u8(5),
            ActionKind::AsyncTaskPost => self.u8(6),
            ActionKind::ExecutorRun => self.u8(7),
            ActionKind::RunnablePost => self.u8(8),
            ActionKind::MessageHandle { what } => {
                self.u8(9);
                match what {
                    Some(w) => {
                        self.u8(1);
                        self.i64(w);
                    }
                    None => self.u8(0),
                }
            }
            ActionKind::Receive => self.u8(10),
            ActionKind::ServiceConnected => self.u8(11),
            ActionKind::ServiceDisconnected => self.u8(12),
            ActionKind::ServiceStart => self.u8(13),
            ActionKind::TimerTask => self.u8(14),
            ActionKind::LocationUpdate => self.u8(15),
            ActionKind::MediaCompletion => self.u8(16),
        }
    }

    fn ctx_elem(&mut self, e: CtxElem) {
        match e {
            CtxElem::Alloc(s) => {
                self.u8(0);
                self.u32(s.0);
            }
            CtxElem::Call(s) => {
                self.u8(1);
                self.u32(s.0);
            }
        }
    }

    fn ctx_data(&mut self, c: &CtxData) {
        self.u32(c.action.0);
        self.len(c.elems.len());
        for &e in &c.elems {
            self.ctx_elem(e);
        }
    }

    fn obj_data(&mut self, o: &ObjData) {
        match o {
            ObjData::Site {
                site,
                action,
                elems,
                class,
            } => {
                self.u8(0);
                self.u32(site.0);
                self.opt_u32(action.map(|a| a.0));
                self.len(elems.len());
                for &e in elems {
                    self.ctx_elem(e);
                }
                self.u32(class.0);
            }
            ObjData::View {
                activity,
                view_id,
                class,
            } => {
                self.u8(1);
                self.u32(activity.0);
                self.i64(*view_id);
                self.u32(class.0);
            }
            ObjData::Conjured { class, site } => {
                self.u8(2);
                self.u32(class.0);
                self.u32(site.0);
            }
        }
    }

    fn stats(&mut self, s: &SolverStats) {
        self.u64(s.worklist_iterations as u64);
        self.u64(s.propagations as u64);
        self.u64(s.cg_edges as u64);
        self.u64(s.reachable_contexts as u64);
        self.u64(s.abstract_objects as u64);
        self.u64(s.pts_set_bytes as u64);
        self.u64(s.collapsed_sccs as u64);
        self.u64(s.collapsed_nodes as u64);
        self.u8(match s.worklist_policy {
            WorklistPolicy::Fifo => 0,
            WorklistPolicy::TopoLrf => 1,
        });
    }

    fn node_key(&mut self, key: &NodeKey) {
        match *key {
            NodeKey::Var { method, ctx, local } => {
                self.u8(0);
                self.u32(method.0);
                self.u32(ctx.0);
                self.u32(local.0);
            }
            NodeKey::Ret { method, ctx } => {
                self.u8(1);
                self.u32(method.0);
                self.u32(ctx.0);
            }
            NodeKey::Field { obj, field } => {
                self.u8(2);
                self.u32(obj.0);
                self.u32(field.0);
            }
            NodeKey::Static { field } => {
                self.u8(3);
                self.u32(field.0);
            }
        }
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Option<&[u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn i64(&mut self) -> Option<i64> {
        Some(i64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn len(&mut self) -> Option<usize> {
        let v = self.u64()?;
        // A length cannot exceed the remaining payload (each element is
        // at least one byte), so a corrupt giant length fails here
        // instead of driving a huge allocation.
        let v = usize::try_from(v).ok()?;
        (v <= self.bytes.len().saturating_sub(self.pos)).then_some(v)
    }

    fn opt_u32(&mut self) -> Option<Option<u32>> {
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(self.u32()?)),
            _ => None,
        }
    }

    fn selector(&mut self) -> Option<SelectorKind> {
        let tag = self.u8()?;
        let k = self.u32()?;
        Some(match tag {
            0 => SelectorKind::Insensitive,
            1 => SelectorKind::KCfa(k),
            2 => SelectorKind::KObj(k),
            3 => SelectorKind::Hybrid(k),
            4 => SelectorKind::ActionSensitive(k),
            _ => return None,
        })
    }

    fn options(&mut self) -> Option<AnalysisOptions> {
        Some(AnalysisOptions {
            index_sensitive: self.bool()?,
            cycle_collapse: self.bool()?,
            worklist: self.worklist()?,
            opaque_policy: self.opaque_policy()?,
        })
    }

    fn opaque_policy(&mut self) -> Option<OpaquePolicy> {
        match self.u8()? {
            0 => Some(OpaquePolicy::Ignore),
            1 => Some(OpaquePolicy::Resolve),
            2 => Some(OpaquePolicy::Havoc),
            _ => None,
        }
    }

    fn bool(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    fn worklist(&mut self) -> Option<WorklistPolicy> {
        match self.u8()? {
            0 => Some(WorklistPolicy::Fifo),
            1 => Some(WorklistPolicy::TopoLrf),
            _ => None,
        }
    }

    fn action(&mut self, id: ActionId) -> Option<Action> {
        let kind = self.action_kind()?;
        let parent = self.opt_u32()?.map(ActionId);
        let n_posters = self.len()?;
        let mut posters = Vec::with_capacity(n_posters);
        for _ in 0..n_posters {
            posters.push(ActionId(self.u32()?));
        }
        let thread = match self.u8()? {
            0 => ThreadKind::Main,
            1 => ThreadKind::Background(self.opt_u32()?.map(ActionId)),
            _ => return None,
        };
        Some(Action {
            id,
            kind,
            parent,
            posters,
            thread,
            entry: MethodId(self.u32()?),
            recv_site: self.opt_u32()?.map(AllocSiteId),
            harness: ClassId(self.u32()?),
            origin_site: self.opt_u32()?.map(CallSiteId),
        })
    }

    fn action_kind(&mut self) -> Option<ActionKind> {
        Some(match self.u8()? {
            0 => ActionKind::HarnessRoot,
            1 => ActionKind::Lifecycle {
                event: lifecycle_from_tag(self.u8()?)?,
                instance: self.u8()?,
            },
            2 => {
                let event = gui_from_tag(self.u8()?)?;
                let view = match self.u8()? {
                    0 => None,
                    1 => Some(self.u32()? as i32),
                    _ => return None,
                };
                ActionKind::Gui { event, view }
            }
            3 => ActionKind::ThreadRun,
            4 => ActionKind::AsyncTaskPre,
            5 => ActionKind::AsyncTaskBg,
            6 => ActionKind::AsyncTaskPost,
            7 => ActionKind::ExecutorRun,
            8 => ActionKind::RunnablePost,
            9 => {
                let what = match self.u8()? {
                    0 => None,
                    1 => Some(self.i64()?),
                    _ => return None,
                };
                ActionKind::MessageHandle { what }
            }
            10 => ActionKind::Receive,
            11 => ActionKind::ServiceConnected,
            12 => ActionKind::ServiceDisconnected,
            13 => ActionKind::ServiceStart,
            14 => ActionKind::TimerTask,
            15 => ActionKind::LocationUpdate,
            16 => ActionKind::MediaCompletion,
            _ => return None,
        })
    }

    fn ctx_elem(&mut self) -> Option<CtxElem> {
        match self.u8()? {
            0 => Some(CtxElem::Alloc(AllocSiteId(self.u32()?))),
            1 => Some(CtxElem::Call(CallSiteId(self.u32()?))),
            _ => None,
        }
    }

    fn ctx_data(&mut self) -> Option<CtxData> {
        let action = ActionId(self.u32()?);
        let n = self.len()?;
        let mut elems = Vec::with_capacity(n);
        for _ in 0..n {
            elems.push(self.ctx_elem()?);
        }
        Some(CtxData { action, elems })
    }

    fn obj_data(&mut self) -> Option<ObjData> {
        match self.u8()? {
            0 => {
                let site = AllocSiteId(self.u32()?);
                let action = self.opt_u32()?.map(ActionId);
                let n = self.len()?;
                let mut elems = Vec::with_capacity(n);
                for _ in 0..n {
                    elems.push(self.ctx_elem()?);
                }
                let class = ClassId(self.u32()?);
                Some(ObjData::Site {
                    site,
                    action,
                    elems,
                    class,
                })
            }
            1 => Some(ObjData::View {
                activity: ClassId(self.u32()?),
                view_id: self.i64()?,
                class: ClassId(self.u32()?),
            }),
            2 => Some(ObjData::Conjured {
                class: ClassId(self.u32()?),
                site: CallSiteId(self.u32()?),
            }),
            _ => None,
        }
    }

    fn stats(&mut self) -> Option<SolverStats> {
        Some(SolverStats {
            worklist_iterations: self.u64()? as usize,
            propagations: self.u64()? as usize,
            cg_edges: self.u64()? as usize,
            reachable_contexts: self.u64()? as usize,
            abstract_objects: self.u64()? as usize,
            pts_set_bytes: self.u64()? as usize,
            collapsed_sccs: self.u64()? as usize,
            collapsed_nodes: self.u64()? as usize,
            worklist_policy: self.worklist()?,
        })
    }

    fn node_key(&mut self) -> Option<NodeKey> {
        Some(match self.u8()? {
            0 => NodeKey::Var {
                method: MethodId(self.u32()?),
                ctx: crate::CtxId(self.u32()?),
                local: Local(self.u32()?),
            },
            1 => NodeKey::Ret {
                method: MethodId(self.u32()?),
                ctx: crate::CtxId(self.u32()?),
            },
            2 => NodeKey::Field {
                obj: crate::ObjId(self.u32()?),
                field: FieldId(self.u32()?),
            },
            3 => NodeKey::Static {
                field: FieldId(self.u32()?),
            },
            _ => return None,
        })
    }
}

fn lifecycle_tag(e: LifecycleEvent) -> u8 {
    match e {
        LifecycleEvent::Create => 0,
        LifecycleEvent::Start => 1,
        LifecycleEvent::Restart => 2,
        LifecycleEvent::Resume => 3,
        LifecycleEvent::Pause => 4,
        LifecycleEvent::Stop => 5,
        LifecycleEvent::Destroy => 6,
    }
}

fn lifecycle_from_tag(tag: u8) -> Option<LifecycleEvent> {
    Some(match tag {
        0 => LifecycleEvent::Create,
        1 => LifecycleEvent::Start,
        2 => LifecycleEvent::Restart,
        3 => LifecycleEvent::Resume,
        4 => LifecycleEvent::Pause,
        5 => LifecycleEvent::Stop,
        6 => LifecycleEvent::Destroy,
        _ => return None,
    })
}

fn gui_tag(e: GuiEventKind) -> u8 {
    match e {
        GuiEventKind::Click => 0,
        GuiEventKind::LongClick => 1,
        GuiEventKind::Scroll => 2,
        GuiEventKind::ItemClick => 3,
        GuiEventKind::TextChanged => 4,
    }
}

fn gui_from_tag(tag: u8) -> Option<GuiEventKind> {
    Some(match tag {
        0 => GuiEventKind::Click,
        1 => GuiEventKind::LongClick,
        2 => GuiEventKind::Scroll,
        3 => GuiEventKind::ItemClick,
        4 => GuiEventKind::TextChanged,
        _ => return None,
    })
}
