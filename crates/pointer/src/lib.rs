//! # pointer — context-sensitive points-to analysis and call graph
//!
//! This crate is the WALA substitute: an inclusion-based (Andersen)
//! field-sensitive points-to analysis with on-the-fly call-graph
//! construction over the `apir` IR, parameterized by a context-sensitivity
//! policy ([`SelectorKind`]):
//!
//! - classic k-cfa / k-obj / hybrid abstractions, and
//! - the paper's **action-sensitivity** (§3.3), which adds the enclosing
//!   concurrency action to every abstract heap object so that objects
//!   allocated by different actions never conflate;
//! - the **inflated-view context**: `findViewById(id)` returns a single
//!   abstract view per `(activity, id)`, aliasing across actions exactly
//!   like the framework's view cache.
//!
//! The analysis embeds the Android concurrency model: framework ops mint
//! [`android_model::Action`]s and the posted callback bodies are analyzed
//! under fresh action contexts, producing the action set, posting records,
//! and per-action memory accesses that the SHBG and race detector consume.

pub mod artifact;
mod ctx;
mod ptsset;
mod result;
mod solver;
mod summary;

pub use ctx::{
    CtxData, CtxElem, CtxId, CtxTable, ObjData, ObjId, ObjTable, ParseSelectorError, SelectorKind,
};
pub use ptsset::PtsSet;
pub use result::{collect_accesses, collect_accesses_from_sites, Access, AccessLoc};
pub use solver::{
    analyze, analyze_opts, scratch_pool_stats, Analysis, AnalysisOptions, OpaquePolicy, PostRecord,
    SolverStats, WorklistPolicy,
};
pub use summary::{
    extract_pointer_facts, fnv64, method_access_sites, pointer_digest, reachable_access_sites,
    AccessSite, Fnv64, MethodPointerFacts,
};

#[cfg(test)]
mod tests;
