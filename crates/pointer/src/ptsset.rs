//! Hybrid points-to set representation.
//!
//! Points-to sets in an Andersen solver are overwhelmingly tiny (most
//! locals point to one or two objects) but a few hubs (e.g. `this`
//! parameters of widely-shared callbacks) grow large and are unioned
//! constantly. `PtsSet` keeps small sets as a sorted `Vec<ObjId>` —
//! cache-friendly, allocation-free membership via binary search — and
//! promotes a set to a fixed-stride bitset once it crosses
//! [`PROMOTE_LEN`], where `contains` is a word probe and unions run at
//! word level.
//!
//! Iteration order is **ascending object id in both representations**,
//! which is what makes the solver deterministic without the
//! collect-and-sort round trips the old `HashSet<ObjId>` storage needed.

use crate::ctx::ObjId;

/// Sorted-vec length beyond which a set is promoted to the bitset
/// representation. Chosen so the vec stays within a couple of cache
/// lines; sets this large are rare but union-heavy.
const PROMOTE_LEN: usize = 48;

#[derive(Debug, Clone)]
enum Repr {
    /// Sorted ascending, no duplicates.
    Small(Vec<ObjId>),
    /// `words[i] & (1 << b)` set iff `ObjId(64*i + b)` is a member;
    /// `len` caches the population count.
    Bits { words: Vec<u64>, len: usize },
}

/// A set of [`ObjId`]s with a small-sorted-vec/bitset hybrid layout.
#[derive(Debug, Clone)]
pub struct PtsSet {
    repr: Repr,
}

impl PtsSet {
    /// An empty set. `const` so shared empty sentinels need no
    /// lazy-init machinery.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            repr: Repr::Small(Vec::new()),
        }
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Small(v) => v.len(),
            Repr::Bits { len, .. } => *len,
        }
    }

    /// True when the set has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test. Allocation-free in both representations.
    #[must_use]
    pub fn contains(&self, o: ObjId) -> bool {
        match &self.repr {
            Repr::Small(v) => v.binary_search(&o).is_ok(),
            Repr::Bits { words, .. } => {
                let (w, b) = (o.0 as usize / 64, o.0 as usize % 64);
                w < words.len() && words[w] & (1 << b) != 0
            }
        }
    }

    /// Inserts `o`; returns `true` when it was not already present.
    pub fn insert(&mut self, o: ObjId) -> bool {
        match &mut self.repr {
            Repr::Small(v) => match v.binary_search(&o) {
                Ok(_) => false,
                Err(pos) => {
                    v.insert(pos, o);
                    if v.len() > PROMOTE_LEN {
                        self.promote();
                    }
                    true
                }
            },
            Repr::Bits { words, len } => {
                let (w, b) = (o.0 as usize / 64, o.0 as usize % 64);
                if w >= words.len() {
                    words.resize(w + 1, 0);
                }
                let fresh = words[w] & (1 << b) == 0;
                if fresh {
                    words[w] |= 1 << b;
                    *len += 1;
                }
                fresh
            }
        }
    }

    /// Unions `other` into `self`; returns `true` when any member was
    /// added. Word-level when both sides are bitsets.
    pub fn union_in_place(&mut self, other: &PtsSet) -> bool {
        if let (Repr::Bits { words, len }, Repr::Bits { words: ow, .. }) =
            (&mut self.repr, &other.repr)
        {
            if ow.len() > words.len() {
                words.resize(ow.len(), 0);
            }
            let mut added = 0usize;
            for (w, &o) in words.iter_mut().zip(ow.iter()) {
                let new = o & !*w;
                added += new.count_ones() as usize;
                *w |= new;
            }
            *len += added;
            return added > 0;
        }
        let mut changed = false;
        for o in other.iter() {
            changed |= self.insert(o);
        }
        changed
    }

    /// The sole member, when the set is a singleton.
    #[must_use]
    pub fn as_singleton(&self) -> Option<ObjId> {
        if self.len() == 1 {
            self.iter().next()
        } else {
            None
        }
    }

    /// Borrowed iterator over members in **ascending id order** (both
    /// representations).
    #[must_use]
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            inner: match &self.repr {
                Repr::Small(v) => IterRepr::Small(v.iter()),
                Repr::Bits { words, .. } => IterRepr::Bits {
                    words,
                    next_word: 0,
                    base: 0,
                    cur: 0,
                },
            },
        }
    }

    /// Heap bytes held by this set's backing storage (capacity, not
    /// just length — this is what the `pts_set_bytes` stat reports).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        match &self.repr {
            Repr::Small(v) => v.capacity() * std::mem::size_of::<ObjId>(),
            Repr::Bits { words, .. } => words.capacity() * std::mem::size_of::<u64>(),
        }
    }

    fn promote(&mut self) {
        let Repr::Small(v) = &self.repr else { return };
        let max = v.last().map_or(0, |o| o.0 as usize);
        let mut words = vec![0u64; max / 64 + 1];
        for o in v {
            words[o.0 as usize / 64] |= 1 << (o.0 as usize % 64);
        }
        self.repr = Repr::Bits {
            len: v.len(),
            words,
        };
    }
}

impl Default for PtsSet {
    fn default() -> Self {
        Self::new()
    }
}

// Equality is set equality, independent of representation.
impl PartialEq for PtsSet {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl Eq for PtsSet {}

impl<'a> IntoIterator for &'a PtsSet {
    type Item = ObjId;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl FromIterator<ObjId> for PtsSet {
    fn from_iter<I: IntoIterator<Item = ObjId>>(it: I) -> Self {
        let mut s = Self::new();
        for o in it {
            s.insert(o);
        }
        s
    }
}

/// Borrowed ascending iterator over a [`PtsSet`].
pub struct Iter<'a> {
    inner: IterRepr<'a>,
}

enum IterRepr<'a> {
    Small(std::slice::Iter<'a, ObjId>),
    Bits {
        words: &'a [u64],
        next_word: usize,
        base: usize,
        cur: u64,
    },
}

impl Iterator for Iter<'_> {
    type Item = ObjId;

    fn next(&mut self) -> Option<ObjId> {
        match &mut self.inner {
            IterRepr::Small(it) => it.next().copied(),
            IterRepr::Bits {
                words,
                next_word,
                base,
                cur,
            } => loop {
                if *cur != 0 {
                    let b = cur.trailing_zeros() as usize;
                    *cur &= *cur - 1;
                    return Some(ObjId((*base + b) as u32));
                }
                if *next_word >= words.len() {
                    return None;
                }
                *cur = words[*next_word];
                *base = *next_word * 64;
                *next_word += 1;
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<ObjId> {
        v.iter().map(|&i| ObjId(i)).collect()
    }

    #[test]
    fn insert_contains_iter_small() {
        let mut s = PtsSet::new();
        assert!(s.is_empty());
        assert!(s.insert(ObjId(7)));
        assert!(s.insert(ObjId(3)));
        assert!(!s.insert(ObjId(7)));
        assert!(s.contains(ObjId(3)));
        assert!(!s.contains(ObjId(4)));
        assert_eq!(s.iter().collect::<Vec<_>>(), ids(&[3, 7]));
        assert_eq!(s.len(), 2);
        assert_eq!(s.as_singleton(), None);
        let one: PtsSet = [ObjId(9)].into_iter().collect();
        assert_eq!(one.as_singleton(), Some(ObjId(9)));
    }

    #[test]
    fn promotion_preserves_members_and_order() {
        let mut s = PtsSet::new();
        // Insert descending to stress the sorted insert, past the
        // promotion threshold.
        let mut want: Vec<ObjId> = Vec::new();
        for i in (0..200u32).rev().step_by(3) {
            s.insert(ObjId(i));
            want.push(ObjId(i));
        }
        want.sort_unstable();
        assert!(matches!(s.repr, Repr::Bits { .. }));
        let got: Vec<ObjId> = s.iter().collect();
        assert_eq!(got, want);
        for &o in &want {
            assert!(s.contains(o));
        }
        assert!(!s.contains(ObjId(0)));
        assert!(!s.contains(ObjId(198)));
        assert_eq!(s.len(), want.len());
    }

    #[test]
    fn union_across_representations() {
        let small: PtsSet = ids(&[1, 5, 9]).into_iter().collect();
        let big: PtsSet = (0..150u32).map(ObjId).collect();
        for (mut a, b) in [
            (small.clone(), big.clone()),
            (big.clone(), small.clone()),
            (small.clone(), small.clone()),
            (big.clone(), big.clone()),
        ] {
            let before = a.len();
            let expect: PtsSet = a.iter().chain(b.iter()).collect();
            let changed = a.union_in_place(&b);
            assert_eq!(changed, a.len() > before);
            assert_eq!(a, expect);
        }
    }

    #[test]
    fn equality_is_representation_independent() {
        let mut promoted = PtsSet::new();
        for i in 0..60u32 {
            promoted.insert(ObjId(i));
        }
        let rebuilt: PtsSet = (0..60u32).map(ObjId).collect();
        assert!(matches!(promoted.repr, Repr::Bits { .. }));
        assert_eq!(promoted, rebuilt);
        let mut other = rebuilt.clone();
        other.insert(ObjId(1000));
        assert_ne!(promoted, other);
    }

    #[test]
    fn empty_set_is_const_constructible() {
        static EMPTY: PtsSet = PtsSet::new();
        assert!(EMPTY.is_empty());
        assert_eq!(EMPTY.iter().next(), None);
        assert_eq!(EMPTY.heap_bytes(), 0);
    }
}
