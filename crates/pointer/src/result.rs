//! Memory-access extraction (§4.1's ⟨x, τ, A⟩ bundles).

use crate::ctx::{CtxId, ObjId};
use crate::solver::Analysis;
use crate::summary::{reachable_access_sites, AccessSite};
use android_model::ActionId;
use apir::{ClassId, FieldId, MethodId, Program, StmtAddr};
use std::collections::HashMap;

/// An abstract memory location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AccessLoc {
    /// An instance field of an abstract object.
    Field(ObjId, FieldId),
    /// A static field.
    Static(FieldId),
}

/// One memory access attributed to an action.
#[derive(Debug, Clone)]
pub struct Access {
    /// The action performing the access.
    pub action: ActionId,
    /// The method containing the access.
    pub method: MethodId,
    /// The method context.
    pub ctx: CtxId,
    /// The statement address.
    pub addr: StmtAddr,
    /// `true` for stores.
    pub is_write: bool,
    /// The accessed field.
    pub field: FieldId,
    /// Points-to set of the base object (empty for statics). Always
    /// sorted ascending with no duplicates: [`collect_accesses`] fills
    /// it from a [`crate::PtsSet`]'s ascending iterator, and downstream
    /// merges (the session's access dedupe) keep it sorted.
    pub base: Vec<ObjId>,
    /// Whether this is a static-field access.
    pub is_static: bool,
}

impl Access {
    /// The abstract locations this access may touch.
    pub fn locs(&self) -> Vec<AccessLoc> {
        if self.is_static {
            vec![AccessLoc::Static(self.field)]
        } else {
            self.base
                .iter()
                .map(|&o| AccessLoc::Field(o, self.field))
                .collect()
        }
    }

    /// Whether two accesses may touch a common location. Both base sets
    /// are sorted (see [`Access::base`]), so the intersection test is a
    /// linear two-pointer walk instead of a quadratic scan.
    pub fn overlaps(&self, other: &Access) -> bool {
        if self.field != other.field || self.is_static != other.is_static {
            return false;
        }
        if self.is_static {
            return true;
        }
        debug_assert!(self.base.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(other.base.windows(2).all(|w| w[0] < w[1]));
        let (mut i, mut j) = (0, 0);
        while i < self.base.len() && j < other.base.len() {
            match self.base[i].cmp(&other.base[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }
}

/// Extracts every heap access from the reachable program, attributed to its
/// action. Accesses to fields declared on `exclude_class` (the synthetic
/// `$Harness`) are skipped. Opaque container ops (`ArrayList.setAt`/`getAt`)
/// contribute accesses on their (possibly index-sensitive) slot fields.
pub fn collect_accesses(
    analysis: &Analysis,
    program: &Program,
    exclude_class: Option<ClassId>,
) -> Vec<Access> {
    let sites = reachable_access_sites(analysis, program);
    collect_accesses_from_sites(analysis, program, exclude_class, &sites)
}

/// Instantiates per-method [`AccessSite`]s against the points-to result:
/// one [`Access`] per reachable `(method, ctx)` per site, with the base
/// local resolved to its abstract objects. This is the linking half of
/// [`collect_accesses`]; the summary layer feeds it cached sites.
pub fn collect_accesses_from_sites(
    analysis: &Analysis,
    program: &Program,
    exclude_class: Option<ClassId>,
    sites: &HashMap<MethodId, Vec<AccessSite>>,
) -> Vec<Access> {
    let mut out = Vec::new();
    for &(method, ctx) in &analysis.reachable {
        let Some(method_sites) = sites.get(&method) else {
            continue; // bodyless
        };
        if Some(program.method(method).class) == exclude_class {
            continue; // harness body itself
        }
        let action = analysis.action_of(ctx);
        for site in method_sites {
            if Some(program.field(site.field).class) == exclude_class {
                continue; // synthetic registration fields
            }
            let base = match site.base {
                // PtsSet iterates in ascending id order already.
                Some(l) => analysis.pts_var(method, ctx, l).iter().collect(),
                None => Vec::new(),
            };
            if !site.is_static && base.is_empty() {
                continue; // no resolvable target — cannot race
            }
            out.push(Access {
                action,
                method,
                ctx,
                addr: site.addr,
                is_write: site.is_write,
                field: site.field,
                base,
                is_static: site.is_static,
            });
        }
    }
    out.sort_by_key(|a| (a.addr, a.ctx, a.is_write));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_accesses_always_overlap_on_same_field() {
        let a = Access {
            action: ActionId(0),
            method: MethodId(0),
            ctx: CtxId(0),
            addr: StmtAddr::new(MethodId(0), apir::BlockId(0), 0),
            is_write: true,
            field: FieldId(3),
            base: vec![],
            is_static: true,
        };
        let mut b = a.clone();
        b.is_write = false;
        assert!(a.overlaps(&b));
        b.field = FieldId(4);
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn instance_accesses_overlap_only_on_shared_objects() {
        let mk = |base: Vec<u32>| Access {
            action: ActionId(0),
            method: MethodId(0),
            ctx: CtxId(0),
            addr: StmtAddr::new(MethodId(0), apir::BlockId(0), 0),
            is_write: true,
            field: FieldId(1),
            base: base.into_iter().map(ObjId).collect(),
            is_static: false,
        };
        let a = mk(vec![1, 2]);
        let b = mk(vec![2, 3]);
        let c = mk(vec![4]);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert_eq!(a.locs().len(), 2);
    }
}
