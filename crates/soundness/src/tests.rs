use super::*;
use corpus::reflection_idioms::{intent_idioms_app, reflection_idioms_app};
use pointer::{analyze_opts, AnalysisOptions, OpaquePolicy, SelectorKind};

fn solve(app: android_model::AndroidApp, policy: OpaquePolicy) -> (apir::Program, Analysis) {
    let harness = harness_gen::generate(app);
    let analysis = analyze_opts(
        &harness,
        SelectorKind::ActionSensitive(1),
        AnalysisOptions {
            opaque_policy: policy,
            ..AnalysisOptions::default()
        },
    );
    (harness.app.program, analysis)
}

#[test]
fn recall_pct_edge_cases() {
    let empty = SoundnessStats::default();
    assert_eq!(
        empty.recall_pct(),
        100.0,
        "no known callbacks → nothing missed"
    );
    let half = SoundnessStats {
        known_callbacks: 4,
        reachable_callbacks: 2,
        ..SoundnessStats::default()
    };
    assert_eq!(half.recall_pct(), 50.0);
}

#[test]
fn reflection_fixture_audit_improves_under_resolve() {
    let (program, ignored) = solve(reflection_idioms_app().0, OpaquePolicy::Ignore);
    let s_ignore = audit(&program, &ignored);
    // The reflective chain leaves unresolved reflective sites and the
    // target method unreachable under `ignore`.
    assert!(s_ignore.reflective_sites >= 3, "forName+newInstance+invoke");
    assert_eq!(
        s_ignore.unresolved_sites,
        s_ignore.reflective_sites
            + s_ignore.intent_sites
            + s_ignore.bodyless_framework_sites
            + s_ignore.no_receiver_sites,
        "reason counters partition the unresolved total"
    );

    let (program, resolved) = solve(reflection_idioms_app().0, OpaquePolicy::Resolve);
    let s_resolve = audit(&program, &resolved);
    assert!(
        s_resolve.reflective_sites < s_ignore.reflective_sites,
        "constant-name reflection sites discharge under resolve"
    );
    assert!(
        s_resolve.reachable_callbacks >= s_ignore.reachable_callbacks,
        "resolving edges can only grow reachability"
    );
    assert!(s_resolve.recall_pct() >= s_ignore.recall_pct());
}

#[test]
fn intent_fixture_audit_improves_under_resolve() {
    let (program, ignored) = solve(intent_idioms_app().0, OpaquePolicy::Ignore);
    let s_ignore = audit(&program, &ignored);
    assert!(s_ignore.intent_sites >= 2, "setClass + startActivity");

    let (program, resolved) = solve(intent_idioms_app().0, OpaquePolicy::Resolve);
    let s_resolve = audit(&program, &resolved);
    assert!(
        s_resolve.intent_sites < s_ignore.intent_sites,
        "manifest-declared intent targets discharge under resolve"
    );
}

#[test]
fn havoc_recall_at_least_resolve() {
    for (app, _) in [reflection_idioms_app(), intent_idioms_app()] {
        let name = app.name.clone();
        let policies = [
            OpaquePolicy::Ignore,
            OpaquePolicy::Resolve,
            OpaquePolicy::Havoc,
        ];
        let mut last = -1.0f64;
        for policy in policies {
            let (program, analysis) = solve(app.clone(), policy);
            let s = audit(&program, &analysis);
            assert!(
                s.recall_pct() >= last,
                "{name}: recall must be monotone in policy strength"
            );
            last = s.recall_pct();
        }
    }
}
