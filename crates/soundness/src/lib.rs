//! # soundness — call-graph soundness audit
//!
//! Samhi et al. ("Call Graph Soundness in Android Static Analysis") show
//! that Android call graphs silently drop large fractions of app methods
//! behind reflection, intent dispatch, and bodyless framework calls —
//! and that published analyses rarely *measure* the gap. This crate is
//! the measuring stage: after the pointer solve it walks the solved call
//! graph and
//!
//! 1. classifies every call site the solver left without targets by
//!    *reason* — reflective lookup, inter-component intent dispatch,
//!    bodyless framework method, or an ordinary virtual call whose
//!    receiver points-to set stayed empty — and
//! 2. computes **reachable-callback recall**: of the app-declared
//!    framework-callback overrides (the harness's known-callback ground
//!    truth — every method the Android framework could invoke), what
//!    fraction did the call graph actually reach?
//!
//! The counters land in [`SoundnessStats`], which the pipeline carries
//! through `StageMetrics` into the experiments tables and the
//! `soundness_ablation` bench gate, making the `ignore`/`resolve`/
//! `havoc` opaque-policy tradeoff measurable instead of implicit.

use android_model::FrameworkOp;
use apir::{ClassId, MethodId, Origin, Program, Stmt, Symbol};
use pointer::Analysis;
use std::collections::HashSet;

/// Counters of one app's call-graph soundness audit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SoundnessStats {
    /// App-declared framework-callback overrides with bodies — methods
    /// the framework could invoke, known soundly by construction.
    pub known_callbacks: usize,
    /// Known callbacks the solved call graph reached.
    pub reachable_callbacks: usize,
    /// Call sites in reachable code with no resolved targets (the sum of
    /// the four reason counters below).
    pub unresolved_sites: usize,
    /// Unresolved reflective sites (`Class.forName`/`newInstance`/
    /// `invoke`) the active policy did not discharge.
    pub reflective_sites: usize,
    /// Unresolved inter-component intent dispatches (`setClass`/
    /// `startActivity`/`sendBroadcast`) the active policy did not
    /// discharge.
    pub intent_sites: usize,
    /// Calls to bodyless framework methods outside the modeled
    /// [`FrameworkOp`] set — opaque by construction.
    pub bodyless_framework_sites: usize,
    /// Ordinary calls whose receiver points-to set produced no concrete
    /// target (empty points-to set or bodyless app declaration).
    pub no_receiver_sites: usize,
}

impl SoundnessStats {
    /// Reachable-callback recall in percent (100 when no callbacks are
    /// known — an app the framework cannot call into has nothing to
    /// miss).
    pub fn recall_pct(&self) -> f64 {
        if self.known_callbacks == 0 {
            100.0
        } else {
            100.0 * self.reachable_callbacks as f64 / self.known_callbacks as f64
        }
    }
}

/// Audits a solved analysis against its program.
///
/// `program` must be the program the analysis was solved over (the
/// harnessed app), so method/class ids line up.
pub fn audit(program: &Program, analysis: &Analysis) -> SoundnessStats {
    let mut stats = SoundnessStats::default();
    let fw = analysis.framework();

    // Known-callback ground truth: app-origin methods with bodies that
    // override a framework-declared method somewhere in their class's
    // super/interface hierarchy.
    let reachable_methods: HashSet<MethodId> = analysis.reachable.iter().map(|&(m, _)| m).collect();
    for class in program.classes() {
        if class.origin != Origin::App {
            continue;
        }
        let decls = framework_decl_names(program, class.id);
        for &m in &class.methods {
            let method = program.method(m);
            if !method.has_body() || !decls.contains(&method.name) {
                continue;
            }
            stats.known_callbacks += 1;
            if reachable_methods.contains(&m) {
                stats.reachable_callbacks += 1;
            }
        }
    }

    // Sites with at least one resolved callee, in any context.
    let resolved_by_cg: HashSet<apir::CallSiteId> = analysis
        .cg_edges
        .iter()
        .filter(|(_, callees)| !callees.is_empty())
        .map(|(&(_, _, site), _)| site)
        .collect();

    for &m in &reachable_methods {
        let method = program.method(m);
        if !method.has_body() {
            continue;
        }
        for (_, stmt) in method.iter_stmts() {
            let Stmt::Call { site, callee, .. } = stmt else {
                continue;
            };
            if let Some(op) = FrameworkOp::classify(fw, *callee) {
                if !op.is_policy_gated() || analysis.resolved_sites.contains(site) {
                    continue;
                }
                stats.unresolved_sites += 1;
                if op.is_reflective() {
                    stats.reflective_sites += 1;
                } else {
                    stats.intent_sites += 1;
                }
                continue;
            }
            if resolved_by_cg.contains(site) {
                continue;
            }
            stats.unresolved_sites += 1;
            let target = program.method(*callee);
            if !target.has_body() && program.class(target.class).origin == Origin::Framework {
                stats.bodyless_framework_sites += 1;
            } else {
                stats.no_receiver_sites += 1;
            }
        }
    }
    stats
}

/// All method names declared by framework-origin classes in `class`'s
/// super/interface hierarchy (the override surface the framework can
/// call through).
fn framework_decl_names(program: &Program, class: ClassId) -> HashSet<Symbol> {
    let mut names = HashSet::new();
    let mut stack = vec![class];
    let mut seen = HashSet::new();
    while let Some(c) = stack.pop() {
        if !seen.insert(c) {
            continue;
        }
        let data = program.class(c);
        if data.origin == Origin::Framework {
            for &m in &data.methods {
                names.insert(program.method(m).name);
            }
        }
        stack.extend(data.super_class);
        stack.extend(data.interfaces.iter().copied());
    }
    names
}

#[cfg(test)]
mod tests;
