//! Corpus-wide regression guard for the opaque-call soundness modes.
//!
//! The three policies form a soundness ladder — `ignore` resolves
//! nothing, `resolve` adds table-proven edges, `havoc` adds
//! conservative fallbacks on top — and the ladder must be visible in
//! the call graph itself: projected to `(caller, site, callee)`, the
//! edge set may only grow as the policy climbs. Alongside the subset
//! law the guard checks the two report-level invariants the bench gate
//! also enforces: race reports stay in rank order under every policy,
//! and climbing to `havoc` never loses a planted ground-truth race.
//!
//! The twenty Table-2 apps and both `reflection_idioms` fixtures are
//! always checked; a seeded PRNG draws a few extra F-Droid apps so
//! successive runs sweep different corners of the 174-app corpus while
//! any failure stays reproducible from the seed in the assert message.

use sierra_core::{OpaquePolicy, Sierra, SierraConfig, SierraResult};
use std::collections::BTreeSet;

/// Context-insensitive projection of the call graph: `(caller, site,
/// callee)` triples. Contexts are allocated in policy-dependent order,
/// so the subset law is stated over this projection.
fn edge_projection(result: &SierraResult) -> BTreeSet<(u32, u32, u32)> {
    let mut out = BTreeSet::new();
    for ((m, _, site), callees) in &result.analysis.cg_edges {
        for &(callee, _) in callees {
            out.insert((m.0, site.0, callee.0));
        }
    }
    out
}

fn run(app: &android_model::AndroidApp, policy: OpaquePolicy) -> SierraResult {
    let cfg = SierraConfig::builder().opaque_policy(policy).build();
    Sierra::with_config(cfg).analyze_app(app.clone())
}

fn check_app(name: &str, app: &android_model::AndroidApp, truth: &corpus::GroundTruth) {
    let ignore = run(app, OpaquePolicy::Ignore);
    let resolve = run(app, OpaquePolicy::Resolve);
    let havoc = run(app, OpaquePolicy::Havoc);

    let e_ignore = edge_projection(&ignore);
    let e_resolve = edge_projection(&resolve);
    let e_havoc = edge_projection(&havoc);
    assert!(
        e_ignore.is_subset(&e_resolve),
        "{name}: resolve dropped {} ignore edge(s)",
        e_ignore.difference(&e_resolve).count()
    );
    assert!(
        e_resolve.is_subset(&e_havoc),
        "{name}: havoc dropped {} resolve edge(s)",
        e_resolve.difference(&e_havoc).count()
    );

    for (policy, result) in [
        ("ignore", &ignore),
        ("resolve", &resolve),
        ("havoc", &havoc),
    ] {
        assert!(
            result
                .races
                .windows(2)
                .all(|w| w[0].rank_key() <= w[1].rank_key()),
            "{name}: race reports out of rank order under {policy}"
        );
    }

    let groups = |r: &SierraResult| {
        let p = &r.harness.app.program;
        r.races
            .iter()
            .map(|race| {
                let f = p.field(race.field);
                (p.class_name(f.class).to_owned(), p.name(f.name).to_owned())
            })
            .collect::<Vec<_>>()
    };
    let havoc_groups = groups(&havoc);
    let eval = truth.evaluate(havoc_groups.iter().map(|(c, f)| (c.as_str(), f.as_str())));
    assert_eq!(
        eval.missed, 0,
        "{name}: havoc lost {} planted race(s): {havoc_groups:?}",
        eval.missed
    );
    // The most sound policy finds at least as many planted races as the
    // least sound one.
    let ignore_groups = groups(&ignore);
    let ignore_eval = truth.evaluate(ignore_groups.iter().map(|(c, f)| (c.as_str(), f.as_str())));
    assert!(
        eval.true_races >= ignore_eval.true_races,
        "{name}: havoc found fewer planted races than ignore"
    );
}

#[test]
fn policy_ladder_is_monotone_on_every_corpus_app() {
    for (spec, app, truth) in corpus::twenty::build_all() {
        check_app(spec.name, &app, &truth);
    }
    let (app, truth) = corpus::reflection_idioms::reflection_idioms_app();
    check_app("ReflectionIdioms", &app, &truth);
    let (app, truth) = corpus::reflection_idioms::intent_idioms_app();
    check_app("IntentIdioms", &app, &truth);
}

#[test]
fn policy_ladder_holds_on_seeded_fdroid_sample() {
    const SEED: u64 = 0x005e_ed50_0ed1; // vary to sweep other apps
    const SAMPLE: usize = 4;
    let mut rng = sierra_prng::SplitMix64::new(SEED);
    let mut picks = BTreeSet::new();
    while picks.len() < SAMPLE {
        picks.insert(rng.usize(corpus::fdroid::APP_COUNT));
    }
    for (i, app, truth) in corpus::fdroid::iter_apps() {
        if picks.contains(&i) {
            check_app(&format!("fdroid app{i:03} (seed {SEED:#x})"), &app, &truth);
        }
    }
}
