//! The staged analysis session.
//!
//! [`AnalysisSession`] splits the pipeline into six explicitly-driven
//! stages, each computed once on first request and cached:
//!
//! ```text
//! harness() → pointer() → shbg() → candidates() → prefilter() → refute() → finish()
//! ```
//!
//! Calling a later stage forces the earlier ones, so `finish()` alone
//! reproduces the one-shot [`crate::Sierra::analyze_app`] behaviour. The
//! staging exists for three drivers:
//!
//! - the corpus **engine** runs whole sessions on worker threads;
//! - **ablations** stop after `candidates()` and never pay for
//!   refutation;
//! - the **comparison pass** (`racy pairs w/o AS`, Table 3) is a second
//!   session over the *same* generated harness — [`Self::from_harness`]
//!   shares it through an [`Arc`] instead of re-generating.
//!
//! Each stage records its wall-clock time and work counters into
//! [`StageMetrics`].

use crate::engine::{effective_jobs, run_jobs};
use crate::pipeline::{SierraConfig, SierraResult, StageMetrics};
use crate::report::{priority_of, RaceReport};
use android_model::AndroidApp;
use apir::{FieldId, InfeasibleEdges, Program};
use harness_gen::HarnessResult;
use pointer::{collect_accesses, Access, Analysis, SelectorKind};
use prefilter::PrunedPair;
use shbg::Shbg;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};
use symexec::{Outcome, Refuter, RefuterConfig, RefuterStats};

/// A staged run of the pipeline over one app. See the module docs.
#[derive(Debug)]
pub struct AnalysisSession {
    config: SierraConfig,
    app_name: String,
    started: Instant,
    metrics: StageMetrics,
    /// Present until the harness stage consumes it (absent for
    /// [`AnalysisSession::from_harness`] sessions).
    app: Option<AndroidApp>,
    harness: Option<Arc<HarnessResult>>,
    analysis: Option<Analysis>,
    shbg: Option<Shbg>,
    candidates: Option<Vec<(Access, Access)>>,
    prefilter: Option<PrefilterOutcome>,
    races: Option<Vec<RaceReport>>,
    triaged: bool,
}

/// Cached output of the prefilter stage.
#[derive(Debug)]
pub struct PrefilterOutcome {
    /// Candidate pairs that survive to refutation, in candidate order.
    pub kept: Vec<(Access, Access)>,
    /// Pruned pairs with their verdicts, in candidate order.
    pub pruned: Vec<PrunedPair>,
    /// Statically-infeasible branch edges, shared with the refuter.
    pub infeasible: Arc<InfeasibleEdges>,
}

impl AnalysisSession {
    /// Starts a session on an app.
    pub fn new(config: SierraConfig, app: AndroidApp) -> Self {
        Self {
            config,
            app_name: app.name.clone(),
            started: Instant::now(),
            metrics: StageMetrics::default(),
            app: Some(app),
            harness: None,
            analysis: None,
            shbg: None,
            candidates: None,
            prefilter: None,
            races: None,
            triaged: false,
        }
    }

    /// Starts a session over an already-generated harness (its generation
    /// time is *not* charged to this session).
    pub fn from_harness(config: SierraConfig, harness: Arc<HarnessResult>) -> Self {
        Self {
            config,
            app_name: harness.app.name.clone(),
            started: Instant::now(),
            metrics: StageMetrics::default(),
            app: None,
            harness: Some(harness),
            analysis: None,
            shbg: None,
            candidates: None,
            prefilter: None,
            races: None,
            triaged: false,
        }
    }

    /// The configuration the session runs with.
    pub fn config(&self) -> &SierraConfig {
        &self.config
    }

    /// The metrics recorded by the stages run so far.
    pub fn metrics(&self) -> &StageMetrics {
        &self.metrics
    }

    /// Stage 1: harness generation (§3.2).
    pub fn harness(&mut self) -> &Arc<HarnessResult> {
        if self.harness.is_none() {
            let app = self.app.take().expect("session constructed with an app");
            let t = Instant::now();
            let harness = harness_gen::generate(app);
            self.metrics.timings.harness = t.elapsed();
            self.harness = Some(Arc::new(harness));
        }
        self.harness.as_ref().expect("just generated")
    }

    /// Stage 2: call graph + pointer analysis (§3.3).
    pub fn pointer(&mut self) -> &Analysis {
        if self.analysis.is_none() {
            self.harness();
            let harness = self.harness.as_ref().expect("stage 1 ran");
            let t = Instant::now();
            let analysis =
                pointer::analyze_opts(harness, self.config.selector, self.config.pointer_options);
            self.metrics.timings.cg_pa = t.elapsed();
            self.metrics.pointer = analysis.stats;
            self.analysis = Some(analysis);
        }
        self.analysis.as_ref().expect("just analyzed")
    }

    /// Stage 3: SHBG construction (§4).
    pub fn shbg(&mut self) -> &Shbg {
        if self.shbg.is_none() {
            self.pointer();
            let harness = self.harness.as_ref().expect("stage 1 ran");
            let analysis = self.analysis.as_ref().expect("stage 2 ran");
            let t = Instant::now();
            let graph = shbg::build(analysis, harness);
            self.metrics.timings.hbg = t.elapsed();
            self.metrics.shbg = graph.stats;
            self.shbg = Some(graph);
        }
        self.shbg.as_ref().expect("just built")
    }

    /// Stage 4: candidate racy pairs — same harness, different unordered
    /// actions, overlapping locations, at least one write (§4.1).
    pub fn candidates(&mut self) -> &[(Access, Access)] {
        if self.candidates.is_none() {
            self.shbg();
            let harness = self.harness.as_ref().expect("stage 1 ran");
            let analysis = self.analysis.as_ref().expect("stage 2 ran");
            let graph = self.shbg.as_ref().expect("stage 3 ran");
            let accesses =
                collect_accesses(analysis, &harness.app.program, Some(harness.harness_class));
            let deduped = dedupe(accesses);
            let pairs = racy_pairs(&deduped, analysis, graph)
                .into_iter()
                .map(|(a, b)| (a.clone(), b.clone()))
                .collect();
            self.candidates = Some(pairs);
        }
        self.candidates.as_ref().expect("just computed")
    }

    /// Stage 5: pre-refutation static pruning (escape analysis, guard
    /// detection, constant/branch pruning). A passthrough under
    /// `no_prefilter` — and under `skip_refutation`, whose ablations
    /// count raw candidate pairs.
    pub fn prefilter(&mut self) -> &PrefilterOutcome {
        if self.prefilter.is_none() {
            self.candidates();
            let harness = self.harness.as_ref().expect("stage 1 ran");
            let analysis = self.analysis.as_ref().expect("stage 2 ran");
            let graph = self.shbg.as_ref().expect("stage 3 ran");
            let candidates = self.candidates.as_ref().expect("stage 4 ran");
            let t = Instant::now();
            let outcome = if self.config.no_prefilter || self.config.skip_refutation {
                PrefilterOutcome {
                    kept: candidates.clone(),
                    pruned: Vec::new(),
                    infeasible: Arc::new(InfeasibleEdges::new()),
                }
            } else {
                let run = prefilter::run(&harness.app.program, analysis, graph, candidates);
                self.metrics.prefilter = run.stats;
                PrefilterOutcome {
                    kept: run.kept,
                    pruned: run.pruned,
                    infeasible: Arc::new(run.infeasible),
                }
            };
            let elapsed = t.elapsed();
            self.metrics.timings.prefilter = elapsed;
            self.metrics.prefilter.prefilter_ns = elapsed.as_nanos() as u64;
            self.prefilter = Some(outcome);
        }
        self.prefilter.as_ref().expect("just prefiltered")
    }

    /// Stage 6: refutation (§5) + prioritization (§3.1). With
    /// `skip_refutation` every candidate survives.
    pub fn refute(&mut self) -> &[RaceReport] {
        if self.races.is_none() {
            self.prefilter();
            let harness = self.harness.as_ref().expect("stage 1 ran");
            let analysis = self.analysis.as_ref().expect("stage 2 ran");
            let prefilter = self.prefilter.as_ref().expect("stage 5 ran");
            let candidates = &prefilter.kept;
            let t = Instant::now();
            let program = &harness.app.program;
            let (outcomes, refuter_stats, jobs_used) = if self.config.skip_refutation {
                (
                    vec![Outcome::Budget; candidates.len()],
                    RefuterStats::default(),
                    0,
                )
            } else {
                let run = refute_candidates(
                    analysis,
                    program,
                    harness.app.framework.message_what,
                    self.config.refuter,
                    self.config.refute_jobs,
                    candidates,
                    Some(Arc::clone(&prefilter.infeasible)),
                );
                (run.outcomes, run.stats, run.jobs_used)
            };
            let mut races: Vec<RaceReport> = Vec::new();
            for ((a, b), outcome) in candidates.iter().zip(outcomes) {
                if outcome == Outcome::Refuted {
                    continue;
                }
                let field = a.field;
                let pointer_field = program.field(field).ty.is_reference();
                let priority = priority_of(program, a, b);
                races.push(RaceReport {
                    a: a.clone(),
                    b: b.clone(),
                    field,
                    outcome,
                    priority,
                    pointer_field,
                    triage: None,
                });
            }
            races.sort_by_key(|r| r.rank_key());
            self.metrics.refuter = refuter_stats;
            self.metrics.refute_jobs_used = jobs_used;
            self.metrics.timings.refutation = t.elapsed();
            self.races = Some(races);
        }
        self.races.as_ref().expect("just refuted")
    }

    /// Stage 7: harm triage — classifies every surviving race with a
    /// [`triage::Harm`] verdict (nullness/taint dataflow on the read
    /// side, constant comparison on write/write pairs) and drops reports
    /// below `min_harm`. A no-op under `no_triage`, leaving every report
    /// annotation-free.
    pub fn triage(&mut self) -> &[RaceReport] {
        self.refute();
        if !self.triaged {
            self.triaged = true;
            if !self.config.no_triage {
                let harness = self.harness.as_ref().expect("stage 1 ran");
                let analysis = self.analysis.as_ref().expect("stage 2 ran");
                let graph = self.shbg.as_ref().expect("stage 3 ran");
                let races = self.races.as_mut().expect("stage 6 ran");
                let t = Instant::now();
                let pairs: Vec<(Access, Access)> =
                    races.iter().map(|r| (r.a.clone(), r.b.clone())).collect();
                let (verdicts, mut stats) = triage::classify_races(
                    &harness.app.program,
                    analysis,
                    graph,
                    Some(harness.harness_class),
                    &pairs,
                );
                for (race, verdict) in races.iter_mut().zip(verdicts) {
                    race.triage = Some(verdict);
                }
                if let Some(min) = self.config.min_harm {
                    races.retain(|r| r.triage.as_ref().is_some_and(|t| t.harm >= min));
                }
                let elapsed = t.elapsed();
                stats.triage_ns = elapsed.as_nanos() as u64;
                self.metrics.timings.triage = elapsed;
                self.metrics.triage = stats;
            }
        }
        self.races.as_ref().expect("stage 6 ran")
    }

    /// Runs every remaining stage (plus the comparison pass when
    /// configured) and assembles the [`SierraResult`].
    ///
    /// The comparison pass without action sensitivity (Table 3 col 6) is
    /// a second session over the same generated harness, stopped after
    /// the candidate stage. Under `overlap_compare` it runs on a scoped
    /// worker thread *concurrently with refutation*: the two only share
    /// the immutable `Arc<HarnessResult>`, and the pass returns a single
    /// deterministic count, so every output is byte-identical to the
    /// serial schedule.
    pub fn finish(mut self) -> SierraResult {
        // Force everything refutation needs so the overlapped window
        // contains exactly the refutation stage.
        self.prefilter();

        let harness = self.harness.clone().expect("stages ran");
        let compare_cfg = self.config.compare_without_as.then(|| {
            let plain = match self.config.selector {
                SelectorKind::ActionSensitive(k) => SelectorKind::Hybrid(k),
                other => other,
            };
            SierraConfig {
                selector: plain,
                compare_without_as: false,
                skip_refutation: true,
                ..self.config
            }
        });
        let run_compare = |cfg: SierraConfig, harness: Arc<HarnessResult>| {
            let t = Instant::now();
            let count = AnalysisSession::from_harness(cfg, harness)
                .candidates()
                .len();
            (count, t.elapsed())
        };

        let mut compare_overlapped = false;
        let (racy_pairs_without_as, compare_elapsed) = match compare_cfg {
            Some(cfg) if self.config.overlap_compare && !self.config.skip_refutation => {
                compare_overlapped = true;
                let shared = Arc::clone(&harness);
                std::thread::scope(|scope| {
                    let compare = scope.spawn(move || run_compare(cfg, shared));
                    self.refute();
                    compare
                        .join()
                        .unwrap_or_else(|e| std::panic::resume_unwind(e))
                })
            }
            Some(cfg) => run_compare(cfg, Arc::clone(&harness)),
            None => (0, Duration::ZERO),
        };
        self.refute();
        self.triage();
        self.metrics.timings.compare = compare_elapsed;
        self.metrics.compare_overlapped = compare_overlapped;
        self.metrics.overlap_saved = if compare_overlapped {
            compare_elapsed.min(self.metrics.timings.refutation)
        } else {
            Duration::ZERO
        };

        let analysis = self.analysis.expect("stages ran");
        let graph = self.shbg.expect("stages ran");
        let races = self.races.expect("stages ran");
        let candidates = self.candidates.expect("stages ran");
        let pruned = self.prefilter.expect("stages ran").pruned;

        // Theoretical maximum of ordered pairs: the paper's `N·(N−1)/2`
        // over all of the app's actions (cross-harness pairs included in
        // the denominator even though our model never orders them).
        let n = analysis.actions.len();
        let hb_max = n * n.saturating_sub(1) / 2;

        let mut metrics = self.metrics;
        metrics.timings.total = self.started.elapsed();

        SierraResult {
            app_name: self.app_name,
            harness_count: harness.harness_count(),
            action_count: n,
            hb_edges: graph.ordered_pair_count(),
            hb_max,
            racy_pairs_without_as,
            racy_pairs_with_as: candidates.len(),
            races,
            triage_ran: !self.config.no_triage,
            pruned,
            metrics,
            analysis,
            shbg: graph,
            harness,
        }
    }
}

/// Fixed batch size of the batch-synchronous refutation cache protocol.
/// Deliberately independent of the worker count: every pair in a batch
/// sees exactly the refuted-methods cache as of the batch start, so the
/// batching (and therefore every verdict) is identical at any
/// `refute_jobs` setting.
const REFUTE_BATCH: usize = 16;

/// The result of a standalone refutation run over a candidate list.
#[derive(Debug)]
pub struct RefutationRun {
    /// Per-candidate verdicts, in input order.
    pub outcomes: Vec<Outcome>,
    /// Aggregated refuter counters (summed in input order).
    pub stats: RefuterStats,
    /// Worker threads the run resolved to.
    pub jobs_used: usize,
}

/// Refutes a candidate-pair list on a pool of `jobs` worker threads
/// (`0` = all cores), preserving the paper's §5 refuted-node caching
/// across batches.
///
/// Refutation is embarrassingly parallel per pair *except* for the
/// cache, whose state changes verdict-relevant pruning. To stay
/// thread-count-independent the pairs are processed in fixed-size
/// batches: each pair runs on a [`Refuter::fork`] that snapshots the
/// cache at batch start, and the forks' newly-refuted method sets are
/// merged (an order-independent set union) only between batches. The
/// serial path runs the identical batched algorithm, so
/// `jobs = 1` and `jobs = N` produce byte-identical verdicts and
/// stats — the same determinism contract as the corpus engine.
pub fn refute_candidates(
    analysis: &Analysis,
    program: &Program,
    message_what: FieldId,
    config: RefuterConfig,
    jobs: usize,
    candidates: &[(Access, Access)],
    infeasible: Option<Arc<InfeasibleEdges>>,
) -> RefutationRun {
    let jobs = effective_jobs(jobs, candidates.len());
    let mut base = Refuter::new(analysis, program, config).with_message_model(message_what);
    if let Some(edges) = infeasible {
        base = base.with_infeasible_edges(edges);
    }
    let mut outcomes: Vec<Outcome> = Vec::with_capacity(candidates.len());
    for batch in candidates.chunks(REFUTE_BATCH) {
        if jobs == 1 {
            // No thread-pool overhead, but the same fork-per-pair,
            // merge-at-batch-end protocol as the parallel path.
            let finished: Vec<(Outcome, Refuter)> = batch
                .iter()
                .map(|(a, b)| {
                    let mut worker = base.fork();
                    let outcome = worker.refute_pair(a, b);
                    (outcome, worker)
                })
                .collect();
            for (outcome, worker) in finished {
                outcomes.push(outcome);
                base.merge_from(worker);
            }
        } else {
            let items: Vec<(String, &(Access, Access))> = batch
                .iter()
                .enumerate()
                .map(|(i, pair)| (format!("pair-{}", outcomes.len() + i), pair))
                .collect();
            let rows = run_jobs(jobs, items, |_, (a, b)| {
                let mut worker = base.fork();
                let outcome = worker.refute_pair(a, b);
                (outcome, worker)
            });
            for row in rows {
                // A panic inside a pair's query is a pipeline bug; keep
                // the pre-parallel behaviour of propagating it so the
                // corpus engine records the whole app as a failed row.
                let (outcome, worker) = row.unwrap_or_else(|e| panic!("{e}"));
                outcomes.push(outcome);
                base.merge_from(worker);
            }
        }
    }
    RefutationRun {
        outcomes,
        stats: base.stats,
        jobs_used: jobs,
    }
}

/// Deduplicates accesses to one representative per `(action, addr)`.
fn dedupe(accesses: Vec<Access>) -> Vec<Access> {
    let mut seen: HashMap<(android_model::ActionId, apir::StmtAddr), Access> = HashMap::new();
    for a in accesses {
        seen.entry((a.action, a.addr))
            .and_modify(|e| {
                // Merge base points-to across contexts of the same action.
                merge_sorted_bases(&mut e.base, &a.base);
            })
            .or_insert(a);
    }
    let mut out: Vec<Access> = seen.into_values().collect();
    out.sort_by_key(|a| (a.addr, a.action));
    out
}

/// Set union of two sorted object lists into `dst`, as a linear
/// two-pointer merge. `Access::base` is sorted ascending by
/// construction (see [`Access::base`]) and this is its only mutation
/// site, so the invariant is preserved.
fn merge_sorted_bases(dst: &mut Vec<pointer::ObjId>, src: &[pointer::ObjId]) {
    debug_assert!(dst.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(src.windows(2).all(|w| w[0] < w[1]));
    // Common case: nothing new to add — detect with the same linear
    // walk before allocating a merged vector.
    let mut i = 0;
    if src.iter().all(|o| {
        while i < dst.len() && dst[i] < *o {
            i += 1;
        }
        i < dst.len() && dst[i] == *o
    }) {
        return;
    }
    let mut merged = Vec::with_capacity(dst.len() + src.len());
    let (mut i, mut j) = (0, 0);
    while i < dst.len() && j < src.len() {
        match dst[i].cmp(&src[j]) {
            std::cmp::Ordering::Less => {
                merged.push(dst[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                merged.push(src[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                merged.push(dst[i]);
                i += 1;
                j += 1;
            }
        }
    }
    merged.extend_from_slice(&dst[i..]);
    merged.extend_from_slice(&src[j..]);
    *dst = merged;
}

/// Candidate racy pairs: same harness, different unordered actions,
/// overlapping locations, at least one write (§4.1).
fn racy_pairs<'a>(
    accesses: &'a [Access],
    analysis: &Analysis,
    graph: &Shbg,
) -> Vec<(&'a Access, &'a Access)> {
    // Group by field: only same-field accesses can overlap.
    let mut by_field: HashMap<apir::FieldId, Vec<&Access>> = HashMap::new();
    for a in accesses {
        by_field.entry(a.field).or_default().push(a);
    }
    let mut out = Vec::new();
    for group in by_field.values() {
        for i in 0..group.len() {
            for j in i + 1..group.len() {
                let (a, b) = (group[i], group[j]);
                if a.action == b.action {
                    continue;
                }
                if !(a.is_write || b.is_write) {
                    continue;
                }
                let (ha, hb) = (
                    analysis.actions.action(a.action).harness,
                    analysis.actions.action(b.action).harness,
                );
                if ha != hb {
                    continue; // races are detected per harness
                }
                if !a.overlaps(b) {
                    continue;
                }
                if !graph.unordered(a.action, b.action) {
                    continue;
                }
                out.push((a, b));
            }
        }
    }
    out.sort_by_key(|(a, b)| (a.addr, b.addr, a.action, b.action));
    out
}
