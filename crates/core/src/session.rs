//! The staged analysis session over a content-addressed summary store.
//!
//! [`AnalysisSession`] splits the pipeline into explicitly-driven
//! stages, each computed once on first request and cached:
//!
//! ```text
//! harness() → pointer() → shbg() → candidates() → prefilter() →
//! refute() → histories() → triage() → finish()
//! ```
//!
//! Calling a later stage forces the earlier ones, so `finish()` alone
//! reproduces the one-shot [`crate::Sierra::analyze_app`] behaviour —
//! but the forcing is explicit now: every getter returns
//! `Result<_, SessionError>` and records the [`Stage`] it ran, so
//! out-of-band drivers (the `sierra serve` worker pool) get typed
//! errors instead of panics.
//!
//! Sessions are constructed with [`SessionBuilder`] (mirroring
//! [`SierraConfig::builder`]) from an app, a pre-generated harness, or
//! inline `.sierra` source, optionally over a shared
//! [`SummaryStore`]. The pointer stage runs the **linking pass**: every
//! method's facts are pulled from the store by content hash (or
//! recomputed and stored on miss), and the whole points-to `Analysis`
//! is reused outright when no method's solver-relevant statements
//! changed. Downstream stages consume the linked facts — dominance
//! pairs, access sites, const-prop facts — instead of re-deriving them,
//! so a warm session re-analyzes only what an edit actually touched
//! while producing byte-identical reports. Reuse is observable in
//! [`StageMetrics::link`].
//!
//! Each stage records its wall-clock time and work counters into
//! [`StageMetrics`].

use crate::engine::{effective_jobs, run_jobs};
use crate::link::LinkedSummaries;
use crate::pipeline::{SierraConfig, SierraResult, StageMetrics};
use crate::report::{priority_of, RaceReport};
use crate::summary::{
    config_fingerprint, load_or_summarize, structural_fingerprint, MemoryStore, SummaryStore,
};
use android_model::AndroidApp;
use apir::{FieldId, InfeasibleEdges, Program};
use harness_gen::HarnessResult;
use histories::HistoryModel;
use pointer::{collect_accesses_from_sites, Access, Analysis, SelectorKind};
use prefilter::{PrunedPair, Verdict};
use shbg::Shbg;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};
use symexec::{Outcome, Refuter, RefuterConfig, RefuterStats};

/// A pipeline stage, for error reporting and progress metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Harness generation (§3.2).
    Harness,
    /// Summary linking (store lookups + recomputation of changed
    /// methods).
    Link,
    /// Call graph + pointer analysis (§3.3).
    Pointer,
    /// SHBG construction (§4).
    Shbg,
    /// Candidate racy-pair generation (§4.1).
    Candidates,
    /// Pre-refutation static pruning.
    Prefilter,
    /// Symbolic refutation (§5).
    Refute,
    /// Message-history refutation.
    Histories,
    /// Harm triage.
    Triage,
    /// The comparison pass without action sensitivity.
    Compare,
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Stage::Harness => "harness",
            Stage::Link => "link",
            Stage::Pointer => "pointer",
            Stage::Shbg => "shbg",
            Stage::Candidates => "candidates",
            Stage::Prefilter => "prefilter",
            Stage::Refute => "refute",
            Stage::Histories => "histories",
            Stage::Triage => "triage",
            Stage::Compare => "compare",
        };
        f.write_str(name)
    }
}

/// Why a session could not run (or be built).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// The input app was invalid (e.g. inline `.sierra` source failed
    /// to parse or validate).
    InvalidApp {
        /// Parser/validator diagnostic.
        message: String,
    },
    /// A stage was requested but its input is absent (e.g. a builder
    /// finished without an app, harness, or source).
    MissingInput {
        /// The stage that could not start.
        stage: Stage,
    },
    /// A stage failed.
    StageFailed {
        /// The failing stage.
        stage: Stage,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::InvalidApp { message } => write!(f, "invalid app: {message}"),
            SessionError::MissingInput { stage } => {
                write!(
                    f,
                    "stage {stage} has no input: session built without an app"
                )
            }
            SessionError::StageFailed { stage, message } => {
                write!(f, "stage {stage} failed: {message}")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// What a session analyzes.
#[derive(Debug)]
enum SessionInput {
    /// A built app (harness generation still to run). Boxed: an
    /// `AndroidApp` is hundreds of bytes and would dominate the enum.
    App(Box<AndroidApp>),
    /// An already-generated harness (its generation time is *not*
    /// charged to the session) — the comparison pass and the corpus
    /// engine share one harness across sessions this way.
    Harness(Arc<HarnessResult>),
    /// Inline `.sierra` source, parsed at `build()`.
    Source {
        /// App name for the report.
        name: String,
        /// The `.sierra` text.
        text: String,
    },
}

/// Builder for [`AnalysisSession`], mirroring [`SierraConfig::builder`].
///
/// ```no_run
/// use sierra_core::{SessionBuilder, SierraConfig};
/// # let app = android_model::AndroidAppBuilder::new("Demo").finish().unwrap();
/// let mut session = SessionBuilder::new(SierraConfig::default())
///     .app(app)
///     .build()
///     .expect("valid input");
/// let races = session.refute().expect("pipeline runs");
/// ```
#[derive(Debug)]
pub struct SessionBuilder {
    config: SierraConfig,
    store: Option<Arc<dyn SummaryStore>>,
    shared: Option<Arc<dyn SummaryStore>>,
    input: Option<SessionInput>,
    arena: Option<Arc<apir::SymbolArena>>,
}

impl SessionBuilder {
    /// Starts a builder with the given pipeline configuration.
    pub fn new(config: SierraConfig) -> Self {
        Self {
            config,
            store: None,
            shared: None,
            input: None,
            arena: None,
        }
    }

    /// Analyzes a built app.
    pub fn app(mut self, app: AndroidApp) -> Self {
        self.input = Some(SessionInput::App(Box::new(app)));
        self
    }

    /// Analyzes an already-generated harness (shared, not re-generated).
    pub fn harness(mut self, harness: Arc<HarnessResult>) -> Self {
        self.input = Some(SessionInput::Harness(harness));
        self
    }

    /// Analyzes inline `.sierra` source (parsed at [`Self::build`]).
    pub fn source(mut self, name: impl Into<String>, text: impl Into<String>) -> Self {
        self.input = Some(SessionInput::Source {
            name: name.into(),
            text: text.into(),
        });
        self
    }

    /// Uses a shared summary store (warm-cache re-analysis). Without
    /// this the session gets a private in-memory store.
    pub fn store(mut self, store: Arc<dyn SummaryStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Consults (and feeds) a corpus-shared store for framework-origin
    /// method summaries, ahead of the per-app store (see
    /// [`crate::summary::load_or_summarize`]). The shared store may be
    /// the same object as the per-app store: the key spaces are
    /// disjoint by fingerprint.
    pub fn shared_store(mut self, shared: Arc<dyn SummaryStore>) -> Self {
        self.shared = Some(shared);
        self
    }

    /// Interns class/method/field names into a shared [`apir::SymbolArena`]
    /// when building from inline source, so framework names are stored once
    /// per process across sessions (the serve loop passes its arena here).
    /// Only affects [`Self::source`] input — pre-built apps keep whatever
    /// interner they were constructed with. Reports and summary keys are
    /// identical with or without a shared arena.
    pub fn arena(mut self, arena: Arc<apir::SymbolArena>) -> Self {
        self.arena = Some(arena);
        self
    }

    /// Finishes the builder. Fails with [`SessionError::InvalidApp`] if
    /// inline source does not parse, or [`SessionError::MissingInput`]
    /// if no input was supplied.
    pub fn build(self) -> Result<AnalysisSession, SessionError> {
        let store = self
            .store
            .unwrap_or_else(|| Arc::new(MemoryStore::new()) as Arc<dyn SummaryStore>);
        let (app, harness) = match self.input {
            Some(SessionInput::App(app)) => (Some(*app), None),
            Some(SessionInput::Harness(h)) => (None, Some(h)),
            Some(SessionInput::Source { name, text }) => {
                let app = android_model::asm::parse_app_with(&name, &text, self.arena.clone())
                    .map_err(|e| SessionError::InvalidApp {
                        message: e.to_string(),
                    })?;
                (Some(app), None)
            }
            None => {
                return Err(SessionError::MissingInput {
                    stage: Stage::Harness,
                })
            }
        };
        let app_name = app
            .as_ref()
            .map(|a| a.name.clone())
            .or_else(|| harness.as_ref().map(|h| h.app.name.clone()))
            .expect("input resolved above");
        Ok(AnalysisSession {
            config: self.config,
            app_name,
            started: Instant::now(),
            metrics: StageMetrics::default(),
            store,
            shared: self.shared,
            app,
            harness,
            linked: None,
            analysis: None,
            shbg: None,
            candidates: None,
            prefilter: None,
            races: None,
            histories_model: None,
            history_pruned: Vec::new(),
            histories_done: false,
            triaged: false,
        })
    }
}

/// A staged run of the pipeline over one app. See the module docs.
#[derive(Debug)]
pub struct AnalysisSession {
    config: SierraConfig,
    app_name: String,
    started: Instant,
    metrics: StageMetrics,
    store: Arc<dyn SummaryStore>,
    /// Corpus-shared framework-summary layer, when configured.
    shared: Option<Arc<dyn SummaryStore>>,
    /// Present until the harness stage consumes it (absent for
    /// harness-input sessions).
    app: Option<AndroidApp>,
    harness: Option<Arc<HarnessResult>>,
    linked: Option<LinkedSummaries>,
    analysis: Option<Arc<Analysis>>,
    shbg: Option<Shbg>,
    candidates: Option<Vec<(Access, Access)>>,
    prefilter: Option<PrefilterOutcome>,
    races: Option<Vec<RaceReport>>,
    histories_model: Option<Arc<HistoryModel>>,
    history_pruned: Vec<PrunedPair>,
    histories_done: bool,
    triaged: bool,
}

/// Cached output of the prefilter stage.
#[derive(Debug)]
pub struct PrefilterOutcome {
    /// Candidate pairs that survive to refutation, in candidate order.
    pub kept: Vec<(Access, Access)>,
    /// Pruned pairs with their verdicts, in candidate order.
    pub pruned: Vec<PrunedPair>,
    /// Statically-infeasible branch edges, shared with the refuter.
    pub infeasible: Arc<InfeasibleEdges>,
}

impl AnalysisSession {
    /// Starts a session on an app with a private in-memory store.
    pub fn new(config: SierraConfig, app: AndroidApp) -> Self {
        SessionBuilder::new(config)
            .app(app)
            .build()
            .expect("app input is always valid")
    }

    /// Starts a session over an already-generated harness.
    #[deprecated(note = "use SessionBuilder::new(config).harness(h).build()")]
    pub fn from_harness(config: SierraConfig, harness: Arc<HarnessResult>) -> Self {
        SessionBuilder::new(config)
            .harness(harness)
            .build()
            .expect("harness input is always valid")
    }

    /// The configuration the session runs with.
    pub fn config(&self) -> &SierraConfig {
        &self.config
    }

    /// The metrics recorded by the stages run so far.
    pub fn metrics(&self) -> &StageMetrics {
        &self.metrics
    }

    /// Stage 1: harness generation (§3.2).
    pub fn harness(&mut self) -> Result<&Arc<HarnessResult>, SessionError> {
        if self.harness.is_none() {
            let Some(app) = self.app.take() else {
                return Err(SessionError::MissingInput {
                    stage: Stage::Harness,
                });
            };
            let t = Instant::now();
            let harness = harness_gen::generate(app);
            self.metrics.timings.harness = t.elapsed();
            self.metrics.last_stage = Some(Stage::Harness);
            self.harness = Some(Arc::new(harness));
        }
        Ok(self.harness.as_ref().expect("just generated"))
    }

    /// Stage 2: summary linking + call graph + pointer analysis (§3.3).
    ///
    /// Links per-method summaries through the store (recomputing only
    /// methods whose content key misses), then either reuses the cached
    /// whole-program `Analysis` — when every method's pointer digest is
    /// unchanged — or runs the solver and caches the artifact. Both the
    /// link work and the solve are charged to the CG+PA timing.
    pub fn pointer(&mut self) -> Result<&Arc<Analysis>, SessionError> {
        if self.analysis.is_none() {
            self.harness()?;
            let harness = Arc::clone(self.harness.as_ref().expect("stage 1 ran"));
            let t = Instant::now();
            let program = &harness.app.program;
            let structural_fp = structural_fingerprint(program);
            let config_fp = config_fingerprint(self.config.selector, self.config.pointer_options);
            let (corrupt_before, evicted_before) =
                (self.store.corrupt_misses(), self.store.evictions());
            let (methods, reused, recomputed, shared_hits) = load_or_summarize(
                program,
                &harness.app.framework,
                self.config.pointer_options.index_sensitive,
                structural_fp,
                config_fp,
                self.store.as_ref(),
                self.shared.as_deref(),
            );
            let linked = LinkedSummaries {
                methods,
                structural_fp,
                config_fp,
            };
            self.metrics.link.summaries_reused = reused;
            self.metrics.link.summaries_recomputed = recomputed;
            self.metrics.link.summaries_shared = shared_hits;
            self.metrics.last_stage = Some(Stage::Link);

            let analysis_key = linked.analysis_key();
            let use_blobs = !self.config.no_artifact_cache && self.store.persists_artifacts();
            let mut from_blob = false;
            let cached = self.store.get_analysis(analysis_key).or_else(|| {
                // Cold-process path: rehydrate the artifact blob the
                // durable store persisted. A blob that fails the deep
                // decode (e.g. written by a different build) is a plain
                // miss; the re-solve below rewrites it.
                if !use_blobs {
                    return None;
                }
                let blob = self.store.get_artifact(analysis_key)?;
                let decoded = pointer::artifact::decode(&blob, harness.app.framework.clone())?;
                from_blob = true;
                Some(Arc::new(decoded))
            });
            let analysis = match cached {
                Some(cached) => {
                    // The cached artifact carries the stats of the run
                    // that produced it, so reports stay byte-identical;
                    // the work done *this* session is in `link`.
                    self.metrics.link.analysis_reused = true;
                    self.metrics.link.pointer_iterations_run = 0;
                    if from_blob {
                        self.store.put_analysis(analysis_key, Arc::clone(&cached));
                    }
                    cached
                }
                None => {
                    let analysis = Arc::new(pointer::analyze_opts(
                        &harness,
                        self.config.selector,
                        self.config.pointer_options,
                    ));
                    self.metrics.link.pointer_iterations_run = analysis.stats.worklist_iterations;
                    self.store.put_analysis(analysis_key, Arc::clone(&analysis));
                    if use_blobs {
                        self.store
                            .put_artifact(analysis_key, &pointer::artifact::encode(&analysis));
                    }
                    analysis
                }
            };
            self.metrics.link.corrupt_misses = self.store.corrupt_misses() - corrupt_before;
            self.metrics.link.evictions = self.store.evictions() - evicted_before;
            self.metrics.timings.cg_pa = t.elapsed();
            self.metrics.pointer = analysis.stats;
            // Audit the solved call graph while the program is at hand;
            // the stats ride StageMetrics into tables and gates. Runs
            // under every policy (it is how `ignore`'s gap is measured).
            self.metrics.soundness = soundness::audit(&harness.app.program, &analysis);
            self.metrics.last_stage = Some(Stage::Pointer);
            self.linked = Some(linked);
            self.analysis = Some(analysis);
        }
        Ok(self.analysis.as_ref().expect("just analyzed"))
    }

    /// Stage 3: SHBG construction (§4), over the linked dominance facts.
    pub fn shbg(&mut self) -> Result<&Shbg, SessionError> {
        if self.shbg.is_none() {
            self.pointer()?;
            let harness = self.harness.as_ref().expect("stage 1 ran");
            let analysis = self.analysis.as_ref().expect("stage 2 ran");
            let linked = self.linked.as_ref().expect("stage 2 linked");
            let t = Instant::now();
            let graph = shbg::build_with_dominance(analysis, harness, &linked.dominance_map());
            self.metrics.timings.hbg = t.elapsed();
            self.metrics.shbg = graph.stats;
            self.metrics.last_stage = Some(Stage::Shbg);
            self.shbg = Some(graph);
        }
        Ok(self.shbg.as_ref().expect("just built"))
    }

    /// Stage 4: candidate racy pairs — same harness, different unordered
    /// actions, overlapping locations, at least one write (§4.1). Access
    /// sites come from the linked summaries; only their points-to
    /// instantiation runs here.
    pub fn candidates(&mut self) -> Result<&[(Access, Access)], SessionError> {
        if self.candidates.is_none() {
            self.shbg()?;
            let harness = self.harness.as_ref().expect("stage 1 ran");
            let analysis = self.analysis.as_ref().expect("stage 2 ran");
            let linked = self.linked.as_ref().expect("stage 2 linked");
            let graph = self.shbg.as_ref().expect("stage 3 ran");
            let accesses = collect_accesses_from_sites(
                analysis,
                &harness.app.program,
                Some(harness.harness_class),
                &linked.sites_map(),
            );
            let deduped = dedupe(accesses);
            let pairs = racy_pairs(&deduped, analysis, graph)
                .into_iter()
                .map(|(a, b)| (a.clone(), b.clone()))
                .collect();
            self.metrics.last_stage = Some(Stage::Candidates);
            self.candidates = Some(pairs);
        }
        Ok(self.candidates.as_ref().expect("just computed"))
    }

    /// Stage 5: pre-refutation static pruning (escape analysis, guard
    /// detection, constant/branch pruning) over the linked const-prop
    /// facts. A passthrough under `no_prefilter` — and under
    /// `skip_refutation`, whose ablations count raw candidate pairs.
    pub fn prefilter(&mut self) -> Result<&PrefilterOutcome, SessionError> {
        if self.prefilter.is_none() {
            self.candidates()?;
            let harness = self.harness.as_ref().expect("stage 1 ran");
            let analysis = self.analysis.as_ref().expect("stage 2 ran");
            let linked = self.linked.as_ref().expect("stage 2 linked");
            let graph = self.shbg.as_ref().expect("stage 3 ran");
            let candidates = self.candidates.as_ref().expect("stage 4 ran");
            let t = Instant::now();
            let outcome = if self.config.no_prefilter || self.config.skip_refutation {
                PrefilterOutcome {
                    kept: candidates.clone(),
                    pruned: Vec::new(),
                    infeasible: Arc::new(InfeasibleEdges::new()),
                }
            } else {
                let run = prefilter::run_with_const_facts(
                    &harness.app.program,
                    analysis,
                    graph,
                    candidates,
                    &linked.const_facts_for(analysis),
                );
                self.metrics.prefilter = run.stats;
                PrefilterOutcome {
                    kept: run.kept,
                    pruned: run.pruned,
                    infeasible: Arc::new(run.infeasible),
                }
            };
            let elapsed = t.elapsed();
            self.metrics.timings.prefilter = elapsed;
            self.metrics.prefilter.prefilter_ns = elapsed.as_nanos() as u64;
            self.metrics.last_stage = Some(Stage::Prefilter);
            self.prefilter = Some(outcome);
        }
        Ok(self.prefilter.as_ref().expect("just prefiltered"))
    }

    /// Whether the message-history stage participates in this run.
    fn histories_enabled(&self) -> bool {
        !self.config.no_histories && !self.config.skip_refutation
    }

    /// Builds (once) the message-history model: the lifecycle automaton
    /// plus per-action occurrence sets. Forced by [`Self::refute`] when
    /// the stage is enabled (the refuter consumes its dead-callback
    /// edges) and by [`Self::histories`].
    fn history_model(&mut self) -> Result<Arc<HistoryModel>, SessionError> {
        if self.histories_model.is_none() {
            self.pointer()?;
            let harness = self.harness.as_ref().expect("stage 1 ran");
            let analysis = self.analysis.as_ref().expect("stage 2 ran");
            let t = Instant::now();
            let model = Arc::new(HistoryModel::build(
                &harness.app.program,
                &harness.app.framework,
                analysis,
            ));
            self.metrics.histories = model.stats();
            self.metrics.timings.histories = t.elapsed();
            self.histories_model = Some(model);
        }
        Ok(Arc::clone(
            self.histories_model.as_ref().expect("just built"),
        ))
    }

    /// Stage 6: refutation (§5) + prioritization (§3.1). With
    /// `skip_refutation` every candidate survives.
    pub fn refute(&mut self) -> Result<&[RaceReport], SessionError> {
        if self.races.is_none() {
            self.prefilter()?;
            // When the histories stage is on, its dead-callback CFG
            // edges join the prefilter's statically-infeasible edges in
            // the refuter's shared prefilter channel — except for
            // methods holding a surviving pair's accesses, which stage
            // 8 must judge itself (a machine-checkable History verdict
            // beats a silent symbolic refutation of the same pair).
            let model = if self.histories_enabled() {
                Some(self.history_model()?)
            } else {
                None
            };
            let harness = self.harness.as_ref().expect("stage 1 ran");
            let analysis = self.analysis.as_ref().expect("stage 2 ran");
            let prefilter = self.prefilter.as_ref().expect("stage 5 ran");
            let candidates = &prefilter.kept;
            let infeasible = match &model {
                Some(model) if !model.dead_edges().is_empty() => {
                    let kept_methods: HashSet<apir::MethodId> = candidates
                        .iter()
                        .flat_map(|(a, b)| [a.method, b.method])
                        .collect();
                    let mut merged = (*prefilter.infeasible).clone();
                    let mut exported = 0usize;
                    for (m, from, to) in model.dead_edges().iter_sorted() {
                        if !kept_methods.contains(&m) && merged.insert(m, from, to) {
                            exported += 1;
                        }
                    }
                    self.metrics.histories.infeasible_exported = exported;
                    Arc::new(merged)
                }
                _ => Arc::clone(&prefilter.infeasible),
            };
            let t = Instant::now();
            let program = &harness.app.program;
            let (outcomes, refuter_stats, jobs_used) = if self.config.skip_refutation {
                (
                    vec![Outcome::Budget; candidates.len()],
                    RefuterStats::default(),
                    0,
                )
            } else {
                let run = refute_candidates(
                    analysis,
                    program,
                    harness.app.framework.message_what,
                    self.config.refuter,
                    self.config.refute_jobs,
                    candidates,
                    Some(infeasible),
                );
                (run.outcomes, run.stats, run.jobs_used)
            };
            let mut races: Vec<RaceReport> = Vec::new();
            for ((a, b), outcome) in candidates.iter().zip(outcomes) {
                if outcome == Outcome::Refuted {
                    continue;
                }
                let field = a.field;
                let pointer_field = program.field(field).ty.is_reference();
                let priority = priority_of(program, a, b);
                races.push(RaceReport {
                    a: a.clone(),
                    b: b.clone(),
                    field,
                    outcome,
                    priority,
                    pointer_field,
                    triage: None,
                });
            }
            races.sort_by_key(|r| r.rank_key());
            self.metrics.refuter = refuter_stats;
            self.metrics.refute_jobs_used = jobs_used;
            self.metrics.timings.refutation = t.elapsed();
            self.metrics.last_stage = Some(Stage::Refute);
            self.races = Some(races);
        }
        Ok(self.races.as_ref().expect("just refuted"))
    }

    /// Stage 7: message-history refutation. Checks each surviving pair's
    /// two callbacks for joint reachability under a realizable event
    /// history of the lifecycle automaton; unrealizable pairs move from
    /// the race list into the pruned list with a machine-checkable
    /// [`Verdict::History`]. A no-op under `no_histories` or
    /// `skip_refutation`.
    pub fn histories(&mut self) -> Result<&[RaceReport], SessionError> {
        self.refute()?;
        if !self.histories_done {
            self.histories_done = true;
            if self.histories_enabled() {
                let model = self.history_model()?;
                let t = Instant::now();
                let races = self.races.as_mut().expect("stage 6 ran");
                let mut kept = Vec::with_capacity(races.len());
                let mut pruned = Vec::new();
                let mut pairs_checked = 0usize;
                let mut product_edges = 0usize;
                let (mut unregistered, mut destroy, mut pause) = (0usize, 0usize, 0usize);
                for race in std::mem::take(races) {
                    let check = model.check_pair(race.a.action, race.b.action);
                    if check.checked {
                        pairs_checked += 1;
                        product_edges += check.product_edges;
                    }
                    match check.refuted {
                        Some((pattern, action)) => {
                            match pattern {
                                histories::HistoryPattern::UnregisteredBeforePosted => {
                                    unregistered += 1
                                }
                                histories::HistoryPattern::DestroyDominates => destroy += 1,
                                histories::HistoryPattern::PauseQuiesced => pause += 1,
                            }
                            pruned.push(PrunedPair {
                                a: race.a,
                                b: race.b,
                                verdict: Verdict::History { pattern, action },
                            });
                        }
                        None => kept.push(race),
                    }
                }
                *races = kept;
                self.history_pruned = pruned;
                self.metrics.histories.pairs_checked = pairs_checked;
                self.metrics.histories.product_edges = product_edges;
                self.metrics.histories.discharged_unregistered = unregistered;
                self.metrics.histories.discharged_destroy = destroy;
                self.metrics.histories.discharged_pause = pause;
                self.metrics.timings.histories += t.elapsed();
                self.metrics.histories.histories_ns =
                    self.metrics.timings.histories.as_nanos() as u64;
                self.metrics.last_stage = Some(Stage::Histories);
            }
        }
        Ok(self.races.as_ref().expect("stage 6 ran"))
    }

    /// Stage 8: harm triage — classifies every surviving race with a
    /// [`triage::Harm`] verdict (nullness/taint dataflow on the read
    /// side, constant comparison on write/write pairs) and drops reports
    /// below `min_harm`. A no-op under `no_triage`, leaving every report
    /// annotation-free.
    pub fn triage(&mut self) -> Result<&[RaceReport], SessionError> {
        self.histories()?;
        if !self.triaged {
            self.triaged = true;
            if !self.config.no_triage {
                let harness = self.harness.as_ref().expect("stage 1 ran");
                let analysis = self.analysis.as_ref().expect("stage 2 ran");
                let graph = self.shbg.as_ref().expect("stage 3 ran");
                let races = self.races.as_mut().expect("stage 6 ran");
                let t = Instant::now();
                let pairs: Vec<(Access, Access)> =
                    races.iter().map(|r| (r.a.clone(), r.b.clone())).collect();
                let (verdicts, mut stats) = triage::classify_races(
                    &harness.app.program,
                    analysis,
                    graph,
                    Some(harness.harness_class),
                    &pairs,
                );
                for (race, verdict) in races.iter_mut().zip(verdicts) {
                    race.triage = Some(verdict);
                }
                if let Some(min) = self.config.min_harm {
                    races.retain(|r| r.triage.as_ref().is_some_and(|t| t.harm >= min));
                }
                let elapsed = t.elapsed();
                stats.triage_ns = elapsed.as_nanos() as u64;
                self.metrics.timings.triage = elapsed;
                self.metrics.triage = stats;
                self.metrics.last_stage = Some(Stage::Triage);
            }
        }
        Ok(self.races.as_ref().expect("stage 6 ran"))
    }

    /// Runs every remaining stage (plus the comparison pass when
    /// configured) and assembles the [`SierraResult`].
    ///
    /// The comparison pass without action sensitivity (Table 3 col 6) is
    /// a second session over the same generated harness — and the same
    /// summary store (its different config fingerprint keeps the keys
    /// disjoint) — stopped after the candidate stage. Under
    /// `overlap_compare` it runs on a scoped worker thread *concurrently
    /// with refutation*: the two only share the immutable
    /// `Arc<HarnessResult>` and the thread-safe store, and the pass
    /// returns a single deterministic count, so every output is
    /// byte-identical to the serial schedule.
    pub fn finish(mut self) -> Result<SierraResult, SessionError> {
        // Force everything refutation needs so the overlapped window
        // contains exactly the refutation stage.
        self.prefilter()?;

        let harness = self.harness.clone().expect("stages ran");
        let compare_cfg = self.config.compare_without_as.then(|| {
            let plain = match self.config.selector {
                SelectorKind::ActionSensitive(k) => SelectorKind::Hybrid(k),
                other => other,
            };
            SierraConfig {
                selector: plain,
                compare_without_as: false,
                skip_refutation: true,
                ..self.config
            }
        });
        let run_compare = |cfg: SierraConfig,
                           harness: Arc<HarnessResult>,
                           store: Arc<dyn SummaryStore>,
                           shared: Option<Arc<dyn SummaryStore>>|
         -> Result<(usize, Duration), SessionError> {
            let t = Instant::now();
            let mut builder = SessionBuilder::new(cfg).harness(harness).store(store);
            if let Some(shared) = shared {
                builder = builder.shared_store(shared);
            }
            let count = builder.build()?.candidates()?.len();
            Ok((count, t.elapsed()))
        };

        let mut compare_overlapped = false;
        let (racy_pairs_without_as, compare_elapsed) = match compare_cfg {
            Some(cfg) if self.config.overlap_compare && !self.config.skip_refutation => {
                compare_overlapped = true;
                let shared = Arc::clone(&harness);
                let shared_store = Arc::clone(&self.store);
                let shared_layer = self.shared.clone();
                std::thread::scope(|scope| {
                    let compare =
                        scope.spawn(move || run_compare(cfg, shared, shared_store, shared_layer));
                    let refuted = self.refute().map(|_| ());
                    let compared = compare
                        .join()
                        .unwrap_or_else(|e| std::panic::resume_unwind(e));
                    refuted.and(compared)
                })?
            }
            Some(cfg) => run_compare(
                cfg,
                Arc::clone(&harness),
                Arc::clone(&self.store),
                self.shared.clone(),
            )?,
            None => (0, Duration::ZERO),
        };
        self.refute()?;
        self.triage()?;
        self.metrics.timings.compare = compare_elapsed;
        self.metrics.compare_overlapped = compare_overlapped;
        if compare_cfg.is_some() {
            self.metrics.last_stage = Some(Stage::Compare);
        }
        self.metrics.overlap_saved = if compare_overlapped {
            compare_elapsed.min(self.metrics.timings.refutation)
        } else {
            Duration::ZERO
        };

        let analysis = self.analysis.expect("stages ran");
        let graph = self.shbg.expect("stages ran");
        let races = self.races.expect("stages ran");
        let candidates = self.candidates.expect("stages ran");
        let mut pruned = self.prefilter.expect("stages ran").pruned;
        // History-pruned pairs follow the prefilter's, preserving each
        // stage's own candidate order.
        pruned.extend(self.history_pruned);

        // Theoretical maximum of ordered pairs: the paper's `N·(N−1)/2`
        // over all of the app's actions (cross-harness pairs included in
        // the denominator even though our model never orders them).
        let n = analysis.actions.len();
        let hb_max = n * n.saturating_sub(1) / 2;

        let mut metrics = self.metrics;
        metrics.timings.total = self.started.elapsed();

        Ok(SierraResult {
            app_name: self.app_name,
            harness_count: harness.harness_count(),
            action_count: n,
            hb_edges: graph.ordered_pair_count(),
            hb_max,
            racy_pairs_without_as,
            racy_pairs_with_as: candidates.len(),
            races,
            triage_ran: !self.config.no_triage,
            histories_ran: !self.config.no_histories && !self.config.skip_refutation,
            pruned,
            metrics,
            analysis,
            shbg: graph,
            harness,
        })
    }
}

/// Fixed batch size of the batch-synchronous refutation cache protocol.
/// Deliberately independent of the worker count: every pair in a batch
/// sees exactly the refuted-methods cache as of the batch start, so the
/// batching (and therefore every verdict) is identical at any
/// `refute_jobs` setting.
const REFUTE_BATCH: usize = 16;

/// The result of a standalone refutation run over a candidate list.
#[derive(Debug)]
pub struct RefutationRun {
    /// Per-candidate verdicts, in input order.
    pub outcomes: Vec<Outcome>,
    /// Aggregated refuter counters (summed in input order).
    pub stats: RefuterStats,
    /// Worker threads the run resolved to.
    pub jobs_used: usize,
}

/// Refutes a candidate-pair list on a pool of `jobs` worker threads
/// (`0` = all cores), preserving the paper's §5 refuted-node caching
/// across batches.
///
/// Refutation is embarrassingly parallel per pair *except* for the
/// cache, whose state changes verdict-relevant pruning. To stay
/// thread-count-independent the pairs are processed in fixed-size
/// batches: each pair runs on a [`Refuter::fork`] that snapshots the
/// cache at batch start, and the forks' newly-refuted method sets are
/// merged (an order-independent set union) only between batches. The
/// serial path runs the identical batched algorithm, so
/// `jobs = 1` and `jobs = N` produce byte-identical verdicts and
/// stats — the same determinism contract as the corpus engine.
pub fn refute_candidates(
    analysis: &Analysis,
    program: &Program,
    message_what: FieldId,
    config: RefuterConfig,
    jobs: usize,
    candidates: &[(Access, Access)],
    infeasible: Option<Arc<InfeasibleEdges>>,
) -> RefutationRun {
    let jobs = effective_jobs(jobs, candidates.len());
    let mut base = Refuter::new(analysis, program, config).with_message_model(message_what);
    if let Some(edges) = infeasible {
        base = base.with_infeasible_edges(edges);
    }
    let mut outcomes: Vec<Outcome> = Vec::with_capacity(candidates.len());
    for batch in candidates.chunks(REFUTE_BATCH) {
        if jobs == 1 {
            // No thread-pool overhead, but the same fork-per-pair,
            // merge-at-batch-end protocol as the parallel path.
            let finished: Vec<(Outcome, Refuter)> = batch
                .iter()
                .map(|(a, b)| {
                    let mut worker = base.fork();
                    let outcome = worker.refute_pair(a, b);
                    (outcome, worker)
                })
                .collect();
            for (outcome, worker) in finished {
                outcomes.push(outcome);
                base.merge_from(worker);
            }
        } else {
            let items: Vec<(String, &(Access, Access))> = batch
                .iter()
                .enumerate()
                .map(|(i, pair)| (format!("pair-{}", outcomes.len() + i), pair))
                .collect();
            let rows = run_jobs(jobs, items, |_, (a, b)| {
                let mut worker = base.fork();
                let outcome = worker.refute_pair(a, b);
                (outcome, worker)
            });
            for row in rows {
                // A panic inside a pair's query is a pipeline bug; keep
                // the pre-parallel behaviour of propagating it so the
                // corpus engine records the whole app as a failed row.
                let (outcome, worker) = row.unwrap_or_else(|e| panic!("{e}"));
                outcomes.push(outcome);
                base.merge_from(worker);
            }
        }
    }
    RefutationRun {
        outcomes,
        stats: base.stats,
        jobs_used: jobs,
    }
}

/// Deduplicates accesses to one representative per `(action, addr)`.
fn dedupe(accesses: Vec<Access>) -> Vec<Access> {
    let mut seen: HashMap<(android_model::ActionId, apir::StmtAddr), Access> = HashMap::new();
    for a in accesses {
        seen.entry((a.action, a.addr))
            .and_modify(|e| {
                // Merge base points-to across contexts of the same action.
                merge_sorted_bases(&mut e.base, &a.base);
            })
            .or_insert(a);
    }
    let mut out: Vec<Access> = seen.into_values().collect();
    out.sort_by_key(|a| (a.addr, a.action));
    out
}

/// Set union of two sorted object lists into `dst`, as a linear
/// two-pointer merge. `Access::base` is sorted ascending by
/// construction (see [`Access::base`]) and this is its only mutation
/// site, so the invariant is preserved.
fn merge_sorted_bases(dst: &mut Vec<pointer::ObjId>, src: &[pointer::ObjId]) {
    debug_assert!(dst.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(src.windows(2).all(|w| w[0] < w[1]));
    // Common case: nothing new to add — detect with the same linear
    // walk before allocating a merged vector.
    let mut i = 0;
    if src.iter().all(|o| {
        while i < dst.len() && dst[i] < *o {
            i += 1;
        }
        i < dst.len() && dst[i] == *o
    }) {
        return;
    }
    let mut merged = Vec::with_capacity(dst.len() + src.len());
    let (mut i, mut j) = (0, 0);
    while i < dst.len() && j < src.len() {
        match dst[i].cmp(&src[j]) {
            std::cmp::Ordering::Less => {
                merged.push(dst[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                merged.push(src[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                merged.push(dst[i]);
                i += 1;
                j += 1;
            }
        }
    }
    merged.extend_from_slice(&dst[i..]);
    merged.extend_from_slice(&src[j..]);
    *dst = merged;
}

/// Candidate racy pairs: same harness, different unordered actions,
/// overlapping locations, at least one write (§4.1).
fn racy_pairs<'a>(
    accesses: &'a [Access],
    analysis: &Analysis,
    graph: &Shbg,
) -> Vec<(&'a Access, &'a Access)> {
    // Group by field: only same-field accesses can overlap.
    let mut by_field: HashMap<apir::FieldId, Vec<&Access>> = HashMap::new();
    for a in accesses {
        by_field.entry(a.field).or_default().push(a);
    }
    let mut out = Vec::new();
    for group in by_field.values() {
        for i in 0..group.len() {
            for j in i + 1..group.len() {
                let (a, b) = (group[i], group[j]);
                if a.action == b.action {
                    continue;
                }
                if !(a.is_write || b.is_write) {
                    continue;
                }
                let (ha, hb) = (
                    analysis.actions.action(a.action).harness,
                    analysis.actions.action(b.action).harness,
                );
                if ha != hb {
                    continue; // races are detected per harness
                }
                if !a.overlaps(b) {
                    continue;
                }
                if !graph.unordered(a.action, b.action) {
                    continue;
                }
                out.push((a, b));
            }
        }
    }
    out.sort_by_key(|(a, b)| (a.addr, b.addr, a.action, b.action));
    out
}
