//! A minimal JSON value type with parser and renderer.
//!
//! The serve protocol and the unified [`crate::Report`] need structured
//! JSON both ways (parse requests, render reports) and the workspace is
//! dependency-free by policy, so this module hand-rolls the subset of
//! JSON we use: objects keep insertion order (rendering is deterministic)
//! and numbers are `f64` (every counter we serialize fits in the 2^53
//! exact-integer range).

use std::fmt::Write as _;

/// A JSON value. Object members keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers are exact up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Renders compact single-line JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (surrounding whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(value)
    }
}

/// Convenience: an object from `(key, value)` pairs.
pub fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Convenience: a number from any integer counter.
pub fn num(n: usize) -> Json {
    Json::Num(n as f64)
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        // Surrogate pairs are not needed by our protocol;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("invalid escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let text = r#"{"id":1,"op":"analyze","flags":[true,false,null],"x":-2.5,"s":"a\"b\n"}"#;
        let v = Json::parse(text).expect("parses");
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("op").and_then(Json::as_str), Some("analyze"));
        assert_eq!(
            v.get("flags").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        let rendered = v.render();
        assert_eq!(Json::parse(&rendered).expect("re-parses"), v);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{}extra").is_err());
    }
}
