//! # sierra-core — the SIERRA static event-based race detector
//!
//! End-to-end reproduction of the detection pipeline of *Static Detection
//! of Event-based Races in Android Apps* (Hu & Neamtiu, ASPLOS 2018),
//! Figure 3:
//!
//! 1. **Harness generation** (`harness-gen`): per-activity entrypoints that
//!    drive lifecycle and GUI callbacks.
//! 2. **Call graph + pointer analysis** (`pointer`): action-sensitive,
//!    field-sensitive Andersen analysis embedding the Android concurrency
//!    model (actions, Table 1).
//! 3. **SHBG** (`shbg`): static happens-before over actions, rules 1–7.
//! 4. **Racy pairs**: unordered same-harness access pairs on overlapping
//!    locations with at least one write.
//! 5. **Prefilter** (`prefilter`): cheap flow-aware static pruning —
//!    escape analysis, write-once guard detection, and constant/branch
//!    pruning — removes pairs that cannot race before the refuter runs.
//! 6. **Refutation** (`symexec`): goal-directed backward symbolic
//!    execution rules out ad-hoc-synchronized pairs.
//! 7. **Prioritization** (§3.1): app code above framework code, pointer
//!    fields above primitives.
//!
//! ```no_run
//! use android_model::AndroidAppBuilder;
//! use sierra_core::Sierra;
//!
//! let app = AndroidAppBuilder::new("Demo").finish().expect("valid app");
//! let result = Sierra::new().analyze_app(app);
//! for race in &result.races {
//!     println!("{}", race.describe(&result.harness.app.program, &result.analysis.actions));
//! }
//! ```

pub mod engine;
pub mod json;
mod link;
mod pipeline;
mod render;
mod report;
mod session;
mod summary;

pub use engine::{run_jobs, EngineError};
pub use histories::{HistoryPattern, HistoryStats};
pub use json::Json;
pub use link::{LinkStats, LinkedSummaries};
pub use pipeline::{
    Sierra, SierraConfig, SierraConfigBuilder, SierraResult, StageMetrics, StageTimings,
};
pub use pointer::OpaquePolicy;
pub use prefilter::{PrefilterStats, PrunedPair, Verdict};
pub use render::Report;
pub use report::{describe_action, describe_pair, priority_of, Priority, RaceReport};
pub use session::{
    refute_candidates, AnalysisSession, PrefilterOutcome, RefutationRun, SessionBuilder,
    SessionError, Stage,
};
pub use soundness::SoundnessStats;
pub use summary::{
    config_fingerprint, framework_fingerprint, structural_fingerprint, summary_key, DiskStore,
    MemoryStore, MethodSummary, SummaryStore,
};
pub use triage::{Harm, TriageStats, TriageVerdict, Witness};

#[cfg(test)]
mod tests;
