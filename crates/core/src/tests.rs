//! End-to-end pipeline tests on the paper's figure apps.

use crate::{Priority, Sierra, SierraConfig};
use corpus::{figures, RaceLabel};

fn reported_groups(result: &crate::SierraResult) -> Vec<(String, String)> {
    let p = &result.harness.app.program;
    result
        .races
        .iter()
        .map(|r| {
            let f = p.field(r.field);
            (p.class_name(f.class).to_owned(), p.name(f.name).to_owned())
        })
        .collect()
}

#[test]
fn figure_1_intra_component_race_is_detected() {
    let (app, truth) = figures::intra_component();
    let result = Sierra::new().analyze_app(app);
    let groups = reported_groups(&result);
    let eval = truth.evaluate(groups.iter().map(|(c, f)| (c.as_str(), f.as_str())));
    assert!(
        eval.true_races >= 1,
        "the adapter.data race must be found: {groups:?}"
    );
    assert_eq!(eval.missed, 0);
    // The lifecycle-ordered adapter field must not be reported.
    assert!(
        truth.classify("com.example.NewsActivity", "adapter") == Some(RaceLabel::Ordered)
            && !groups.iter().any(|(_, f)| f == "adapter"),
        "ordered accesses must not be racy pairs: {groups:?}"
    );
    assert_eq!(result.harness_count, 1);
    assert!(result.action_count > 10);
    assert!(result.hb_edges > 0);
    assert!(result.hb_percent() > 0.0 && result.hb_percent() <= 100.0);
}

#[test]
fn figure_2_inter_component_race_is_detected() {
    let (app, truth) = figures::inter_component();
    let result = Sierra::new().analyze_app(app);
    let groups = reported_groups(&result);
    let eval = truth.evaluate(groups.iter().map(|(c, f)| (c.as_str(), f.as_str())));
    assert_eq!(
        eval.missed, 0,
        "both Figure 2 races must be found: {groups:?}"
    );
    assert!(eval.true_races >= 2);
    // The mDB pointer race ranks at app priority with a pointer field.
    let mdb = result
        .races
        .iter()
        .find(|r| result.harness.app.program.field_name(r.field) == "mDB")
        .expect("mDB race reported");
    assert!(mdb.pointer_field);
    assert_eq!(mdb.priority, Priority::App);
}

#[test]
fn figure_8_guarded_pair_is_refuted_but_guard_reported() {
    let (app, truth) = figures::open_sudoku_guard();
    let result = Sierra::new().analyze_app(app);
    let groups = reported_groups(&result);
    assert!(
        !groups.iter().any(|(_, f)| f == "mAccumTime"),
        "refutation must remove the guarded pair: {groups:?}"
    );
    assert!(
        groups.iter().any(|(_, f)| f == "mIsRunning"),
        "the benign guard race itself is still reported: {groups:?}"
    );
    let eval = truth.evaluate(groups.iter().map(|(c, f)| (c.as_str(), f.as_str())));
    assert_eq!(eval.false_positives, 0);
    assert!(result.metrics.refuter.refuted >= 1);
}

#[test]
fn message_guard_is_refuted_by_constant_propagation() {
    let (app, _) = figures::message_guard();
    let result = Sierra::new().analyze_app(app);
    let groups = reported_groups(&result);
    assert!(
        !groups.iter().any(|(_, f)| f == "msgSlot"),
        "what-code guarded pair must refute: {groups:?}"
    );
}

#[test]
fn implicit_dependency_is_reported_as_designed() {
    let (app, truth) = figures::open_manager_implicit();
    let result = Sierra::new().analyze_app(app);
    let groups = reported_groups(&result);
    let eval = truth.evaluate(groups.iter().map(|(c, f)| (c.as_str(), f.as_str())));
    assert_eq!(
        eval.false_positives, 1,
        "SIERRA reports the implicit dep (§6.5): {groups:?}"
    );
}

#[test]
fn action_sensitivity_does_not_increase_racy_pairs() {
    let (app, _) = figures::intra_component();
    let result = Sierra::new().analyze_app(app);
    assert!(
        result.racy_pairs_with_as <= result.racy_pairs_without_as,
        "AS must only remove pairs ({} vs {})",
        result.racy_pairs_with_as,
        result.racy_pairs_without_as
    );
}

#[test]
fn skip_refutation_reports_every_racy_pair() {
    let (app, _) = figures::open_sudoku_guard();
    let config = SierraConfig::builder().skip_refutation().build();
    let with = Sierra::with_config(config).analyze_app(app);
    let (app2, _) = figures::open_sudoku_guard();
    let without = Sierra::new().analyze_app(app2);
    assert!(with.races.len() >= without.races.len());
    assert_eq!(with.races.len(), with.racy_pairs_with_as);
}

#[test]
fn metrics_are_populated() {
    let (app, _) = figures::intra_component();
    let result = Sierra::new().analyze_app(app);
    let t = &result.metrics.timings;
    assert!(t.total >= t.cg_pa);
    assert!(t.total >= t.refutation);
    assert!(t.total.as_nanos() > 0);
    // The stage counters carry through from solver, SHBG, and refuter.
    assert!(result.metrics.pointer.worklist_iterations > 0);
    assert!(result.metrics.pointer.cg_edges > 0);
    assert_eq!(
        result.metrics.pointer.cg_edges,
        result.analysis.cg_edge_count()
    );
    assert!(result.metrics.shbg.total_applications() >= result.metrics.shbg.total_accepted());
    assert_eq!(
        result.metrics.shbg.total_accepted(),
        result.shbg.edges.len()
    );
    assert!(result.metrics.shbg.fixpoint_rounds >= 1);
    assert!(result.metrics.refuter.queries >= result.metrics.refuter.refuted);
}

#[test]
fn staged_session_matches_one_shot_run() {
    let (app, _) = figures::inter_component();
    let one_shot = Sierra::new().analyze_app(app.clone());
    let mut session = Sierra::new().session(app);
    session.harness().expect("harness stage runs");
    session.pointer().expect("pointer stage runs");
    session.shbg().expect("shbg stage runs");
    let n_candidates = session.candidates().expect("candidate stage runs").len();
    let n_kept = session
        .prefilter()
        .expect("prefilter stage runs")
        .kept
        .len();
    let n_pruned = session
        .prefilter()
        .expect("prefilter stage runs")
        .pruned
        .len();
    assert_eq!(n_kept + n_pruned, n_candidates);
    let n_races = session.refute().expect("refute stage runs").len();
    let staged = session.finish().expect("session finishes");
    assert_eq!(staged.racy_pairs_with_as, n_candidates);
    assert_eq!(staged.pruned.len(), n_pruned);
    assert_eq!(staged.races.len(), n_races);
    assert_eq!(staged.racy_pairs_with_as, one_shot.racy_pairs_with_as);
    assert_eq!(staged.racy_pairs_without_as, one_shot.racy_pairs_without_as);
    assert_eq!(staged.races.len(), one_shot.races.len());
    assert_eq!(staged.hb_edges, one_shot.hb_edges);
    assert_eq!(
        staged.metrics.pointer.worklist_iterations,
        one_shot.metrics.pointer.worklist_iterations
    );
}

#[test]
fn race_reports_describe_readably() {
    let (app, _) = figures::inter_component();
    let result = Sierra::new().analyze_app(app);
    let p = &result.harness.app.program;
    for r in &result.races {
        let d = r.describe(p, &result.analysis.actions);
        assert!(d.contains("race on"), "{d}");
    }
}

#[test]
fn display_and_dot_outputs_are_complete() {
    let (app, _) = figures::inter_component();
    let result = Sierra::new().analyze_app(app);
    let text = result.to_string();
    assert!(text.contains("harnesses"));
    assert!(text.contains("after refutation"));
    assert!(text.contains("race on"), "{text}");
    assert!(text.contains("worklist iterations"), "{text}");
    assert!(text.contains("rule applications"), "{text}");
    assert!(text.contains("prefilter:"), "{text}");
    assert!(text.contains("candidate pairs pruned"), "{text}");
    let dot = result.shbg_dot();
    assert!(dot.starts_with("digraph shbg {"));
    assert!(dot.contains("Lifecycle"), "rule labels present");
    assert!(dot.contains("->"));
    assert!(dot.ends_with("}\n"));
}

#[test]
fn refutation_verdicts_are_thread_count_independent() {
    // §5 caching is batch-synchronous, so the refuter must produce
    // byte-identical reports for any worker count. NPR News yields
    // enough candidate pairs to span more than one cache batch.
    let spec = *corpus::TWENTY
        .iter()
        .find(|s| s.name == "NPR News")
        .expect("NPR News in the 20-app dataset");
    let apps = [
        figures::intra_component().0,
        figures::inter_component().0,
        figures::open_sudoku_guard().0,
        corpus::twenty::build_app(spec).0,
    ];
    for app in apps {
        let serial = Sierra::with_config(SierraConfig::builder().refute_jobs(1).build())
            .analyze_app(app.clone());
        let parallel =
            Sierra::with_config(SierraConfig::builder().refute_jobs(8).build()).analyze_app(app);
        assert_eq!(serial.metrics.refute_jobs_used, 1);
        let p = &serial.harness.app.program;
        let describe = |r: &crate::SierraResult| {
            r.races
                .iter()
                .map(|race| {
                    format!(
                        "{:?} [{:?}] {}",
                        race.priority,
                        race.outcome,
                        race.describe(p, &r.analysis.actions)
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(
            describe(&serial),
            describe(&parallel),
            "{}: reports must not depend on --refute-jobs",
            serial.app_name
        );
        let s = &serial.metrics.refuter;
        let par = &parallel.metrics.refuter;
        assert_eq!(
            (
                s.paths,
                s.queries,
                s.refuted,
                s.witnessed,
                s.budget_exhausted,
                s.cache_hits
            ),
            (
                par.paths,
                par.queries,
                par.refuted,
                par.witnessed,
                par.budget_exhausted,
                par.cache_hits
            ),
            "{}: refuter counters must not depend on --refute-jobs",
            serial.app_name
        );
    }
}

#[test]
fn triage_fixture_classifies_each_harm_variant() {
    let (app, truth) = corpus::triage_idioms::triage_idioms_app();
    let result = Sierra::new().analyze_app(app);
    assert!(result.triage_ran);
    let p = &result.harness.app.program;
    // Highest harm reported per field.
    let mut by_field: std::collections::BTreeMap<String, crate::Harm> =
        std::collections::BTreeMap::new();
    for r in &result.races {
        let harm = r.triage.as_ref().expect("triage ran").harm;
        let name = p.field_name(r.field).to_owned();
        by_field
            .entry(name)
            .and_modify(|h| *h = (*h).max(harm))
            .or_insert(harm);
    }
    assert_eq!(
        by_field.get("conn"),
        Some(&crate::Harm::NullDeref),
        "{by_field:?}"
    );
    assert_eq!(
        by_field.get("title"),
        Some(&crate::Harm::UseBeforeInit),
        "{by_field:?}"
    );
    assert_eq!(
        by_field.get("count"),
        Some(&crate::Harm::ValueInconsistency),
        "{by_field:?}"
    );
    assert_eq!(
        by_field.get("done"),
        Some(&crate::Harm::LikelyBenign),
        "{by_field:?}"
    );
    // Ground-truth harm scoring: everything crash-labeled is flagged,
    // nothing else is.
    let verdicts: Vec<(String, String, bool)> = result
        .races
        .iter()
        .map(|r| {
            let f = p.field(r.field);
            (
                p.class_name(f.class).to_owned(),
                p.name(f.name).to_owned(),
                r.triage.as_ref().expect("triage ran").harm.is_crash(),
            )
        })
        .collect();
    let eval = truth.evaluate_harm(
        verdicts
            .iter()
            .map(|(c, f, x)| (c.as_str(), f.as_str(), *x)),
    );
    assert_eq!(eval.precision(), 1.0, "{eval:?}");
    assert_eq!(eval.recall(), 1.0, "{eval:?}");
    // Witnesses carry the reading action and a usable summary.
    for r in &result.races {
        let t = r.triage.as_ref().expect("triage ran");
        assert_eq!(t.witness.field, r.field);
        assert!(!t.witness.summary.is_empty());
    }
}

#[test]
fn min_harm_filters_reports_below_the_threshold() {
    let (app, _) = corpus::triage_idioms::triage_idioms_app();
    let cfg = SierraConfig::builder()
        .min_harm(crate::Harm::UseBeforeInit)
        .build();
    let result = Sierra::with_config(cfg).analyze_app(app);
    assert!(!result.races.is_empty());
    let p = &result.harness.app.program;
    for r in &result.races {
        let harm = r.triage.as_ref().expect("triage ran").harm;
        assert!(
            harm >= crate::Harm::UseBeforeInit,
            "{} classified {harm} must be filtered",
            p.field_name(r.field)
        );
    }
    let fields: Vec<&str> = result.races.iter().map(|r| p.field_name(r.field)).collect();
    assert!(
        fields.contains(&"conn") && fields.contains(&"title"),
        "{fields:?}"
    );
    assert!(
        !fields.contains(&"count") && !fields.contains(&"done"),
        "{fields:?}"
    );
}

#[test]
fn no_triage_restores_unannotated_reports() {
    let (app, _) = corpus::triage_idioms::triage_idioms_app();
    let plain = Sierra::with_config(SierraConfig::builder().no_triage(true).build())
        .analyze_app(app.clone());
    let triaged = Sierra::new().analyze_app(app);
    assert!(!plain.triage_ran);
    let text = plain.to_string();
    assert!(!text.contains("triage:"), "{text}");
    assert!(!text.contains("harm="), "{text}");
    assert_eq!(plain.metrics.triage, crate::TriageStats::default());
    // Modulo the appended annotation, the ranked reports are identical.
    let lines = |r: &crate::SierraResult| {
        let p = &r.harness.app.program;
        r.races
            .iter()
            .map(|race| {
                let d = race.describe(p, &r.analysis.actions);
                d.split(" harm=").next().expect("non-empty").to_owned()
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(lines(&plain), lines(&triaged));
    let annotated = triaged.to_string();
    assert!(annotated.contains("triage:"), "{annotated}");
    assert!(annotated.contains("harm=null-deref"), "{annotated}");
}

#[test]
fn indexed_buffer_idiom_detects_same_slot_race_only() {
    let mut app = android_model::AndroidAppBuilder::new("Idx");
    let mut truth = corpus::GroundTruth::new();
    corpus::Idiom::IndexedBuffer.plant(&mut app, "com.idx.Main", &mut truth);
    let result = Sierra::new().analyze_app(app.finish().unwrap());
    let groups = reported_groups(&result);
    assert!(
        groups.iter().any(|(_, f)| f == "idx1"),
        "same-slot race must be reported: {groups:?}"
    );
    assert!(
        !groups
            .iter()
            .any(|(_, f)| f == "idx2" || f == "idx0" || f == "contents"),
        "distinct slots must not race: {groups:?}"
    );
    let eval = truth.evaluate(groups.iter().map(|(c, f)| (c.as_str(), f.as_str())));
    assert_eq!(eval.missed, 0);
    assert_eq!(eval.false_positives, 0);
}

#[test]
fn reflection_race_needs_resolve_policy() {
    use crate::OpaquePolicy;
    let (app, truth) = corpus::reflection_idioms::reflection_idioms_app();

    let ignored = Sierra::new().analyze_app(app.clone());
    let groups = reported_groups(&ignored);
    let eval = truth.evaluate(groups.iter().map(|(c, f)| (c.as_str(), f.as_str())));
    assert_eq!(
        eval.true_races, 0,
        "reflective race must be invisible under ignore: {groups:?}"
    );

    for policy in [OpaquePolicy::Resolve, OpaquePolicy::Havoc] {
        let cfg = SierraConfig::builder().opaque_policy(policy).build();
        let found = Sierra::with_config(cfg).analyze_app(app.clone());
        let groups = reported_groups(&found);
        let eval = truth.evaluate(groups.iter().map(|(c, f)| (c.as_str(), f.as_str())));
        assert_eq!(
            eval.missed, 0,
            "{policy} must surface the reflective race: {groups:?}"
        );
    }
}

#[test]
fn intent_race_needs_resolve_policy() {
    use crate::OpaquePolicy;
    let (app, truth) = corpus::reflection_idioms::intent_idioms_app();

    let ignored = Sierra::new().analyze_app(app.clone());
    let groups = reported_groups(&ignored);
    let eval = truth.evaluate(groups.iter().map(|(c, f)| (c.as_str(), f.as_str())));
    assert_eq!(
        eval.true_races, 0,
        "intent-launched race must be invisible under ignore: {groups:?}"
    );

    for policy in [OpaquePolicy::Resolve, OpaquePolicy::Havoc] {
        let cfg = SierraConfig::builder().opaque_policy(policy).build();
        let found = Sierra::with_config(cfg).analyze_app(app.clone());
        let groups = reported_groups(&found);
        let eval = truth.evaluate(groups.iter().map(|(c, f)| (c.as_str(), f.as_str())));
        assert_eq!(
            eval.missed, 0,
            "{policy} must surface the intent-launched race: {groups:?}"
        );
    }
}

#[test]
fn soundness_section_renders_only_under_non_ignore_policies() {
    use crate::{OpaquePolicy, Report};
    let (app, _) = corpus::reflection_idioms::reflection_idioms_app();

    let ignored = Sierra::new().analyze_app(app.clone());
    let stable = Report::from_result(&ignored).render_stable();
    assert!(
        !stable.contains("soundness:"),
        "ignore output must match the pre-soundness-modes report: {stable}"
    );
    // The audit still runs and measures the gap ignore leaves.
    assert!(ignored.metrics.soundness.reflective_sites >= 3);

    let cfg = SierraConfig::builder()
        .opaque_policy(OpaquePolicy::Resolve)
        .build();
    let resolved = Sierra::with_config(cfg).analyze_app(app);
    let report = Report::from_result(&resolved);
    let stable = report.render_stable();
    assert!(stable.contains("soundness:"), "{stable}");
    let json = report.render_json().render();
    assert!(json.contains("\"soundness\""), "{json}");
    assert!(
        resolved.metrics.soundness.recall_pct() >= ignored.metrics.soundness.recall_pct(),
        "resolve can only raise callback recall"
    );
}
