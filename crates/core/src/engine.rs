//! The parallel corpus engine.
//!
//! Fans a list of independent analysis jobs across a pool of scoped
//! worker threads (`std::thread::scope`, no dependencies) with a shared
//! atomic work queue. Guarantees:
//!
//! - **deterministic, input-ordered results**: the output vector is
//!   indexed by input position, so scheduling never reorders results —
//!   combined with the analyses' own determinism, `--jobs 8` output is
//!   byte-identical to `--jobs 1`;
//! - **panic isolation**: a job that panics becomes an [`EngineError`]
//!   row; the other workers and the run as a whole survive;
//! - a `jobs = 0` request resolves to the machine's available
//!   parallelism.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A job that died (panicked) inside a worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineError {
    /// The name of the failed work item.
    pub item: String,
    /// The panic payload, when it was a string.
    pub message: String,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: analysis panicked: {}", self.item, self.message)
    }
}

impl std::error::Error for EngineError {}

/// Resolves a `--jobs` request: `0` means "all available cores", and a
/// pool larger than the number of items is clamped.
pub fn effective_jobs(requested: usize, items: usize) -> usize {
    let jobs = if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    };
    jobs.clamp(1, items.max(1))
}

/// Runs `f` over every `(name, input)` item on a pool of `jobs` scoped
/// worker threads and returns the results **in input order**.
///
/// Workers pull items from a shared atomic queue, so large items don't
/// serialize behind a static partition. A panicking item yields an
/// `Err(EngineError)` in its slot; the remaining items still run.
pub fn run_jobs<I, O, F>(jobs: usize, items: Vec<(String, I)>, f: F) -> Vec<Result<O, EngineError>>
where
    I: Send,
    O: Send,
    F: Fn(&str, I) -> O + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let jobs = effective_jobs(jobs, n);
    // Input slots each worker `take`s exactly once, and per-item result
    // slots indexed by input position.
    let slots: Vec<Mutex<Option<(String, I)>>> =
        items.into_iter().map(|it| Mutex::new(Some(it))).collect();
    let results: Vec<Mutex<Option<Result<O, EngineError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let f = &f;

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let (name, input) = slots[i]
                    .lock()
                    .expect("slot lock")
                    .take()
                    .expect("each slot taken once");
                let outcome = catch_unwind(AssertUnwindSafe(|| f(&name, input)));
                let row = match outcome {
                    Ok(out) => Ok(out),
                    Err(payload) => Err(EngineError {
                        item: name,
                        message: panic_message(payload.as_ref()),
                    }),
                };
                *results[i].lock().expect("result lock") = Some(row);
            });
        }
    });

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result lock")
                .expect("worker filled every slot")
        })
        .collect()
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<(String, usize)> = (0..32).map(|i| (format!("item-{i}"), i)).collect();
        // Make early items the slowest so a naive collect-by-completion
        // would reorder them.
        let out = run_jobs(8, items, |_, i| {
            std::thread::sleep(std::time::Duration::from_millis((32 - i as u64) / 8));
            i * 2
        });
        let values: Vec<usize> = out.into_iter().map(|r| r.expect("no panic")).collect();
        assert_eq!(values, (0..32).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn a_panicking_item_does_not_kill_the_run() {
        let items: Vec<(String, usize)> = (0..8).map(|i| (format!("it-{i}"), i)).collect();
        let out = run_jobs(4, items, |_, i| {
            if i == 3 {
                panic!("boom on {i}");
            }
            i
        });
        assert_eq!(out.len(), 8);
        for (i, row) in out.iter().enumerate() {
            if i == 3 {
                let err = row.as_ref().expect_err("item 3 panicked");
                assert_eq!(err.item, "it-3");
                assert!(err.message.contains("boom"), "{err}");
            } else {
                assert_eq!(*row.as_ref().expect("ok"), i);
            }
        }
    }

    #[test]
    fn zero_jobs_resolves_to_available_parallelism() {
        assert!(effective_jobs(0, 100) >= 1);
        assert_eq!(effective_jobs(5, 2), 2, "pool clamped to item count");
        assert_eq!(effective_jobs(3, 100), 3);
        assert_eq!(effective_jobs(1, 0), 1);
    }

    #[test]
    fn single_job_pool_runs_everything() {
        let items: Vec<(String, u64)> = (0..5).map(|i| (i.to_string(), i)).collect();
        let out = run_jobs(1, items, |name, i| format!("{name}:{i}"));
        let values: Vec<String> = out.into_iter().map(|r| r.expect("ok")).collect();
        assert_eq!(values, vec!["0:0", "1:1", "2:2", "3:3", "4:4"]);
    }
}
