//! The unified, serializable analysis report.
//!
//! One [`Report`] value backs every result surface: the CLI's text
//! output ([`Report::render_text`], which `SierraResult`'s `Display`
//! delegates to), the timing-free form the determinism tests compare
//! ([`Report::render_stable`]), and the JSON object the server streams
//! ([`Report::render_json`]). Rendering a report needs no `Program` or
//! `Analysis` — descriptions are resolved when the report is built — so
//! it can cross threads and sockets freely.

use crate::json::{num, obj, Json};
use crate::pipeline::{SierraResult, StageMetrics};
use shbg::HbRule;
use std::time::Duration;

/// A fully-resolved analysis report: every number and description the
/// result surfaces print, independent of the analysis artifacts.
#[derive(Debug, Clone)]
pub struct Report {
    /// The analyzed app's name.
    pub app_name: String,
    /// Number of generated harnesses (activities).
    pub harness_count: usize,
    /// Number of actions (SHBG nodes).
    pub action_count: usize,
    /// Ordered pairs in the transitively-closed SHBG.
    pub hb_edges: usize,
    /// Theoretical maximum ordered pairs.
    pub hb_max: usize,
    /// Candidate racy pairs without action sensitivity.
    pub racy_pairs_without_as: usize,
    /// Candidate racy pairs with action sensitivity.
    pub racy_pairs_with_as: usize,
    /// Ranked race descriptions (one line per surviving race).
    pub race_lines: Vec<String>,
    /// Pruned pairs as `(pair description, verdict description)`.
    pub pruned_lines: Vec<(String, String)>,
    /// Whether the harm-triage stage ran.
    pub triage_ran: bool,
    /// Whether the message-history refutation stage ran.
    pub histories_ran: bool,
    /// Whether the soundness audit is part of the report surface (true
    /// under the `resolve`/`havoc` opaque policies; `ignore` keeps the
    /// pre-soundness-modes output byte-identical).
    pub soundness_audited: bool,
    /// Per-stage timings and counters.
    pub metrics: StageMetrics,
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

impl Report {
    /// Builds the report from a finished result, resolving every race
    /// and pruned-pair description against the result's program.
    pub fn from_result(result: &SierraResult) -> Report {
        let program = &result.harness.app.program;
        let actions = &result.analysis.actions;
        Report {
            app_name: result.app_name.clone(),
            harness_count: result.harness_count,
            action_count: result.action_count,
            hb_edges: result.hb_edges,
            hb_max: result.hb_max,
            racy_pairs_without_as: result.racy_pairs_without_as,
            racy_pairs_with_as: result.racy_pairs_with_as,
            race_lines: result
                .races
                .iter()
                .map(|race| race.describe(program, actions))
                .collect(),
            pruned_lines: result
                .pruned
                .iter()
                .map(|p| {
                    (
                        crate::report::describe_pair(program, actions, &p.a, &p.b),
                        p.verdict.describe(program),
                    )
                })
                .collect(),
            triage_ran: result.triage_ran,
            histories_ran: result.histories_ran,
            soundness_audited: result.analysis.options.opaque_policy
                != pointer::OpaquePolicy::Ignore,
            metrics: result.metrics,
        }
    }

    /// Fraction of the theoretical maximum HB edges found.
    pub fn hb_percent(&self) -> f64 {
        if self.hb_max == 0 {
            0.0
        } else {
            100.0 * self.hb_edges as f64 / self.hb_max as f64
        }
    }

    /// The complete human-readable report (the CLI's `analyze` format).
    pub fn render_text(&self) -> String {
        self.render(true)
    }

    /// The report with every wall-clock-dependent part removed (no
    /// `stages:` line, no triage milliseconds): byte-identical across
    /// runs of identical inputs, so cold-vs-warm and determinism tests
    /// compare this form.
    pub fn render_stable(&self) -> String {
        self.render(false)
    }

    fn render(&self, with_timings: bool) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}: {} harnesses, {} actions, {} HB edges ({:.1}% of max)",
            self.app_name,
            self.harness_count,
            self.action_count,
            self.hb_edges,
            self.hb_percent()
        );
        let _ = writeln!(
            out,
            "racy pairs: {} (without action-sensitivity: {}); {} race(s) after refutation",
            self.racy_pairs_with_as,
            self.racy_pairs_without_as,
            self.race_lines.len()
        );
        let t = &self.metrics.timings;
        if with_timings {
            let _ = writeln!(
                out,
                "stages: harness {:.2} ms, CG+PA {:.2} ms, HBG {:.2} ms, prefilter {:.2} ms, refutation {:.2} ms, compare {:.2} ms ({}), total {:.2} ms",
                ms(t.harness),
                ms(t.cg_pa),
                ms(t.hbg),
                ms(t.prefilter),
                ms(t.refutation),
                ms(t.compare),
                if self.metrics.compare_overlapped {
                    "overlapped"
                } else {
                    "serial"
                },
                ms(t.total)
            );
        }
        let pa = &self.metrics.pointer;
        let _ = writeln!(
            out,
            "pointer: {} worklist iterations, {} propagations, {} CG edges, {} contexts, {} objects, {} pts-set bytes, {} SCC(s) collapsed ({} node(s)), {} worklist",
            pa.worklist_iterations,
            pa.propagations,
            pa.cg_edges,
            pa.reachable_contexts,
            pa.abstract_objects,
            pa.pts_set_bytes,
            pa.collapsed_sccs,
            pa.collapsed_nodes,
            pa.worklist_policy
        );
        let hb = &self.metrics.shbg;
        let _ = write!(out, "shbg: {} rule applications (", hb.total_applications());
        for (i, rule) in HbRule::ALL.iter().enumerate() {
            if i > 0 {
                let _ = write!(out, ", ");
            }
            let _ = write!(
                out,
                "{} {}",
                rule.short_name(),
                hb.applications[rule.index()]
            );
        }
        let _ = writeln!(
            out,
            "), {} fixpoint rounds, {} closure SCCs",
            hb.fixpoint_rounds, hb.closure_sccs
        );
        let pf = &self.metrics.prefilter;
        let _ = writeln!(
            out,
            "prefilter: {} of {} candidate pairs pruned (escape {}, guarded {}, constprop {}), {} infeasible branch edges",
            pf.pruned_total(),
            self.racy_pairs_with_as,
            pf.pruned_escape,
            pf.pruned_guarded,
            pf.pruned_constprop,
            pf.infeasible_edges
        );
        let rf = &self.metrics.refuter;
        let _ = writeln!(
            out,
            "refuter: {} paths over {} queries ({} refuted, {} witnessed, {} budget-exhausted, {} cache hits, {} worker(s))",
            rf.paths,
            rf.queries,
            rf.refuted,
            rf.witnessed,
            rf.budget_exhausted,
            rf.cache_hits,
            self.metrics.refute_jobs_used
        );
        // Only emitted when the stage ran, so `--no-histories` output
        // stays byte-identical to the histories-free pipeline.
        if self.histories_ran {
            let hs = &self.metrics.histories;
            let _ = write!(
                out,
                "histories: {} of {} pair(s) discharged (unregistered {}, destroy {}, pause {}), {} automaton states / {} edges over {} component(s), {} product edges, {} dead callback(s), {} infeasible edges exported",
                hs.discharged_total(),
                hs.pairs_checked,
                hs.discharged_unregistered,
                hs.discharged_destroy,
                hs.discharged_pause,
                hs.automaton_states,
                hs.automaton_edges,
                hs.components,
                hs.product_edges,
                hs.dead_callbacks,
                hs.infeasible_exported,
            );
            if with_timings {
                let _ = write!(out, ", {:.2} ms", ms(self.metrics.timings.histories));
            }
            out.push('\n');
        }
        // Only emitted when the stage ran, so `--no-triage` output stays
        // byte-identical to the pre-triage pipeline.
        if self.triage_ran {
            let tg = &self.metrics.triage;
            let _ = write!(
                out,
                "triage: {} race(s) classified ({} null-deref, {} use-before-init, {} value-inconsistency, {} likely-benign), {} dataflow iterations over {} method(s)",
                tg.classified,
                tg.null_deref,
                tg.use_before_init,
                tg.value_inconsistency,
                tg.likely_benign,
                tg.dataflow_iterations,
                tg.methods_analyzed,
            );
            if with_timings {
                let _ = write!(out, ", {:.2} ms", ms(self.metrics.timings.triage));
            }
            out.push('\n');
        }
        // Only emitted under `resolve`/`havoc`, so `--opaque-policy
        // ignore` output stays byte-identical to the pre-soundness-modes
        // pipeline.
        if self.soundness_audited {
            let sn = &self.metrics.soundness;
            let _ = writeln!(
                out,
                "soundness: {:.1}% callback recall ({} of {} reachable), {} unresolved site(s) (reflective {}, intent {}, bodyless-framework {}, no-receiver-targets {})",
                sn.recall_pct(),
                sn.reachable_callbacks,
                sn.known_callbacks,
                sn.unresolved_sites,
                sn.reflective_sites,
                sn.intent_sites,
                sn.bodyless_framework_sites,
                sn.no_receiver_sites,
            );
        }
        for (i, line) in self.race_lines.iter().enumerate() {
            let _ = writeln!(out, "{:>3}. {}", i + 1, line);
        }
        for (pair, reason) in &self.pruned_lines {
            let _ = writeln!(out, "  – pruned: {pair} [{reason}]");
        }
        out
    }

    /// The report as a structured JSON object (the serve protocol's
    /// `report` payload; also the bench/tables serialization base).
    ///
    /// Two groups describe the *run* rather than the result and so
    /// legitimately differ between a cold and a warm analysis:
    /// `timings_ms` (wall clock) and `link` (store-reuse telemetry).
    /// Clients comparing reports for identity should drop both.
    pub fn render_json(&self) -> Json {
        let t = &self.metrics.timings;
        let pa = &self.metrics.pointer;
        let hb = &self.metrics.shbg;
        let pf = &self.metrics.prefilter;
        let rf = &self.metrics.refuter;
        let hs = &self.metrics.histories;
        let tg = &self.metrics.triage;
        let link = &self.metrics.link;
        let mut fields = vec![
            ("app", Json::Str(self.app_name.clone())),
            ("harnesses", num(self.harness_count)),
            ("actions", num(self.action_count)),
            ("hb_edges", num(self.hb_edges)),
            ("hb_max", num(self.hb_max)),
            ("hb_percent", Json::Num(self.hb_percent())),
            ("racy_pairs_with_as", num(self.racy_pairs_with_as)),
            ("racy_pairs_without_as", num(self.racy_pairs_without_as)),
            (
                "races",
                Json::Arr(self.race_lines.iter().cloned().map(Json::Str).collect()),
            ),
            (
                "pruned",
                Json::Arr(
                    self.pruned_lines
                        .iter()
                        .map(|(pair, reason)| {
                            obj(vec![
                                ("pair", Json::Str(pair.clone())),
                                ("reason", Json::Str(reason.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("triage_ran", Json::Bool(self.triage_ran)),
            ("histories_ran", Json::Bool(self.histories_ran)),
            (
                "pointer",
                obj(vec![
                    ("worklist_iterations", num(pa.worklist_iterations)),
                    ("propagations", num(pa.propagations)),
                    ("cg_edges", num(pa.cg_edges)),
                    ("contexts", num(pa.reachable_contexts)),
                    ("objects", num(pa.abstract_objects)),
                    ("pts_set_bytes", num(pa.pts_set_bytes)),
                ]),
            ),
            (
                "shbg",
                obj(vec![
                    ("rule_applications", num(hb.total_applications())),
                    ("accepted", num(hb.total_accepted())),
                    ("fixpoint_rounds", num(hb.fixpoint_rounds)),
                    ("closure_sccs", num(hb.closure_sccs)),
                ]),
            ),
            (
                "prefilter",
                obj(vec![
                    ("pruned_escape", num(pf.pruned_escape)),
                    ("pruned_guarded", num(pf.pruned_guarded)),
                    ("pruned_constprop", num(pf.pruned_constprop)),
                    ("infeasible_edges", num(pf.infeasible_edges)),
                ]),
            ),
            (
                "refuter",
                obj(vec![
                    ("paths", num(rf.paths)),
                    ("queries", num(rf.queries)),
                    ("refuted", num(rf.refuted)),
                    ("witnessed", num(rf.witnessed)),
                    ("budget_exhausted", num(rf.budget_exhausted)),
                    ("cache_hits", num(rf.cache_hits)),
                    ("workers", num(self.metrics.refute_jobs_used)),
                ]),
            ),
            (
                "histories",
                obj(vec![
                    ("automaton_states", num(hs.automaton_states)),
                    ("automaton_edges", num(hs.automaton_edges)),
                    ("components", num(hs.components)),
                    ("pairs_checked", num(hs.pairs_checked)),
                    ("product_edges", num(hs.product_edges)),
                    ("discharged_unregistered", num(hs.discharged_unregistered)),
                    ("discharged_destroy", num(hs.discharged_destroy)),
                    ("discharged_pause", num(hs.discharged_pause)),
                    ("dead_callbacks", num(hs.dead_callbacks)),
                    ("infeasible_exported", num(hs.infeasible_exported)),
                ]),
            ),
            (
                "triage",
                obj(vec![
                    ("classified", num(tg.classified)),
                    ("null_deref", num(tg.null_deref)),
                    ("use_before_init", num(tg.use_before_init)),
                    ("value_inconsistency", num(tg.value_inconsistency)),
                    ("likely_benign", num(tg.likely_benign)),
                ]),
            ),
            (
                "link",
                obj(vec![
                    ("summaries_reused", num(link.summaries_reused)),
                    ("summaries_recomputed", num(link.summaries_recomputed)),
                    ("analysis_reused", Json::Bool(link.analysis_reused)),
                    ("pointer_iterations_run", num(link.pointer_iterations_run)),
                ]),
            ),
            (
                "timings_ms",
                obj(vec![
                    ("harness", Json::Num(ms(t.harness))),
                    ("cg_pa", Json::Num(ms(t.cg_pa))),
                    ("hbg", Json::Num(ms(t.hbg))),
                    ("prefilter", Json::Num(ms(t.prefilter))),
                    ("refutation", Json::Num(ms(t.refutation))),
                    ("histories", Json::Num(ms(t.histories))),
                    ("triage", Json::Num(ms(t.triage))),
                    ("compare", Json::Num(ms(t.compare))),
                    ("total", Json::Num(ms(t.total))),
                ]),
            ),
        ];
        // Key present only under `resolve`/`havoc` — `ignore` JSON stays
        // byte-identical to the pre-soundness-modes payload.
        if self.soundness_audited {
            let sn = &self.metrics.soundness;
            fields.push((
                "soundness",
                obj(vec![
                    ("known_callbacks", num(sn.known_callbacks)),
                    ("reachable_callbacks", num(sn.reachable_callbacks)),
                    ("recall_pct", Json::Num(sn.recall_pct())),
                    ("unresolved_sites", num(sn.unresolved_sites)),
                    ("reflective_sites", num(sn.reflective_sites)),
                    ("intent_sites", num(sn.intent_sites)),
                    ("bodyless_framework_sites", num(sn.bodyless_framework_sites)),
                    ("no_receiver_sites", num(sn.no_receiver_sites)),
                ]),
            ));
        }
        obj(fields)
    }
}
