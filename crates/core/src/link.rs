//! The linking pass: recombines per-method summaries into the
//! whole-program inputs each stage consumes.
//!
//! Linking is deliberately cheap — map construction and hashing, no
//! analysis. The division of labor is:
//!
//! 1. [`crate::summary::load_or_summarize`] produces one summary per
//!    method, pulling unchanged methods from the store and recomputing
//!    only methods whose content key misses (i.e. whose body changed);
//! 2. [`LinkedSummaries`] recombines them: a dominance map for the SHBG,
//!    const facts for the prefilter, access sites for the candidate
//!    stage, and the **analysis key** — the hash of all pointer digests
//!    — under which the whole points-to `Analysis` is cached;
//! 3. the session replays only what the changed inputs require: an
//!    analysis-key hit skips the solver outright (zero worklist
//!    iterations), and the remaining stages are deterministic functions
//!    of the reused artifacts, so cold and warm runs are byte-identical.

use crate::summary::MethodSummary;
use apir::MethodId;
use pointer::{AccessSite, Analysis, Fnv64};
use prefilter::constprop::ConstFacts;
use shbg::CallDominance;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Work counters of the linking pass, reported in
/// [`crate::StageMetrics`] and asserted by the summary-reuse tests and
/// the `summary_reuse` bench gate. Excluded from the stable report
/// rendering: reuse changes work done, never results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Summaries served from the store (unchanged methods).
    pub summaries_reused: usize,
    /// Summaries recomputed (changed or first-seen methods).
    pub summaries_recomputed: usize,
    /// Summaries served from the corpus-shared framework layer (see
    /// [`crate::summary::load_or_summarize`]); disjoint from
    /// `summaries_reused`, which counts only per-app store hits.
    pub summaries_shared: usize,
    /// Whether the whole points-to `Analysis` artifact was reused.
    pub analysis_reused: bool,
    /// Solver worklist iterations actually run this session (zero on an
    /// analysis-artifact hit).
    pub pointer_iterations_run: usize,
    /// Store lookups this session that found an entry but could not
    /// parse it (torn/truncated/version-mismatched cache files); each
    /// corrupt entry costs one recomputation, never correctness.
    pub corrupt_misses: usize,
    /// Store entries evicted this session to enforce `--cache-max-mb`.
    pub evictions: usize,
}

/// Per-method summaries linked for one program + config, with the
/// recombination views the downstream stages consume.
#[derive(Debug)]
pub struct LinkedSummaries {
    /// One summary per method with a body, in method-id order.
    pub methods: Vec<(MethodId, Arc<MethodSummary>)>,
    /// The program's structural fingerprint.
    pub structural_fp: u64,
    /// The config fingerprint the summaries were keyed with.
    pub config_fp: u64,
}

impl LinkedSummaries {
    /// The cache key of the whole points-to `Analysis`: structural and
    /// config fingerprints plus every method's pointer digest in id
    /// order. Methods whose digests all match a previous run build the
    /// identical constraint graph, so the artifact is interchangeable.
    pub fn analysis_key(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(self.structural_fp).write_u64(self.config_fp);
        for (id, s) in &self.methods {
            h.write_u64(u64::from(id.0)).write_u64(s.pointer_digest);
        }
        h.finish()
    }

    /// Dominance facts keyed by method, for
    /// [`shbg::build_with_dominance`].
    pub fn dominance_map(&self) -> HashMap<MethodId, CallDominance> {
        self.methods
            .iter()
            .map(|(id, s)| (*id, s.dominance.clone()))
            .collect()
    }

    /// Access sites keyed by method, for
    /// [`pointer::collect_accesses_from_sites`].
    pub fn sites_map(&self) -> HashMap<MethodId, Vec<AccessSite>> {
        self.methods
            .iter()
            .map(|(id, s)| (*id, s.sites.clone()))
            .collect()
    }

    /// Constant-propagation facts for the methods reachable in
    /// `analysis`, replicating [`prefilter::constprop::analyze_reachable`]
    /// exactly (reachable methods only, empty fact sets omitted) so the
    /// prefilter's verdicts and infeasible-edge export are identical to
    /// the non-summary path.
    pub fn const_facts_for(&self, analysis: &Analysis) -> HashMap<MethodId, ConstFacts> {
        let reachable: HashSet<MethodId> = analysis.reachable.iter().map(|&(m, _)| m).collect();
        let mut out = HashMap::new();
        for (id, s) in &self.methods {
            if !reachable.contains(id) {
                continue;
            }
            if s.consts.infeasible.is_empty() && s.consts.dead_blocks.is_empty() {
                continue;
            }
            out.insert(*id, s.consts.clone());
        }
        out
    }
}
