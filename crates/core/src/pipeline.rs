//! The end-to-end SIERRA pipeline (Figure 3).
//!
//! `app → harness generation → pointer analysis (action-sensitive) →
//! SHBG → racy pairs → symbolic refutation → prioritized race reports`,
//! with per-stage wall-clock timings for the efficiency tables.

use crate::report::{priority_of, RaceReport};
use android_model::AndroidApp;
use harness_gen::HarnessResult;
use pointer::{collect_accesses, Access, Analysis, SelectorKind};
use shbg::Shbg;
use std::collections::HashMap;
use std::time::{Duration, Instant};
use symexec::{Outcome, Refuter, RefuterConfig, RefuterStats};

/// Pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct SierraConfig {
    /// Context-sensitivity for the main run (default: action-sensitive).
    pub selector: SelectorKind,
    /// Refutation knobs.
    pub refuter: RefuterConfig,
    /// Also run a non-action-sensitive pass to report "racy pairs w/o AS"
    /// (Table 3, column 6). The comparison selector is hybrid with the
    /// same k.
    pub compare_without_as: bool,
    /// Skip the refutation stage (reports every racy pair; used by
    /// ablations).
    pub skip_refutation: bool,
}

impl Default for SierraConfig {
    fn default() -> Self {
        Self {
            selector: SelectorKind::ActionSensitive(1),
            refuter: RefuterConfig::default(),
            compare_without_as: true,
            skip_refutation: false,
        }
    }
}

/// Wall-clock time of each pipeline stage (Table 4).
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// Harness generation.
    pub harness: Duration,
    /// Call-graph + pointer analysis ("CG+PA").
    pub cg_pa: Duration,
    /// SHBG construction ("HBG").
    pub hbg: Duration,
    /// Symbolic-execution refutation.
    pub refutation: Duration,
    /// End-to-end.
    pub total: Duration,
}

/// The result of analyzing one app.
#[derive(Debug)]
pub struct SierraResult {
    /// The analyzed app's name.
    pub app_name: String,
    /// Number of generated harnesses (activities).
    pub harness_count: usize,
    /// Number of actions (SHBG nodes).
    pub action_count: usize,
    /// Ordered pairs in the transitively-closed SHBG ("HB edges").
    pub hb_edges: usize,
    /// Theoretical maximum ordered pairs (per-harness `n·(n−1)/2` summed).
    pub hb_max: usize,
    /// Candidate racy pairs without action sensitivity (0 when the
    /// comparison pass is disabled).
    pub racy_pairs_without_as: usize,
    /// Candidate racy pairs with action sensitivity.
    pub racy_pairs_with_as: usize,
    /// Races surviving refutation, ranked by priority.
    pub races: Vec<RaceReport>,
    /// Refuter statistics.
    pub refuter_stats: RefuterStats,
    /// Per-stage timings.
    pub timings: StageTimings,
    /// The main (action-sensitive) analysis, for downstream inspection.
    pub analysis: Analysis,
    /// The SHBG.
    pub shbg: Shbg,
    /// The harnessed app.
    pub harness: HarnessResult,
}

impl SierraResult {
    /// Fraction of the theoretical maximum HB edges found (Table 3 col 5).
    pub fn hb_percent(&self) -> f64 {
        if self.hb_max == 0 {
            0.0
        } else {
            100.0 * self.hb_edges as f64 / self.hb_max as f64
        }
    }

    /// Renders a complete human-readable report: summary line, stage
    /// timings, and the ranked race list (the tool's CLI output format).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}: {} harnesses, {} actions, {} HB edges ({:.1}% of max)",
            self.app_name,
            self.harness_count,
            self.action_count,
            self.hb_edges,
            self.hb_percent()
        );
        let _ = writeln!(
            out,
            "racy pairs: {} (without action-sensitivity: {}); {} race(s) after refutation",
            self.racy_pairs_with_as,
            self.racy_pairs_without_as,
            self.races.len()
        );
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        let _ = writeln!(
            out,
            "stages: harness {:.2} ms, CG+PA {:.2} ms, HBG {:.2} ms, refutation {:.2} ms, total {:.2} ms",
            ms(self.timings.harness),
            ms(self.timings.cg_pa),
            ms(self.timings.hbg),
            ms(self.timings.refutation),
            ms(self.timings.total)
        );
        let program = &self.harness.app.program;
        for (i, race) in self.races.iter().enumerate() {
            let _ =
                writeln!(out, "{:>3}. {}", i + 1, race.describe(program, &self.analysis.actions));
        }
        out
    }

    /// The SHBG in Graphviz DOT format with readable action labels.
    pub fn shbg_dot(&self) -> String {
        self.shbg.to_dot(|a| crate::report::describe_action(&self.analysis.actions, a))
    }
}

/// The SIERRA detector.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sierra {
    /// Pipeline configuration.
    pub config: SierraConfig,
}

impl Sierra {
    /// Creates a detector with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a detector with the given configuration.
    pub fn with_config(config: SierraConfig) -> Self {
        Self { config }
    }

    /// Runs the full pipeline on an app.
    pub fn analyze_app(&self, app: AndroidApp) -> SierraResult {
        let t0 = Instant::now();
        let app_name = app.name.clone();

        // Stage 1: harness generation (§3.2).
        let harness = harness_gen::generate(app);
        let t_harness = t0.elapsed();

        // Stage 2: call graph + pointer analysis (§3.3).
        let t1 = Instant::now();
        let analysis = pointer::analyze(&harness, self.config.selector);
        let t_cg_pa = t1.elapsed();

        // Stage 3: SHBG (§4).
        let t2 = Instant::now();
        let graph = shbg::build(&analysis, &harness);
        let t_hbg = t2.elapsed();

        // Racy pairs with action sensitivity.
        let accesses = collect_accesses(&analysis, &harness.app.program, Some(harness.harness_class));
        let deduped = dedupe(accesses);
        let racy = racy_pairs(&deduped, &analysis, &graph);
        let racy_pairs_with_as = racy.len();

        // Comparison pass without action sensitivity (Table 3 col 6).
        let racy_pairs_without_as = if self.config.compare_without_as {
            let plain = match self.config.selector {
                SelectorKind::ActionSensitive(k) => SelectorKind::Hybrid(k),
                other => other,
            };
            let analysis2 = pointer::analyze(&harness, plain);
            let graph2 = shbg::build(&analysis2, &harness);
            let accesses2 =
                collect_accesses(&analysis2, &harness.app.program, Some(harness.harness_class));
            racy_pairs(&dedupe(accesses2), &analysis2, &graph2).len()
        } else {
            0
        };

        // Stage 4: refutation (§5) + prioritization (§3.1).
        let t3 = Instant::now();
        let mut refuter = Refuter::new(&analysis, &harness.app.program, self.config.refuter)
            .with_message_model(harness.app.framework.message_what);
        let mut races: Vec<RaceReport> = Vec::new();
        for &(a, b) in &racy {
            let outcome = if self.config.skip_refutation {
                Outcome::Budget
            } else {
                refuter.refute_pair(a, b)
            };
            if outcome == Outcome::Refuted {
                continue;
            }
            let field = a.field;
            let pointer_field =
                harness.app.program.field(field).ty.is_reference();
            let priority = priority_of(&harness.app.program, a, b);
            races.push(RaceReport {
                a: a.clone(),
                b: b.clone(),
                field,
                outcome,
                priority,
                pointer_field,
            });
        }
        races.sort_by_key(|r| r.rank_key());
        let refuter_stats = refuter.stats;
        let t_refutation = t3.elapsed();

        // Theoretical maximum of ordered pairs: the paper's `N·(N−1)/2`
        // over all of the app's actions (cross-harness pairs included in
        // the denominator even though our model never orders them).
        let n = analysis.actions.len();
        let hb_max = n * n.saturating_sub(1) / 2;

        SierraResult {
            app_name,
            harness_count: harness.harness_count(),
            action_count: analysis.actions.len(),
            hb_edges: graph.ordered_pair_count(),
            hb_max,
            racy_pairs_without_as,
            racy_pairs_with_as,
            races,
            refuter_stats,
            timings: StageTimings {
                harness: t_harness,
                cg_pa: t_cg_pa,
                hbg: t_hbg,
                refutation: t_refutation,
                total: t0.elapsed(),
            },
            analysis,
            shbg: graph,
            harness,
        }
    }
}

/// Deduplicates accesses to one representative per `(action, addr)`.
fn dedupe(accesses: Vec<Access>) -> Vec<Access> {
    let mut seen: HashMap<(android_model::ActionId, apir::StmtAddr), Access> = HashMap::new();
    for a in accesses {
        seen.entry((a.action, a.addr))
            .and_modify(|e| {
                // Merge base points-to across contexts of the same action.
                for o in &a.base {
                    if !e.base.contains(o) {
                        e.base.push(*o);
                    }
                }
            })
            .or_insert(a);
    }
    let mut out: Vec<Access> = seen.into_values().collect();
    out.sort_by_key(|a| (a.addr, a.action));
    out
}

/// Candidate racy pairs: same harness, different unordered actions,
/// overlapping locations, at least one write (§4.1).
fn racy_pairs<'a>(
    accesses: &'a [Access],
    analysis: &Analysis,
    graph: &Shbg,
) -> Vec<(&'a Access, &'a Access)> {
    // Group by field: only same-field accesses can overlap.
    let mut by_field: HashMap<apir::FieldId, Vec<&Access>> = HashMap::new();
    for a in accesses {
        by_field.entry(a.field).or_default().push(a);
    }
    let mut out = Vec::new();
    for group in by_field.values() {
        for i in 0..group.len() {
            for j in i + 1..group.len() {
                let (a, b) = (group[i], group[j]);
                if a.action == b.action {
                    continue;
                }
                if !(a.is_write || b.is_write) {
                    continue;
                }
                let (ha, hb) = (
                    analysis.actions.action(a.action).harness,
                    analysis.actions.action(b.action).harness,
                );
                if ha != hb {
                    continue; // races are detected per harness
                }
                if !a.overlaps(b) {
                    continue;
                }
                if !graph.unordered(a.action, b.action) {
                    continue;
                }
                out.push((a, b));
            }
        }
    }
    out.sort_by_key(|(a, b)| (a.addr, b.addr, a.action, b.action));
    out
}
