//! The end-to-end SIERRA pipeline (Figure 3).
//!
//! `app → harness generation → pointer analysis (action-sensitive) →
//! SHBG → racy pairs → symbolic refutation → prioritized race reports`.
//!
//! The pipeline is staged: [`crate::AnalysisSession`] exposes each stage
//! (`harness → pointer → shbg → candidates → refute`) so drivers can stop
//! early, share a generated harness across passes, or collect per-stage
//! [`StageMetrics`]. [`Sierra::analyze_app`] remains the one-shot
//! entry point and is a thin wrapper over a session.

use crate::link::LinkStats;
use crate::report::RaceReport;
use crate::session::{AnalysisSession, Stage};
use android_model::AndroidApp;
use harness_gen::HarnessResult;
use histories::HistoryStats;
use pointer::{Analysis, AnalysisOptions, OpaquePolicy, SelectorKind, SolverStats, WorklistPolicy};
use prefilter::{PrefilterStats, PrunedPair};
use shbg::{Shbg, ShbgStats};
use soundness::SoundnessStats;
use std::sync::Arc;
use std::time::Duration;
use symexec::{RefuterConfig, RefuterStats};

/// Pipeline configuration. Construct with [`SierraConfig::builder`].
#[derive(Debug, Clone, Copy)]
pub struct SierraConfig {
    /// Context-sensitivity for the main run (default: action-sensitive).
    pub selector: SelectorKind,
    /// Refutation knobs.
    pub refuter: RefuterConfig,
    /// Also run a non-action-sensitive pass to report "racy pairs w/o AS"
    /// (Table 3, column 6). The comparison selector is hybrid with the
    /// same k.
    pub compare_without_as: bool,
    /// Skip the refutation stage (reports every racy pair; used by
    /// ablations). Implies `no_prefilter`: ablations count raw
    /// candidates.
    pub skip_refutation: bool,
    /// Disable the pre-refutation static pruning stage (escape, guard,
    /// and constant-branch analyses), restoring the old
    /// `candidates → refute` pipeline for A/B measurement.
    pub no_prefilter: bool,
    /// Worker threads for the refutation stage (`0` = all cores,
    /// default `1` = serial). Verdicts are thread-count-independent:
    /// any value produces byte-identical race reports.
    pub refute_jobs: usize,
    /// Pointer-analysis options for the main pass (cycle collapse,
    /// worklist policy, index sensitivity). The comparison pass inherits
    /// them, so an ablation flips both runs together.
    pub pointer_options: AnalysisOptions,
    /// Run the comparison pass (`compare_without_as`) concurrently with
    /// the refutation stage instead of serially after it, hiding its
    /// full PA+SHBG+candidates latency behind symbolic execution. The
    /// comparison result is a deterministic count computed from shared
    /// immutable inputs, so overlapping cannot change any output.
    pub overlap_compare: bool,
    /// Disable the post-refutation harm-triage stage (the `--no-triage`
    /// ablation). Race reports then carry no harm annotation and every
    /// output is byte-identical to the pre-triage pipeline.
    pub no_triage: bool,
    /// Disable the message-history refutation stage (the
    /// `--no-histories` ablation), restoring the `refute → triage`
    /// pipeline byte-identically. The stage is also skipped under
    /// `skip_refutation`, whose ablations count raw pairs.
    pub no_histories: bool,
    /// Drop reports classified below this harm level (`--min-harm`).
    /// `None` keeps everything. Ignored under `no_triage`, which never
    /// classifies.
    pub min_harm: Option<triage::Harm>,
    /// Disable persisting/loading serialized `Analysis` artifact blobs
    /// (the `--no-artifact-cache` ablation). In-memory artifact reuse
    /// and summary files are unaffected. Cache plumbing never enters
    /// the config fingerprint, so flipping this cannot change keys.
    pub no_artifact_cache: bool,
}

impl Default for SierraConfig {
    fn default() -> Self {
        Self {
            selector: SelectorKind::ActionSensitive(1),
            refuter: RefuterConfig::default(),
            compare_without_as: true,
            skip_refutation: false,
            no_prefilter: false,
            refute_jobs: 1,
            pointer_options: AnalysisOptions::default(),
            overlap_compare: true,
            no_triage: false,
            no_histories: false,
            min_harm: None,
            no_artifact_cache: false,
        }
    }
}

impl SierraConfig {
    /// Starts a builder from the default configuration.
    pub fn builder() -> SierraConfigBuilder {
        SierraConfigBuilder::default()
    }
}

/// Fluent builder for [`SierraConfig`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SierraConfigBuilder {
    cfg: SierraConfig,
}

impl SierraConfigBuilder {
    /// Sets the context selector for the main pass.
    pub fn selector(mut self, selector: SelectorKind) -> Self {
        self.cfg.selector = selector;
        self
    }

    /// Sets the refuter configuration.
    pub fn refuter(mut self, refuter: RefuterConfig) -> Self {
        self.cfg.refuter = refuter;
        self
    }

    /// Sets the refuter path budget, keeping the other refuter knobs.
    pub fn refuter_budget(mut self, max_paths: usize) -> Self {
        self.cfg.refuter.max_paths = max_paths;
        self
    }

    /// Enables or disables the comparison pass without action sensitivity.
    pub fn compare_without_as(mut self, yes: bool) -> Self {
        self.cfg.compare_without_as = yes;
        self
    }

    /// Disables the refutation stage.
    pub fn skip_refutation(mut self) -> Self {
        self.cfg.skip_refutation = true;
        self
    }

    /// Enables or disables the pre-refutation static pruning stage.
    pub fn no_prefilter(mut self, yes: bool) -> Self {
        self.cfg.no_prefilter = yes;
        self
    }

    /// Sets the refutation worker-pool size (`0` = all cores).
    pub fn refute_jobs(mut self, jobs: usize) -> Self {
        self.cfg.refute_jobs = jobs;
        self
    }

    /// Replaces the pointer-analysis options wholesale.
    pub fn pointer_options(mut self, options: AnalysisOptions) -> Self {
        self.cfg.pointer_options = options;
        self
    }

    /// Disables (or re-enables) online cycle collapse in the solver
    /// (the `--no-cycle-collapse` ablation).
    pub fn no_cycle_collapse(mut self, yes: bool) -> Self {
        self.cfg.pointer_options.cycle_collapse = !yes;
        self
    }

    /// Sets the solver's worklist scheduling policy.
    pub fn worklist_policy(mut self, policy: WorklistPolicy) -> Self {
        self.cfg.pointer_options.worklist = policy;
        self
    }

    /// Sets the opaque-call soundness policy (reflection and intent
    /// dispatch): `ignore` (default), `resolve`, or `havoc`.
    pub fn opaque_policy(mut self, policy: OpaquePolicy) -> Self {
        self.cfg.pointer_options.opaque_policy = policy;
        self
    }

    /// Enables or disables overlapping the comparison pass with
    /// refutation.
    pub fn overlap_compare(mut self, yes: bool) -> Self {
        self.cfg.overlap_compare = yes;
        self
    }

    /// Disables (or re-enables) the post-refutation harm-triage stage.
    pub fn no_triage(mut self, yes: bool) -> Self {
        self.cfg.no_triage = yes;
        self
    }

    /// Disables (or re-enables) the message-history refutation stage.
    pub fn no_histories(mut self, yes: bool) -> Self {
        self.cfg.no_histories = yes;
        self
    }

    /// Drops reports triaged below `level` (no-op under `no_triage`).
    pub fn min_harm(mut self, level: triage::Harm) -> Self {
        self.cfg.min_harm = Some(level);
        self
    }

    /// Disables (or re-enables) durable `Analysis` artifact blobs (the
    /// `--no-artifact-cache` ablation).
    pub fn no_artifact_cache(mut self, yes: bool) -> Self {
        self.cfg.no_artifact_cache = yes;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> SierraConfig {
        self.cfg
    }
}

/// Wall-clock time of each pipeline stage (Table 4).
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// Harness generation.
    pub harness: Duration,
    /// Call-graph + pointer analysis ("CG+PA").
    pub cg_pa: Duration,
    /// SHBG construction ("HBG").
    pub hbg: Duration,
    /// Pre-refutation static pruning.
    pub prefilter: Duration,
    /// Symbolic-execution refutation.
    pub refutation: Duration,
    /// Message-history refutation (automaton build + product checks).
    pub histories: Duration,
    /// Post-refutation harm triage.
    pub triage: Duration,
    /// The comparison pass (`racy pairs w/o AS`), whether it ran
    /// overlapped with refutation or serially after it.
    pub compare: Duration,
    /// End-to-end.
    pub total: Duration,
}

/// Per-stage wall-clock timings plus the work counters each stage
/// recorded: points-to worklist iterations and call-graph size from the
/// solver, HB-rule application counts from SHBG construction, and path
/// budgets from the refuter.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageMetrics {
    /// Wall-clock stage timings.
    pub timings: StageTimings,
    /// Pointer-analysis counters.
    pub pointer: SolverStats,
    /// SHBG rule-application counters.
    pub shbg: ShbgStats,
    /// Pre-refutation pruning counters.
    pub prefilter: PrefilterStats,
    /// Refutation counters.
    pub refuter: RefuterStats,
    /// Message-history refutation counters (all zero under
    /// `no_histories` or `skip_refutation`).
    pub histories: HistoryStats,
    /// Harm-triage counters (all zero under `no_triage`).
    pub triage: triage::TriageStats,
    /// Call-graph soundness audit: unresolved-site classification and
    /// reachable-callback recall (computed after the pointer stage
    /// regardless of policy; only *rendered* under `resolve`/`havoc`).
    pub soundness: SoundnessStats,
    /// Worker threads the refutation stage actually used (`0` when the
    /// stage was skipped).
    pub refute_jobs_used: usize,
    /// Whether the comparison pass ran concurrently with refutation.
    pub compare_overlapped: bool,
    /// Wall-clock time the overlap hid: the smaller of the comparison
    /// and refutation stage times when overlapped, zero otherwise.
    pub overlap_saved: Duration,
    /// Summary-store counters from the linking pass: how many per-method
    /// summaries were served from the store vs. recomputed, and whether
    /// the whole points-to `Analysis` artifact was reused. Never affects
    /// results — reuse changes work done, not answers — so it is excluded
    /// from the stable report rendering.
    pub link: LinkStats,
    /// The last pipeline stage that ran (for progress reporting and
    /// typed errors; `None` before the first stage).
    pub last_stage: Option<Stage>,
}

/// The result of analyzing one app.
#[derive(Debug)]
pub struct SierraResult {
    /// The analyzed app's name.
    pub app_name: String,
    /// Number of generated harnesses (activities).
    pub harness_count: usize,
    /// Number of actions (SHBG nodes).
    pub action_count: usize,
    /// Ordered pairs in the transitively-closed SHBG ("HB edges").
    pub hb_edges: usize,
    /// Theoretical maximum ordered pairs (per-harness `n·(n−1)/2` summed).
    pub hb_max: usize,
    /// Candidate racy pairs without action sensitivity (0 when the
    /// comparison pass is disabled).
    pub racy_pairs_without_as: usize,
    /// Candidate racy pairs with action sensitivity.
    pub racy_pairs_with_as: usize,
    /// Races surviving refutation, ranked by priority. When the triage
    /// stage ran, each carries a [`triage::TriageVerdict`] and reports
    /// below `min_harm` have been dropped.
    pub races: Vec<RaceReport>,
    /// Whether the harm-triage stage ran (false under `no_triage`).
    pub triage_ran: bool,
    /// Whether the message-history stage ran (false under
    /// `no_histories` or `skip_refutation`).
    pub histories_ran: bool,
    /// Candidate pairs the prefilter removed before refutation, each
    /// with its machine-checkable reason (empty under `no_prefilter`).
    pub pruned: Vec<PrunedPair>,
    /// Per-stage timings and counters.
    pub metrics: StageMetrics,
    /// The main (action-sensitive) analysis, for downstream inspection.
    /// Shared: the session's summary store may also hold a reference for
    /// warm re-analysis.
    pub analysis: Arc<Analysis>,
    /// The SHBG.
    pub shbg: Shbg,
    /// The harnessed app (shared with any comparison pass).
    pub harness: Arc<HarnessResult>,
}

impl SierraResult {
    /// Fraction of the theoretical maximum HB edges found (Table 3 col 5).
    pub fn hb_percent(&self) -> f64 {
        if self.hb_max == 0 {
            0.0
        } else {
            100.0 * self.hb_edges as f64 / self.hb_max as f64
        }
    }

    /// The SHBG in Graphviz DOT format with readable action labels.
    pub fn shbg_dot(&self) -> String {
        self.shbg
            .to_dot(|a| crate::report::describe_action(&self.analysis.actions, a))
    }
}

impl std::fmt::Display for SierraResult {
    /// The complete human-readable report: summary line, stage timings,
    /// per-stage counters, and the ranked race list (the CLI's `analyze`
    /// output format). Delegates to [`crate::Report::render_text`] so
    /// every result surface shares one renderer.
    fn fmt(&self, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        out.write_str(&crate::render::Report::from_result(self).render_text())
    }
}

/// The SIERRA detector.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sierra {
    /// Pipeline configuration.
    pub config: SierraConfig,
}

impl Sierra {
    /// Creates a detector with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a detector with the given configuration.
    pub fn with_config(config: SierraConfig) -> Self {
        Self { config }
    }

    /// Starts a staged session on an app (run stages individually).
    pub fn session(&self, app: AndroidApp) -> AnalysisSession {
        AnalysisSession::new(self.config, app)
    }

    /// Runs the full pipeline on an app. Panics on an internal stage
    /// failure (an app input never yields `InvalidApp`/`MissingInput`);
    /// use [`crate::SessionBuilder`] + `finish()` for typed errors.
    pub fn analyze_app(&self, app: AndroidApp) -> SierraResult {
        AnalysisSession::new(self.config, app)
            .finish()
            .unwrap_or_else(|e| panic!("{e}"))
    }
}
