//! Race reports and prioritization (§3.1).

use android_model::{ActionKind, ActionRegistry};
use apir::{FieldId, Origin, Program};
use pointer::Access;
use symexec::Outcome;

/// Priority bucket of a race report (§3.1's heuristics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Races inside library code reached from the framework.
    Library,
    /// Races in framework code invoked from library code.
    FrameworkFromLibrary,
    /// Races in framework code directly invoked from app code.
    FrameworkFromApp,
    /// Races in application code.
    App,
}

/// One reported race: an unordered, unrefuted access pair.
#[derive(Debug, Clone)]
pub struct RaceReport {
    /// First access.
    pub a: Access,
    /// Second access.
    pub b: Access,
    /// The field both accesses touch.
    pub field: FieldId,
    /// Refutation outcome (`TruePositive` or `Budget`; `Refuted` pairs are
    /// dropped before reporting).
    pub outcome: Outcome,
    /// Priority bucket.
    pub priority: Priority,
    /// Whether the field is reference-typed (ranked higher: such races can
    /// manifest as `NullPointerException`s).
    pub pointer_field: bool,
    /// Harm classification from the triage stage (`None` until the stage
    /// runs, or always under `--no-triage`).
    pub triage: Option<triage::TriageVerdict>,
}

impl RaceReport {
    /// Sort key: higher priority first, pointer fields first within a
    /// bucket, refutation-budget reports last within those — then a
    /// *total* content order (field, action pair, statement addresses)
    /// so report order never depends on discovery order. Without the
    /// tail, equal-ranked races surfaced in worklist order, and triage
    /// annotations would diff across `--jobs` settings.
    #[allow(clippy::type_complexity)]
    pub fn rank_key(
        &self,
    ) -> (
        std::cmp::Reverse<Priority>,
        bool,
        bool,
        FieldId,
        android_model::ActionId,
        android_model::ActionId,
        apir::StmtAddr,
        apir::StmtAddr,
    ) {
        (
            std::cmp::Reverse(self.priority),
            !self.pointer_field,
            self.outcome == Outcome::Budget,
            self.field,
            self.a.action,
            self.b.action,
            self.a.addr,
            self.b.addr,
        )
    }

    /// Human-readable one-line description. When the triage stage has
    /// attached a verdict, the harm class and its witness are appended;
    /// under `--no-triage` the line is byte-identical to the pre-triage
    /// format.
    pub fn describe(&self, program: &Program, actions: &ActionRegistry) -> String {
        let f = program.field(self.field);
        let mut line = format!(
            "race on {}.{} between {} ({}) and {} ({}) [{:?}, {:?}]",
            program.class_name(f.class),
            program.name(f.name),
            describe_action(actions, self.a.action),
            if self.a.is_write { "write" } else { "read" },
            describe_action(actions, self.b.action),
            if self.b.is_write { "write" } else { "read" },
            self.priority,
            self.outcome,
        );
        if let Some(t) = &self.triage {
            line.push_str(&format!(" harm={} ({})", t.harm, t.witness.summary));
        }
        line
    }
}

/// Human-readable one-line description of an arbitrary access pair
/// (shared by race reports and prefilter pruning annotations).
pub fn describe_pair(
    program: &Program,
    actions: &ActionRegistry,
    a: &Access,
    b: &Access,
) -> String {
    let f = program.field(a.field);
    format!(
        "pair on {}.{} between {} ({}) and {} ({})",
        program.class_name(f.class),
        program.name(f.name),
        describe_action(actions, a.action),
        if a.is_write { "write" } else { "read" },
        describe_action(actions, b.action),
        if b.is_write { "write" } else { "read" },
    )
}

/// Short label for an action (used in reports and examples).
pub fn describe_action(actions: &ActionRegistry, id: android_model::ActionId) -> String {
    let a = actions.action(id);
    match &a.kind {
        ActionKind::HarnessRoot => format!("{id}:harness"),
        ActionKind::Lifecycle { event, instance } => {
            format!("{id}:{}\"{instance}\"", event.callback_name())
        }
        ActionKind::Gui { event, view } => match view {
            Some(v) => format!("{id}:{}@view{v}", event.callback_name()),
            None => format!("{id}:{}", event.callback_name()),
        },
        ActionKind::ThreadRun => format!("{id}:thread"),
        ActionKind::AsyncTaskPre => format!("{id}:onPreExecute"),
        ActionKind::AsyncTaskBg => format!("{id}:doInBackground"),
        ActionKind::AsyncTaskPost => format!("{id}:onPostExecute"),
        ActionKind::ExecutorRun => format!("{id}:executor"),
        ActionKind::RunnablePost => format!("{id}:post"),
        ActionKind::MessageHandle { what: Some(w) } => format!("{id}:handleMessage(what={w})"),
        ActionKind::MessageHandle { what: None } => format!("{id}:handleMessage"),
        ActionKind::Receive => format!("{id}:onReceive"),
        ActionKind::ServiceConnected => format!("{id}:onServiceConnected"),
        ActionKind::ServiceDisconnected => format!("{id}:onServiceDisconnected"),
        ActionKind::ServiceStart => format!("{id}:onStartCommand"),
        ActionKind::TimerTask => format!("{id}:timerTask"),
        ActionKind::LocationUpdate => format!("{id}:onLocationChanged"),
        ActionKind::MediaCompletion => format!("{id}:onCompletion"),
    }
}

/// Computes the §3.1 priority of an access pair from the origins of the
/// two accessing methods.
pub fn priority_of(program: &Program, a: &Access, b: &Access) -> Priority {
    let lo = program
        .method_origin(a.method)
        .min(program.method_origin(b.method));
    let hi = program
        .method_origin(a.method)
        .max(program.method_origin(b.method));
    match (lo, hi) {
        (Origin::App, Origin::App) => Priority::App,
        (Origin::Framework, Origin::App) => Priority::FrameworkFromApp,
        (Origin::Library, Origin::App) | (Origin::Library, Origin::Framework) => {
            Priority::FrameworkFromLibrary
        }
        (Origin::Framework, Origin::Framework) => Priority::FrameworkFromApp,
        _ => Priority::Library,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_ordering() {
        assert!(Priority::App > Priority::FrameworkFromApp);
        assert!(Priority::FrameworkFromApp > Priority::FrameworkFromLibrary);
        assert!(Priority::FrameworkFromLibrary > Priority::Library);
    }
}
